// Fabric-wide loss localization — the network-wide deployment the paper's
// §3.1 describes: the SAME drop query runs on every switch of a leaf-spine
// fabric (one engine per switch, fed by that switch's own queues) and a
// central collector federates the per-switch stores into one exact
// network-wide table. Because COUNT is additive, the federated drop counts
// are bit-exact — we cross-check every row against the simulator's own
// per-queue drop counters, then show the per-switch breakdown and the
// fabric metrics rollup.
//
// Build & run:  ./build/examples/fabric_loss_localization
#include <cstdio>
#include <string>

#include "federation/fabric_engine.hpp"
#include "trace/fabric_trace.hpp"

int main() {
  using namespace perfq;

  // ---- fabric + traffic ------------------------------------------------
  // 2 leaves x 2 spines, small queues, bursty heavy-tailed traffic with an
  // 8-sender incast into host (0,0) — enough pressure for real drops.
  trace::FabricTraceConfig config;
  config.seed = 7;
  config.leaves = 2;
  config.spines = 2;
  config.hosts_per_leaf = 4;
  config.duration = Nanos{4'000'000};
  config.num_flows = 800;
  config.burst_period = Nanos{250'000};
  config.burst_on = 0.25;
  config.edge.queue_capacity_pkts = 24;
  config.fabric_links.queue_capacity_pkts = 24;
  config.incasts.push_back(
      trace::FabricIncast{8, 0, 0, Nanos{1'000'000}, 64, 1500});

  net::Network network(config.seed);
  const net::LeafSpine topo = trace::build_fabric(network, config);
  const std::uint64_t flows = trace::install_fabric_flows(network, topo, config);

  // ---- one drop query, deployed on EVERY switch ------------------------
  federation::FabricOptions options;
  options.geometry = kv::CacheGeometry::set_associative(1024, 8);
  federation::FabricEngine fabric(
      network,
      compiler::compile_source("SELECT COUNT GROUPBY qid WHERE tout == infinity"),
      options);

  network.run_all();
  fabric.finish(network.now());
  std::printf("fabric: %zu switches, %llu flows, %llu telemetry records\n\n",
              fabric.switch_count(), static_cast<unsigned long long>(flows),
              static_cast<unsigned long long>(fabric.records()));

  // ---- federated result vs the simulator's ground truth ----------------
  runtime::ResultTable drops = fabric.result();
  drops.sort_desc("COUNT");
  std::printf("%s", drops.to_text("network-wide drops per queue", 10).c_str());

  const std::size_t qid_col = drops.column("qid");
  const std::size_t cnt_col = drops.column("COUNT");
  std::uint64_t localized = 0;
  bool exact = true;
  for (const auto& row : drops.rows()) {
    const auto qid = static_cast<std::uint32_t>(row[qid_col]);
    const auto counted = static_cast<std::uint64_t>(row[cnt_col]);
    localized += counted;
    if (counted != network.queue_stats(qid).dropped) {
      std::printf("MISMATCH at %s: query %llu vs simulator %llu\n",
                  network.queue_name(qid).c_str(),
                  static_cast<unsigned long long>(counted),
                  static_cast<unsigned long long>(
                      network.queue_stats(qid).dropped));
      exact = false;
    }
  }
  // Every switch-owned drop in the simulator must be in the table too.
  std::uint64_t ground_truth = 0;
  for (std::uint32_t qid = 0; qid < network.queue_count(); ++qid) {
    if (!network.node_is_host(network.queue_owner(qid))) {
      ground_truth += network.queue_stats(qid).dropped;
    }
  }
  std::printf("\ncross-check: %llu drops localized, simulator counts %llu %s\n",
              static_cast<unsigned long long>(localized),
              static_cast<unsigned long long>(ground_truth),
              exact && localized == ground_truth
                  ? "-> federated result is EXACT"
                  : "-> MISMATCH (bug!)");
  if (!exact || localized != ground_truth) return 1;

  // ---- per-switch attribution -----------------------------------------
  std::printf("\nper-switch share of the loss:\n");
  for (const auto& row : drops.rows()) {
    const auto qid = static_cast<std::uint32_t>(row[qid_col]);
    std::printf("  %-14s %-22s %6.0f drops\n",
                network.node_name(network.queue_owner(qid)).c_str(),
                network.queue_name(qid).c_str(), row[cnt_col]);
  }

  // ---- fabric metrics rollup ------------------------------------------
  const federation::FabricMetrics m = fabric.metrics();
  std::printf("\nrollup: %llu records across %zu engines (per-switch: ",
              static_cast<unsigned long long>(m.rollup.records),
              m.switches.size());
  for (std::size_t i = 0; i < m.switches.size(); ++i) {
    std::printf("%s%s=%llu", i > 0 ? ", " : "", m.switches[i].first.c_str(),
                static_cast<unsigned long long>(m.switches[i].second.records));
  }
  std::printf(")\n");
  return 0;
}
