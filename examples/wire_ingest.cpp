// Wire-rate ingest demo: capture bytes → fold, end to end.
//
//   1. Compile a query and show sema's FieldUsage verdict — which schema
//      fields the program actually reads, i.e. how many bytes of each frame
//      the lazy wire-view decode touches vs skips.
//   2. Write a PQWF frame trace (synthetic workload serialized to Ethernet/
//      IPv4 wire bytes, damage sprinkled in).
//   3. Replay it through Engine::process_wire_batch — the fused burst path:
//      the reader memory-maps the file, each burst is validated frame
//      headers + zero-copy spans, and the serial engine folds straight off
//      the mapped bytes. Damaged frames are skipped and counted, never
//      thrown on.
//   4. Read the results and the ingest accounting off the one metrics()
//      surface. Flip `verify` below to see the opt-in checksum verdicts.
//
// Build & run:  ./build/wire_ingest
#include <cstdio>
#include <filesystem>
#include <vector>

#include "packet/wire.hpp"
#include "runtime/engine_builder.hpp"
#include "trace/flow_session.hpp"
#include "trace/wire_trace.hpp"

int main() {
  using namespace perfq;

  // 1. The paper's per-flow accounting query. Sema computes per-program
  //    field usage: the key reads the 5-tuple, the folds read pkt_len, the
  //    predicate reads tout — everything else stays undecoded per frame.
  const char* source = R"(
FLOWS = SELECT 5tuple, COUNT, SUM(pkt_len) GROUPBY 5tuple WHERE tout != infinity
)";
  compiler::CompiledProgram program = compiler::compile_source(source);
  const FieldUsage usage = program.field_usage;
  std::printf("field usage: %d of %zu schema fields read", usage.count(),
              kNumFields);
  std::printf(" (wire decode: %d fields, %d skipped)\n", usage.wire_fields(),
              usage.wire_fields_skipped());

  // 2. A wire trace: 50k synthetic records serialized to frames, with every
  //    97th frame damaged (truncation / foreign EtherType / corrupt header,
  //    round-robin — see tools/make_wire_trace.cpp for the CLI version).
  trace::TraceConfig workload;
  workload.seed = 42;
  workload.num_flows = 2000;
  workload.duration = 10_s;
  const auto path =
      std::filesystem::temp_directory_path() / "wire_ingest_demo.pqwf";
  {
    trace::WireTraceWriter writer(path);
    std::size_t i = 0;
    trace::FlowSessionGenerator gen(workload);
    while (auto rec = gen.next()) {
      std::vector<std::byte> bytes = wire::serialize(rec->pkt);
      if (++i % 97 == 0) bytes.resize(bytes.size() / 2);
      FrameObservation frame;
      frame.bytes = bytes;
      frame.qid = rec->qid;
      frame.tin = rec->tin;
      frame.tout = rec->tout;
      frame.qsize = rec->qsize;
      writer.write(frame);
    }
    writer.close();
    std::printf("wrote %llu frames to %s\n",
                static_cast<unsigned long long>(writer.frames_written()),
                path.c_str());
  }

  // 3. Replay through the fused wire path. verify_checksums(false) is the
  //    default — software-serialized captures carry valid checksums anyway,
  //    and the knob exists for feeds that cannot trust their NIC offload.
  const bool verify = false;
  std::unique_ptr<runtime::Engine> engine =
      runtime::EngineBuilder(std::move(program))
          .geometry(kv::CacheGeometry::set_associative(4096, 8))
          .refresh(1_s)
          .verify_checksums(verify)
          .build();
  const trace::IngestStats stats =
      trace::replay_wire_trace(*engine, path, /*burst=*/1024);
  engine->finish(workload.duration);

  // 4. Results + accounting, straight off the engine.
  runtime::ResultTable result = engine->result();
  result.sort_desc("SUM(pkt_len)");
  std::printf("%s", result.to_text("top flows (wire path)", 5).c_str());
  std::printf("%s\n", stats.to_string().c_str());
  const runtime::EngineMetrics metrics = engine->metrics();
  std::printf("engine ingest telemetry: parsed=%llu dropped=%llu of %llu\n",
              static_cast<unsigned long long>(metrics.ingest.parsed),
              static_cast<unsigned long long>(metrics.ingest.dropped()),
              static_cast<unsigned long long>(metrics.ingest.total()));
  std::filesystem::remove(path);
  return 0;
}
