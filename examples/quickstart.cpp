// Quickstart: the smallest end-to-end use of the library.
//
//   1. Write a performance query (the paper's per-flow counter example).
//   2. Compile it — the compiler reports how it maps onto the switch.
//   3. Build an engine with EngineBuilder. The builder is the single entry
//      point of the runtime: geometry, refresh, stream sinks and the
//      serial-vs-sharded choice are all knobs on it, and it hands back a
//      std::unique_ptr<runtime::Engine> — the one interface every driver
//      (trace replay, netsim telemetry, REPL, benches) programs against.
//   4. Feed packet observations (here: a small synthetic trace), in batches
//      or one at a time.
//   5. Pull results MID-RUN with snapshot() — the paper's §3.2 operating
//      model ("keys can be periodically evicted to ensure the backing store
//      is fresh, and monitoring applications can pull results") — then
//      finish() and read the final tables.
//
// Build & run:  ./build/quickstart
#include <cstdio>
#include <vector>

#include "runtime/engine_builder.hpp"
#include "trace/flow_session.hpp"

int main() {
  using namespace perfq;

  // 1. A query, exactly as an operator would write it (§2).
  const char* source = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

FLOWS = SELECT 5tuple, COUNT, SUM(pkt_len), ewma GROUPBY 5tuple WHERE proto == TCP and tout != infinity
)";
  // (tout != infinity excludes dropped packets: a drop has infinite latency
  // and would saturate the EWMA — the paper measures drops with a separate
  // `WHERE tout == infinity` query, as in examples/flow_loss_rates.cpp.)

  // 2. Compile. Free constants (alpha) are supplied here.
  compiler::CompiledProgram program =
      compiler::compile_source(source, {{"alpha", 0.125}});
  const auto& plan = program.switch_plans.at(0);
  std::printf("compiled: key = %d bytes, value dims = %zu, linearity = %s\n",
              plan.key_bytes(), plan.kernel->state_dims(),
              kv::to_cstring(plan.linearity));

  // 3. Build the engine: a small cache (1024 pairs, 8-way) so evictions and
  //    merges actually happen, plus the paper's periodic refresh so the
  //    backing store stays fresh between pulls. Appending .sharded(N) here —
  //    nothing else — would run the same program across N cores instead.
  std::unique_ptr<runtime::Engine> engine =
      runtime::EngineBuilder(std::move(program))
          .geometry(kv::CacheGeometry::set_associative(1024, 8))
          .refresh(1_s)
          .build();

  // 4. Run over a synthetic 10-second Internet-mix trace, batched the way a
  //    dataplane would deliver bursts.
  trace::TraceConfig workload = trace::TraceConfig::caida_like().scaled(0.001);
  workload.duration = 10_s;
  workload.seed = 42;
  trace::FlowSessionGenerator gen(workload);
  std::vector<PacketRecord> batch;
  bool pulled = false;
  while (auto rec = gen.next()) {
    batch.push_back(*rec);
    if (batch.size() == 512) {
      engine->process_batch(batch);
      batch.clear();
      // 5a. The application pull, mid-run: merge the live cache over the
      //     backing store — exact for linear kernels, no pipeline stall.
      if (!pulled && engine->records_processed() > 20'000) {
        pulled = true;
        const runtime::EngineSnapshot snap = engine->snapshot("FLOWS", 5_s);
        std::printf(
            "mid-run snapshot at record boundary %llu: %zu flows visible "
            "(refreshes so far: %llu)\n",
            static_cast<unsigned long long>(snap.records),
            snap.table.row_count(),
            static_cast<unsigned long long>(engine->refresh_count()));
      }
    }
  }
  engine->process_batch(batch);
  // A wire-format feed (trace::replay_frames) records its ingest accounting
  // automatically; a generator is a loss-free feed, so report it as such —
  // the metrics ingest line below then reads "parsed == records, 0 dropped".
  trace::IngestStats ingest;
  ingest.parsed = engine->records_processed();
  engine->record_ingest(ingest);
  engine->finish(workload.duration);

  // 5b. Final results: top flows by byte count, plus what the hardware did.
  runtime::ResultTable result = engine->result();
  result.sort_desc("SUM(pkt_len)");
  std::printf("%s", result.to_text("top TCP flows", 10).c_str());

  for (const auto& stats : engine->store_stats()) {
    std::printf(
        "switch store '%s': %llu pkts, %llu evictions (%.2f%%), "
        "%zu keys in backing store\n",
        stats.name.c_str(),
        static_cast<unsigned long long>(stats.cache.packets),
        static_cast<unsigned long long>(stats.cache.evictions),
        stats.cache.eviction_fraction() * 100.0, stats.keys);
  }

  // 6. The engine's own telemetry (always on): ingest-loss accounting plus
  //    the process_batch latency tap — one metrics() read serves both.
  const runtime::EngineMetrics metrics = engine->metrics();
  std::printf("%s (dropped %llu of %llu frames)\n",
              metrics.ingest.to_string().c_str(),
              static_cast<unsigned long long>(metrics.ingest.dropped()),
              static_cast<unsigned long long>(metrics.ingest.total()));
  if (metrics.batch_ns.count > 0) {
    std::printf("batch latency: p50 %.0f ns, p99 %.0f ns over %llu samples\n",
                metrics.batch_ns.quantile_ns(0.50),
                metrics.batch_ns.quantile_ns(0.99),
                static_cast<unsigned long long>(metrics.batch_ns.count));
  }
  return 0;
}
