// Quickstart: the smallest end-to-end use of the library.
//
//   1. Write a performance query (the paper's per-flow counter example).
//   2. Compile it — the compiler reports how it maps onto the switch.
//   3. Feed packet observations (here: a small synthetic trace).
//   4. Read the result table from the backing store.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "runtime/engine.hpp"
#include "trace/flow_session.hpp"

int main() {
  using namespace perfq;

  // 1. A query, exactly as an operator would write it (§2).
  const char* source = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, COUNT, SUM(pkt_len), ewma GROUPBY 5tuple WHERE proto == TCP and tout != infinity
)";
  // (tout != infinity excludes dropped packets: a drop has infinite latency
  // and would saturate the EWMA — the paper measures drops with a separate
  // `WHERE tout == infinity` query, as in examples/flow_loss_rates.cpp.)

  // 2. Compile. Free constants (alpha) are supplied here.
  compiler::CompiledProgram program =
      compiler::compile_source(source, {{"alpha", 0.125}});
  const auto& plan = program.switch_plans.at(0);
  std::printf("compiled: key = %d bytes, value dims = %zu, linearity = %s\n",
              plan.key_bytes(), plan.kernel->state_dims(),
              kv::to_cstring(plan.linearity));

  // 3. Run over a synthetic 10-second Internet-mix trace with a small cache
  //    (1024 pairs, 8-way) so evictions and merges actually happen.
  runtime::EngineConfig config;
  config.geometry = kv::CacheGeometry::set_associative(1024, 8);
  runtime::QueryEngine engine(std::move(program), config);

  trace::TraceConfig workload = trace::TraceConfig::caida_like().scaled(0.001);
  workload.duration = 10_s;
  workload.seed = 42;
  trace::FlowSessionGenerator gen(workload);
  while (auto rec = gen.next()) engine.process(*rec);
  engine.finish(workload.duration);

  // 4. Results: top flows by byte count, plus what the hardware did.
  runtime::ResultTable result = engine.result();
  result.sort_desc("SUM(pkt_len)");
  std::printf("%s", result.to_text("top TCP flows", 10).c_str());

  for (const auto& stats : engine.store_stats()) {
    std::printf(
        "switch store '%s': %llu pkts, %llu evictions (%.2f%%), "
        "%zu keys in backing store\n",
        stats.name.c_str(),
        static_cast<unsigned long long>(stats.cache.packets),
        static_cast<unsigned long long>(stats.cache.evictions),
        stats.cache.eviction_fraction() * 100.0, stats.keys);
  }
  return 0;
}
