// Per-flow loss rates over a congested dumbbell — Fig. 2's "Per-flow loss
// rate" query (two GROUPBYs joined on the 5-tuple) against simulator ground
// truth. The engine here is the SHARDED runtime: note that only the
// .sharded(2) builder knob differs from the serial examples — the driver
// code targets the same runtime::Engine interface, and the results are
// bit-identical (so the exact drop-count cross-check below still holds).
//
// Build & run:  ./build/examples/flow_loss_rates
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>

#include "netsim/network.hpp"
#include "runtime/engine_builder.hpp"

int main() {
  using namespace perfq;

  // Dumbbell: 8 senders -> switch A -> (bottleneck) -> switch B -> 8 sinks.
  net::Network network(3);
  const net::NodeId sw_a = network.add_switch("A");
  const net::NodeId sw_b = network.add_switch("B");
  net::LinkConfig edge{10.0, 1000_ns, 64};
  net::LinkConfig bottleneck{2.0, 5000_ns, 32};  // 2 Gb/s shared pipe
  network.connect(sw_a, sw_b, bottleneck);
  std::vector<FiveTuple> flows;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t src_ip = ipv4_from_string("10.1.0.1") + i;
    const std::uint32_t dst_ip = ipv4_from_string("10.2.0.1") + i;
    const net::NodeId src = network.add_host(src_ip);
    const net::NodeId dst = network.add_host(dst_ip);
    network.connect(src, sw_a, edge);
    network.connect(dst, sw_b, edge);
    flows.push_back(FiveTuple{src_ip, dst_ip,
                              static_cast<std::uint16_t>(40000 + i), 5001,
                              static_cast<std::uint8_t>(IpProto::kUdp)});
  }
  network.finalize_routes();

  // Fig. 2's loss-rate query, verbatim structure.
  const char* source = R"(
R1 = SELECT COUNT GROUPBY 5tuple
R2 = SELECT COUNT GROUPBY 5tuple WHERE tout == infinity
R3 = SELECT R2.COUNT / R1.COUNT FROM R1 JOIN R2 ON 5tuple
)";
  std::unique_ptr<runtime::Engine> engine =
      runtime::EngineBuilder(compiler::compile_source(source))
          .sharded(2)
          .build();
  std::uint64_t fed = 0;
  network.set_telemetry_sink([&engine, &fed](const PacketRecord& rec) {
    engine->process(rec);
    ++fed;
  });

  // Heterogeneous offered loads: flow i sends at (i+1) x 180 Mb/s, so later
  // flows overdrive the bottleneck harder and should lose more.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const double rate_pps = (static_cast<double>(i) + 1.0) * 15000.0;
    network.add_udp_flow(flows[i], 0_ns, 40000, 1500, rate_pps);
  }
  network.run_until(500_ms);
  // The simulator's telemetry sink is a loss-free feed: every record handed
  // over reached the engine. Record that so the metrics ingest line below
  // reports the feed's accounting alongside the engine's own counters.
  trace::IngestStats ingest;
  ingest.parsed = fed;
  engine->record_ingest(ingest);
  engine->finish(network.now());

  runtime::ResultTable r3 = engine->table("R3");
  r3.sort_desc("R2.COUNT / R1.COUNT");
  std::printf("%s", r3.to_text("per-flow loss rate (R2.COUNT / R1.COUNT)").c_str());

  const runtime::ResultTable& r1 = engine->table("R1");
  const runtime::ResultTable& r2 = engine->table("R2");
  std::printf(
      "\nflows observed: %zu, flows with drops: %zu\n"
      "expected shape: loss rate increases with the flow's offered load "
      "(srcip 10.1.0.1 lowest, 10.1.0.8 highest)\n",
      r1.row_count(), r2.row_count());

  // Independent check: total drops reported by the bottleneck queue equals
  // the sum of R2 counts (every loss happens at the bottleneck).
  const std::uint32_t qid = network.queue_id(sw_a, sw_b);
  double r2_total = 0;
  for (const auto& row : r2.rows()) r2_total += row[r2.column("COUNT")];
  std::printf("bottleneck '%s' drops: %llu; R2 total: %.0f  %s\n",
              network.queue_name(qid).c_str(),
              static_cast<unsigned long long>(network.queue_stats(qid).dropped),
              r2_total,
              static_cast<double>(network.queue_stats(qid).dropped) == r2_total
                  ? "(exact match)"
                  : "(MISMATCH)");

  // Engine self-telemetry: the ingest-loss view of the same run — the feed
  // delivered every record, so dropped must read 0 and parsed must equal the
  // sharded engine's processed count.
  const runtime::EngineMetrics metrics = engine->metrics();
  std::printf("%s (dropped %llu of %llu records; engine processed %llu)\n",
              metrics.ingest.to_string().c_str(),
              static_cast<unsigned long long>(metrics.ingest.dropped()),
              static_cast<unsigned long long>(metrics.ingest.total()),
              static_cast<unsigned long long>(metrics.records));
  return 0;
}
