// Latency analysis: per-flow EWMA of queueing delay plus the paper's
// composed "flows with high end-to-end latency" query (§2), over a fabric
// with one deliberately slow link.
//
// Build & run:  ./build/examples/latency_heatmap
#include <cstdio>
#include <memory>

#include "common/stats.hpp"
#include "netsim/network.hpp"
#include "runtime/engine_builder.hpp"

int main() {
  using namespace perfq;

  net::Network network(11);
  net::LinkConfig edge{10.0, 1000_ns, 128};
  net::LinkConfig fabric{40.0, 2000_ns, 256};
  const net::LeafSpine topo =
      net::build_leaf_spine(network, 3, 2, 6, edge, fabric);

  const char* source = R"(
# per-flow smoothed queueing delay, per queue traversed
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

# (drops have tout = infinity and would saturate the average: exclude them)
LAT = SELECT 5tuple, qid, ewma GROUPBY 5tuple, qid WHERE tout != infinity

# paper §2: total per-packet latency, then flows whose packets exceed L
def sum_lat (lat, (tin, tout)): lat = lat + tout - tin

R1 = SELECT pkt_uniq, sum_lat GROUPBY pkt_uniq
R2 = SELECT 5tuple FROM R1 GROUPBY 5tuple WHERE lat > L
)";
  std::unique_ptr<runtime::Engine> engine =
      runtime::EngineBuilder(compiler::compile_source(
                                 source, {{"alpha", 0.25}, {"L", 400'000.0}}))
          .geometry(kv::CacheGeometry::set_associative(1u << 14, 8))
          .build();
  network.set_telemetry_sink(
      [&engine](const PacketRecord& rec) { engine->process(rec); });

  // All-to-all light traffic, plus a heavy pair that overloads one edge link
  // (leaf2 -> its first host), inflating latency for flows into that host.
  Rng rng(5);
  for (std::uint32_t l = 0; l < 3; ++l) {
    for (std::uint32_t h = 0; h < 6; ++h) {
      const std::uint32_t pl = (l + 1) % 3;
      FiveTuple flow{net::leaf_spine_ip(l, h), net::leaf_spine_ip(pl, (h + 1) % 6),
                     static_cast<std::uint16_t>(21000 + h), 8080,
                     static_cast<std::uint8_t>(IpProto::kTcp)};
      network.add_window_flow(flow, 0_ns, 300, 1000, 4, 10_ms);
    }
  }
  const std::uint32_t hot_dst = net::leaf_spine_ip(2, 0);
  for (int k = 0; k < 4; ++k) {
    FiveTuple hog{net::leaf_spine_ip(0, static_cast<std::uint32_t>(k)), hot_dst,
                  static_cast<std::uint16_t>(25000 + k), 9999,
                  static_cast<std::uint8_t>(IpProto::kUdp)};
    network.add_udp_flow(hog, 0_ns, 100000, 1400, 250000.0);  // ~2.8 Gb/s each
  }
  network.run_until(150_ms);
  engine->finish(network.now());

  // Heatmap: EWMA latency per (queue, flow) — print queue-level means.
  const runtime::ResultTable& lat = engine->table("LAT");
  std::map<std::uint32_t, RunningStats> per_queue;
  const std::size_t qid_col = lat.column("qid");
  const std::size_t ewma_col = lat.column("lat_est");
  for (const auto& row : lat.rows()) {
    per_queue[static_cast<std::uint32_t>(row[qid_col])].add(row[ewma_col]);
  }
  std::printf("per-queue mean of per-flow EWMA queueing delay:\n");
  std::vector<std::pair<double, std::uint32_t>> ranked;
  for (const auto& [qid, stats] : per_queue) {
    ranked.emplace_back(stats.mean(), qid);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  for (std::size_t i = 0; i < std::min<std::size_t>(6, ranked.size()); ++i) {
    std::printf("  %-18s %10s   (%llu flows)\n",
                network.queue_name(ranked[i].second).c_str(),
                to_string(Nanos{static_cast<std::int64_t>(ranked[i].first)}).c_str(),
                static_cast<unsigned long long>(
                    per_queue[ranked[i].second].count()));
  }
  const std::uint32_t hot_q =
      network.queue_id(topo.leaves[2], network.node_of_ip(hot_dst));
  std::printf("=> hottest queue should be '%s' (the overloaded edge link)%s\n\n",
              network.queue_name(hot_q).c_str(),
              ranked.empty() || ranked[0].second != hot_q ? "  [MISMATCH]" : "");

  runtime::ResultTable r2 = engine->table("R2");
  r2.sort_desc("COUNT");
  std::printf("%s", r2.to_text("flows with packets above L total latency", 8).c_str());
  std::printf(
      "(dstip column should be dominated by %s — victims share the slow "
      "queue)\n",
      ipv4_to_string(hot_dst).c_str());
  return 0;
}
