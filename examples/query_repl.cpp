// Query runner / REPL: compile and execute an arbitrary query over a
// synthetic trace (or a PQTR trace file), printing the compilation report
// and the result table. Demonstrates the toolchain the way an operator
// console would use it.
//
// Usage:
//   ./build/examples/query_repl                      # demo query
//   ./build/examples/query_repl query.pq             # query from file
//   ./build/examples/query_repl query.pq trace.pqtr  # ... over a saved trace
//   echo 'SELECT COUNT GROUPBY srcip' | ./build/examples/query_repl -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/error.hpp"
#include "runtime/engine_builder.hpp"
#include "switchsim/match_compiler.hpp"
#include "trace/flow_session.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace perfq;

constexpr const char* kDemoQuery = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, COUNT, ewma GROUPBY 5tuple WHERE proto == TCP
)";

std::string read_source(int argc, char** argv) {
  if (argc < 2) return kDemoQuery;
  if (std::string{argv[1]} == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(argv[1]);
  if (!in) throw ConfigError{std::string{"cannot open query file "} + argv[1]};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_compilation_report(const compiler::CompiledProgram& program) {
  std::printf("-- compilation report --------------------------------------\n");
  for (std::size_t i = 0; i < program.analysis.queries.size(); ++i) {
    const auto& q = program.analysis.queries[i];
    const char* kind = q.def.kind == lang::QueryDef::Kind::kGroupBy
                           ? (q.on_switch ? "GROUPBY (on-switch KV store)"
                                          : "GROUPBY (collection layer)")
                       : q.def.kind == lang::QueryDef::Kind::kJoin
                           ? "JOIN (collection layer)"
                           : "SELECT";
    std::printf("  [%zu] %s%s%s -> schema %s\n", i,
                q.def.result_name.empty() ? "" : q.def.result_name.c_str(),
                q.def.result_name.empty() ? "" : " = ", kind,
                q.output.to_string().c_str());
  }
  for (const auto& plan : program.switch_plans) {
    std::printf("  store '%s': key %dB, %zu state dims, %s", plan.name.c_str(),
                plan.key_bytes(), plan.kernel->state_dims(),
                kv::to_cstring(plan.linearity));
    if (plan.prefilter_ast != nullptr) {
      const auto tcam = sw::compile_where_to_tcam(*plan.prefilter_ast, 1);
      if (tcam.has_value()) {
        std::printf(", WHERE -> %zu TCAM entries", tcam->size());
      } else {
        std::printf(", WHERE -> ALU stage");
      }
    }
    std::printf("\n");
  }
  std::printf("-------------------------------------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string source = read_source(argc, argv);
    std::printf("query:\n%s\n", source.c_str());

    // Common thresholds available as constants; extend as needed.
    const std::map<std::string, double> params{
        {"alpha", 0.125}, {"K", 32.0}, {"L", 1'000'000.0}};
    compiler::CompiledProgram program = compiler::compile_source(source, params);
    print_compilation_report(program);

    // One builder line is the whole runtime setup; an operator console
    // wanting the multi-core engine would only append .sharded(N) here.
    std::unique_ptr<runtime::Engine> engine =
        runtime::EngineBuilder(std::move(program))
            .geometry(kv::CacheGeometry::set_associative(1u << 13, 8))
            .build();

    Nanos end;
    if (argc >= 3) {
      trace::TraceReader reader(argv[2]);
      std::printf("replaying %llu records from %s\n",
                  static_cast<unsigned long long>(reader.record_count()),
                  argv[2]);
      end = Nanos{0};
      while (auto rec = reader.next()) {
        engine->process(*rec);
        end = std::max(end, rec->tin);
      }
    } else {
      trace::TraceConfig workload =
          trace::TraceConfig::caida_like().scaled(0.002);
      workload.duration = 30_s;
      trace::FlowSessionGenerator gen(workload);
      while (auto rec = gen.next()) engine->process(*rec);
      end = workload.duration;
      std::printf("processed %llu synthetic records\n",
                  static_cast<unsigned long long>(engine->records_processed()));
    }
    engine->finish(end);

    const runtime::ResultTable& result = engine->result();
    std::printf("%s", result.to_text("result", 20).c_str());
    for (const auto& stats : engine->store_stats()) {
      std::printf("store '%s': eviction rate %.2f%%, accuracy %.1f%%\n",
                  stats.name.c_str(), stats.cache.eviction_fraction() * 100.0,
                  stats.accuracy.accuracy() * 100.0);
    }
    return 0;
  } catch (const QueryError& e) {
    std::fprintf(stderr, "query error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
