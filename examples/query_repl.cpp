// Query runner / REPL: compile and execute an arbitrary query over a
// synthetic trace (or a PQTR trace file), printing the compilation report
// and the result table. Demonstrates the toolchain the way an operator
// console would use it.
//
// Usage:
//   ./build/examples/query_repl                      # demo query
//   ./build/examples/query_repl query.pq             # query from file
//   ./build/examples/query_repl query.pq trace.pqtr  # ... over a saved trace
//   echo 'SELECT COUNT GROUPBY srcip' | ./build/examples/query_repl -
//   ./build/examples/query_repl -i [query.pq]        # interactive console
//
// Interactive mode keeps the engine live between commands: .run feeds
// synthetic traffic, .snapshot pulls a mid-run result, .attach/.detach add
// and remove resident queries mid-stream (the same QueryService API the
// socket server in examples/query_server.cpp speaks), and .stats/.json/.prom
// read the engine's own telemetry (Engine::metrics()) — the operator-console
// view of "the monitor monitoring itself".
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics_export.hpp"
#include "runtime/engine_builder.hpp"
#include "service/query_service.hpp"
#include "switchsim/match_compiler.hpp"
#include "trace/flow_session.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace perfq;

constexpr const char* kDemoQuery = R"(
def ewma (lat_est, (tin, tout)):
    lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)

SELECT 5tuple, COUNT, ewma GROUPBY 5tuple WHERE proto == TCP
)";

std::string read_source(const char* arg) {
  if (arg == nullptr) return kDemoQuery;
  if (std::string{arg} == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(arg);
  if (!in) throw ConfigError{std::string{"cannot open query file "} + arg};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_compilation_report(const compiler::CompiledProgram& program) {
  std::printf("-- compilation report --------------------------------------\n");
  for (std::size_t i = 0; i < program.analysis.queries.size(); ++i) {
    const auto& q = program.analysis.queries[i];
    const char* kind = q.def.kind == lang::QueryDef::Kind::kGroupBy
                           ? (q.on_switch ? "GROUPBY (on-switch KV store)"
                                          : "GROUPBY (collection layer)")
                       : q.def.kind == lang::QueryDef::Kind::kJoin
                           ? "JOIN (collection layer)"
                           : "SELECT";
    std::printf("  [%zu] %s%s%s -> schema %s\n", i,
                q.def.result_name.empty() ? "" : q.def.result_name.c_str(),
                q.def.result_name.empty() ? "" : " = ", kind,
                q.output.to_string().c_str());
  }
  for (const auto& plan : program.switch_plans) {
    std::printf("  store '%s': key %dB, %zu state dims, %s", plan.name.c_str(),
                plan.key_bytes(), plan.kernel->state_dims(),
                kv::to_cstring(plan.linearity));
    if (plan.prefilter_ast != nullptr) {
      const auto tcam = sw::compile_where_to_tcam(*plan.prefilter_ast, 1);
      if (tcam.has_value()) {
        std::printf(", WHERE -> %zu TCAM entries", tcam->size());
      } else {
        std::printf(", WHERE -> ALU stage");
      }
    }
    std::printf("\n");
  }
  std::printf("-------------------------------------------------------------\n");
}

void print_repl_help() {
  std::printf(
      ".run [n]            feed n synthetic records (default 10000)\n"
      ".snapshot <name>    mid-run result pull of one on-switch GROUPBY\n"
      ".attach <name> <q>  attach a query mid-stream (rest of line is text)\n"
      ".detach <name>      detach it and print its final table\n"
      ".tenants            list attached queries and the die-area budget\n"
      ".stats              engine telemetry summary (Engine::metrics())\n"
      ".json               telemetry as JSON\n"
      ".prom               telemetry as Prometheus text\n"
      ".finish             end the window and print the result table\n"
      ".quit               exit\n");
}

int run_interactive(std::unique_ptr<runtime::Engine> engine) {
  // The same service the socket server fronts: the console commands below
  // are the in-process view of the line protocol.
  service::QueryService service(std::move(engine));
  // A long synthetic workload the operator draws from with .run.
  trace::TraceConfig workload = trace::TraceConfig::caida_like().scaled(0.002);
  workload.duration = 3600_s;
  trace::FlowSessionGenerator gen(workload);
  std::printf("interactive console; .help lists commands\n");
  std::string line;
  while (std::printf("perfq> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream ss(line);
    std::string cmd;
    ss >> cmd;
    if (cmd.empty()) continue;
    try {
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        print_repl_help();
      } else if (cmd == ".run") {
        if (service.finished()) {
          std::printf("window already finished\n");
          continue;
        }
        std::size_t n = 10'000;
        ss >> n;
        std::vector<PacketRecord> batch;
        std::size_t fed = 0;
        while (fed < n) {
          const auto rec = gen.next();
          if (!rec) break;
          batch.push_back(*rec);
          if (batch.size() == 512) {
            service.process_batch(batch);
            fed += batch.size();
            batch.clear();
          }
        }
        if (!batch.empty()) {
          service.process_batch(batch);
          fed += batch.size();
        }
        std::printf("fed %zu records (total %llu)\n", fed,
                    static_cast<unsigned long long>(
                        service.records_processed()));
      } else if (cmd == ".snapshot") {
        std::string name;
        ss >> name;
        const runtime::EngineSnapshot snap = service.snapshot(name);
        std::printf("%s", snap.table
                              .to_text("snapshot '" + name + "' @ record " +
                                           std::to_string(snap.records),
                                       10)
                              .c_str());
      } else if (cmd == ".attach") {
        std::string name;
        ss >> name;
        std::string source;
        std::getline(ss, source);
        // The language is indentation-sensitive: the query must start at
        // column 1, so strip the separator spaces getline kept.
        source.erase(0, source.find_first_not_of(" \t"));
        const service::TenantInfo info = service.attach(name, source);
        std::printf("attached '%s' (%s, %.4f%% die) at record %llu\n",
                    info.name.c_str(),
                    info.kind == runtime::AttachKind::kSwitchQuery ? "switch"
                                                                   : "stream",
                    info.die_fraction * 100.0,
                    static_cast<unsigned long long>(info.attach_records));
      } else if (cmd == ".detach") {
        std::string name;
        ss >> name;
        const runtime::ResultTable table = service.detach(name);
        std::printf("%s", table.to_text("final '" + name + "'", 20).c_str());
      } else if (cmd == ".tenants") {
        for (const auto& t : service.tenants()) {
          std::printf("tenant '%s' (%s, %.4f%% die) since record %llu\n",
                      t.name.c_str(),
                      t.kind == runtime::AttachKind::kSwitchQuery ? "switch"
                                                                  : "stream",
                      t.die_fraction * 100.0,
                      static_cast<unsigned long long>(t.attach_records));
        }
        std::printf("budget: %.4f%% of %.4f%% die in use\n",
                    service.used_die_fraction() * 100.0,
                    service.config().budget.max_die_fraction * 100.0);
      } else if (cmd == ".stats") {
        std::printf("%s", obs::format_metrics(service.metrics()).c_str());
      } else if (cmd == ".json") {
        std::printf("%s\n", obs::metrics_to_json(service.metrics()).c_str());
      } else if (cmd == ".prom") {
        std::printf("%s",
                    obs::metrics_to_prometheus(service.metrics()).c_str());
      } else if (cmd == ".finish") {
        if (service.finished()) {
          std::printf("window already finished\n");
          continue;
        }
        service.finish();
        std::printf("%s", service.result().to_text("result", 20).c_str());
      } else {
        std::printf("unknown command '%s'; .help lists commands\n",
                    cmd.c_str());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    bool interactive = false;
    int argi = 1;
    if (argc > 1 && (std::string{argv[1]} == "-i" ||
                     std::string{argv[1]} == "--interactive")) {
      interactive = true;
      argi = 2;
    }
    const std::string source = read_source(argc > argi ? argv[argi] : nullptr);
    std::printf("query:\n%s\n", source.c_str());

    // Common thresholds available as constants; extend as needed.
    const std::map<std::string, double> params{
        {"alpha", 0.125}, {"K", 32.0}, {"L", 1'000'000.0}};
    compiler::CompiledProgram program = compiler::compile_source(source, params);
    print_compilation_report(program);

    // One builder line is the whole runtime setup; an operator console
    // wanting the multi-core engine would only append .sharded(N) here.
    std::unique_ptr<runtime::Engine> engine =
        runtime::EngineBuilder(std::move(program))
            .geometry(kv::CacheGeometry::set_associative(1u << 13, 8))
            .build();

    if (interactive) return run_interactive(std::move(engine));

    Nanos end;
    if (argc >= argi + 2) {
      const char* trace_path = argv[argi + 1];
      trace::TraceReader reader(trace_path);
      std::printf("replaying %llu records from %s\n",
                  static_cast<unsigned long long>(reader.record_count()),
                  trace_path);
      end = Nanos{0};
      while (auto rec = reader.next()) {
        engine->process(*rec);
        end = std::max(end, rec->tin);
      }
    } else {
      trace::TraceConfig workload =
          trace::TraceConfig::caida_like().scaled(0.002);
      workload.duration = 30_s;
      trace::FlowSessionGenerator gen(workload);
      while (auto rec = gen.next()) engine->process(*rec);
      end = workload.duration;
      std::printf("processed %llu synthetic records\n",
                  static_cast<unsigned long long>(engine->records_processed()));
    }
    engine->finish(end);

    const runtime::ResultTable& result = engine->result();
    std::printf("%s", result.to_text("result", 20).c_str());
    for (const auto& stats : engine->store_stats()) {
      std::printf("store '%s': eviction rate %.2f%%, accuracy %.1f%%\n",
                  stats.name.c_str(), stats.cache.eviction_fraction() * 100.0,
                  stats.accuracy.accuracy() * 100.0);
    }
    return 0;
  } catch (const QueryError& e) {
    std::fprintf(stderr, "query error: %s\n", e.what());
    return 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
