// Line-protocol client for the query server: send one command, print the
// payload, exit 0 on OK / 1 on ERR. The scripted half of the socket round
// trip CI exercises.
//
// Usage:
//   ./build/examples/query_client <port> <command words...>
//   ./build/examples/query_client 7411 LIST
//   ./build/examples/query_client 7411 ATTACH heavy 'SELECT 5tuple, COUNT GROUPBY 5tuple'
//
// Words are joined with single spaces into one request line; quote the query
// text so the shell hands it over as one argument (embedded newlines may be
// written as the two-byte escape \n — see service/line_protocol.hpp).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

/// Read one '\n'-terminated line from fd into `line` (newline stripped),
/// buffering leftovers across calls. Returns false on EOF/error.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <port> <command words...>\n", argv[0]);
    return 2;
  }
  const int port = std::atoi(argv[1]);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "bad port '%s'\n", argv[1]);
    return 2;
  }
  std::string request;
  for (int i = 2; i < argc; ++i) {
    if (i > 2) request += ' ';
    request += argv[i];
  }
  request += '\n';

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    std::fprintf(stderr, "connect 127.0.0.1:%d: %s\n", port,
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      std::fprintf(stderr, "write failed\n");
      ::close(fd);
      return 1;
    }
    off += static_cast<std::size_t>(n);
  }

  std::string buffer;
  std::string status;
  if (!read_line(fd, buffer, status)) {
    std::fprintf(stderr, "connection closed before a response\n");
    ::close(fd);
    return 1;
  }
  int rc;
  if (status.rfind("OK ", 0) == 0) {
    rc = 0;
    const long payload = std::atol(status.c_str() + 3);
    std::string line;
    for (long i = 0; i < payload; ++i) {
      if (!read_line(fd, buffer, line)) {
        std::fprintf(stderr, "truncated payload (%ld of %ld lines)\n", i,
                     payload);
        rc = 1;
        break;
      }
      std::printf("%s\n", line.c_str());
    }
  } else if (status.rfind("ERR ", 0) == 0) {
    std::fprintf(stderr, "%s\n", status.c_str());
    rc = 1;
  } else {
    std::fprintf(stderr, "malformed response '%s'\n", status.c_str());
    rc = 1;
  }
  ::close(fd);
  return rc;
}
