// Incast diagnosis — the use case the paper's introduction leads with
// ("localize queues suffering from incast", "detecting flows contributing
// to incast at a switch", which endpoint methods cannot do directly).
//
// We build a 4-leaf/2-spine fabric in the network simulator, run background
// traffic plus a synchronized 24-sender incast into one host, and ask three
// questions in the query language:
//   Q1: which queues are dropping?             (drops per qid)
//   Q2: which queues have persistently high occupancy?  (Fig. 2's perc)
//   Q3: which flows contribute to the hot queue?        (count per flow @ qid)
//
// Build & run:  ./build/examples/incast_diagnosis
#include <cstdio>
#include <memory>

#include "netsim/network.hpp"
#include "runtime/engine_builder.hpp"

int main() {
  using namespace perfq;

  // ---- fabric ---------------------------------------------------------
  net::Network network(/*seed=*/7);
  net::LinkConfig edge{10.0, 1500_ns, 64};     // 10G host links, 64-pkt queues
  net::LinkConfig fabric{40.0, 2000_ns, 128};  // 40G fabric
  const net::LeafSpine topo = net::build_leaf_spine(network, 4, 2, 8, edge, fabric);

  // ---- queries, installed before traffic ------------------------------
  const char* source = R"(
# Q1: drop counts per queue
Q1 = SELECT COUNT GROUPBY qid WHERE tout == infinity

# Q2: queues whose occupancy exceeds K for >1% of packets (Fig. 2)
def perc ((tot, high), qin):
    if qin > K: high = high + 1
    tot = tot + 1

P1 = SELECT qid, perc GROUPBY qid
Q2 = SELECT * FROM P1 WHERE perc.high / perc.tot > 0.01

# Q3: per-flow packet counts per queue (who is hitting which queue)
Q3 = SELECT COUNT GROUPBY srcip, dstip, qid
)";
  std::unique_ptr<runtime::Engine> engine =
      runtime::EngineBuilder(compiler::compile_source(source, {{"K", 32.0}}))
          .geometry(kv::CacheGeometry::set_associative(4096, 8))
          .build();
  network.set_telemetry_sink(
      [&engine](const PacketRecord& rec) { engine->process(rec); });

  // ---- traffic ---------------------------------------------------------
  // Background: every host sends a modest long-lived flow to a random peer.
  Rng rng(99);
  for (std::uint32_t l = 0; l < 4; ++l) {
    for (std::uint32_t h = 0; h < 8; ++h) {
      const std::uint32_t peer_leaf = (l + 1 + rng.below(3)) % 4;
      FiveTuple flow{net::leaf_spine_ip(l, h),
                     net::leaf_spine_ip(peer_leaf, static_cast<std::uint32_t>(
                                                       rng.below(8))),
                     static_cast<std::uint16_t>(20000 + h), 8080,
                     static_cast<std::uint8_t>(IpProto::kTcp)};
      network.add_window_flow(flow, 0_ns, 400, 1000, 4, 5_ms);
    }
  }
  // Incast: 24 senders (leaves 1-3) fire simultaneously into host (0,0).
  const std::uint32_t victim_ip = net::leaf_spine_ip(0, 0);
  for (std::uint32_t l = 1; l < 4; ++l) {
    for (std::uint32_t h = 0; h < 8; ++h) {
      FiveTuple flow{net::leaf_spine_ip(l, h), victim_ip,
                     static_cast<std::uint16_t>(30000 + l * 8 + h), 9000,
                     static_cast<std::uint8_t>(IpProto::kTcp)};
      network.add_window_flow(flow, 10_ms, 300, 1500, 16, 4_ms);
    }
  }
  network.run_until(200_ms);
  engine->finish(network.now());

  // ---- diagnosis -------------------------------------------------------
  const std::uint32_t hot_q = network.queue_id(topo.leaves[0], topo.hosts[0]);
  std::printf("ground truth: fan-in queue is qid %u (%s), %llu drops\n\n",
              hot_q, network.queue_name(hot_q).c_str(),
              static_cast<unsigned long long>(
                  network.queue_stats(hot_q).dropped));

  runtime::ResultTable q1 = engine->table("Q1");
  q1.sort_desc("COUNT");
  std::printf("%s", q1.to_text("Q1: drops per queue", 5).c_str());
  if (q1.row_count() > 0 &&
      static_cast<std::uint32_t>(q1.rows()[0][q1.column("qid")]) == hot_q) {
    std::printf("=> Q1 localizes the incast drop queue correctly\n\n");
  }

  std::printf("%s",
              engine->table("Q2").to_text("Q2: persistently deep queues").c_str());

  runtime::ResultTable q3 = engine->table("Q3");
  q3.sort_desc("COUNT");
  std::printf("\nQ3: top contributors at the hot queue:\n");
  const std::size_t qid_col = q3.column("qid");
  const std::size_t src_col = q3.column("srcip");
  const std::size_t cnt_col = q3.column("COUNT");
  int shown = 0;
  for (const auto& row : q3.rows()) {
    if (static_cast<std::uint32_t>(row[qid_col]) != hot_q) continue;
    std::printf("  %-16s -> victim: %6.0f pkts\n",
                ipv4_to_string(static_cast<std::uint32_t>(row[src_col])).c_str(),
                row[cnt_col]);
    if (++shown == 8) break;
  }
  std::printf(
      "\nThis is the paper's pitch: per-queue, per-flow attribution from "
      "inside the network, not inferred at endpoints.\n");
  return 0;
}
