// The resident query server: the operator-console REPL grown into a socket
// service. One engine ingests a continuous synthetic packet stream through
// the fused wire path (capture bytes → fold) while line-protocol clients
// connect over loopback TCP to attach new queries, pull snapshots, drain
// stream rows, and read telemetry — the paper's §3.2 deployment shape, end
// to end on one box.
//
// Usage:
//   ./build/examples/query_server [--port N] [--shards N] [--max-seconds N]
//
// Prints "listening on 127.0.0.1:<port>" once ready (port 0 = ephemeral —
// scripts parse the line). Runs until a client sends SHUTDOWN or the
// --max-seconds safeguard (default 120) expires, then finishes the window
// and prints the base query's result.
//
// Talk to it with ./build/examples/query_client, or plain nc:
//   printf 'ATTACH heavy SELECT 5tuple, COUNT GROUPBY 5tuple\n' | nc 127.0.0.1 <port>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "packet/wire.hpp"
#include "runtime/engine_builder.hpp"
#include "service/server.hpp"
#include "trace/flow_session.hpp"

namespace {

using namespace perfq;

constexpr const char* kBaseQuery = R"(
FLOWS = SELECT 5tuple, COUNT, SUM(pkt_len) GROUPBY 5tuple WHERE tout != infinity
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    std::uint16_t port = 0;
    std::size_t shards = 0;
    long max_seconds = 120;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
        port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        shards = static_cast<std::size_t>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--max-seconds") == 0 && i + 1 < argc) {
        max_seconds = std::atol(argv[++i]);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--port N] [--shards N] [--max-seconds N]\n",
                     argv[0]);
        return 2;
      }
    }

    runtime::EngineBuilder builder(compiler::compile_source(kBaseQuery));
    builder.geometry(kv::CacheGeometry::set_associative(1u << 13, 8));
    if (shards > 0) builder.sharded(shards);
    service::QueryService service(builder.build());
    service::QueryServer server(service, port);
    std::printf("listening on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout);

    // Ingest loop: a long synthetic workload serialized to wire frames and
    // burst through the fused path, throttled to leave the box responsive.
    trace::TraceConfig workload = trace::TraceConfig::caida_like().scaled(0.002);
    workload.duration = 3600_s;
    trace::FlowSessionGenerator gen(workload);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(max_seconds);
    bool exhausted = false;
    while (!server.shutdown_requested()) {
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "max-seconds safeguard expired; shutting down\n");
        break;
      }
      if (exhausted) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // Paced, not line-rate: ~30k records/s stretches the finite synthetic
      // workload over minutes so clients attach into live traffic.
      std::vector<std::vector<std::byte>> storage;
      std::vector<FrameObservation> frames;
      storage.reserve(256);
      frames.reserve(256);
      while (frames.size() < 256) {
        const auto rec = gen.next();
        if (!rec) {
          exhausted = true;
          break;
        }
        storage.push_back(wire::serialize(rec->pkt));
        FrameObservation frame;
        frame.bytes = storage.back();
        frame.qid = rec->qid;
        frame.tin = rec->tin;
        frame.tout = rec->tout;
        frame.qsize = rec->qsize;
        frames.push_back(frame);
      }
      if (!frames.empty()) service.process_wire_batch(frames);
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
    }

    server.stop();
    service.finish();
    std::printf("%s", service.table("FLOWS").to_text("FLOWS", 10).c_str());
    std::printf("served %llu records\n",
                static_cast<unsigned long long>(service.records_processed()));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
