// Architectural demo: drive the switch pipeline with RAW FRAMES, the way
// hardware would see them — serialize packets to bytes, let the programmable
// parser walk the headers (§3.1), the TCAM stage apply the WHERE predicate,
// and the stateful stage update the key-value store. Shows that the same
// query produces byte-identical state whether it runs on parsed records
// (a runtime::Engine built via runtime::EngineBuilder, as in the other
// examples) or on wire bytes (sw::SwitchPipeline) — the pipeline is the
// hardware-shaped counterpart of the engines' record-level hot path.
//
// Build & run:  ./build/examples/switch_pipeline_demo
#include <cstdio>

#include "packet/wire.hpp"
#include "switchsim/pipeline.hpp"
#include "trace/flow_session.hpp"

int main() {
  using namespace perfq;

  const char* source = R"(
SELECT COUNT, SUM(pkt_len) GROUPBY 5tuple WHERE proto == TCP and dstport < 1024
)";
  const compiler::CompiledProgram program = compiler::compile_source(source);

  sw::SwitchPipeline pipeline(program,
                              kv::CacheGeometry::set_associative(1024, 8));
  std::printf("pipeline stages:\n");
  for (const auto& stage : pipeline.report()) {
    std::printf("  query '%s': WHERE realized as %s%s\n", stage.query.c_str(),
                stage.tcam ? "TCAM" : "ALU fallback",
                stage.tcam
                    ? (" (" + std::to_string(stage.tcam_entries) + " entries)")
                          .c_str()
                    : "");
  }

  // Generate traffic, serialize each packet to wire bytes, and feed frames
  // plus traffic-manager metadata to the pipeline.
  trace::TraceConfig workload = trace::TraceConfig::caida_like().scaled(0.0005);
  workload.duration = 5_s;
  trace::FlowSessionGenerator gen(workload);
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  while (auto rec = gen.next()) {
    const std::vector<std::byte> frame = wire::serialize(rec->pkt);
    bytes += frame.size();
    sw::QueueMetadata meta{rec->qid, rec->tin, rec->tout, rec->qsize};
    pipeline.process_frame(frame, meta);
    ++frames;
  }
  pipeline.flush(workload.duration);

  const auto report = pipeline.report();
  std::printf(
      "\nparsed %llu frames (%.1f MB of wire data)\n"
      "stage '%s': matched %llu, filtered %llu\n",
      static_cast<unsigned long long>(pipeline.frames_parsed()),
      static_cast<double>(bytes) / 1e6, report[0].query.c_str(),
      static_cast<unsigned long long>(report[0].matched),
      static_cast<unsigned long long>(report[0].filtered));

  const auto& store = pipeline.store(0);
  std::printf(
      "key-value store: %llu cache ops, %llu evictions, %zu keys in the "
      "backing store\n",
      static_cast<unsigned long long>(store.cache().stats().packets),
      static_cast<unsigned long long>(store.cache().stats().evictions),
      store.backing().key_count());

  // Show a handful of (key, value) pairs straight from the backing store.
  std::printf("\nsample backing-store contents (5-tuple -> COUNT, bytes):\n");
  int shown = 0;
  store.backing().for_each([&](const kv::Key& key, const kv::StateVector& v,
                               bool /*valid*/) {
    if (shown >= 5) return;
    const auto values = compiler::unpack_key(program.switch_plans[0], key);
    std::printf("  %s:%u -> %s:%u   count=%4.0f bytes=%8.0f\n",
                ipv4_to_string(static_cast<std::uint32_t>(values[0])).c_str(),
                static_cast<unsigned>(values[2]),
                ipv4_to_string(static_cast<std::uint32_t>(values[1])).c_str(),
                static_cast<unsigned>(values[3]), v[0], v[1]);
    ++shown;
  });
  return 0;
}
