// In-simulator packet representation.
//
// This is the parsed form used throughout the simulators; src/packet/wire.hpp
// provides the byte-level encoding that the programmable parser in
// src/switchsim actually walks, mirroring how a real switch would parse.
#pragma once

#include <cstdint>

#include "packet/fivetuple.hpp"

namespace perfq {

/// TCP flag bits (subset we model).
struct TcpFlags {
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;
};

/// A packet as seen by the measurement system: standard headers plus the
/// fields the paper's schema exposes (pkt_uniq, pkt_path).
struct Packet {
  FiveTuple flow;
  std::uint32_t pkt_len = 0;      ///< total wire length in bytes
  std::uint32_t payload_len = 0;  ///< transport payload bytes
  std::uint32_t tcp_seq = 0;      ///< TCP sequence number (0 for UDP)
  std::uint8_t tcp_flags = 0;     ///< TCP flag bits (0 for UDP)
  std::uint8_t ip_ttl = 64;
  std::uint64_t pkt_uniq = 0;     ///< unique packet id (invariant header combo)
  std::uint32_t pkt_path = 0;     ///< opaque path/tunnel identifier

  [[nodiscard]] bool is_tcp() const {
    return flow.proto == static_cast<std::uint8_t>(IpProto::kTcp);
  }
  [[nodiscard]] bool is_udp() const {
    return flow.proto == static_cast<std::uint8_t>(IpProto::kUdp);
  }
};

}  // namespace perfq
