// Byte-level wire format: Ethernet II / IPv4 / {TCP, UDP}.
//
// The programmable parser in src/switchsim walks these bytes through a parse
// graph the way a real P4 parser would (§3.1 cites Gibb et al.'s design
// principles for packet parsers). Serialization is used by the trace writer
// and by tests that round-trip packets through the parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "packet/packet.hpp"

namespace perfq::wire {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;  // no options
inline constexpr std::size_t kTcpHeaderLen = 20;   // no options
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// Serialize a Packet's headers (payload is zero-filled to payload_len).
/// The pkt_uniq and pkt_path metadata ride in the (otherwise unused) IPv4
/// identification field and TCP/UDP-adjacent shim respectively — see
/// serialize() implementation notes.
[[nodiscard]] std::vector<std::byte> serialize(const Packet& pkt);

/// Result of parsing: the packet plus how many header bytes were consumed.
struct ParseResult {
  Packet pkt;
  std::size_t header_bytes = 0;
};

/// Parse wire bytes into a Packet. Throws QueryError-free ConfigError on
/// malformed input (truncated headers, unknown EtherType/protocol).
[[nodiscard]] ParseResult parse(std::span<const std::byte> bytes);

/// IPv4 header checksum (RFC 1071 ones'-complement sum) over a 20-byte
/// header with its checksum field zeroed.
[[nodiscard]] std::uint16_t ipv4_checksum(std::span<const std::byte> header);

}  // namespace perfq::wire
