// Byte-level wire format: Ethernet II / IPv4 / {TCP, UDP}.
//
// The programmable parser in src/switchsim walks these bytes through a parse
// graph the way a real P4 parser would (§3.1 cites Gibb et al.'s design
// principles for packet parsers). Serialization is used by the trace writer
// and by tests that round-trip packets through the parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/packet.hpp"

namespace perfq::wire {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;  // no options
inline constexpr std::size_t kTcpHeaderLen = 20;   // no options
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// Serialize a Packet's headers (payload is zero-filled to payload_len).
/// The pkt_uniq and pkt_path metadata ride in the (otherwise unused) IPv4
/// identification field and TCP/UDP-adjacent shim respectively — see
/// serialize() implementation notes.
[[nodiscard]] std::vector<std::byte> serialize(const Packet& pkt);

/// Result of parsing: the packet plus how many header bytes were consumed.
struct ParseResult {
  Packet pkt;
  std::size_t header_bytes = 0;
};

/// Why a frame failed to parse. Live capture feeds deliver truncated and
/// foreign frames as a matter of course, so these are data conditions, not
/// programming errors — try_parse reports them without throwing and replay
/// counts them per run (trace/ingest_stats.hpp).
enum class ParseError : std::uint8_t {
  kTruncated,             ///< fewer bytes than the headers require
  kUnsupportedEtherType,  ///< not 0x0800 (IPv4)
  kNotIpv4,               ///< EtherType said IPv4 but the version nibble isn't 4
  kUnsupportedProtocol,   ///< IP protocol other than TCP/UDP
  kBadLength,             ///< IPv4 total length smaller than its headers
  kBadChecksum,           ///< IPv4 header checksum mismatch (opt-in check)
};

[[nodiscard]] constexpr const char* to_string(ParseError err) {
  switch (err) {
    case ParseError::kTruncated: return "truncated packet";
    case ParseError::kUnsupportedEtherType: return "unsupported EtherType";
    case ParseError::kNotIpv4: return "not IPv4";
    case ParseError::kUnsupportedProtocol: return "unsupported IP protocol";
    case ParseError::kBadLength: return "bad IPv4 total length";
    case ParseError::kBadChecksum: return "bad IPv4 header checksum";
  }
  return "?";
}

/// Big-endian loads off the wire. Inline: the lazy wire-view record decodes
/// individual fields on access through these, on the per-packet hot path.
[[nodiscard]] inline std::uint16_t load_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(p[0]) << 8) |
      std::to_integer<std::uint16_t>(p[1]));
}

[[nodiscard]] inline std::uint32_t load_u32(const std::byte* p) {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

/// Validate a frame without materializing a Packet: the single source of
/// truth for what counts as parseable (try_parse is check + extraction, so
/// the two can never drift). Returns the frame's header-byte count on
/// success, 0 on failure with the reason in `error`. A frame that passes is
/// safe to hand to WireRecordView: every fixed field offset is in bounds.
/// `verify_checksum` adds the (off-by-default) IPv4 header checksum test —
/// a corrupted header is caught before its protocol/length fields are
/// trusted.
[[nodiscard]] std::size_t check_frame(std::span<const std::byte> bytes,
                                      ParseError* error = nullptr,
                                      bool verify_checksum = false);

/// Parse wire bytes into a Packet without throwing: nullopt on malformed
/// input, with the reason written to `error` when non-null. The truncation
/// contract is exact: any prefix shorter than the frame's header bytes is
/// kTruncated; any prefix covering them parses identically to the full frame
/// (payload bytes are never read — lengths come from the IPv4 header).
/// `verify_checksum` as in check_frame.
[[nodiscard]] std::optional<ParseResult> try_parse(
    std::span<const std::byte> bytes, ParseError* error = nullptr,
    bool verify_checksum = false);

/// Throwing wrapper over try_parse: ConfigError carrying to_string(error)
/// on malformed input. For callers where a bad frame is a hard error
/// (tests, hand-built frames); feeds should prefer try_parse + skip-count.
[[nodiscard]] ParseResult parse(std::span<const std::byte> bytes);

/// IPv4 header checksum (RFC 1071 ones'-complement sum) over a 20-byte
/// header with its checksum field zeroed.
[[nodiscard]] std::uint16_t ipv4_checksum(std::span<const std::byte> header);

}  // namespace perfq::wire
