// The paper's performance-oriented schema (§2):
//
//     (pkt_hdr, qid, tin, tout, qsize, pkt_path)
//
// One PacketRecord is produced for every (packet, queue) pair the packet
// traverses; a packet crossing three queues contributes three records. If the
// packet is dropped at a queue, tout is infinity (Nanos::infinity()), exactly
// as the paper specifies, so `WHERE tout == infinity` selects drops.
//
// The query language accesses record fields by name; FieldId plus
// field_value() form that reflection layer. Values are IEEE doubles: every
// field we expose fits in 53 bits of mantissa (timestamps over multi-hour
// simulations, 32-bit sequence numbers, byte counts), and "infinity" maps to
// the IEEE infinity so dropped-packet predicates work with ordinary
// comparison semantics.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/time.hpp"
#include "packet/packet.hpp"

namespace perfq {

/// One row of the abstract table T the query language is defined over.
struct PacketRecord {
  Packet pkt;
  std::uint32_t qid = 0;    ///< globally unique queue id (switch+port encoded)
  Nanos tin;                ///< enqueue timestamp at this queue
  Nanos tout;               ///< dequeue timestamp; infinity if dropped here
  std::uint32_t qsize = 0;  ///< queue depth in packets seen at enqueue

  [[nodiscard]] bool dropped() const { return tout.is_infinite(); }
  [[nodiscard]] Nanos queueing_delay() const {
    return dropped() ? Nanos::infinity() : tout - tin;
  }
};

/// Every schema field addressable from the query language.
enum class FieldId : std::uint8_t {
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProto,
  kPktLen,
  kPayloadLen,
  kTcpSeq,
  kTcpFlags,
  kIpTtl,
  kPktUniq,
  kPktPath,
  kQid,
  kTin,
  kTout,
  kQsize,
};

inline constexpr std::size_t kNumFields = 16;

/// Which schema fields a compiled query (or whole program) reads — the
/// contract between sema and the lazy wire-ingest path: a WireRecordView
/// only ever decodes fields set here, so the bitset is exactly the per-frame
/// decode work. Built in compile_program from the same slot-load analysis
/// that feeds fast_key_fields; set_all() is the safe default for anything
/// the analysis cannot see through.
struct FieldUsage {
  std::uint32_t bits = 0;

  /// Fields kSrcIp..kPktPath live in the frame bytes; kQid..kQsize ride in
  /// the telemetry sidecar and cost nothing to "decode".
  static constexpr std::uint32_t kWireMask =
      (1u << (static_cast<unsigned>(FieldId::kQid))) - 1;

  constexpr void set(FieldId id) { bits |= 1u << static_cast<unsigned>(id); }
  constexpr void set_all() { bits = (1u << kNumFields) - 1; }
  [[nodiscard]] constexpr bool test(FieldId id) const {
    return (bits & (1u << static_cast<unsigned>(id))) != 0;
  }
  [[nodiscard]] constexpr int count() const { return std::popcount(bits); }
  constexpr FieldUsage& operator|=(FieldUsage other) {
    bits |= other.bits;
    return *this;
  }
  /// Wire-resident fields read / skipped by a lazy decode of one frame.
  [[nodiscard]] constexpr int wire_fields() const {
    return std::popcount(bits & kWireMask);
  }
  [[nodiscard]] constexpr int wire_fields_skipped() const {
    return std::popcount(kWireMask) - wire_fields();
  }
};

/// Field name as written in queries ("srcip", "tin", ...).
[[nodiscard]] std::string_view field_name(FieldId id);

/// Reverse lookup; returns nullopt for unknown names.
[[nodiscard]] std::optional<FieldId> field_from_name(std::string_view name);

/// Width in bits of the field on the wire / in switch metadata; used by the
/// hardware area model to size keys.
[[nodiscard]] int field_bits(FieldId id);

/// Extract a field as the query-language value type. Inline: this sits on
/// the per-packet hot path (fold VM field preamble, ScalarExpr slot loads)
/// where an out-of-line call per field would dominate the fold itself.
[[nodiscard]] inline double field_value(const PacketRecord& rec, FieldId id) {
  switch (id) {
    case FieldId::kSrcIp: return static_cast<double>(rec.pkt.flow.src_ip);
    case FieldId::kDstIp: return static_cast<double>(rec.pkt.flow.dst_ip);
    case FieldId::kSrcPort: return static_cast<double>(rec.pkt.flow.src_port);
    case FieldId::kDstPort: return static_cast<double>(rec.pkt.flow.dst_port);
    case FieldId::kProto: return static_cast<double>(rec.pkt.flow.proto);
    case FieldId::kPktLen: return static_cast<double>(rec.pkt.pkt_len);
    case FieldId::kPayloadLen: return static_cast<double>(rec.pkt.payload_len);
    case FieldId::kTcpSeq: return static_cast<double>(rec.pkt.tcp_seq);
    case FieldId::kTcpFlags: return static_cast<double>(rec.pkt.tcp_flags);
    case FieldId::kIpTtl: return static_cast<double>(rec.pkt.ip_ttl);
    case FieldId::kPktUniq: return static_cast<double>(rec.pkt.pkt_uniq);
    case FieldId::kPktPath: return static_cast<double>(rec.pkt.pkt_path);
    case FieldId::kQid: return static_cast<double>(rec.qid);
    case FieldId::kTin: return static_cast<double>(rec.tin.count());
    case FieldId::kTout:
      return rec.tout.is_infinite() ? std::numeric_limits<double>::infinity()
                                    : static_cast<double>(rec.tout.count());
    case FieldId::kQsize: return static_cast<double>(rec.qsize);
  }
  throw InternalError{"field_value: unknown FieldId"};
}

/// The "5tuple" abbreviation used throughout the paper's examples.
[[nodiscard]] const std::vector<FieldId>& five_tuple_fields();

/// Render one record for debugging / example output.
[[nodiscard]] std::string to_string(const PacketRecord& rec);

}  // namespace perfq
