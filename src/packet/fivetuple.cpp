#include "packet/fivetuple.hpp"

#include <array>
#include <cstdio>

#include "common/error.hpp"

namespace perfq {
namespace {

void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v >> 24);
  p[1] = static_cast<std::byte>(v >> 16);
  p[2] = static_cast<std::byte>(v >> 8);
  p[3] = static_cast<std::byte>(v);
}

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v >> 8);
  p[1] = static_cast<std::byte>(v);
}

std::uint32_t get_u32(const std::byte* p) {
  return (std::to_integer<std::uint32_t>(p[0]) << 24) |
         (std::to_integer<std::uint32_t>(p[1]) << 16) |
         (std::to_integer<std::uint32_t>(p[2]) << 8) |
         std::to_integer<std::uint32_t>(p[3]);
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>((std::to_integer<std::uint16_t>(p[0]) << 8) |
                                    std::to_integer<std::uint16_t>(p[1]));
}

}  // namespace

std::array<std::byte, 13> FiveTuple::to_bytes() const {
  std::array<std::byte, 13> out{};
  put_u32(out.data(), src_ip);
  put_u32(out.data() + 4, dst_ip);
  put_u16(out.data() + 8, src_port);
  put_u16(out.data() + 10, dst_port);
  out[12] = static_cast<std::byte>(proto);
  return out;
}

FiveTuple FiveTuple::from_bytes(std::span<const std::byte, 13> bytes) {
  FiveTuple t;
  t.src_ip = get_u32(bytes.data());
  t.dst_ip = get_u32(bytes.data() + 4);
  t.src_port = get_u16(bytes.data() + 8);
  t.dst_port = get_u16(bytes.data() + 10);
  t.proto = std::to_integer<std::uint8_t>(bytes[12]);
  return t;
}

std::string FiveTuple::to_string() const {
  std::string out = ipv4_to_string(src_ip) + ":" + std::to_string(src_port) +
                    " -> " + ipv4_to_string(dst_ip) + ":" + std::to_string(dst_port);
  out += " ";
  out += to_cstring(static_cast<IpProto>(proto));
  return out;
}

std::string ipv4_to_string(std::uint32_t addr) {
  std::array<char, 16> buf{};
  std::snprintf(buf.data(), buf.size(), "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return std::string{buf.data()};
}

std::uint32_t ipv4_from_string(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  const int n = std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw ConfigError{"bad IPv4 address: " + s};
  }
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace perfq
