// Transport five-tuple: the canonical aggregation key of the paper.
//
// §4 sizes key-value pairs as 104 key bits (32+32+16+16+8) plus a 24-bit
// value = 128 bits; FiveTuple::kBits mirrors that accounting and the area
// model in src/analysis reuses it.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "common/hash.hpp"

namespace perfq {

/// IP protocol numbers we model.
enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] constexpr const char* to_cstring(IpProto p) {
  switch (p) {
    case IpProto::kTcp: return "TCP";
    case IpProto::kUdp: return "UDP";
  }
  return "?";
}

/// (srcip, dstip, srcport, dstport, proto) — 104 bits of key material.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = static_cast<std::uint8_t>(IpProto::kTcp);

  static constexpr int kBits = 104;

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  /// Canonical 13-byte big-endian encoding (for hashing and cache keys).
  [[nodiscard]] std::array<std::byte, 13> to_bytes() const;

  /// Parse the canonical encoding; inverse of to_bytes().
  [[nodiscard]] static FiveTuple from_bytes(std::span<const std::byte, 13> bytes);

  /// Stable 64-bit hash (seedable so different structures stay independent).
  [[nodiscard]] std::uint64_t hash(std::uint64_t seed = 0) const {
    const auto b = to_bytes();
    return hash_bytes(std::span<const std::byte>{b.data(), b.size()}, seed);
  }

  /// The reverse direction (dst->src); useful for building ACK streams.
  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, proto};
  }

  /// "10.0.0.1:80 -> 10.0.0.2:443 TCP"
  [[nodiscard]] std::string to_string() const;
};

/// Render an IPv4 address in dotted-quad form.
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);

/// Parse "a.b.c.d" into a host-order address. Throws ConfigError on bad input.
[[nodiscard]] std::uint32_t ipv4_from_string(const std::string& s);

}  // namespace perfq

template <>
struct std::hash<perfq::FiveTuple> {
  std::size_t operator()(const perfq::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.hash());
  }
};
