#include "packet/wire.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace perfq::wire {
namespace {

void put_u16(std::byte* p, std::uint16_t v) {
  p[0] = static_cast<std::byte>(v >> 8);
  p[1] = static_cast<std::byte>(v);
}

void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v >> 24);
  p[1] = static_cast<std::byte>(v >> 16);
  p[2] = static_cast<std::byte>(v >> 8);
  p[3] = static_cast<std::byte>(v);
}

}  // namespace

std::uint16_t ipv4_checksum(std::span<const std::byte> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    sum += load_u16(header.data() + i);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::byte> serialize(const Packet& pkt) {
  const bool tcp = pkt.is_tcp();
  const std::size_t l4_len = tcp ? kTcpHeaderLen : kUdpHeaderLen;
  const std::size_t total = kEthHeaderLen + kIpv4HeaderLen + l4_len + pkt.payload_len;
  std::vector<std::byte> out(total);
  std::byte* p = out.data();

  // Ethernet II: we synthesize MACs from the IPs so the bytes are stable and
  // tests can assert on them; a real deployment would carry real MACs.
  put_u16(p + 0, static_cast<std::uint16_t>(pkt.flow.dst_ip >> 16));
  put_u32(p + 2, pkt.flow.dst_ip);
  put_u16(p + 6, static_cast<std::uint16_t>(pkt.flow.src_ip >> 16));
  put_u32(p + 8, pkt.flow.src_ip);
  put_u16(p + 12, kEtherTypeIpv4);
  p += kEthHeaderLen;

  // IPv4 (20 bytes, no options). pkt_uniq's low 16 bits ride in the IP
  // identification field — the paper leaves pkt_uniq's interpretation to the
  // operator ("a combination of invariant packet headers"); ip.id is the
  // classic choice.
  const auto ip_total =
      static_cast<std::uint16_t>(kIpv4HeaderLen + l4_len + pkt.payload_len);
  p[0] = static_cast<std::byte>(0x45);  // version 4, IHL 5
  p[1] = static_cast<std::byte>(0);     // DSCP/ECN
  put_u16(p + 2, ip_total);
  put_u16(p + 4, static_cast<std::uint16_t>(pkt.pkt_uniq & 0xFFFF));  // ident
  put_u16(p + 6, 0);  // flags/fragment
  p[8] = static_cast<std::byte>(pkt.ip_ttl);
  p[9] = static_cast<std::byte>(pkt.flow.proto);
  put_u16(p + 10, 0);  // checksum placeholder
  put_u32(p + 12, pkt.flow.src_ip);
  put_u32(p + 16, pkt.flow.dst_ip);
  put_u16(p + 10, ipv4_checksum(std::span<const std::byte>{p, kIpv4HeaderLen}));
  p += kIpv4HeaderLen;

  if (tcp) {
    put_u16(p + 0, pkt.flow.src_port);
    put_u16(p + 2, pkt.flow.dst_port);
    put_u32(p + 4, pkt.tcp_seq);
    put_u32(p + 8, 0);  // ack number (not modelled on the wire)
    p[12] = static_cast<std::byte>(0x50);  // data offset 5
    p[13] = static_cast<std::byte>(pkt.tcp_flags);
    put_u16(p + 14, 0xFFFF);  // window
    put_u16(p + 16, 0);       // checksum (not computed; link is lossless here)
    put_u16(p + 18, 0);       // urgent
  } else {
    put_u16(p + 0, pkt.flow.src_port);
    put_u16(p + 2, pkt.flow.dst_port);
    put_u16(p + 4, static_cast<std::uint16_t>(kUdpHeaderLen + pkt.payload_len));
    put_u16(p + 6, 0);  // checksum optional in IPv4
  }
  return out;
}

std::size_t check_frame(std::span<const std::byte> bytes, ParseError* error,
                        bool verify_checksum) {
  const auto fail = [&](ParseError err) -> std::size_t {
    if (error != nullptr) *error = err;
    return 0;
  };
  if (bytes.size() < kEthHeaderLen + kIpv4HeaderLen) {
    return fail(ParseError::kTruncated);
  }
  const std::byte* p = bytes.data();
  if (load_u16(p + 12) != kEtherTypeIpv4) {
    return fail(ParseError::kUnsupportedEtherType);
  }
  p += kEthHeaderLen;

  if ((std::to_integer<std::uint8_t>(p[0]) & 0xF0) != 0x40) {
    return fail(ParseError::kNotIpv4);
  }
  // The checksum test comes before the protocol/length fields are trusted:
  // a corrupted header must not be classified by its (corrupt) contents.
  // RFC 1071: a header whose stored checksum is correct sums (checksum
  // included) to 0xFFFF, so the ones'-complement of the sum is zero.
  if (verify_checksum &&
      ipv4_checksum(std::span<const std::byte>{p, kIpv4HeaderLen}) != 0) {
    return fail(ParseError::kBadChecksum);
  }
  const std::uint16_t ip_total = load_u16(p + 2);
  const std::uint8_t proto = std::to_integer<std::uint8_t>(p[9]);

  std::size_t l4_len = 0;
  if (proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    if (bytes.size() < kEthHeaderLen + kIpv4HeaderLen + kTcpHeaderLen) {
      return fail(ParseError::kTruncated);
    }
    l4_len = kTcpHeaderLen;
  } else if (proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
    if (bytes.size() < kEthHeaderLen + kIpv4HeaderLen + kUdpHeaderLen) {
      return fail(ParseError::kTruncated);
    }
    l4_len = kUdpHeaderLen;
  } else {
    return fail(ParseError::kUnsupportedProtocol);
  }

  if (ip_total < kIpv4HeaderLen + l4_len) {
    return fail(ParseError::kBadLength);
  }
  return kEthHeaderLen + kIpv4HeaderLen + l4_len;
}

std::optional<ParseResult> try_parse(std::span<const std::byte> bytes,
                                     ParseError* error, bool verify_checksum) {
  const std::size_t header_bytes = check_frame(bytes, error, verify_checksum);
  if (header_bytes == 0) return std::nullopt;

  // Validation passed: every offset below is in bounds and self-consistent.
  const std::byte* p = bytes.data() + kEthHeaderLen;
  Packet pkt;
  const std::uint16_t ip_total = load_u16(p + 2);
  pkt.pkt_uniq = load_u16(p + 4);
  pkt.ip_ttl = std::to_integer<std::uint8_t>(p[8]);
  pkt.flow.proto = std::to_integer<std::uint8_t>(p[9]);
  pkt.flow.src_ip = load_u32(p + 12);
  pkt.flow.dst_ip = load_u32(p + 16);
  p += kIpv4HeaderLen;

  pkt.flow.src_port = load_u16(p + 0);
  pkt.flow.dst_port = load_u16(p + 2);
  const std::size_t l4_len = header_bytes - kEthHeaderLen - kIpv4HeaderLen;
  if (l4_len == kTcpHeaderLen) {
    pkt.tcp_seq = load_u32(p + 4);
    pkt.tcp_flags = std::to_integer<std::uint8_t>(p[13]);
  }
  pkt.payload_len = static_cast<std::uint32_t>(ip_total - kIpv4HeaderLen - l4_len);
  pkt.pkt_len = static_cast<std::uint32_t>(kEthHeaderLen + ip_total);
  return ParseResult{pkt, header_bytes};
}

ParseResult parse(std::span<const std::byte> bytes) {
  ParseError err{};
  if (std::optional<ParseResult> result = try_parse(bytes, &err)) {
    return *std::move(result);
  }
  throw ConfigError{std::string{"wire::parse: "} + to_string(err)};
}

}  // namespace perfq::wire
