#include "packet/record.hpp"

#include <array>
#include <limits>

#include "common/error.hpp"

namespace perfq {
namespace {

struct FieldMeta {
  FieldId id;
  std::string_view name;
  int bits;
};

constexpr std::array<FieldMeta, kNumFields> kFieldTable{{
    {FieldId::kSrcIp, "srcip", 32},
    {FieldId::kDstIp, "dstip", 32},
    {FieldId::kSrcPort, "srcport", 16},
    {FieldId::kDstPort, "dstport", 16},
    {FieldId::kProto, "proto", 8},
    {FieldId::kPktLen, "pkt_len", 16},
    {FieldId::kPayloadLen, "payload_len", 16},
    {FieldId::kTcpSeq, "tcpseq", 32},
    {FieldId::kTcpFlags, "tcp_flags", 8},
    {FieldId::kIpTtl, "ip_ttl", 8},
    {FieldId::kPktUniq, "pkt_uniq", 64},
    {FieldId::kPktPath, "pkt_path", 32},
    {FieldId::kQid, "qid", 32},
    {FieldId::kTin, "tin", 48},
    {FieldId::kTout, "tout", 48},
    {FieldId::kQsize, "qsize", 24},
}};

}  // namespace

std::string_view field_name(FieldId id) {
  for (const auto& m : kFieldTable) {
    if (m.id == id) return m.name;
  }
  throw InternalError{"field_name: unknown FieldId"};
}

std::optional<FieldId> field_from_name(std::string_view name) {
  // "qin" is the Fig. 2 alias for the queue size sampled at enqueue.
  if (name == "qin") return FieldId::kQsize;
  for (const auto& m : kFieldTable) {
    if (m.name == name) return m.id;
  }
  return std::nullopt;
}

int field_bits(FieldId id) {
  for (const auto& m : kFieldTable) {
    if (m.id == id) return m.bits;
  }
  throw InternalError{"field_bits: unknown FieldId"};
}

const std::vector<FieldId>& five_tuple_fields() {
  static const std::vector<FieldId> kFields{
      FieldId::kSrcIp, FieldId::kDstIp, FieldId::kSrcPort, FieldId::kDstPort,
      FieldId::kProto};
  return kFields;
}

std::string to_string(const PacketRecord& rec) {
  std::string out = rec.pkt.flow.to_string();
  out += " len=" + std::to_string(rec.pkt.pkt_len);
  out += " qid=" + std::to_string(rec.qid);
  out += " tin=" + to_string(rec.tin);
  out += rec.dropped() ? " DROPPED" : (" tout=" + to_string(rec.tout));
  out += " qsize=" + std::to_string(rec.qsize);
  return out;
}

}  // namespace perfq
