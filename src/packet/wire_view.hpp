// Lazy wire-view records: fold straight off capture bytes.
//
// The reference ingest path materializes a PacketRecord per frame —
// wire::try_parse decodes every header field whether or not any compiled
// query reads it. At wire rate that decode dominates (ROADMAP "Ingest").
// WireRecordView is the lazy alternative in the NDN-DPDK burst-RX mold: a
// raw frame span plus the per-frame telemetry sidecar, with field_value()
// decoding exactly the requested field at its fixed offset on access. Sema's
// FieldUsage analysis (compiler/program.hpp) tells each engine which fields
// a program touches, so a COUNT-over-5tuple run reads 13 bytes of each
// frame and skips the rest.
//
// Contract: `bytes` MUST have passed wire::check_frame — every accessor
// reads fixed offsets validation proved in bounds (UDP frames may end at
// byte 42; the TCP-only accessors branch on the protocol byte before
// touching TCP offsets). The sidecar members carry the PacketRecord names
// (qid/tin/tout/qsize/dropped()) on purpose: fold kernels and engine code
// templated over the record type compile against either representation
// unchanged, and the materialized reference path stays the semantic anchor
// (field_value(view, f) == field_value(view.materialize(), f) for every
// field — asserted by packet_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>

#include "common/time.hpp"
#include "packet/record.hpp"
#include "packet/wire.hpp"

namespace perfq {

/// One captured frame: the wire bytes (possibly truncated by the capture's
/// snap length) plus the telemetry the INT/queue layer observed for it —
/// the fields a raw frame does not encode.
struct FrameObservation {
  std::span<const std::byte> bytes;
  std::uint32_t qid = 0;
  Nanos tin{0};
  Nanos tout{0};
  std::uint32_t qsize = 0;
};

/// A validated frame viewed as a record: decode-on-access, no copy.
struct WireRecordView {
  std::span<const std::byte> bytes;  ///< passed wire::check_frame
  std::uint32_t qid = 0;
  Nanos tin{0};
  Nanos tout{0};
  std::uint32_t qsize = 0;

  [[nodiscard]] bool dropped() const { return tout.is_infinite(); }
  [[nodiscard]] Nanos queueing_delay() const {
    return dropped() ? Nanos::infinity() : tout - tin;
  }
  [[nodiscard]] bool is_tcp() const {
    return std::to_integer<std::uint8_t>(bytes[23]) ==
           static_cast<std::uint8_t>(IpProto::kTcp);
  }

  /// The eager reference representation of this frame (precondition: the
  /// bytes passed check_frame, so parse cannot fail).
  [[nodiscard]] PacketRecord materialize() const {
    PacketRecord rec;
    rec.pkt = wire::parse(bytes).pkt;
    rec.qid = qid;
    rec.tin = tin;
    rec.tout = tout;
    rec.qsize = qsize;
    return rec;
  }
};

/// Wrap a frame that already passed wire::check_frame.
[[nodiscard]] inline WireRecordView wire_record_view(
    const FrameObservation& frame) {
  return WireRecordView{frame.bytes, frame.qid, frame.tin, frame.tout,
                        frame.qsize};
}

/// Raw on-wire location of a field, when its canonical key encoding (big-
/// endian, schema width — see kv::Key::pack) is byte-identical to the bytes
/// the frame already carries. For such fields a key packer can memcpy
/// straight from the frame instead of round-tripping through field_value's
/// double. width == 0 means no such location: the field is computed
/// (pkt_len adds the Ethernet header), protocol-dependent (tcp_seq /
/// tcp_flags read as 0.0 on UDP), or sidecar-sourced (qid, tin, tout,
/// qsize, pkt_path).
struct WireFieldSlice {
  std::uint8_t offset = 0;
  std::uint8_t width = 0;
};

[[nodiscard]] constexpr WireFieldSlice wire_field_slice(FieldId id) {
  switch (id) {
    case FieldId::kSrcIp: return {26, 4};
    case FieldId::kDstIp: return {30, 4};
    case FieldId::kSrcPort: return {34, 2};
    case FieldId::kDstPort: return {36, 2};
    case FieldId::kProto: return {23, 1};
    case FieldId::kIpTtl: return {22, 1};
    case FieldId::kPktUniq: return {18, 2};
    default: return {0, 0};
  }
}

/// Lazy field extraction at the serialized offsets (see wire.cpp): Ethernet
/// II is bytes [0,14), the option-free IPv4 header [14,34), L4 at 34.
/// Matches field_value(PacketRecord) bit for bit — pkt_path is not encoded
/// on the wire and reads as 0, exactly what try_parse materializes.
[[nodiscard]] inline double field_value(const WireRecordView& rec,
                                        FieldId id) {
  const std::byte* b = rec.bytes.data();
  switch (id) {
    case FieldId::kSrcIp: return static_cast<double>(wire::load_u32(b + 26));
    case FieldId::kDstIp: return static_cast<double>(wire::load_u32(b + 30));
    case FieldId::kSrcPort:
      return static_cast<double>(wire::load_u16(b + 34));
    case FieldId::kDstPort:
      return static_cast<double>(wire::load_u16(b + 36));
    case FieldId::kProto:
      return static_cast<double>(std::to_integer<std::uint8_t>(b[23]));
    case FieldId::kPktLen:
      return static_cast<double>(wire::kEthHeaderLen + wire::load_u16(b + 16));
    case FieldId::kPayloadLen:
      return static_cast<double>(
          wire::load_u16(b + 16) - wire::kIpv4HeaderLen -
          (rec.is_tcp() ? wire::kTcpHeaderLen : wire::kUdpHeaderLen));
    case FieldId::kTcpSeq:
      return rec.is_tcp() ? static_cast<double>(wire::load_u32(b + 38)) : 0.0;
    case FieldId::kTcpFlags:
      return rec.is_tcp()
                 ? static_cast<double>(std::to_integer<std::uint8_t>(b[47]))
                 : 0.0;
    case FieldId::kIpTtl:
      return static_cast<double>(std::to_integer<std::uint8_t>(b[22]));
    case FieldId::kPktUniq:
      return static_cast<double>(wire::load_u16(b + 18));
    case FieldId::kPktPath: return 0.0;  // not encoded on the wire
    case FieldId::kQid: return static_cast<double>(rec.qid);
    case FieldId::kTin: return static_cast<double>(rec.tin.count());
    case FieldId::kTout:
      return rec.tout.is_infinite() ? std::numeric_limits<double>::infinity()
                                    : static_cast<double>(rec.tout.count());
    case FieldId::kQsize: return static_cast<double>(rec.qsize);
  }
  throw InternalError{"field_value: unknown FieldId"};
}

/// Uniform "give me the eager record" for code templated over the record
/// type: a no-op pass-through for the reference path, a decode for the
/// wire view (the linear-algebra aux paths in kv::Cache keep per-record
/// history and need owning storage).
[[nodiscard]] inline const PacketRecord& materialized(
    const PacketRecord& rec) {
  return rec;
}
[[nodiscard]] inline PacketRecord materialized(const WireRecordView& rec) {
  return rec.materialize();
}

}  // namespace perfq
