// The off-chip backing store of the split key-value store (§3.2, Fig. 3).
//
// On every cache eviction the evicted (key, value) arrives here. For folds
// that are linear in state the store *merges* the new value into the existing
// one exactly:
//
//     merged = S_new + P · (replay(S_backing, boundary) − S_h)
//
// where replay() re-applies the epoch's first h boundary records to the
// backing value (h = the kernel's bounded history window; h = 0 folds replay
// nothing and S_h = S_0, giving the paper's EWMA formula
// S_new + (1−α)^N (S_backing − S_0) verbatim).
//
// For folds that are NOT linear in state no merge function exists (§3.2);
// the store keeps a list of per-epoch value segments for each key and marks
// keys with more than one segment invalid — each segment is still correct
// over its own interval, which is exactly the semantics Fig. 6 evaluates.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kvstore/cache.hpp"
#include "kvstore/fold.hpp"
#include "kvstore/key.hpp"

namespace perfq::kv {

/// One per-epoch value of a non-linear fold: correct over [start, end).
struct ValueSegment {
  Nanos start;
  Nanos end;
  StateVector value;
  std::uint64_t packets = 0;
};

/// Validity accounting for non-linear queries (drives Fig. 6).
struct AccuracyStats {
  std::uint64_t total_keys = 0;
  std::uint64_t valid_keys = 0;  ///< exactly one value segment

  [[nodiscard]] double accuracy() const {
    return total_keys == 0
               ? 1.0
               : static_cast<double>(valid_keys) / static_cast<double>(total_keys);
  }
};

/// One key's merged state lifted out of a store — the cross-store federation
/// unit (src/kvstore/federated.hpp). `valid` mirrors for_each(): at most one
/// value segment covers the query window.
struct ExportedEntry {
  Key key;
  StateVector value;
  std::vector<ValueSegment> segments;  ///< non-linear folds only
  std::uint64_t packets = 0;
  bool valid = true;
};

class BackingStore {
 public:
  explicit BackingStore(std::shared_ptr<const FoldKernel> kernel);

  /// Absorb one eviction; merges (linear) or appends a segment (non-linear).
  void absorb(const EvictedValue& ev);

  /// Merged value for a key, or nullptr if never evicted. For non-linear
  /// folds this is the latest segment's value (callers should consult
  /// segments()/valid() for windowed semantics).
  [[nodiscard]] const StateVector* lookup(const Key& key) const;

  /// Non-linear folds: the per-epoch segments of a key (empty if unknown).
  [[nodiscard]] const std::vector<ValueSegment>* segments(const Key& key) const;

  /// A key is valid when a single value covers the whole query window.
  [[nodiscard]] bool valid(const Key& key) const;

  /// O(1): served from counters absorb() maintains, not an entry scan, so a
  /// telemetry reader can poll it mid-run without touching the map.
  [[nodiscard]] AccuracyStats accuracy() const {
    return AccuracyStats{key_count_, valid_keys_};
  }

  [[nodiscard]] std::size_t key_count() const { return key_count_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t capacity_writes() const { return capacity_writes_; }

  /// Visit (key, merged value, valid) for result collection.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [key, e] : entries_) {
      fn(key, e.value, e.segments.size() <= 1);
    }
  }

  /// Lift every entry out of the store for federation. Entry order is
  /// unspecified (hash-map iteration); consumers sort or re-hash.
  [[nodiscard]] std::vector<ExportedEntry> export_entries() const {
    std::vector<ExportedEntry> out;
    out.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
      out.push_back(
          ExportedEntry{key, e.value, e.segments, e.packets, e.segments.size() <= 1});
    }
    return out;
  }

  [[nodiscard]] const FoldKernel& kernel() const { return *kernel_; }

 private:
  struct Entry {
    StateVector value;
    std::vector<ValueSegment> segments;  ///< non-linear folds only
    std::uint64_t packets = 0;
  };

  /// Re-apply `records` to `state` with the ground-truth update.
  [[nodiscard]] StateVector replay(StateVector state,
                                   const std::vector<PacketRecord>& records) const;

  std::shared_ptr<const FoldKernel> kernel_;
  bool linear_;
  bool associative_ = false;
  std::unordered_map<Key, Entry> entries_;
  /// Telemetry slots (single writer: whoever calls absorb() — the engines
  /// serialize absorbs per store). key_count_/valid_keys_ mirror the map so
  /// accuracy()/key_count() never scan or touch entries_, which makes them
  /// safe to read from a metrics thread while absorbs continue.
  obs::RelaxedU64 writes_;
  obs::RelaxedU64 capacity_writes_;
  obs::RelaxedU64 key_count_;
  obs::RelaxedU64 valid_keys_;
};

}  // namespace perfq::kv
