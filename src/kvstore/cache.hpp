// The on-chip SRAM cache of the split key-value store (§3.2, Figs. 3-4).
//
// Layout: a hash table of n buckets, each bucket an m-slot LRU (Fig. 4).
// Per packet the cache performs exactly one of the paper's line-rate
// operations: *update* (key present), *initialize* (key absent, free slot or
// eviction makes room). When a bucket is full the least-recently-used slot
// in that bucket is evicted and handed to the eviction sink — in hardware,
// the path to the off-chip backing store.
//
// For linear-in-state folds the cache also maintains the auxiliary state the
// exact merge needs (per-entry packet count N; the running transform product
// P when A varies per packet; the first-h boundary records and the state
// snapshot after them when the fold reads bounded packet history).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "kvstore/fold.hpp"
#include "kvstore/geometry.hpp"
#include "kvstore/key.hpp"

namespace perfq::kv {

/// Everything the backing store needs to absorb one evicted entry.
struct EvictedValue {
  Key key;
  StateVector state;     ///< S_new: accumulator at eviction time
  SmallMatrix product;   ///< P over packets h+1..N (kLinear kernels only)
  std::uint64_t packets = 0;  ///< N: records folded this epoch
  StateVector state_after_h;  ///< S_h: state after the first h records
  std::vector<PacketRecord> boundary;  ///< first min(h, N) records of the epoch
  Nanos first_tin;       ///< tin of the epoch's first record
  Nanos evict_time;      ///< when the entry left the cache
  bool final_flush = false;  ///< true if emitted by flush(), not capacity eviction
};

/// Counters reported by the evaluation harnesses (Fig. 5 derives its
/// eviction-rate series from these).
struct CacheStats {
  std::uint64_t packets = 0;      ///< records processed
  std::uint64_t hits = 0;         ///< update operations
  std::uint64_t initializations = 0;  ///< new-key installs (misses)
  std::uint64_t evictions = 0;    ///< capacity evictions (backing-store writes)
  std::uint64_t flushes = 0;      ///< entries written back by flush()

  [[nodiscard]] double eviction_fraction() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(evictions) / static_cast<double>(packets);
  }
};

class Cache {
 public:
  using EvictionSink = std::function<void(EvictedValue&&)>;

  /// `hash_seed` decorrelates the bucket-index hash from other structures.
  Cache(CacheGeometry geometry, std::shared_ptr<const FoldKernel> kernel,
        std::uint64_t hash_seed = 0x5eedcafe,
        EvictionPolicy policy = EvictionPolicy::kLru);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Install the eviction sink (may be empty: evictions are then dropped,
  /// which is only appropriate for pure eviction-rate studies).
  void set_eviction_sink(EvictionSink sink) { sink_ = std::move(sink); }

  /// Fold one record into the entry for `key` (the single per-packet cache
  /// operation of §3.2).
  void process(const Key& key, const PacketRecord& rec);

  /// Write back and clear every resident entry (end-of-window, or the
  /// paper's "keys can be periodically evicted to keep the store fresh").
  void flush(Nanos now);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t occupancy() const { return index_.size(); }

  /// Read a resident entry's accumulator (tests/debugging; the paper notes
  /// the authoritative value lives in the backing store).
  [[nodiscard]] std::optional<StateVector> peek(const Key& key) const;

 private:
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};

  /// Aux state for linear kernels; allocated only when needed so the common
  /// const-A/h=0 case (e.g. Fig. 5's COUNT) stays allocation-free per slot.
  struct LinearAux {
    SmallMatrix product;
    StateVector state_after_h;
    std::vector<PacketRecord> boundary;  ///< first h records
    std::vector<PacketRecord> history;   ///< last h records (window source)
  };

  struct Slot {
    Key key;
    StateVector state;
    std::uint64_t packets = 0;
    Nanos first_tin;
    std::uint32_t prev = kInvalid;  ///< intrusive LRU list within the bucket
    std::uint32_t next = kInvalid;
    bool occupied = false;
    std::unique_ptr<LinearAux> aux;
  };

  struct Bucket {
    std::uint32_t mru = kInvalid;  ///< list head (most recently used)
    std::uint32_t lru = kInvalid;  ///< list tail (eviction victim)
    std::uint32_t used = 0;
  };

  [[nodiscard]] std::uint64_t bucket_of(const Key& key) const {
    return reduce_range(key.hash(hash_seed_), geometry_.num_buckets);
  }
  [[nodiscard]] bool needs_aux() const {
    return kernel_->linearity() == Linearity::kLinear ||
           kernel_->history_window() > 0;
  }

  void fold_record(Slot& slot, const PacketRecord& rec);
  void unlink(Bucket& bucket, std::uint32_t slot_idx);
  void push_mru(Bucket& bucket, std::uint32_t slot_idx);
  void evict_slot(std::uint32_t slot_idx, Nanos now, bool final_flush);
  [[nodiscard]] EvictedValue make_evicted(Slot& slot, Nanos now, bool final_flush);

  CacheGeometry geometry_;
  std::shared_ptr<const FoldKernel> kernel_;
  std::uint64_t hash_seed_;
  EvictionPolicy policy_;
  std::uint64_t victim_rng_state_;  ///< xorshift state for kRandom
  std::vector<Slot> slots_;     ///< bucket b owns [b*m, (b+1)*m)
  std::vector<Bucket> buckets_;
  std::unordered_map<Key, std::uint32_t> index_;  ///< key -> slot
  EvictionSink sink_;
  CacheStats stats_;
};

}  // namespace perfq::kv
