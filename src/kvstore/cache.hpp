// The on-chip SRAM cache of the split key-value store (§3.2, Figs. 3-4).
//
// Layout: a hash table of n buckets, each bucket an m-slot LRU (Fig. 4).
// Per packet the cache performs exactly one of the paper's line-rate
// operations: *update* (key present), *initialize* (key absent, free slot or
// eviction makes room). When a bucket is full the least-recently-used slot
// in that bucket is evicted and handed to the eviction sink — in hardware,
// the path to the off-chip backing store.
//
// For linear-in-state folds the cache also maintains the auxiliary state the
// exact merge needs (per-entry packet count N; the running transform product
// P when A varies per packet; the first-h boundary records and the state
// snapshot after them when the fold reads bounded packet history).
//
// Hot-path design (mirrors the paper's §3.3 per-packet budget of one hash +
// one bucket touch + one small update):
//   - No side index. Keys resolve by probing the owning bucket directly:
//     the key's cached 64-bit hash (kv::Key computes it once at construction)
//     yields the bucket index AND an 8-bit probe tag; the per-bucket tag
//     array is scanned first and only tag matches pay for the full-key
//     compare. An absent key costs one tag-row scan, exactly the geometry
//     lookup hardware would do — no std::unordered_map walk.
//   - Per-slot auxiliary state lives in a pooled arena indexed by slot
//     (allocated once at construction, vectors reuse their capacity across
//     epochs), so for n > 1 geometries steady-state process() performs ZERO
//     heap allocations for const-A/h=0 kernels and only amortized ones
//     otherwise. (The fully-associative n = 1 geometry — an idealized model,
//     not a hardware target — keeps an exact side index whose nodes are
//     heap-allocated per initialize/evict.)
//
// Threading: a Cache is single-threaded (the sharded runtime gives each
// worker its own). The shared FoldKernel must be stateless per update; the
// fold VM keeps its register file on the call stack for exactly this reason.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hugepage.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "kvstore/fold.hpp"
#include "kvstore/geometry.hpp"
#include "kvstore/key.hpp"

namespace perfq::kv {

/// The bucket-placement hash every cache derives bucket indices from: the
/// key's cached hash mixed with the structure's seed. Exposed so the sharded
/// runtime's dispatcher can route keys with the *same* function the caches
/// use (shard = high bits, in-shard bucket = the remaining bits), keeping
/// shard bucket slices exactly aligned with the single-cache layout.
[[nodiscard]] inline std::uint64_t placement_hash(const Key& key,
                                                  std::uint64_t seed) {
  return key.hash(seed);  // the cache's bucket_hash() computes this same value
}

/// Everything the backing store needs to absorb one evicted entry.
struct EvictedValue {
  Key key;
  StateVector state;     ///< S_new: accumulator at eviction time
  SmallMatrix product;   ///< P over packets h+1..N (kLinear kernels only)
  std::uint64_t packets = 0;  ///< N: records folded this epoch
  StateVector state_after_h;  ///< S_h: state after the first h records
  std::vector<PacketRecord> boundary;  ///< first min(h, N) records of the epoch
  Nanos first_tin;       ///< tin of the epoch's first record
  Nanos evict_time;      ///< when the entry left the cache
  bool final_flush = false;  ///< true if emitted by flush(), not capacity eviction
};

/// Counters reported by the evaluation harnesses (Fig. 5 derives its
/// eviction-rate series from these) and by the live Engine::metrics()
/// surface. Slots are single-writer relaxed counters (obs::RelaxedU64):
/// the owning cache's thread increments them at plain-uint64 cost, and any
/// thread may read a torn-free value mid-run — per-packet misses and hits
/// are visible while folding continues, the paper's monitoring pull turned
/// on the engine itself.
struct CacheStats {
  obs::RelaxedU64 packets;      ///< records processed
  obs::RelaxedU64 hits;         ///< update operations
  obs::RelaxedU64 initializations;  ///< new-key installs (misses)
  obs::RelaxedU64 evictions;    ///< capacity evictions (backing-store writes)
  obs::RelaxedU64 flushes;      ///< entries written back by flush()

  [[nodiscard]] double eviction_fraction() const {
    const std::uint64_t p = packets;
    return p == 0 ? 0.0
                  : static_cast<double>(evictions.load()) / static_cast<double>(p);
  }
};

class Cache {
 public:
  using EvictionSink = std::function<void(EvictedValue&&)>;

  /// `hash_seed` decorrelates the bucket-index hash from other structures.
  ///
  /// `bucket_scale` (default 1: no effect) makes this cache a *bucket slice*
  /// of a conceptually larger cache: with scale N, a key whose placement
  /// hash h satisfies floor(h·N / 2^64) == s (i.e. shard s of N) lands in
  /// local bucket reduce_range(h·N mod 2^64, num_buckets) — exactly global
  /// bucket s·num_buckets + local of an (N·num_buckets)-bucket cache. The
  /// sharded runtime uses this so each shard's cache reproduces its slice of
  /// the single-threaded cache bit-for-bit (same bucket contents, same LRU
  /// order, same evictions).
  Cache(CacheGeometry geometry, std::shared_ptr<const FoldKernel> kernel,
        std::uint64_t hash_seed = 0x5eedcafe,
        EvictionPolicy policy = EvictionPolicy::kLru,
        std::uint64_t bucket_scale = 1);

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Install the eviction sink (may be empty: evictions are then dropped,
  /// which is only appropriate for pure eviction-rate studies).
  void set_eviction_sink(EvictionSink sink) { sink_ = std::move(sink); }

  /// Fold one record into the entry for `key` (the single per-packet cache
  /// operation of §3.2). Generic over the record representation: the wire
  /// ingest path passes WireRecordView and const-A/h=0 kernels (COUNT, SUM —
  /// the common case) then fold straight off frame bytes; kernels needing
  /// aux state (running product, boundary/history logs) materialize the
  /// record once because those logs store owning records. Instantiated in
  /// cache.cpp for PacketRecord and WireRecordView.
  template <typename Rec>
  void process(const Key& key, const Rec& rec);

  /// Hint that `key` is about to be processed: software-prefetch its bucket's
  /// tag row and slot array. Used by the batched engine path to overlap the
  /// bucket's DRAM fetch with the previous records' folds.
  void prefetch(const Key& key) const;

  /// Write back and clear every resident entry (end-of-window, or the
  /// paper's "keys can be periodically evicted to keep the store fresh").
  void flush(Nanos now);

  /// Non-destructive read of every resident entry: hand `fn` an EvictedValue
  /// *copy* of each occupied slot (exactly what flush(now) would emit), while
  /// the entries stay resident and untouched — no stats, no LRU movement, no
  /// epoch reset. This is the engines' mid-run snapshot path: merging these
  /// copies over a copy of the backing store with the ordinary exact-merge
  /// machinery yields the table a flush-at-`now` would have produced.
  /// Single-threaded like every other Cache method: the sharded runtime runs
  /// it on the owning shard worker.
  void snapshot_into(Nanos now, const EvictionSink& fn) const;

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t occupancy() const { return occupancy_; }

  /// Read a resident entry's accumulator (tests/debugging; the paper notes
  /// the authoritative value lives in the backing store).
  [[nodiscard]] std::optional<StateVector> peek(const Key& key) const;

 private:
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  /// Tag of an empty slot; real tags avoid this value so a tag mismatch on
  /// an empty slot never needs the occupancy check.
  static constexpr std::uint8_t kEmptyTag = 0xFF;

  /// Aux state for linear kernels; pooled in `aux_` (one entry per slot,
  /// allocated once at construction) so epochs reuse vector capacity and the
  /// common const-A/h=0 case (e.g. Fig. 5's COUNT) allocates nothing at all.
  struct LinearAux {
    SmallMatrix product;
    StateVector state_after_h;
    std::vector<PacketRecord> boundary;  ///< first h records
    std::vector<PacketRecord> history;   ///< last h records (window source)
    std::vector<PacketRecord> scratch;   ///< reused transform window buffer
  };

  /// Residency has exactly one representation: tags_[idx] != kEmptyTag.
  struct Slot {
    Key key;
    StateVector state;
    std::uint64_t packets = 0;
    Nanos first_tin;
    std::uint32_t prev = kInvalid;  ///< intrusive LRU list within the bucket
    std::uint32_t next = kInvalid;
  };

  struct Bucket {
    std::uint32_t mru = kInvalid;  ///< list head (most recently used)
    std::uint32_t lru = kInvalid;  ///< list tail (eviction victim)
    std::uint32_t used = 0;
  };

  /// Bucket-placement hash: the key's cached hash mixed with this cache's
  /// seed (precomputed in `seed_mix_`); identical to placement_hash().
  [[nodiscard]] std::uint64_t bucket_hash(const Key& key) const {
    return hash_seed_ == 0 ? key.raw_hash() : mix64(key.raw_hash() ^ seed_mix_);
  }
  /// With the default scale of 1 this is plain reduce_range; with scale N it
  /// selects this slice's local bucket (see the constructor comment).
  [[nodiscard]] std::uint64_t bucket_of_hash(std::uint64_t h) const {
    return reduce_range(h * bucket_scale_, geometry_.num_buckets);
  }
  /// 8-bit probe tag from hash bits reduce_range() weighs least.
  [[nodiscard]] static std::uint8_t tag_of_hash(std::uint64_t h) {
    const auto tag = static_cast<std::uint8_t>(h >> 24);
    return tag == kEmptyTag ? std::uint8_t{0} : tag;
  }
  /// Probe `key`'s bucket: tag scan + full-key confirm. kInvalid on miss.
  [[nodiscard]] std::uint32_t probe(const Key& key, std::uint64_t bucket,
                                    std::uint8_t tag) const;
  [[nodiscard]] bool slot_occupied(std::uint32_t idx) const {
    return tags_[idx] != kEmptyTag;
  }
  [[nodiscard]] bool needs_aux() const {
    return kernel_->linearity() == Linearity::kLinear ||
           kernel_->history_window() > 0;
  }

  template <typename Rec>
  void fold_record(std::uint32_t slot_idx, const Rec& rec);
  /// The aux-maintenance half of fold_record (running product P, boundary
  /// and history logs). Operates on an eager record: the logs own their
  /// records and transform() takes a PacketRecord window.
  void fold_aux(std::uint32_t slot_idx, const PacketRecord& rec,
                std::uint64_t idx_in_epoch, std::size_t h);
  void unlink(Bucket& bucket, std::uint32_t slot_idx);
  void push_mru(Bucket& bucket, std::uint32_t slot_idx);
  void evict_slot(std::uint32_t slot_idx, Nanos now, bool final_flush);
  /// Everything of a slot's EvictedValue EXCEPT the boundary log — the one
  /// field whose ownership differs between the destructive eviction path
  /// (moves it out) and the non-destructive snapshot path (copies it). Both
  /// build on this so they can never drift apart field- or special-case-wise.
  [[nodiscard]] EvictedValue evicted_fields(std::uint32_t slot_idx, Nanos now,
                                            bool final_flush) const;
  [[nodiscard]] EvictedValue make_evicted(std::uint32_t slot_idx, Nanos now,
                                          bool final_flush);

  CacheGeometry geometry_;
  std::shared_ptr<const FoldKernel> kernel_;
  std::uint64_t hash_seed_;
  std::uint64_t seed_mix_;  ///< mix64(hash_seed_), precomputed
  EvictionPolicy policy_;
  std::uint64_t bucket_scale_ = 1;  ///< shard slice scale (see constructor)
  std::uint64_t victim_rng_state_;  ///< xorshift state for kRandom
  /// Slot arena and tag row are page-allocated so CacheGeometry::huge_pages
  /// can put the DTLB-heavy arrays on 2 MiB pages.
  std::vector<Slot, PageAllocator<Slot>> slots_;  ///< bucket b owns [b*m, (b+1)*m)
  std::vector<std::uint8_t, PageAllocator<std::uint8_t>> tags_;  ///< probe tags
  std::vector<LinearAux> aux_;  ///< parallel to slots_; empty unless needs_aux()
  std::vector<Bucket> buckets_;
  /// Fully-associative geometry (n = 1) only, empty otherwise: exact
  /// key → slot index for cold keys. The single bucket is too large for the
  /// tag scan to stay competitive (the ROADMAP probe-regression item); hot
  /// keys still resolve through the MRU front-probe without touching this.
  std::unordered_map<Key, std::uint32_t> n1_index_;
  std::size_t occupancy_ = 0;
  EvictionSink sink_;
  CacheStats stats_;
};

}  // namespace perfq::kv
