#include "kvstore/federated.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace perfq::kv {

MergeCapability merge_capability(const FoldKernel& kernel) {
  if (kernel.has_associative_merge()) return MergeCapability::kAssociative;
  if (kernel.linearity() == Linearity::kLinearConstA &&
      kernel.history_window() == 0 &&
      kernel.constant_a() == SmallMatrix::identity(kernel.state_dims())) {
    return MergeCapability::kAdditive;
  }
  return MergeCapability::kSingleSource;
}

FederatedStore::FederatedStore(std::shared_ptr<const FoldKernel> kernel)
    : kernel_(std::move(kernel)),
      capability_(merge_capability(*kernel_)),
      s0_(kernel_->initial_state()) {}

void FederatedStore::absorb(std::uint32_t source, const StoreExport& exported) {
  for (const ExportedEntry& e : exported.entries) {
    auto& contribs = entries_[e.key];
    // Keep contributions sorted ascending by source id; replace in place on
    // a re-export of the same source.
    auto it = std::lower_bound(
        contribs.begin(), contribs.end(), source,
        [](const Contribution& c, std::uint32_t s) { return c.source < s; });
    if (it == contribs.end() || it->source != source) {
      it = contribs.insert(it, Contribution{});
    }
    *it = Contribution{source,     e.value, e.segments,
                       e.packets, exported.time, e.valid};
  }
  if (auto [it, inserted] = sources_.try_emplace(source, exported.records);
      !inserted) {
    records_ -= it->second;
    it->second = exported.records;
  }
  records_ += exported.records;
  if (exported.time > time_) time_ = exported.time;
}

FederatedStore::Reduced FederatedStore::reduce(
    const std::vector<Contribution>& contribs) const {
  check(!contribs.empty(), "FederatedStore: empty contribution list");
  switch (capability_) {
    case MergeCapability::kAdditive: {
      StateVector v = s0_;
      bool valid = true;
      for (const Contribution& c : contribs) {
        v += c.value - s0_;
        valid = valid && c.valid;
      }
      return Reduced{v, valid};
    }
    case MergeCapability::kAssociative: {
      StateVector v = contribs.front().value;
      bool valid = contribs.front().valid;
      for (std::size_t i = 1; i < contribs.size(); ++i) {
        // Each per-source value is an exact merge of epochs started from s0,
        // so it satisfies merge_values()' epoch precondition.
        kernel_->merge_values(v, contribs[i].value);
        valid = valid && contribs[i].valid;
      }
      return Reduced{v, valid};
    }
    case MergeCapability::kSingleSource: {
      if (contribs.size() == 1) {
        return Reduced{contribs.front().value, contribs.front().valid};
      }
      // Multi-source: no exact merge exists. Mirror BackingStore's
      // non-linear convention — expose the latest (highest-source) value,
      // marked invalid; segments() carries the per-source pieces.
      return Reduced{contribs.back().value, false};
    }
  }
  throw InternalError{"FederatedStore: unknown merge capability"};
}

std::optional<StateVector> FederatedStore::read(const Key& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return reduce(it->second).value;
}

std::vector<ValueSegment> FederatedStore::segments(const Key& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return {};
  const auto& contribs = it->second;
  if (capability_ != MergeCapability::kSingleSource) return {};
  if (contribs.size() == 1) return contribs.front().segments;
  std::vector<ValueSegment> out;
  for (const Contribution& c : contribs) {
    if (!c.segments.empty()) {
      out.insert(out.end(), c.segments.begin(), c.segments.end());
    } else {
      // Linear fold: the source's whole stream is one exact piece; cover it
      // with a synthesized segment ending at the source's export stamp.
      out.push_back(ValueSegment{Nanos{0}, c.time, c.value, c.packets});
    }
  }
  return out;
}

bool FederatedStore::valid(const Key& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  return reduce(it->second).valid;
}

AccuracyStats FederatedStore::accuracy() const {
  AccuracyStats stats;
  stats.total_keys = entries_.size();
  for (const auto& [key, contribs] : entries_) {
    if (reduce(contribs).valid) ++stats.valid_keys;
  }
  return stats;
}

}  // namespace perfq::kv
