// The fold-kernel interface: what the key-value store needs to know about a
// GROUPBY aggregation function.
//
// A kernel is produced either by the query compiler (src/compiler lowers a
// user-defined fold to a CompiledFoldKernel) or hand-written (builtin_folds,
// used by unit tests and microbenchmarks). The split cache/backing-store
// machinery interrogates the kernel for:
//
//   - state dimensionality and the initial state s0;
//   - the per-packet update (any fold);
//   - the linearity classification of §3.2. A linear fold's update is
//     S' = A·S + B where A and B depend only on the current packet — or, per
//     the paper's footnote 4, on "a constant number of packets preceding and
//     including the current packet". That constant number is the kernel's
//     history_window() h (e.g. out-of-seq needs the previous packet, h = 1);
//   - for linear folds, the per-window affine transform (A, B), which the
//     cache composes into a running product P so the backing store can merge
//     exactly: merged = S_new + P · (replay(S_backing, boundary) − S_h).
//     For h = 0 this is precisely the paper's EWMA formula
//     S_new + (1−α)^N (S_backing − S_0);
//   - whether A is packet-independent ("constant-A"): then hardware only
//     tracks the per-entry packet count N and the merge computes P = A^N,
//     which is the cheapest aux-state design and covers most of Fig. 2.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "kvstore/state.hpp"
#include "packet/record.hpp"
#include "packet/wire_view.hpp"

namespace perfq::kv {

/// Linearity classification of a fold's update operation.
enum class Linearity : std::uint8_t {
  kNotLinear,     ///< no exact merge; backing store keeps value segments
  kLinear,        ///< S' = A(window)·S + B(window); cache tracks product P
  kLinearConstA,  ///< A fixed; cache tracks only the packet count N
};

[[nodiscard]] constexpr const char* to_cstring(Linearity l) {
  switch (l) {
    case Linearity::kNotLinear: return "not-linear";
    case Linearity::kLinear: return "linear";
    case Linearity::kLinearConstA: return "linear(const-A)";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_linear(Linearity l) {
  return l != Linearity::kNotLinear;
}

/// The per-packet affine transform of a linear fold.
struct AffineTransform {
  SmallMatrix a;
  StateVector b;
};

/// Abstract aggregation kernel.
class FoldKernel {
 public:
  virtual ~FoldKernel() = default;

  /// Human-readable name ("ewma", "count", user fold name...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of state variables in the accumulator.
  [[nodiscard]] virtual std::size_t state_dims() const = 0;

  /// The initial accumulator s0 a fresh key starts from.
  [[nodiscard]] virtual StateVector initial_state() const = 0;

  /// In-place update of the accumulator with one record. Must be defined for
  /// every kernel (it is the ground-truth semantics).
  virtual void update(StateVector& state, const PacketRecord& rec) const = 0;

  /// Update off a lazy wire-view record. The default materializes the frame
  /// and runs the reference update — always correct, never fast. Every
  /// shipped kernel overrides it with a lazy body that decodes only the
  /// fields it reads; the override must agree with the reference update bit
  /// for bit (update(s, materialized(v)) == wire update(s, v) — the
  /// wire-ingest property tests pin this).
  virtual void update(StateVector& state, const WireRecordView& rec) const;

  /// The schema fields the per-record update reads — the kernel's share of
  /// the program's FieldUsage contract (packet/record.hpp). The default
  /// claims everything (safe for out-of-tree kernels); shipped kernels
  /// report exactly what they touch.
  [[nodiscard]] virtual FieldUsage used_fields() const {
    FieldUsage usage;
    usage.set_all();
    return usage;
  }

  /// Linearity classification (kNotLinear unless overridden).
  [[nodiscard]] virtual Linearity linearity() const { return Linearity::kNotLinear; }

  /// Number of *preceding* packets of the same key the affine transform needs
  /// (footnote 4's "constant number of packets"). 0 for plain linear folds.
  [[nodiscard]] virtual std::size_t history_window() const { return 0; }

  /// For linear kernels: the (A, B) for the packet `window.back()`, given the
  /// preceding history_window() packets of the same key in order. Only called
  /// with window.size() == history_window() + 1, and only for packets that
  /// have a full in-epoch history. Default throws; linear kernels override.
  [[nodiscard]] virtual AffineTransform transform(
      std::span<const PacketRecord> window) const;

  /// For kLinearConstA kernels: the fixed A matrix. Default throws.
  [[nodiscard]] virtual SmallMatrix constant_a() const;

  // ---- extension beyond the paper: associative merges ----------------------
  // Some folds are not linear in state yet still merge exactly, because the
  // fold is a homomorphism into a commutative semigroup whose identity is
  // the initial state — e.g. per-flow maximum: max over an epoch started
  // from -inf combines with the backing value via elementwise max. This is
  // the direction the paper's follow-up (Marple's "mergeable aggregations")
  // formalizes; we support it as an opt-in kernel capability. A kernel with
  // a custom merge is treated as exactly mergeable by the backing store even
  // when linearity() == kNotLinear.

  /// True if merge_values() provides an exact merge.
  [[nodiscard]] virtual bool has_associative_merge() const { return false; }

  /// Exact merge: combine the evicted epoch's accumulator into `backing`.
  /// Precondition: the epoch started from initial_state(), which must be the
  /// merge's identity element. Default throws.
  virtual void merge_values(StateVector& backing, const StateVector& evicted) const;
};

/// Verifies the kernel's self-consistency on one record: applying update()
/// must equal applying A·S + B from transform(). Used by property tests and
/// by the compiler's self-check mode. `window.back()` is the record applied.
[[nodiscard]] bool transform_matches_update(const FoldKernel& kernel,
                                            const StateVector& state,
                                            std::span<const PacketRecord> window,
                                            double tolerance = 1e-9);

}  // namespace perfq::kv
