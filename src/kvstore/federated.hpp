// Cross-store exact merge: the split key-value store's federation entry
// point (§3.2's mergeability analysis lifted from one switch to a fabric).
//
// A FederatedStore combines per-source (per-switch) StoreExports into one
// network-wide result. Records of one key may interleave arbitrarily across
// sources, so which keys merge EXACTLY depends on the fold's algebra:
//
//   kAdditive      the update is S' = S + B(pkt) (const-A, A = I, h = 0).
//                  Per-stream totals compose by summation no matter how the
//                  streams interleave:  merged = s0 + Σ_i (v_i − s0).
//                  Bit-exact whenever those additions are FP-exact — integer
//                  counters and sums (COUNT, SUM over integer-valued fields,
//                  and their CombinedKernel compositions); ULP-level for
//                  fractional addends. This is the FP caveat that mirrors the
//                  attach/detach contract note in runtime/engine_api.hpp.
//
//   kAssociative   the kernel provides a commutative exact merge_values()
//                  (extremum folds). Folding per-source values is bit-exact.
//
//   kSingleSource  everything else. A linear-but-not-additive fold (EWMA) is
//                  order-sensitive: the backing store's linear merge is
//                  SEQUENTIAL COMPOSITION, not commutative, so streams that
//                  interleave across switches admit no exact cross-stream
//                  merge. Keys observed at exactly ONE source pass through
//                  exactly (their whole record stream lived on that switch);
//                  keys seen at several sources are marked invalid and keep
//                  one value segment per source — each still correct over its
//                  own source — which is the paper's §3.2 non-mergeable
//                  escape hatch applied at fabric scope instead of epoch
//                  scope.
//
// MERGE-ORDER DETERMINISM: absorb() only stores contributions; reduction
// happens at read time in ascending source id. The reduced result is
// therefore byte-for-byte identical no matter which order sources were
// absorbed in — shuffled, incremental (read between absorbs), or batched —
// and re-absorbing a source REPLACES its contribution (exports are
// monotone supersets of earlier exports from the same source, because
// backing-store keys are never removed).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kvstore/backing_store.hpp"
#include "kvstore/fold.hpp"

namespace perfq::kv {

/// How a fold's per-source values combine across interleaved record streams.
enum class MergeCapability : std::uint8_t {
  kAdditive,      ///< S' = S + B: merged = s0 + Σ (v_i − s0), order-free
  kAssociative,   ///< kernel merge_values() is commutative and exact
  kSingleSource,  ///< exact only for keys observed at exactly one source
};

[[nodiscard]] constexpr const char* to_cstring(MergeCapability c) {
  switch (c) {
    case MergeCapability::kAdditive: return "additive";
    case MergeCapability::kAssociative: return "associative";
    case MergeCapability::kSingleSource: return "single-source";
  }
  return "?";
}

/// Classify a kernel's cross-stream merge algebra. Additive means const-A
/// with A = identity and no history window — the update can only add a
/// packet-determined increment, so per-stream totals are interleaving-
/// independent. Associative wins over additive when a kernel claims both
/// (merge_values is the kernel's own exact merge).
[[nodiscard]] MergeCapability merge_capability(const FoldKernel& kernel);

/// One store's contribution to a federated merge: every entry of one
/// switch's backing store (plus cache overlay, for mid-run exports), stamped
/// with the engine's record count and export time.
struct StoreExport {
  std::string query;            ///< plan name the entries belong to
  std::uint64_t records = 0;    ///< source engine records at export time
  Nanos time;                   ///< export stamp (snapshot/finish `now`)
  std::vector<ExportedEntry> entries;
};

/// The network-wide merged store. Same read surface shape as BackingStore /
/// ShardedBackingStore (for_each / lookup / segments / valid / accuracy), so
/// runtime::materialize_switch_table() renders it directly.
class FederatedStore {
 public:
  explicit FederatedStore(std::shared_ptr<const FoldKernel> kernel);

  /// Merge one source's export. Re-absorbing a source id replaces its prior
  /// contribution (see header contract).
  void absorb(std::uint32_t source, const StoreExport& exported);

  /// Visit (key, merged value, valid) — reduction runs per key in ascending
  /// source order, so the visited values are independent of absorb order.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [key, contribs] : entries_) {
      const Reduced r = reduce(contribs);
      fn(key, r.value, r.valid);
    }
  }

  /// Merged value, or nullopt for an unknown key. For invalid multi-source
  /// keys this is the highest source's value (consult segments()).
  [[nodiscard]] std::optional<StateVector> read(const Key& key) const;

  /// Per-interval values of a key that did NOT merge exactly: the
  /// concatenation, in ascending source order, of each source's own
  /// segments (non-linear folds) or one synthesized whole-source segment
  /// (linear folds). Empty for exactly merged keys and unknown keys.
  [[nodiscard]] std::vector<ValueSegment> segments(const Key& key) const;

  [[nodiscard]] bool valid(const Key& key) const;

  /// Validity accounting over the federated result (scans entries; collector
  /// cadence, not hot path).
  [[nodiscard]] AccuracyStats accuracy() const;

  [[nodiscard]] std::size_t key_count() const { return entries_.size(); }
  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }
  /// Sum of the latest contribution's records across sources.
  [[nodiscard]] std::uint64_t records() const { return records_; }
  /// Max export stamp across sources (Nanos{0} before any absorb).
  [[nodiscard]] Nanos time() const { return time_; }
  [[nodiscard]] MergeCapability capability() const { return capability_; }
  [[nodiscard]] const FoldKernel& kernel() const { return *kernel_; }

 private:
  struct Contribution {
    std::uint32_t source = 0;
    StateVector value;
    std::vector<ValueSegment> segments;  ///< non-linear folds only
    std::uint64_t packets = 0;
    Nanos time;  ///< the source export's stamp (synthesized segment end)
    bool valid = true;
  };
  struct Reduced {
    StateVector value;
    bool valid = true;
  };

  /// Reduce one key's contributions (sorted ascending by source id).
  [[nodiscard]] Reduced reduce(const std::vector<Contribution>& contribs) const;

  std::shared_ptr<const FoldKernel> kernel_;
  MergeCapability capability_;
  StateVector s0_;
  std::unordered_map<Key, std::vector<Contribution>> entries_;
  std::map<std::uint32_t, std::uint64_t> sources_;  ///< source → records
  std::uint64_t records_ = 0;
  Nanos time_{0};
};

}  // namespace perfq::kv
