#include "kvstore/cache.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace perfq::kv {

Cache::Cache(CacheGeometry geometry, std::shared_ptr<const FoldKernel> kernel,
             std::uint64_t hash_seed, EvictionPolicy policy,
             std::uint64_t bucket_scale)
    : geometry_(geometry),
      kernel_(std::move(kernel)),
      hash_seed_(hash_seed),
      seed_mix_(mix64(hash_seed)),
      policy_(policy),
      bucket_scale_(bucket_scale),
      victim_rng_state_(mix64(hash_seed ^ 0xF00DF00DULL) | 1),
      slots_(PageAllocator<Slot>(geometry.huge_pages)),
      tags_(PageAllocator<std::uint8_t>(geometry.huge_pages)) {
  if (kernel_ == nullptr) throw ConfigError{"Cache: null kernel"};
  if (bucket_scale_ == 0) throw ConfigError{"Cache: zero bucket scale"};
  const std::uint64_t total = geometry_.total_slots();
  if (total == 0) throw ConfigError{"Cache: zero slots"};
  if (total > std::numeric_limits<std::uint32_t>::max() - 1) {
    throw ConfigError{"Cache: too many slots for 32-bit slot indices"};
  }
  slots_.resize(total);
  tags_.assign(total, kEmptyTag);
  buckets_.resize(geometry_.num_buckets);
  if (needs_aux()) {
    // Pooled aux arena: one entry per slot, allocated once here. Epochs
    // reuse the vectors' capacity; process() never allocates per slot.
    aux_.resize(total);
    for (auto& aux : aux_) {
      aux.product = SmallMatrix::identity(kernel_->state_dims());
    }
  }
}

std::uint32_t Cache::probe(const Key& key, std::uint64_t bucket,
                           std::uint8_t tag) const {
  // Fully-associative geometry (n = 1): the tag row is one huge bucket, so a
  // linear scan's expected cost is half the occupancy even on a hit. Probe a
  // few slots in MRU order first — under any skewed workload the hot keys
  // sit at the front of the recency list and resolve in a handful of pointer
  // hops — then fall back to the exact side index for cold keys and misses.
  if (geometry_.num_buckets == 1) {
    constexpr int kMruProbeDepth = 16;
    std::uint32_t idx = buckets_[0].mru;
    for (int d = 0; d < kMruProbeDepth && idx != kInvalid; ++d) {
      if (tags_[idx] == tag && slots_[idx].key == key) return idx;
      idx = slots_[idx].next;
    }
    const auto it = n1_index_.find(key);
    return it == n1_index_.end() ? kInvalid : it->second;
  }

  // Tag scan rejects empty slots (kEmptyTag) and ~255/256 of occupied
  // non-matches without touching the slot array. memchr vectorizes the scan,
  // which matters for the fully-associative geometry (one huge bucket).
  const std::uint64_t base = bucket * geometry_.associativity;
  const std::uint8_t* tag_row = tags_.data() + base;
  std::uint32_t s = 0;
  while (s < geometry_.associativity) {
    const void* found =
        std::memchr(tag_row + s, tag, geometry_.associativity - s);
    if (found == nullptr) return kInvalid;
    s = static_cast<std::uint32_t>(static_cast<const std::uint8_t*>(found) -
                                   tag_row);
    const auto idx = static_cast<std::uint32_t>(base + s);
    if (slots_[idx].key == key) return idx;
    ++s;
  }
  return kInvalid;
}

void Cache::prefetch(const Key& key) const {
  if (geometry_.num_buckets == 1) {
    // The n = 1 probe walks the MRU chain / side index, not the tag row;
    // only the bucket header (mru head) is guaranteed useful — and no
    // bucket hash is needed to find it.
    __builtin_prefetch(buckets_.data());
    return;
  }
  const std::uint64_t b = bucket_of_hash(bucket_hash(key));
  const std::uint64_t base = b * geometry_.associativity;
  __builtin_prefetch(tags_.data() + base);
  __builtin_prefetch(buckets_.data() + b);
  // The slot array of one bucket spans several cache lines and the probe's
  // landing slot is unknown until the tag row is read, so touch every line
  // of the bucket (capped: beyond a few lines the prefetches cost more than
  // the misses they hide, and huge fully-associative buckets would thrash).
  constexpr std::uint64_t kMaxLines = 8;
  const auto* first = reinterpret_cast<const char*>(slots_.data() + base);
  const auto* last =
      reinterpret_cast<const char*>(slots_.data() + base +
                                    geometry_.associativity);
  const auto span = static_cast<std::uint64_t>(last - first);
  const std::uint64_t lines = std::min(kMaxLines, (span + 63) / 64);
  for (std::uint64_t l = 0; l < lines; ++l) {
    __builtin_prefetch(first + l * 64);
  }
}

template <typename Rec>
void Cache::process(const Key& key, const Rec& rec) {
  ++stats_.packets;
  const std::uint64_t h = bucket_hash(key);
  const std::uint64_t b = bucket_of_hash(h);
  const std::uint8_t tag = tag_of_hash(h);
  Bucket& bucket = buckets_[b];

  if (const std::uint32_t idx = probe(key, b, tag); idx != kInvalid) {
    // Hit: one *update* operation.
    ++stats_.hits;
    fold_record(idx, rec);
    if (policy_ == EvictionPolicy::kLru && bucket.mru != idx) {
      // Touch-on-hit: only LRU reorders; FIFO/random keep insertion order.
      unlink(bucket, idx);
      push_mru(bucket, idx);
    }
    return;
  }

  // Miss: one *initialize* operation, possibly preceded by an eviction.
  ++stats_.initializations;
  std::uint32_t idx;
  const std::uint64_t base = b * geometry_.associativity;
  if (bucket.used < geometry_.associativity) {
    // Free slot exists: scan the bucket's tag row for an empty entry.
    // (Buckets only fill at startup; once warm this path is rare.)
    const void* found =
        std::memchr(tags_.data() + base, kEmptyTag, geometry_.associativity);
    check(found != nullptr, "Cache: bucket.used inconsistent with slots");
    idx = static_cast<std::uint32_t>(static_cast<const std::uint8_t*>(found) -
                                     tags_.data());
  } else {
    // Bucket full: pick the policy's victim and reuse its slot.
    if (policy_ == EvictionPolicy::kRandom) {
      // xorshift64*: cheap, deterministic, seeded per cache.
      victim_rng_state_ ^= victim_rng_state_ >> 12;
      victim_rng_state_ ^= victim_rng_state_ << 25;
      victim_rng_state_ ^= victim_rng_state_ >> 27;
      const std::uint64_t r = victim_rng_state_ * 0x2545F4914F6CDD1DULL;
      idx = static_cast<std::uint32_t>(base +
                                       reduce_range(r, geometry_.associativity));
    } else {
      // LRU and FIFO both evict the list tail; FIFO never reorders on hits,
      // so its tail is the oldest insertion (Fig. 4's layout either way).
      idx = bucket.lru;
    }
    check(idx != kInvalid, "Cache: full bucket with empty LRU list");
    evict_slot(idx, rec.tin, /*final_flush=*/false);
    ++stats_.evictions;
  }

  Slot& slot = slots_[idx];
  slot.key = key;
  slot.state = kernel_->initial_state();
  slot.packets = 0;
  slot.first_tin = rec.tin;
  tags_[idx] = tag;
  if (geometry_.num_buckets == 1) n1_index_.emplace(key, idx);
  ++occupancy_;
  if (!aux_.empty()) {
    LinearAux& aux = aux_[idx];
    aux.product = SmallMatrix::identity(kernel_->state_dims());
    aux.state_after_h = StateVector{};
    aux.boundary.clear();
    aux.history.clear();
  }
  fold_record(idx, rec);
  push_mru(bucket, idx);
  ++bucket.used;
}

void Cache::fold_aux(std::uint32_t slot_idx, const PacketRecord& rec,
                     std::uint64_t idx_in_epoch, std::size_t h) {
  LinearAux& aux = aux_[slot_idx];
  if (idx_in_epoch < h) {
    // Boundary packet: the merge replays these raw records, so log them.
    aux.boundary.push_back(rec);
  } else if (kernel_->linearity() == Linearity::kLinear) {
    // Interior packet of a varying-A fold: compose this packet's transform
    // into the running product P (window = last h records + current).
    if (h == 0) {
      // Common case (e.g. EWMA): window is just the current record —
      // no window buffer needed at all.
      const AffineTransform t = kernel_->transform({&rec, 1});
      aux.product.left_multiply(t.a);
    } else {
      aux.scratch.assign(aux.history.begin(), aux.history.end());
      aux.scratch.push_back(rec);
      const AffineTransform t = kernel_->transform(aux.scratch);
      aux.product.left_multiply(t.a);
    }
  }
  // Maintain the last-h window.
  if (h > 0) {
    aux.history.push_back(rec);
    if (aux.history.size() > h) aux.history.erase(aux.history.begin());
  }
}

template <typename Rec>
void Cache::fold_record(std::uint32_t slot_idx, const Rec& rec) {
  Slot& slot = slots_[slot_idx];
  const std::size_t h = kernel_->history_window();

  if (!aux_.empty()) {
    // Aux maintenance stores owning records (boundary/history logs) and
    // evaluates transform() over PacketRecord windows, so a wire view
    // materializes exactly once here; the aux-free common case (const-A,
    // h = 0 — COUNT, SUM) never builds a PacketRecord at all.
    fold_aux(slot_idx, materialized(rec), slot.packets, h);
  }

  kernel_->update(slot.state, rec);
  ++slot.packets;

  if (!aux_.empty() && slot.packets == h) {
    aux_[slot_idx].state_after_h = slot.state;  // snapshot S_h
  }
}

void Cache::unlink(Bucket& bucket, std::uint32_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  if (slot.prev != kInvalid) {
    slots_[slot.prev].next = slot.next;
  } else {
    bucket.mru = slot.next;
  }
  if (slot.next != kInvalid) {
    slots_[slot.next].prev = slot.prev;
  } else {
    bucket.lru = slot.prev;
  }
  slot.prev = kInvalid;
  slot.next = kInvalid;
}

void Cache::push_mru(Bucket& bucket, std::uint32_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  slot.prev = kInvalid;
  slot.next = bucket.mru;
  if (bucket.mru != kInvalid) slots_[bucket.mru].prev = slot_idx;
  bucket.mru = slot_idx;
  if (bucket.lru == kInvalid) bucket.lru = slot_idx;
}

EvictedValue Cache::evicted_fields(std::uint32_t slot_idx, Nanos now,
                                   bool final_flush) const {
  const Slot& slot = slots_[slot_idx];
  EvictedValue ev;
  ev.key = slot.key;
  ev.state = slot.state;
  ev.packets = slot.packets;
  ev.first_tin = slot.first_tin;
  ev.evict_time = now;
  ev.final_flush = final_flush;
  if (!aux_.empty()) {
    const LinearAux& aux = aux_[slot_idx];
    ev.product = aux.product;
    ev.state_after_h = aux.state_after_h;
  } else {
    ev.product = SmallMatrix::identity(kernel_->state_dims());
    ev.state_after_h = kernel_->initial_state();  // h = 0: S_h is S_0
  }
  if (kernel_->history_window() == 0) {
    ev.state_after_h = kernel_->initial_state();
  }
  return ev;
}

EvictedValue Cache::make_evicted(std::uint32_t slot_idx, Nanos now,
                                 bool final_flush) {
  EvictedValue ev = evicted_fields(slot_idx, now, final_flush);
  if (!aux_.empty()) {
    // Move the boundary log out (evictions own their records); the next
    // epoch starts from a cleared vector either way.
    LinearAux& aux = aux_[slot_idx];
    ev.boundary = std::move(aux.boundary);
    aux.boundary.clear();
  }
  return ev;
}

void Cache::snapshot_into(Nanos now, const EvictionSink& fn) const {
  // Same EvictedValue a flush(now) would emit (evicted_fields is shared with
  // the real eviction path), but the boundary log is COPIED rather than
  // moved: the slot keeps folding afterwards, so the next real eviction
  // still owns its records. Cold path by design (a monitoring read), so the
  // copy is fine.
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (!slot_occupied(idx)) continue;
    EvictedValue ev = evicted_fields(idx, now, /*final_flush=*/true);
    if (!aux_.empty()) ev.boundary = aux_[idx].boundary;
    fn(std::move(ev));
  }
}

void Cache::evict_slot(std::uint32_t slot_idx, Nanos now, bool final_flush) {
  check(slot_occupied(slot_idx), "Cache: evicting empty slot");
  EvictedValue ev = make_evicted(slot_idx, now, final_flush);
  if (geometry_.num_buckets == 1) n1_index_.erase(slots_[slot_idx].key);
  const std::uint64_t b = slot_idx / geometry_.associativity;
  unlink(buckets_[b], slot_idx);
  --buckets_[b].used;
  tags_[slot_idx] = kEmptyTag;
  --occupancy_;
  if (sink_) sink_(std::move(ev));
}

void Cache::flush(Nanos now) {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slot_occupied(idx)) {
      evict_slot(idx, now, /*final_flush=*/true);
      ++stats_.flushes;
    }
  }
}

// The two record representations the engines drive the cache with. Kept as
// explicit instantiations (rather than header definitions) so process()'s
// body stays out of every includer and the hot path keeps one home.
template void Cache::process<PacketRecord>(const Key&, const PacketRecord&);
template void Cache::process<WireRecordView>(const Key&, const WireRecordView&);

std::optional<StateVector> Cache::peek(const Key& key) const {
  const std::uint64_t h = bucket_hash(key);
  const std::uint32_t idx = probe(key, bucket_of_hash(h), tag_of_hash(h));
  if (idx == kInvalid) return std::nullopt;
  return slots_[idx].state;
}

}  // namespace perfq::kv
