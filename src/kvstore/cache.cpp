#include "kvstore/cache.hpp"

#include <limits>

#include "common/error.hpp"

namespace perfq::kv {

Cache::Cache(CacheGeometry geometry, std::shared_ptr<const FoldKernel> kernel,
             std::uint64_t hash_seed, EvictionPolicy policy)
    : geometry_(geometry),
      kernel_(std::move(kernel)),
      hash_seed_(hash_seed),
      policy_(policy),
      victim_rng_state_(mix64(hash_seed ^ 0xF00DF00DULL) | 1) {
  if (kernel_ == nullptr) throw ConfigError{"Cache: null kernel"};
  const std::uint64_t total = geometry_.total_slots();
  if (total == 0) throw ConfigError{"Cache: zero slots"};
  if (total > std::numeric_limits<std::uint32_t>::max() - 1) {
    throw ConfigError{"Cache: too many slots for 32-bit slot indices"};
  }
  slots_.resize(total);
  buckets_.resize(geometry_.num_buckets);
  index_.reserve(total);
}

void Cache::process(const Key& key, const PacketRecord& rec) {
  ++stats_.packets;
  if (const auto it = index_.find(key); it != index_.end()) {
    // Hit: one *update* operation.
    ++stats_.hits;
    const std::uint32_t idx = it->second;
    Slot& slot = slots_[idx];
    fold_record(slot, rec);
    if (policy_ == EvictionPolicy::kLru) {
      // Touch-on-hit: only LRU reorders; FIFO/random keep insertion order.
      const std::uint64_t b = idx / geometry_.associativity;
      unlink(buckets_[b], idx);
      push_mru(buckets_[b], idx);
    }
    return;
  }

  // Miss: one *initialize* operation, possibly preceded by an eviction.
  ++stats_.initializations;
  const std::uint64_t b = bucket_of(key);
  Bucket& bucket = buckets_[b];
  std::uint32_t idx;
  if (bucket.used < geometry_.associativity) {
    // Free slot exists: bucket b owns the contiguous slot range; scan it.
    // (Buckets only fill at startup; once warm this path is rare.)
    const std::uint64_t base = b * geometry_.associativity;
    idx = kInvalid;
    for (std::uint32_t s = 0; s < geometry_.associativity; ++s) {
      if (!slots_[base + s].occupied) {
        idx = static_cast<std::uint32_t>(base + s);
        break;
      }
    }
    check(idx != kInvalid, "Cache: bucket.used inconsistent with slots");
  } else {
    // Bucket full: pick the policy's victim and reuse its slot.
    if (policy_ == EvictionPolicy::kRandom) {
      // xorshift64*: cheap, deterministic, seeded per cache.
      victim_rng_state_ ^= victim_rng_state_ >> 12;
      victim_rng_state_ ^= victim_rng_state_ << 25;
      victim_rng_state_ ^= victim_rng_state_ >> 27;
      const std::uint64_t r = victim_rng_state_ * 0x2545F4914F6CDD1DULL;
      idx = static_cast<std::uint32_t>(b * geometry_.associativity +
                                       reduce_range(r, geometry_.associativity));
    } else {
      // LRU and FIFO both evict the list tail; FIFO never reorders on hits,
      // so its tail is the oldest insertion (Fig. 4's layout either way).
      idx = bucket.lru;
    }
    check(idx != kInvalid, "Cache: full bucket with empty LRU list");
    evict_slot(idx, rec.tin, /*final_flush=*/false);
    ++stats_.evictions;
  }

  Slot& slot = slots_[idx];
  slot.key = key;
  slot.state = kernel_->initial_state();
  slot.packets = 0;
  slot.first_tin = rec.tin;
  slot.occupied = true;
  if (needs_aux()) {
    slot.aux = std::make_unique<LinearAux>();
    slot.aux->product = SmallMatrix::identity(kernel_->state_dims());
  }
  fold_record(slot, rec);
  push_mru(bucket, idx);
  ++bucket.used;
  index_.emplace(key, idx);
}

void Cache::fold_record(Slot& slot, const PacketRecord& rec) {
  const std::size_t h = kernel_->history_window();
  const std::uint64_t idx_in_epoch = slot.packets;  // 0-based

  if (slot.aux != nullptr) {
    LinearAux& aux = *slot.aux;
    if (idx_in_epoch < h) {
      // Boundary packet: the merge replays these raw records, so log them.
      aux.boundary.push_back(rec);
    } else if (kernel_->linearity() == Linearity::kLinear) {
      // Interior packet of a varying-A fold: compose this packet's transform
      // into the running product P (window = last h records + current).
      std::vector<PacketRecord> window = aux.history;
      window.push_back(rec);
      const AffineTransform t = kernel_->transform(window);
      aux.product.left_multiply(t.a);
    }
    // Maintain the last-h window.
    if (h > 0) {
      aux.history.push_back(rec);
      if (aux.history.size() > h) aux.history.erase(aux.history.begin());
    }
  }

  kernel_->update(slot.state, rec);
  ++slot.packets;

  if (slot.aux != nullptr && slot.packets == h) {
    slot.aux->state_after_h = slot.state;  // snapshot S_h
  }
}

void Cache::unlink(Bucket& bucket, std::uint32_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  if (slot.prev != kInvalid) {
    slots_[slot.prev].next = slot.next;
  } else {
    bucket.mru = slot.next;
  }
  if (slot.next != kInvalid) {
    slots_[slot.next].prev = slot.prev;
  } else {
    bucket.lru = slot.prev;
  }
  slot.prev = kInvalid;
  slot.next = kInvalid;
}

void Cache::push_mru(Bucket& bucket, std::uint32_t slot_idx) {
  Slot& slot = slots_[slot_idx];
  slot.prev = kInvalid;
  slot.next = bucket.mru;
  if (bucket.mru != kInvalid) slots_[bucket.mru].prev = slot_idx;
  bucket.mru = slot_idx;
  if (bucket.lru == kInvalid) bucket.lru = slot_idx;
}

EvictedValue Cache::make_evicted(Slot& slot, Nanos now, bool final_flush) {
  EvictedValue ev;
  ev.key = slot.key;
  ev.state = slot.state;
  ev.packets = slot.packets;
  ev.first_tin = slot.first_tin;
  ev.evict_time = now;
  ev.final_flush = final_flush;
  if (slot.aux != nullptr) {
    ev.product = slot.aux->product;
    ev.state_after_h = slot.aux->state_after_h;
    ev.boundary = std::move(slot.aux->boundary);
  } else {
    ev.product = SmallMatrix::identity(kernel_->state_dims());
    ev.state_after_h = kernel_->initial_state();  // h = 0: S_h is S_0
  }
  if (kernel_->history_window() == 0) {
    ev.state_after_h = kernel_->initial_state();
  }
  return ev;
}

void Cache::evict_slot(std::uint32_t slot_idx, Nanos now, bool final_flush) {
  Slot& slot = slots_[slot_idx];
  check(slot.occupied, "Cache: evicting empty slot");
  EvictedValue ev = make_evicted(slot, now, final_flush);
  const std::uint64_t b = slot_idx / geometry_.associativity;
  unlink(buckets_[b], slot_idx);
  --buckets_[b].used;
  index_.erase(slot.key);
  slot.occupied = false;
  slot.aux.reset();
  if (sink_) sink_(std::move(ev));
}

void Cache::flush(Nanos now) {
  for (std::uint32_t idx = 0; idx < slots_.size(); ++idx) {
    if (slots_[idx].occupied) {
      evict_slot(idx, now, /*final_flush=*/true);
      ++stats_.flushes;
    }
  }
}

std::optional<StateVector> Cache::peek(const Key& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return slots_[it->second].state;
}

}  // namespace perfq::kv
