// Facade tying the SRAM cache to the DRAM backing store (Fig. 3): the
// *programmable key-value store* that is the paper's hardware contribution.
//
// The GROUPBY executor in src/runtime drives one KeyValueStore per (query,
// switch); tests and the Fig. 5/6 harnesses drive it directly.
#pragma once

#include <memory>

#include "kvstore/backing_store.hpp"
#include "kvstore/cache.hpp"

namespace perfq::kv {

class KeyValueStore {
 public:
  KeyValueStore(CacheGeometry geometry, std::shared_ptr<const FoldKernel> kernel,
                std::uint64_t hash_seed = 0x5eedcafe,
                EvictionPolicy policy = EvictionPolicy::kLru)
      : kernel_(std::move(kernel)),
        cache_(geometry, kernel_, hash_seed, policy),
        backing_(kernel_) {
    cache_.set_eviction_sink(
        [this](EvictedValue&& ev) { backing_.absorb(ev); });
  }

  /// Fold one record into the store under `key`.
  void process(const Key& key, const PacketRecord& rec) { cache_.process(key, rec); }

  /// Software-prefetch the cache bucket `key` maps to (batched engine path).
  void prefetch(const Key& key) const { cache_.prefetch(key); }

  /// Push all cache-resident values to the backing store (query window end,
  /// or the paper's periodic refresh). After flush(), reads from the backing
  /// store see every packet processed so far.
  void flush(Nanos now) { cache_.flush(now); }

  /// Authoritative read: the paper specifies results are pulled from the
  /// backing store (the cache's copy is partial for previously-evicted keys).
  [[nodiscard]] const StateVector* read(const Key& key) const {
    return backing_.lookup(key);
  }

  [[nodiscard]] const Cache& cache() const { return cache_; }
  [[nodiscard]] Cache& cache() { return cache_; }
  [[nodiscard]] const BackingStore& backing() const { return backing_; }
  [[nodiscard]] const FoldKernel& kernel() const { return *kernel_; }

 private:
  std::shared_ptr<const FoldKernel> kernel_;
  Cache cache_;
  BackingStore backing_;
};

/// Reference executor: an unbounded exact table applying the fold directly.
/// This is the ground truth the split design is differential-tested against
/// (for linear folds the merged backing value must match it exactly).
class ReferenceStore {
 public:
  explicit ReferenceStore(std::shared_ptr<const FoldKernel> kernel)
      : kernel_(std::move(kernel)) {
    if (kernel_ == nullptr) throw ConfigError{"ReferenceStore: null kernel"};
  }

  void process(const Key& key, const PacketRecord& rec) {
    auto [it, inserted] = table_.try_emplace(key, kernel_->initial_state());
    kernel_->update(it->second, rec);
  }

  [[nodiscard]] const StateVector* read(const Key& key) const {
    const auto it = table_.find(key);
    return it == table_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t key_count() const { return table_.size(); }

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [key, state] : table_) fn(key, state);
  }

 private:
  std::shared_ptr<const FoldKernel> kernel_;
  std::unordered_map<Key, StateVector> table_;
};

}  // namespace perfq::kv
