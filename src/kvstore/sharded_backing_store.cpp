#include "kvstore/sharded_backing_store.hpp"

#include "common/error.hpp"

namespace perfq::kv {

ShardedBackingStore::ShardedBackingStore(
    std::shared_ptr<const FoldKernel> kernel, std::size_t num_shards)
    : kernel_(std::move(kernel)) {
  if (kernel_ == nullptr) throw ConfigError{"ShardedBackingStore: null kernel"};
  if (num_shards == 0) throw ConfigError{"ShardedBackingStore: zero shards"};
  subs_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    subs_.push_back(std::make_unique<Sub>(kernel_));
  }
}

std::unique_ptr<ShardedBackingStore> ShardedBackingStore::clone() const {
  auto copy = std::make_unique<ShardedBackingStore>(kernel_, subs_.size());
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(subs_[i]->mu);
    copy->subs_[i]->store = subs_[i]->store;  // BackingStore is copyable
  }
  return copy;
}

void ShardedBackingStore::absorb(const EvictedValue& ev) {
  Sub& sub = sub_of(ev.key);
  const std::lock_guard<std::mutex> lock(sub.mu);
  sub.store.absorb(ev);
}

std::optional<StateVector> ShardedBackingStore::read(const Key& key) const {
  const Sub& sub = sub_of(key);
  const std::lock_guard<std::mutex> lock(sub.mu);
  const StateVector* v = sub.store.lookup(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}

std::vector<ValueSegment> ShardedBackingStore::segments(const Key& key) const {
  const Sub& sub = sub_of(key);
  const std::lock_guard<std::mutex> lock(sub.mu);
  const std::vector<ValueSegment>* segs = sub.store.segments(key);
  if (segs == nullptr) return {};
  return *segs;
}

bool ShardedBackingStore::valid(const Key& key) const {
  const Sub& sub = sub_of(key);
  const std::lock_guard<std::mutex> lock(sub.mu);
  return sub.store.valid(key);
}

AccuracyStats ShardedBackingStore::accuracy() const {
  AccuracyStats total;
  for (const auto& sub : subs_) {
    const std::lock_guard<std::mutex> lock(sub->mu);
    const AccuracyStats s = sub->store.accuracy();
    total.total_keys += s.total_keys;
    total.valid_keys += s.valid_keys;
  }
  return total;
}

std::size_t ShardedBackingStore::key_count() const {
  std::size_t n = 0;
  for (const auto& sub : subs_) {
    const std::lock_guard<std::mutex> lock(sub->mu);
    n += sub->store.key_count();
  }
  return n;
}

std::uint64_t ShardedBackingStore::writes() const {
  std::uint64_t n = 0;
  for (const auto& sub : subs_) {
    const std::lock_guard<std::mutex> lock(sub->mu);
    n += sub->store.writes();
  }
  return n;
}

std::uint64_t ShardedBackingStore::capacity_writes() const {
  std::uint64_t n = 0;
  for (const auto& sub : subs_) {
    const std::lock_guard<std::mutex> lock(sub->mu);
    n += sub->store.capacity_writes();
  }
  return n;
}

}  // namespace perfq::kv
