// Concurrent, sharded-by-key backing store (DRAM side of Fig. 3, scaled out).
//
// The sharded runtime's cache evictions arrive asynchronously: shard workers
// enqueue EvictedValues and a background merge thread absorbs them here while
// folding continues — the paper's §3.2 periodic refresh ("keys periodically
// evicted so the backing store is fresh, and monitoring applications can pull
// results") without stalling the line-rate path. Internally the store is K
// sub-stores, each an ordinary BackingStore behind its own mutex, selected by
// the key's std::hash (decorrelated from cache placement), so the merge
// thread's writes and any monitoring reads contend only per sub-store.
//
// Correctness contract: for a given key, absorb() calls must arrive in epoch
// order (the linear merge operator is not commutative). The sharded runtime
// guarantees this because each key's evictions are produced by exactly one
// shard worker and travel through one FIFO queue.
#pragma once

#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "kvstore/backing_store.hpp"

namespace perfq::kv {

class ShardedBackingStore {
 public:
  ShardedBackingStore(std::shared_ptr<const FoldKernel> kernel,
                      std::size_t num_shards);

  /// Absorb one eviction into the owning sub-store (locks that sub only).
  /// The merge thread calls this for each drained eviction.
  void absorb(const EvictedValue& ev);

  /// Thread-safe merged-value read (copies under the sub-store lock).
  [[nodiscard]] std::optional<StateVector> read(const Key& key) const;

  /// Deep copy of the whole store (each sub-store copied under its own lock;
  /// sub-stores are snapshotted one at a time, so the copy is per-key — not
  /// cross-key — consistent; the runtime quiesces the eviction path first
  /// when it needs a record-boundary-exact clone). The clone keeps the same
  /// key→sub routing, so further absorb() calls land on the right sub. This
  /// is the sharded engines' mid-run snapshot substrate: overlay the live
  /// cache contents on the clone without disturbing the concurrent store.
  [[nodiscard]] std::unique_ptr<ShardedBackingStore> clone() const;

  /// Thread-safe copy of a key's non-linear value segments.
  [[nodiscard]] std::vector<ValueSegment> segments(const Key& key) const;

  [[nodiscard]] bool valid(const Key& key) const;

  [[nodiscard]] AccuracyStats accuracy() const;
  [[nodiscard]] std::size_t key_count() const;
  [[nodiscard]] std::uint64_t writes() const;
  [[nodiscard]] std::uint64_t capacity_writes() const;
  [[nodiscard]] std::size_t shard_count() const { return subs_.size(); }
  [[nodiscard]] const FoldKernel& kernel() const { return *kernel_; }

  /// Visit (key, merged value, valid) across all sub-stores. Each sub-store
  /// is locked for the duration of its visit; do not call absorb() from `fn`.
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& sub : subs_) {
      const std::lock_guard<std::mutex> lock(sub->mu);
      sub->store.for_each(fn);
    }
  }

  /// Lift every entry out of every sub-store (each sub locked only for its
  /// own copy). Same per-key consistency caveat as clone().
  [[nodiscard]] std::vector<ExportedEntry> export_entries() const {
    std::vector<ExportedEntry> out;
    for (const auto& sub : subs_) {
      const std::lock_guard<std::mutex> lock(sub->mu);
      auto part = sub->store.export_entries();
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return out;
  }

 private:
  struct Sub {
    explicit Sub(std::shared_ptr<const FoldKernel> kernel)
        : store(std::move(kernel)) {}
    mutable std::mutex mu;
    BackingStore store;
  };

  [[nodiscard]] Sub& sub_of(const Key& key) const {
    return *subs_[reduce_range(key.hash(kStdHashSeed), subs_.size())];
  }

  std::shared_ptr<const FoldKernel> kernel_;
  std::vector<std::unique_ptr<Sub>> subs_;
};

}  // namespace perfq::kv
