// Combining several fold kernels into one (a GROUPBY with multiple
// aggregations, e.g. `SELECT COUNT, SUM(pkt_len) GROUPBY srcip, dstip`,
// keeps one key-value entry whose value is the concatenation of the
// component accumulators).
//
// Linearity composes naturally: the combined transform is block-diagonal in
// A and concatenated in B, so the combination is linear iff every component
// is, const-A iff every component is, and the history window is the max.
#pragma once

#include <memory>
#include <numeric>
#include <vector>

#include "kvstore/fold.hpp"

namespace perfq::kv {

class CombinedKernel final : public FoldKernel {
 public:
  explicit CombinedKernel(std::vector<std::shared_ptr<const FoldKernel>> parts)
      : parts_(std::move(parts)) {
    if (parts_.empty()) throw ConfigError{"CombinedKernel: no components"};
    std::size_t dims = 0;
    for (const auto& p : parts_) {
      if (p == nullptr) throw ConfigError{"CombinedKernel: null component"};
      offsets_.push_back(dims);
      dims += p->state_dims();
    }
    if (dims > kMaxStateDims) {
      throw ConfigError{"CombinedKernel: combined state exceeds kMaxStateDims"};
    }
    dims_ = dims;
  }

  [[nodiscard]] std::string name() const override {
    std::string out = "combined(";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i > 0) out += ", ";
      out += parts_[i]->name();
    }
    return out + ")";
  }

  [[nodiscard]] std::size_t state_dims() const override { return dims_; }

  [[nodiscard]] StateVector initial_state() const override {
    StateVector s(dims_);
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      const StateVector part = parts_[i]->initial_state();
      for (std::size_t d = 0; d < part.dims(); ++d) s[offsets_[i] + d] = part[d];
    }
    return s;
  }

  void update(StateVector& state, const PacketRecord& rec) const override {
    update_impl(state, rec);
  }
  void update(StateVector& state, const WireRecordView& rec) const override {
    update_impl(state, rec);
  }

  /// Union of the components' field reads.
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    for (const auto& p : parts_) usage |= p->used_fields();
    return usage;
  }

  [[nodiscard]] Linearity linearity() const override {
    bool const_a = true;
    for (const auto& p : parts_) {
      switch (p->linearity()) {
        case Linearity::kNotLinear: return Linearity::kNotLinear;
        case Linearity::kLinear: const_a = false; break;
        case Linearity::kLinearConstA: break;
      }
    }
    return const_a ? Linearity::kLinearConstA : Linearity::kLinear;
  }

  [[nodiscard]] std::size_t history_window() const override {
    std::size_t h = 0;
    for (const auto& p : parts_) h = std::max(h, p->history_window());
    return h;
  }

  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override {
    AffineTransform out{SmallMatrix(dims_), StateVector(dims_)};
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      // Components with a shorter history window see the suffix of `window`.
      const std::size_t h = parts_[i]->history_window();
      const auto sub = window.subspan(window.size() - 1 - h);
      const AffineTransform t = parts_[i]->transform(sub);
      const std::size_t off = offsets_[i];
      for (std::size_t r = 0; r < t.b.dims(); ++r) {
        out.b[off + r] = t.b[r];
        for (std::size_t c = 0; c < t.b.dims(); ++c) {
          out.a.at(off + r, off + c) = t.a.at(r, c);
        }
      }
    }
    return out;
  }

  [[nodiscard]] SmallMatrix constant_a() const override {
    SmallMatrix out(dims_);
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      const SmallMatrix a = parts_[i]->constant_a();
      for (std::size_t r = 0; r < a.dims(); ++r) {
        for (std::size_t c = 0; c < a.dims(); ++c) {
          out.at(offsets_[i] + r, offsets_[i] + c) = a.at(r, c);
        }
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t component_offset(std::size_t i) const {
    return offsets_.at(i);
  }
  [[nodiscard]] const FoldKernel& component(std::size_t i) const {
    return *parts_.at(i);
  }
  [[nodiscard]] std::size_t components() const { return parts_.size(); }

 private:
  template <typename Rec>
  void update_impl(StateVector& state, const Rec& rec) const {
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      StateVector part(parts_[i]->state_dims());
      for (std::size_t d = 0; d < part.dims(); ++d) part[d] = state[offsets_[i] + d];
      parts_[i]->update(part, rec);
      for (std::size_t d = 0; d < part.dims(); ++d) state[offsets_[i] + d] = part[d];
    }
  }

  std::vector<std::shared_ptr<const FoldKernel>> parts_;
  std::vector<std::size_t> offsets_;
  std::size_t dims_ = 0;
};

}  // namespace perfq::kv
