#include "kvstore/fold.hpp"

#include <cmath>

#include "common/error.hpp"

namespace perfq::kv {

void FoldKernel::update(StateVector& state, const WireRecordView& rec) const {
  const PacketRecord eager = materialized(rec);
  update(state, eager);
}

AffineTransform FoldKernel::transform(std::span<const PacketRecord> /*window*/) const {
  throw InternalError{"FoldKernel::transform called on a non-linear kernel: " +
                      name()};
}

SmallMatrix FoldKernel::constant_a() const {
  throw InternalError{"FoldKernel::constant_a called on kernel without fixed A: " +
                      name()};
}

void FoldKernel::merge_values(StateVector& /*backing*/,
                              const StateVector& /*evicted*/) const {
  throw InternalError{
      "FoldKernel::merge_values called on kernel without associative merge: " +
      name()};
}

bool transform_matches_update(const FoldKernel& kernel, const StateVector& state,
                              std::span<const PacketRecord> window,
                              double tolerance) {
  check(window.size() == kernel.history_window() + 1,
        "transform_matches_update: wrong window size");

  StateVector via_update = state;
  kernel.update(via_update, window.back());

  const AffineTransform t = kernel.transform(window);
  StateVector via_affine = t.a.apply(state);
  via_affine += t.b;

  if (via_update.dims() != via_affine.dims()) return false;
  for (std::size_t i = 0; i < via_update.dims(); ++i) {
    if (std::isinf(via_update[i]) && std::isinf(via_affine[i]) &&
        std::signbit(via_update[i]) == std::signbit(via_affine[i])) {
      continue;
    }
    const double diff = std::abs(via_update[i] - via_affine[i]);
    const double scale = std::max(1.0, std::abs(via_update[i]));
    if (!(diff <= tolerance * scale)) return false;
  }
  return true;
}

}  // namespace perfq::kv
