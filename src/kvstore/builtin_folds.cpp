#include "kvstore/builtin_folds.hpp"

#include <limits>

#include "common/error.hpp"

namespace perfq::kv {
namespace {

// Each kernel's update body is written once, templated over the record
// representation: the eager PacketRecord (the ground-truth reference) and
// the lazy WireRecordView share the field_value overload set and the
// sidecar member names, so one body serves both — the two virtual overloads
// cannot drift apart.

template <typename Rec>
double latency_of(const Rec& rec) {
  if (rec.dropped()) return std::numeric_limits<double>::infinity();
  return static_cast<double>((rec.tout - rec.tin).count());
}

template <typename Rec>
void count_update(StateVector& state, const Rec& /*rec*/) {
  state[0] += 1.0;
}

template <typename Rec>
void sum_update(StateVector& state, const Rec& rec, FieldId field) {
  state[0] += field_value(rec, field);
}

template <typename Rec>
void count_sum_update(StateVector& state, const Rec& rec) {
  state[0] += 1.0;
  state[1] += field_value(rec, FieldId::kPktLen);
}

template <typename Rec>
void ewma_update(StateVector& state, const Rec& rec, double alpha) {
  if (rec.dropped()) return;  // skip drops; see header comment
  state[0] = (1.0 - alpha) * state[0] +
             alpha * static_cast<double>((rec.tout - rec.tin).count());
}

// State: [0] = lastseq, [1] = oos_count.   (Fig. 2 "TCP out of sequence")
template <typename Rec>
void outofseq_update(StateVector& state, const Rec& rec) {
  const double seq = field_value(rec, FieldId::kTcpSeq);
  if (state[0] + 1.0 != seq) state[1] += 1.0;
  state[0] = seq + field_value(rec, FieldId::kPayloadLen);
}

// State: [0] = maxseq, [1] = nm_count.   (Fig. 2 "TCP non-monotonic")
template <typename Rec>
void nonmt_update(StateVector& state, const Rec& rec) {
  const double seq = field_value(rec, FieldId::kTcpSeq);
  if (state[0] > seq) state[1] += 1.0;
  if (seq > state[0]) state[0] = seq;
}

// State: [0] = tot, [1] = high.   (Fig. 2 "High 99th percentile queue size")
template <typename Rec>
void perc_update(StateVector& state, const Rec& rec, double threshold) {
  if (static_cast<double>(rec.qsize) > threshold) state[1] += 1.0;
  state[0] += 1.0;
}

template <typename Rec>
void extremum_update(StateVector& state, const Rec& rec, FieldId field,
                     ExtremumKernel::Mode mode) {
  const double v = field_value(rec, field);
  state[0] = mode == ExtremumKernel::Mode::kMax ? std::max(state[0], v)
                                                : std::min(state[0], v);
}

}  // namespace

// ---------------------------------------------------------------- count ----

void CountKernel::update(StateVector& state, const PacketRecord& rec) const {
  count_update(state, rec);
}

void CountKernel::update(StateVector& state, const WireRecordView& rec) const {
  count_update(state, rec);
}

AffineTransform CountKernel::transform(std::span<const PacketRecord> window) const {
  check(window.size() == 1, "count: bad window");
  AffineTransform t{SmallMatrix::identity(1), StateVector(1)};
  t.b[0] = 1.0;
  return t;
}

// ------------------------------------------------------------------ sum ----

void SumKernel::update(StateVector& state, const PacketRecord& rec) const {
  sum_update(state, rec, field_);
}

void SumKernel::update(StateVector& state, const WireRecordView& rec) const {
  sum_update(state, rec, field_);
}

AffineTransform SumKernel::transform(std::span<const PacketRecord> window) const {
  check(window.size() == 1, "sum: bad window");
  AffineTransform t{SmallMatrix::identity(1), StateVector(1)};
  t.b[0] = field_value(window.back(), field_);
  return t;
}

// ------------------------------------------------------------ count+sum ----

void CountSumKernel::update(StateVector& state, const PacketRecord& rec) const {
  count_sum_update(state, rec);
}

void CountSumKernel::update(StateVector& state, const WireRecordView& rec) const {
  count_sum_update(state, rec);
}

AffineTransform CountSumKernel::transform(
    std::span<const PacketRecord> window) const {
  check(window.size() == 1, "count+sum: bad window");
  AffineTransform t{SmallMatrix::identity(2), StateVector(2)};
  t.b[0] = 1.0;
  t.b[1] = static_cast<double>(window.back().pkt.pkt_len);
  return t;
}

// ----------------------------------------------------------------- ewma ----

EwmaKernel::EwmaKernel(double alpha) : alpha_(alpha) {
  if (!(alpha > 0.0 && alpha <= 1.0)) {
    throw ConfigError{"EwmaKernel: alpha must be in (0, 1]"};
  }
}

void EwmaKernel::update(StateVector& state, const PacketRecord& rec) const {
  ewma_update(state, rec, alpha_);
}

void EwmaKernel::update(StateVector& state, const WireRecordView& rec) const {
  ewma_update(state, rec, alpha_);
}

AffineTransform EwmaKernel::transform(std::span<const PacketRecord> window) const {
  check(window.size() == 1, "ewma: bad window");
  const PacketRecord& rec = window.back();
  AffineTransform t{SmallMatrix(1), StateVector(1)};
  if (rec.dropped()) {
    t.a.at(0, 0) = 1.0;  // identity: drop leaves the EWMA untouched
    t.b[0] = 0.0;
  } else {
    t.a.at(0, 0) = 1.0 - alpha_;
    t.b[0] = alpha_ * static_cast<double>((rec.tout - rec.tin).count());
  }
  return t;
}

// ------------------------------------------------------------- outofseq ----

void OutOfSeqKernel::update(StateVector& state, const PacketRecord& rec) const {
  outofseq_update(state, rec);
}

void OutOfSeqKernel::update(StateVector& state, const WireRecordView& rec) const {
  outofseq_update(state, rec);
}

AffineTransform OutOfSeqKernel::transform(
    std::span<const PacketRecord> window) const {
  check(window.size() == 2, "outofseq: bad window");
  const PacketRecord& prev = window[0];
  const PacketRecord& cur = window[1];
  // lastseq after `prev` is a pure function of prev: prev.seq + prev.payload.
  const double lastseq = static_cast<double>(prev.pkt.tcp_seq) +
                         static_cast<double>(prev.pkt.payload_len);
  const bool oos = (lastseq + 1.0) != static_cast<double>(cur.pkt.tcp_seq);
  AffineTransform t{SmallMatrix(2), StateVector(2)};
  // Row 0 (lastseq'): depends only on the current packet.
  t.b[0] = static_cast<double>(cur.pkt.tcp_seq) +
           static_cast<double>(cur.pkt.payload_len);
  // Row 1 (oos_count'): oos_count + indicator(window).
  t.a.at(1, 1) = 1.0;
  t.b[1] = oos ? 1.0 : 0.0;
  return t;
}

// ---------------------------------------------------------------- nonmt ----

void NonMonotonicKernel::update(StateVector& state, const PacketRecord& rec) const {
  nonmt_update(state, rec);
}

void NonMonotonicKernel::update(StateVector& state,
                                const WireRecordView& rec) const {
  nonmt_update(state, rec);
}

// ----------------------------------------------------------------- perc ----

void HighPercentileKernel::update(StateVector& state, const PacketRecord& rec) const {
  perc_update(state, rec, threshold_);
}

void HighPercentileKernel::update(StateVector& state,
                                  const WireRecordView& rec) const {
  perc_update(state, rec, threshold_);
}

AffineTransform HighPercentileKernel::transform(
    std::span<const PacketRecord> window) const {
  check(window.size() == 1, "perc: bad window");
  AffineTransform t{SmallMatrix::identity(2), StateVector(2)};
  t.b[0] = 1.0;
  t.b[1] = static_cast<double>(window.back().qsize) > threshold_ ? 1.0 : 0.0;
  return t;
}

// ------------------------------------------------------------- extremum ----

StateVector ExtremumKernel::initial_state() const {
  StateVector s(1);
  s[0] = mode_ == Mode::kMax ? -std::numeric_limits<double>::infinity()
                             : std::numeric_limits<double>::infinity();
  return s;
}

void ExtremumKernel::update(StateVector& state, const PacketRecord& rec) const {
  extremum_update(state, rec, field_, mode_);
}

void ExtremumKernel::update(StateVector& state, const WireRecordView& rec) const {
  extremum_update(state, rec, field_, mode_);
}

void ExtremumKernel::merge_values(StateVector& backing,
                                  const StateVector& evicted) const {
  backing[0] = mode_ == Mode::kMax ? std::max(backing[0], evicted[0])
                                   : std::min(backing[0], evicted[0]);
}

// -------------------------------------------------------------- sum_lat ----

void SumLatencyKernel::update(StateVector& state, const PacketRecord& rec) const {
  state[0] += latency_of(rec);
}

void SumLatencyKernel::update(StateVector& state,
                              const WireRecordView& rec) const {
  state[0] += latency_of(rec);
}

AffineTransform SumLatencyKernel::transform(
    std::span<const PacketRecord> window) const {
  check(window.size() == 1, "sum_lat: bad window");
  AffineTransform t{SmallMatrix::identity(1), StateVector(1)};
  t.b[0] = latency_of(window.back());
  return t;
}

}  // namespace perfq::kv
