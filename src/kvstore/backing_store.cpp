#include "kvstore/backing_store.hpp"

#include "common/error.hpp"

namespace perfq::kv {

BackingStore::BackingStore(std::shared_ptr<const FoldKernel> kernel)
    : kernel_(std::move(kernel)) {
  if (kernel_ == nullptr) throw ConfigError{"BackingStore: null kernel"};
  linear_ = is_linear(kernel_->linearity());
  associative_ = kernel_->has_associative_merge();
}

StateVector BackingStore::replay(StateVector state,
                                 const std::vector<PacketRecord>& records) const {
  for (const PacketRecord& rec : records) kernel_->update(state, rec);
  return state;
}

void BackingStore::absorb(const EvictedValue& ev) {
  ++writes_;
  if (!ev.final_flush) ++capacity_writes_;

  auto [it, inserted] = entries_.try_emplace(ev.key);
  Entry& entry = it->second;
  if (inserted) ++key_count_;

  if (!linear_ && associative_) {
    // Extension: exact non-linear merge for semilattice-style folds.
    if (inserted) ++valid_keys_;  // merged exactly: always one whole-window value
    entry.packets += ev.packets;
    if (inserted) {
      entry.value = ev.state;
    } else {
      kernel_->merge_values(entry.value, ev.state);
    }
    return;
  }

  if (!linear_) {
    // §3.2 "Operations that are not linear in state": keep one value per
    // epoch; >1 segment ⇒ invalid over the full window. The valid_keys_
    // mirror tracks the 1 → 2 segment flip so accuracy() stays O(1).
    entry.segments.push_back(
        ValueSegment{ev.first_tin, ev.evict_time, ev.state, ev.packets});
    if (entry.segments.size() == 1) {
      ++valid_keys_;
    } else if (entry.segments.size() == 2) {
      valid_keys_.sub(1);
    }
    entry.value = ev.state;
    entry.packets += ev.packets;
    return;
  }
  if (inserted) ++valid_keys_;  // linear merge is exact: every key valid

  entry.packets += ev.packets;
  if (inserted) {
    // First epoch for this key: the cache folded from the true initial state,
    // so the evicted value is already exact.
    entry.value = ev.state;
    return;
  }

  const std::size_t h = kernel_->history_window();
  if (ev.packets <= h) {
    // The whole epoch sits inside the boundary window: replay it outright.
    check(ev.boundary.size() == ev.packets,
          "BackingStore: boundary/packet count mismatch");
    entry.value = replay(entry.value, ev.boundary);
    return;
  }

  // General exact merge. `corrected` is what S_h would have been had the
  // epoch started from the true backing value instead of S_0.
  check(ev.boundary.size() == h, "BackingStore: expected h boundary records");
  const StateVector corrected = replay(entry.value, ev.boundary);

  SmallMatrix p = ev.product;
  if (kernel_->linearity() == Linearity::kLinearConstA) {
    p = kernel_->constant_a().power(ev.packets - h);
  }

  StateVector delta = corrected - ev.state_after_h;
  entry.value = ev.state + p.apply(delta);
}

const StateVector* BackingStore::lookup(const Key& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.value;
}

const std::vector<ValueSegment>* BackingStore::segments(const Key& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.segments;
}

bool BackingStore::valid(const Key& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  return linear_ || it->second.segments.size() <= 1;
}

}  // namespace perfq::kv
