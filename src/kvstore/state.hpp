// Fold state containers: small inline vectors and matrices.
//
// A fold function's accumulator is a short vector of state variables (the
// paper's examples use one or two; we support up to kMaxStateDims). The
// linear-in-state machinery (§3.2) views an update as S' = A·S + B with A a
// d×d matrix and B a d-vector whose entries depend only on the packet, so we
// need exactly these two small linear-algebra types.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/error.hpp"

namespace perfq::kv {

inline constexpr std::size_t kMaxStateDims = 8;

/// Fixed-capacity vector of state variables.
class StateVector {
 public:
  StateVector() = default;
  explicit StateVector(std::size_t dims, double fill = 0.0) : dims_(check_dims(dims)) {
    for (std::size_t i = 0; i < dims_; ++i) v_[i] = fill;
  }
  explicit StateVector(std::span<const double> values)
      : dims_(check_dims(values.size())) {
    for (std::size_t i = 0; i < dims_; ++i) v_[i] = values[i];
  }

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] double operator[](std::size_t i) const { return v_[i]; }
  [[nodiscard]] double& operator[](std::size_t i) { return v_[i]; }
  [[nodiscard]] std::span<double> span() { return {v_.data(), dims_}; }
  [[nodiscard]] std::span<const double> span() const { return {v_.data(), dims_}; }

  friend bool operator==(const StateVector& a, const StateVector& b) {
    if (a.dims_ != b.dims_) return false;
    for (std::size_t i = 0; i < a.dims_; ++i) {
      if (a.v_[i] != b.v_[i]) return false;
    }
    return true;
  }

  StateVector& operator+=(const StateVector& o) {
    check(dims_ == o.dims_, "StateVector +=: dims mismatch");
    for (std::size_t i = 0; i < dims_; ++i) v_[i] += o.v_[i];
    return *this;
  }
  StateVector& operator-=(const StateVector& o) {
    check(dims_ == o.dims_, "StateVector -=: dims mismatch");
    for (std::size_t i = 0; i < dims_; ++i) v_[i] -= o.v_[i];
    return *this;
  }
  friend StateVector operator+(StateVector a, const StateVector& b) { return a += b; }
  friend StateVector operator-(StateVector a, const StateVector& b) { return a -= b; }

 private:
  static std::size_t check_dims(std::size_t d) {
    if (d > kMaxStateDims) throw ConfigError{"StateVector: too many state dims"};
    return d;
  }
  std::size_t dims_ = 0;
  std::array<double, kMaxStateDims> v_{};
};

/// Small dense row-major square matrix (the per-packet transform A).
class SmallMatrix {
 public:
  SmallMatrix() = default;
  explicit SmallMatrix(std::size_t dims) : dims_(dims) {
    if (dims > kMaxStateDims) throw ConfigError{"SmallMatrix: too many dims"};
  }

  [[nodiscard]] static SmallMatrix identity(std::size_t dims) {
    SmallMatrix m(dims);
    for (std::size_t i = 0; i < dims; ++i) m.at(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t dims() const { return dims_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return m_[r * kMaxStateDims + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return m_[r * kMaxStateDims + c];
  }

  /// this ← other · this (compose a new per-packet transform on the left,
  /// maintaining the running product P = A_N ··· A_1).
  void left_multiply(const SmallMatrix& other) {
    check(dims_ == other.dims_, "SmallMatrix: dims mismatch");
    std::array<double, kMaxStateDims * kMaxStateDims> out{};
    for (std::size_t r = 0; r < dims_; ++r) {
      for (std::size_t k = 0; k < dims_; ++k) {
        const double a = other.at(r, k);
        if (a == 0.0) continue;
        for (std::size_t c = 0; c < dims_; ++c) {
          out[r * kMaxStateDims + c] += a * at(k, c);
        }
      }
    }
    m_ = out;
  }

  [[nodiscard]] StateVector apply(const StateVector& v) const {
    check(dims_ == v.dims(), "SmallMatrix::apply: dims mismatch");
    StateVector out(dims_);
    for (std::size_t r = 0; r < dims_; ++r) {
      double acc = 0.0;
      for (std::size_t c = 0; c < dims_; ++c) acc += at(r, c) * v[c];
      out[r] = acc;
    }
    return out;
  }

  /// Matrix power by repeated squaring; used when A is packet-independent and
  /// the hardware only tracked the packet count N (P = A^N).
  [[nodiscard]] SmallMatrix power(std::uint64_t n) const {
    SmallMatrix result = identity(dims_);
    SmallMatrix base = *this;
    while (n > 0) {
      if (n & 1) {
        // result ← base · result
        result.left_multiply(base);
      }
      // base ← base · base
      SmallMatrix sq = base;
      sq.left_multiply(base);
      base = sq;
      n >>= 1;
    }
    return result;
  }

  friend bool operator==(const SmallMatrix& a, const SmallMatrix& b) {
    if (a.dims_ != b.dims_) return false;
    for (std::size_t r = 0; r < a.dims_; ++r) {
      for (std::size_t c = 0; c < a.dims_; ++c) {
        if (a.at(r, c) != b.at(r, c)) return false;
      }
    }
    return true;
  }

 private:
  std::size_t dims_ = 0;
  std::array<double, kMaxStateDims * kMaxStateDims> m_{};
};

}  // namespace perfq::kv
