// Hand-written fold kernels for every aggregation in the paper's Fig. 2.
//
// These serve three purposes: (1) unit/property tests of the cache + merge
// machinery independent of the query compiler, (2) microbenchmarks, and
// (3) a reference the compiler-generated kernels are differential-tested
// against (same fold written in the query language must behave identically).
//
// Linearity notes (matching Fig. 2's "Linear in state?" column):
//   count, sum, count+sum     : S' = S + B(pkt), A = I            -> const-A
//   ewma                      : S' = (1-alpha)S + alpha*(t_out-t_in) -> const-A
//   out-of-seq                : lastseq is a history variable (a function of
//                               the previous packet only); given a 1-packet
//                               window the update is affine          -> linear, h = 1
//   non-monotonic (nonmt)     : predicate maxseq > tcpseq reads unbounded
//                               state                                -> NOT linear
//   high-percentile queue size: two saturating counters, A = I      -> const-A
#pragma once

#include <memory>

#include "kvstore/fold.hpp"

namespace perfq::kv {

/// S' = S + 1 (per-key packet count). 1 state dim. Linearity: const-A, h=0.
class CountKernel final : public FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "count"; }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(1); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override { return {}; }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kLinearConstA;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] SmallMatrix constant_a() const override {
    return SmallMatrix::identity(1);
  }
};

/// S' = S + field(pkt). 1 state dim. Linearity: const-A, h=0.
class SumKernel final : public FoldKernel {
 public:
  explicit SumKernel(FieldId field) : field_(field) {}
  [[nodiscard]] std::string name() const override {
    return std::string{"sum("} + std::string{field_name(field_)} + ")";
  }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(1); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(field_);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kLinearConstA;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] SmallMatrix constant_a() const override {
    return SmallMatrix::identity(1);
  }

 private:
  FieldId field_;
};

/// Fig. 2 "Per-flow counters": state = (count, byte_sum). const-A, h=0.
class CountSumKernel final : public FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "count+sum(pkt_len)"; }
  [[nodiscard]] std::size_t state_dims() const override { return 2; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(2); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kPktLen);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kLinearConstA;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] SmallMatrix constant_a() const override {
    return SmallMatrix::identity(2);
  }
};

/// Fig. 2 "Latency EWMA": S' = (1-alpha)S + alpha*(tout - tin). const-A, h=0.
/// Dropped packets (tout = infinity) are skipped (identity transform): an
/// infinite latency would destroy the average, and the paper's drop queries
/// are expressed separately via WHERE tout == infinity.
class EwmaKernel final : public FoldKernel {
 public:
  explicit EwmaKernel(double alpha);
  [[nodiscard]] std::string name() const override { return "ewma"; }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(1); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kTin);
    usage.set(FieldId::kTout);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    // A = (1-alpha) for live packets but I for drops, so A is *not* packet
    // independent: classified kLinear (running-product aux), h = 0.
    return Linearity::kLinear;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
};

/// Fig. 2 "TCP out of sequence": state = (lastseq, oos_count).
/// lastseq is a pure function of the previous packet => history window 1;
/// the oos_count update is affine given that window. Linearity: kLinear, h=1.
class OutOfSeqKernel final : public FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "outofseq"; }
  [[nodiscard]] std::size_t state_dims() const override { return 2; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(2); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kTcpSeq);
    usage.set(FieldId::kPayloadLen);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override { return Linearity::kLinear; }
  [[nodiscard]] std::size_t history_window() const override { return 1; }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
};

/// Fig. 2 "TCP non-monotonic": state = (maxseq, nm_count). The predicate
/// maxseq > tcpseq reads a state variable with unbounded history, so no merge
/// function exists (paper §3.2 "Operations that are not linear in state").
class NonMonotonicKernel final : public FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "nonmt"; }
  [[nodiscard]] std::size_t state_dims() const override { return 2; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(2); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kTcpSeq);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override { return Linearity::kNotLinear; }
};

/// Fig. 2 "High 99th percentile queue size": state = (tot, high);
/// high += qin > K; tot += 1. const-A, h=0.
class HighPercentileKernel final : public FoldKernel {
 public:
  explicit HighPercentileKernel(double threshold) : threshold_(threshold) {}
  [[nodiscard]] std::string name() const override { return "perc"; }
  [[nodiscard]] std::size_t state_dims() const override { return 2; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(2); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kQsize);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kLinearConstA;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] SmallMatrix constant_a() const override {
    return SmallMatrix::identity(2);
  }

 private:
  double threshold_;
};

/// Per-key running extremum of a field (e.g. max queue depth seen by a flow,
/// min per-packet latency). NOT linear in state — `max(S, f(p))` is outside
/// §3.2's condition — but exactly mergeable anyway: the fold is a semilattice
/// homomorphism, so backing ∪ epoch = extremum(backing, epoch). This is the
/// extension hook FoldKernel::has_associative_merge() exists for, pointing
/// at the paper's follow-up work on mergeable aggregations.
class ExtremumKernel final : public FoldKernel {
 public:
  enum class Mode : std::uint8_t { kMax, kMin };
  ExtremumKernel(FieldId field, Mode mode) : field_(field), mode_(mode) {}

  [[nodiscard]] std::string name() const override {
    return std::string{mode_ == Mode::kMax ? "max(" : "min("} +
           std::string{field_name(field_)} + ")";
  }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] StateVector initial_state() const override;  // merge identity
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(field_);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kNotLinear;
  }
  [[nodiscard]] bool has_associative_merge() const override { return true; }
  void merge_values(StateVector& backing, const StateVector& evicted) const override;

 private:
  FieldId field_;
  Mode mode_;
};

/// Fig. 2 "Per-flow high latency packets" stage 1: sum of (tout - tin).
/// const-A, h=0. Drops contribute infinity, matching the composed query's
/// intent of flagging flows whose packets were delayed or lost.
class SumLatencyKernel final : public FoldKernel {
 public:
  [[nodiscard]] std::string name() const override { return "sum_lat"; }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] StateVector initial_state() const override { return StateVector(1); }
  void update(StateVector& state, const PacketRecord& rec) const override;
  void update(StateVector& state, const WireRecordView& rec) const override;
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    usage.set(FieldId::kTin);
    usage.set(FieldId::kTout);
    return usage;
  }
  [[nodiscard]] Linearity linearity() const override {
    return Linearity::kLinearConstA;
  }
  [[nodiscard]] AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] SmallMatrix constant_a() const override {
    return SmallMatrix::identity(1);
  }
};

}  // namespace perfq::kv
