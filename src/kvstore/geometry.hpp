// Cache geometry (Fig. 4): a hash table of n buckets, each an m-slot LRU.
//
// The three geometries of §4's evaluation are special cases:
//   - "Hash table":        m = 1  (evict on any collision)
//   - "Fully associative": n = 1  (one global LRU)
//   - "8-way associative": m = 8  (processor-L1-like)
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace perfq::kv {

/// Within-bucket replacement policy. The paper uses LRU ("Currently, we use
/// the least recently used (LRU) cache-eviction policy"); FIFO and random
/// are cheaper in hardware (no touch-on-hit update path) and are provided
/// for the ablation bench, which quantifies what LRU buys.
enum class EvictionPolicy : std::uint8_t {
  kLru,     ///< evict the least recently *used* slot (paper's choice)
  kFifo,    ///< evict the least recently *inserted* slot
  kRandom,  ///< evict a uniformly random slot of the bucket
};

[[nodiscard]] constexpr const char* to_cstring(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kLru: return "LRU";
    case EvictionPolicy::kFifo: return "FIFO";
    case EvictionPolicy::kRandom: return "random";
  }
  return "?";
}

struct CacheGeometry {
  std::uint64_t num_buckets = 0;  ///< n
  std::uint32_t associativity = 0;  ///< m (slots per bucket)
  /// Back the slot arena with transparent huge pages (MADV_HUGEPAGE). The
  /// slot array of a DRAM-sized cache is DTLB-capped under random bucket
  /// access; huge pages recover most of the batched-prefetch gain. Falls
  /// back gracefully where THP is unavailable.
  bool huge_pages = false;

  [[nodiscard]] std::uint64_t total_slots() const {
    return num_buckets * associativity;
  }

  [[nodiscard]] CacheGeometry with_huge_pages(bool enabled = true) const {
    CacheGeometry g = *this;
    g.huge_pages = enabled;
    return g;
  }

  /// m = 1: evict on hash collision.
  [[nodiscard]] static CacheGeometry hash_table(std::uint64_t pairs) {
    return make(pairs, 1);
  }

  /// n = 1: one bucket holding all pairs, exact global LRU.
  [[nodiscard]] static CacheGeometry fully_associative(std::uint64_t pairs) {
    if (pairs == 0) throw ConfigError{"CacheGeometry: zero pairs"};
    if (pairs > static_cast<std::uint64_t>(~std::uint32_t{0})) {
      throw ConfigError{"CacheGeometry: too many pairs for one bucket"};
    }
    return CacheGeometry{1, static_cast<std::uint32_t>(pairs)};
  }

  /// General k-way set-associative layout with `pairs` total slots.
  [[nodiscard]] static CacheGeometry set_associative(std::uint64_t pairs,
                                                     std::uint32_t ways) {
    return make(pairs, ways);
  }

  [[nodiscard]] std::string to_string() const {
    if (num_buckets == 1) return "fully-associative(" + std::to_string(associativity) + ")";
    if (associativity == 1) return "hash-table(" + std::to_string(num_buckets) + ")";
    return std::to_string(associativity) + "-way(" + std::to_string(num_buckets) +
           " buckets)";
  }

 private:
  [[nodiscard]] static CacheGeometry make(std::uint64_t pairs, std::uint32_t ways) {
    if (pairs == 0 || ways == 0) throw ConfigError{"CacheGeometry: zero size"};
    if (pairs % ways != 0) {
      throw ConfigError{"CacheGeometry: pairs must be a multiple of ways"};
    }
    return CacheGeometry{pairs / ways, ways};
  }
};

/// Number of key-value pairs a cache of `mbits` megabits holds at
/// `bits_per_pair` bits per pair — §4's sizing arithmetic (e.g. 8 Mbit at
/// 128 b/pair = 2^16 pairs).
[[nodiscard]] constexpr std::uint64_t pairs_for_mbits(double mbits, int bits_per_pair) {
  return static_cast<std::uint64_t>(mbits * 1024.0 * 1024.0 /
                                    static_cast<double>(bits_per_pair));
}

/// Inverse of pairs_for_mbits: cache size in Mbit.
[[nodiscard]] constexpr double mbits_for_pairs(std::uint64_t pairs, int bits_per_pair) {
  return static_cast<double>(pairs) * static_cast<double>(bits_per_pair) /
         (1024.0 * 1024.0);
}

}  // namespace perfq::kv
