// Aggregation keys for the programmable key-value store (§3.2).
//
// A key is the concatenation of the GROUPBY fields' canonical encodings —
// e.g. the transport 5-tuple is 13 bytes (104 bits, the figure §4 uses when
// sizing key-value pairs). Keys are small fixed-capacity values so the cache
// can store them inline, exactly as SRAM would.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace perfq::kv {

/// Fixed-capacity byte-string key. Max 32 bytes = 256 bits, comfortably above
/// any GROUPBY field combination in the paper.
class Key {
 public:
  static constexpr std::size_t kCapacity = 32;

  Key() = default;

  explicit Key(std::span<const std::byte> bytes) {
    if (bytes.size() > kCapacity) throw ConfigError{"kv::Key: key too long"};
    len_ = static_cast<std::uint8_t>(bytes.size());
    std::memcpy(bytes_.data(), bytes.data(), bytes.size());
  }

  /// Build a key from a list of 64-bit field values, packing each into the
  /// given number of bytes (big-endian). Used by the compiler's key extractor.
  static Key pack(std::span<const std::uint64_t> values,
                  std::span<const std::uint8_t> widths) {
    check(values.size() == widths.size(), "kv::Key::pack: arity mismatch");
    Key k;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (k.len_ + widths[i] > kCapacity) throw ConfigError{"kv::Key: key too long"};
      for (int b = widths[i] - 1; b >= 0; --b) {
        k.bytes_[k.len_++] = static_cast<std::byte>(values[i] >> (8 * b));
      }
    }
    return k;
  }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {bytes_.data(), len_};
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }

  [[nodiscard]] std::uint64_t hash(std::uint64_t seed = 0) const {
    return hash_bytes(bytes(), seed);
  }

  friend bool operator==(const Key& a, const Key& b) {
    return a.len_ == b.len_ &&
           std::memcmp(a.bytes_.data(), b.bytes_.data(), a.len_) == 0;
  }

  [[nodiscard]] std::string to_hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * len_);
    for (std::size_t i = 0; i < len_; ++i) {
      const auto v = std::to_integer<std::uint8_t>(bytes_[i]);
      out.push_back(kDigits[v >> 4]);
      out.push_back(kDigits[v & 0xF]);
    }
    return out;
  }

 private:
  std::array<std::byte, kCapacity> bytes_{};
  std::uint8_t len_ = 0;
};

}  // namespace perfq::kv

template <>
struct std::hash<perfq::kv::Key> {
  std::size_t operator()(const perfq::kv::Key& k) const noexcept {
    return static_cast<std::size_t>(k.hash());
  }
};
