// Aggregation keys for the programmable key-value store (§3.2).
//
// A key is the concatenation of the GROUPBY fields' canonical encodings —
// e.g. the transport 5-tuple is 13 bytes (104 bits, the figure §4 uses when
// sizing key-value pairs). Keys are small fixed-capacity values so the cache
// can store them inline, exactly as SRAM would.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace perfq::kv {

/// Fixed-capacity byte-string key. Max 32 bytes = 256 bits, comfortably above
/// any GROUPBY field combination in the paper.
///
/// Hot-path design: the 64-bit hash of the key bytes is computed ONCE at
/// construction and carried with the key (`raw_hash()`). Every downstream
/// consumer — the cache's bucket index, the per-bucket probe tag, and the
/// backing store's `std::unordered_map` — derives its value by mixing the
/// cached hash with its own seed instead of rehashing the bytes, so a packet
/// pays for exactly one byte-level hash no matter how many structures it
/// touches (§3.3's "one hash" per-packet budget).
class Key {
 public:
  static constexpr std::size_t kCapacity = 32;

  Key() : hash_(empty_hash()) {}

  explicit Key(std::span<const std::byte> bytes) {
    if (bytes.size() > kCapacity) throw ConfigError{"kv::Key: key too long"};
    len_ = static_cast<std::uint8_t>(bytes.size());
    std::memcpy(bytes_.data(), bytes.data(), bytes.size());
    hash_ = hash_bytes(this->bytes(), 0);
  }

  /// Build a key from a list of 64-bit field values, packing each into the
  /// given number of bytes (big-endian). Used by the compiler's key extractor.
  static Key pack(std::span<const std::uint64_t> values,
                  std::span<const std::uint8_t> widths) {
    Key k = pack_bytes(values, widths);
    k.hash_ = hash_bytes(k.bytes(), 0);
    return k;
  }

  /// pack() with the byte-level hash supplied by the caller instead of
  /// recomputed. The sharded runtime's record-direct dispatcher hashes the
  /// packed key bytes without materializing a Key; the shard worker re-packs
  /// the key on its own core and installs that hash here. The caller
  /// guarantees `raw_hash == hash_bytes(packed bytes, 0)` — every downstream
  /// consumer (bucket index, probe tag, std::hash) derives from it.
  static Key pack_prehashed(std::span<const std::uint64_t> values,
                            std::span<const std::uint8_t> widths,
                            std::uint64_t raw_hash) {
    Key k = pack_bytes(values, widths);
    k.hash_ = raw_hash;
    return k;
  }

  /// Key(bytes) with the byte-level hash supplied by the caller instead of
  /// recomputed — the byte-gather analogue of pack_prehashed(). The caller
  /// guarantees `raw_hash == hash_bytes(bytes, 0)`.
  static Key from_bytes_prehashed(std::span<const std::byte> bytes,
                                  std::uint64_t raw_hash) {
    if (bytes.size() > kCapacity) throw ConfigError{"kv::Key: key too long"};
    Key k;
    k.len_ = static_cast<std::uint8_t>(bytes.size());
    std::memcpy(k.bytes_.data(), bytes.data(), bytes.size());
    k.hash_ = raw_hash;
    return k;
  }

  /// The hash pack() would cache for these values/widths, without keeping
  /// the Key. Shares pack_bytes() so the byte layout the hash covers has
  /// exactly one definition — hash_packed(v, w) == pack(v, w).raw_hash().
  [[nodiscard]] static std::uint64_t hash_packed(
      std::span<const std::uint64_t> values,
      std::span<const std::uint8_t> widths) {
    return hash_bytes(pack_bytes(values, widths).bytes(), 0);
  }

  [[nodiscard]] std::span<const std::byte> bytes() const {
    return {bytes_.data(), len_};
  }
  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }

  /// The cached seed-0 hash of the key bytes; never rehashes.
  [[nodiscard]] std::uint64_t raw_hash() const { return hash_; }

  /// Seeded hash derived from the cached hash by mixing, not rehashing.
  /// Equal keys agree for every seed; distinct seeds give decorrelated
  /// values (mix64 is bijective, so no information is lost).
  [[nodiscard]] std::uint64_t hash(std::uint64_t seed = 0) const {
    return seed == 0 ? hash_ : mix64(hash_ ^ mix64(seed));
  }

  friend bool operator==(const Key& a, const Key& b) {
    return a.len_ == b.len_ &&
           std::memcmp(a.bytes_.data(), b.bytes_.data(), a.len_) == 0;
  }

  [[nodiscard]] std::string to_hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * len_);
    for (std::size_t i = 0; i < len_; ++i) {
      const auto v = std::to_integer<std::uint8_t>(bytes_[i]);
      out.push_back(kDigits[v >> 4]);
      out.push_back(kDigits[v & 0xF]);
    }
    return out;
  }

 private:
  /// Shared packing loop of pack()/pack_prehashed(): bytes and length only,
  /// hash left for the caller to install.
  static Key pack_bytes(std::span<const std::uint64_t> values,
                        std::span<const std::uint8_t> widths) {
    check(values.size() == widths.size(), "kv::Key::pack: arity mismatch");
    Key k;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (k.len_ + widths[i] > kCapacity) throw ConfigError{"kv::Key: key too long"};
      for (int b = widths[i] - 1; b >= 0; --b) {
        k.bytes_[k.len_++] = static_cast<std::byte>(values[i] >> (8 * b));
      }
    }
    return k;
  }

  /// Hash of the empty key, computed once: caches of millions of slots
  /// default-construct that many Keys, which must not each rehash.
  static std::uint64_t empty_hash() {
    static const std::uint64_t kEmptyHash = hash_bytes({}, 0);
    return kEmptyHash;
  }

  std::array<std::byte, kCapacity> bytes_{};
  std::uint64_t hash_ = 0;  ///< seed-0 hash of bytes(), maintained on mutation
  std::uint8_t len_ = 0;
};

/// Seed for `std::hash<Key>` (backing store and any other map users). Chosen
/// distinct from Cache's default bucket seed (0x5eedcafe) AND from the raw
/// seed-0 hash, so hash-map bucket placement is decorrelated from the SRAM
/// cache's bucket placement: a pathological trace that collides in one
/// structure does not automatically collide in the other.
inline constexpr std::uint64_t kStdHashSeed = 0x9e3779b97f4a7c15ULL;

}  // namespace perfq::kv

template <>
struct std::hash<perfq::kv::Key> {
  std::size_t operator()(const perfq::kv::Key& k) const noexcept {
    return static_cast<std::size_t>(k.hash(perfq::kv::kStdHashSeed));
  }
};
