#include "common/hugepage.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <unistd.h>
#endif

#include <cstdlib>

namespace perfq {

namespace {
constexpr std::size_t kHugePageBytes = 2u << 20;

std::size_t round_up_pages(std::size_t bytes) {
#if defined(__linux__)
  static const std::size_t page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  constexpr std::size_t page = 4096;
#endif
  if (bytes == 0) bytes = 1;
  return (bytes + page - 1) / page * page;
}
}  // namespace

void* map_pages(std::size_t bytes, bool huge) {
  const std::size_t len = round_up_pages(bytes);
#if defined(__linux__)
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc{};
  if (huge && len >= kHugePageBytes) {
#if defined(MADV_HUGEPAGE)
    // Best-effort: THP disabled or unaligned lengths just leave 4K pages.
    (void)::madvise(p, len, MADV_HUGEPAGE);
#endif
  }
  return p;
#else
  (void)huge;
  void* p = std::calloc(1, len);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
#endif
}

void unmap_pages(void* p, std::size_t bytes) noexcept {
  if (p == nullptr) return;
#if defined(__linux__)
  ::munmap(p, round_up_pages(bytes));
#else
  (void)bytes;
  std::free(p);
#endif
}

bool huge_pages_supported() {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  return true;
#else
  return false;
#endif
}

}  // namespace perfq
