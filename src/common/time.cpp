#include "common/time.hpp"

#include <array>
#include <cstdio>

namespace perfq {

std::string to_string(Nanos t) {
  if (t.is_infinite()) return "inf";
  const double ns = static_cast<double>(t.count());
  std::array<char, 64> buf{};
  if (t.count() < 1'000) {
    std::snprintf(buf.data(), buf.size(), "%lld ns", static_cast<long long>(t.count()));
  } else if (t.count() < 1'000'000) {
    std::snprintf(buf.data(), buf.size(), "%.3f us", ns / 1e3);
  } else if (t.count() < 1'000'000'000) {
    std::snprintf(buf.data(), buf.size(), "%.3f ms", ns / 1e6);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.3f s", ns / 1e9);
  }
  return std::string{buf.data()};
}

}  // namespace perfq
