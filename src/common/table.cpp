#include "common/table.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace perfq {

void TextTable::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error{"TextTable: header after rows"};
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::logic_error{"TextTable: row arity mismatch"};
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (const auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = "== " + title_ + " ==\n" + sep + render_row(header_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string TextTable::to_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

void TextTable::print() const { std::fputs(to_text().c_str(), stdout); }

std::string fmt_double(double v, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return std::string{buf.data()};
}

std::string fmt_percent(double fraction, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f%%", precision, fraction * 100.0);
  return std::string{buf.data()};
}

std::string fmt_si(double v, int precision) {
  std::array<char, 64> buf{};
  const double a = std::abs(v);
  if (a >= 1e9) {
    std::snprintf(buf.data(), buf.size(), "%.*fG", precision, v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf.data(), buf.size(), "%.*fM", precision, v / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf.data(), buf.size(), "%.*fK", precision, v / 1e3);
  } else {
    std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  }
  return std::string{buf.data()};
}

}  // namespace perfq
