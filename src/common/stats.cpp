#include "common/stats.hpp"

#include <stdexcept>

namespace perfq {

double Histogram::quantile(double q) const {
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile: q outside [0,1]"};
  const double target = q * static_cast<double>(total_);
  double cum = static_cast<double>(counts_.front());
  if (cum >= target && counts_.front() > 0) return lo_;
  const std::size_t nb = counts_.size() - 2;
  const double width = (hi_ - lo_) / static_cast<double>(nb);
  for (std::size_t i = 0; i < nb; ++i) {
    const double next = cum + static_cast<double>(counts_[i + 1]);
    if (next >= target && counts_[i + 1] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i + 1]);
      return lo_ + (static_cast<double>(i) + frac) * width;
    }
    cum = next;
  }
  return hi_;
}

double QuantileSample::quantile(double q) const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"quantile: q outside [0,1]"};
  std::vector<double> sorted = xs_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace perfq
