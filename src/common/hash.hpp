// Hash functions used across the project.
//
// The cache in src/kvstore indexes hash-table buckets by a 64-bit hash of the
// aggregation key (§3.2, Fig. 4). We provide:
//   - xxhash64-style mixing over arbitrary byte spans (fast, good avalanche);
//   - seeded variants so that independent structures (cache index, sketch
//     rows, trace generation) never share hash functions;
//   - a small utility for reducing a hash onto [0, n) without modulo bias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace perfq {

/// 64-bit hash of a byte span, xxhash64-inspired construction.
[[nodiscard]] std::uint64_t hash_bytes(std::span<const std::byte> data,
                                       std::uint64_t seed = 0);

/// Convenience overload for string data (e.g. field names).
[[nodiscard]] std::uint64_t hash_string(std::string_view s, std::uint64_t seed = 0);

/// Strong 64-bit integer mixer (splitmix64 finalizer). Bijective.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two hashes (boost-style but 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
}

/// Map a 64-bit hash uniformly onto [0, n) using the multiply-shift trick
/// (Lemire); avoids the bias and cost of `h % n`.
[[nodiscard]] constexpr std::uint64_t reduce_range(std::uint64_t h, std::uint64_t n) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * static_cast<unsigned __int128>(n)) >> 64);
}

}  // namespace perfq
