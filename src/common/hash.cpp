#include "common/hash.hpp"

#include <cstring>

namespace perfq {
namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

constexpr std::uint64_t rotl(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

std::uint64_t read_u64(const std::byte* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t round_step(std::uint64_t acc, std::uint64_t lane) {
  acc += lane * kPrime2;
  acc = rotl(acc, 31);
  return acc * kPrime1;
}

}  // namespace

std::uint64_t hash_bytes(std::span<const std::byte> data, std::uint64_t seed) {
  const std::byte* p = data.data();
  const std::byte* const end = p + data.size();
  std::uint64_t h = 0;

  if (data.size() >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    do {
      v1 = round_step(v1, read_u64(p));
      v2 = round_step(v2, read_u64(p + 8));
      v3 = round_step(v3, read_u64(p + 16));
      v4 = round_step(v4, read_u64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = (h ^ round_step(0, v1)) * kPrime1 + kPrime4;
    h = (h ^ round_step(0, v2)) * kPrime1 + kPrime4;
    h = (h ^ round_step(0, v3)) * kPrime1 + kPrime4;
    h = (h ^ round_step(0, v4)) * kPrime1 + kPrime4;
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<std::uint64_t>(data.size());

  while (p + 8 <= end) {
    h ^= round_step(0, read_u64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<std::uint64_t>(read_u32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(*p)) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
  }

  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

std::uint64_t hash_string(std::string_view s, std::uint64_t seed) {
  return hash_bytes(std::as_bytes(std::span{s.data(), s.size()}), seed);
}

}  // namespace perfq
