#include "common/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace perfq {

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s) : n_(n), s_(s) {
  if (n == 0) throw std::invalid_argument{"ZipfDistribution: n must be positive"};
  if (s < 0) throw std::invalid_argument{"ZipfDistribution: exponent must be >= 0"};
  if (n_ <= kTableLimit) {
    cdf_.resize(n_);
    double acc = 0.0;
    for (std::uint64_t k = 0; k < n_; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k + 1), s_);
      cdf_[k] = acc;
    }
    const double total = cdf_.back();
    for (double& c : cdf_) c /= total;
  } else {
    // Hörmann rejection-inversion setup (works for s != 1 and s == 1 via h()).
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    threshold_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s_));
  }
}

double ZipfDistribution::h(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  if (!cdf_.empty()) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const auto idx = static_cast<std::uint64_t>(it - cdf_.begin());
    return std::min(idx, n_ - 1);
  }
  // Rejection-inversion: sample until accepted; expected O(1) iterations.
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    const auto k = static_cast<std::uint64_t>(
        std::clamp(x + 0.5, 1.0, static_cast<double>(n_)));
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= h(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // ranks are 0-based externally
    }
  }
}

}  // namespace perfq
