// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints it as an aligned ASCII table plus (optionally) CSV, so results can
// be diffed and re-plotted.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace perfq {

/// Column-aligned text table with a title and optional CSV output.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render aligned ASCII to a string.
  [[nodiscard]] std::string to_text() const;

  /// Render RFC-4180-ish CSV (no quoting needed for our cell values).
  [[nodiscard]] std::string to_csv() const;

  /// Print to stdout (text form).
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers used by bench output.
[[nodiscard]] std::string fmt_double(double v, int precision = 3);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 2);
[[nodiscard]] std::string fmt_si(double v, int precision = 2);  // 802K, 3.2M, ...

}  // namespace perfq
