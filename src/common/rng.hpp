// Deterministic pseudo-random number generation and the distributions the
// workload generators need.
//
// Everything in the repository that is random takes an explicit seed so that
// every experiment, test, and benchmark is reproducible bit-for-bit.
// The core generator is xoshiro256** (public domain, Blackman & Vigna), which
// is fast, has 256 bits of state, and passes BigCrush.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/hash.hpp"

namespace perfq {

/// xoshiro256** pseudo-random generator. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // Seed expansion via splitmix64, per the xoshiro authors' recommendation.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      s = mix64(x);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) { return reduce_range((*this)(), n); }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as a log() argument.
  double uniform_pos() {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda) { return -std::log(uniform_pos()) / lambda; }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  double normal() {
    const double u1 = uniform_pos();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) { return std::exp(mu + sigma * normal()); }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed flow sizes).
  double pareto(double xm, double alpha) {
    return xm / std::pow(uniform_pos(), 1.0 / alpha);
  }

  /// Split off an independent generator; children of distinct indices are
  /// decorrelated from each other and from the parent.
  [[nodiscard]] Rng split(std::uint64_t index) const {
    return Rng{mix64(state_[0] ^ mix64(index + 0x517CC1B727220A95ULL))};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int r) {
    return (v << r) | (v >> (64 - r));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over ranks {0, ..., n-1}: P(k) proportional to 1/(k+1)^s.
///
/// Uses the bisection-over-CDF method with a precomputed prefix table for
/// small n and rejection-inversion (Hörmann) for large n, so construction is
/// O(min(n, 1)) memory for the large case and sampling is O(1) expected.
class ZipfDistribution {
 public:
  ZipfDistribution(std::uint64_t n, double s);

  [[nodiscard]] std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t size() const { return n_; }
  [[nodiscard]] double exponent() const { return s_; }

 private:
  [[nodiscard]] double h(double x) const;          // integral of 1/x^s
  [[nodiscard]] double h_inv(double x) const;      // inverse of h
  std::uint64_t n_;
  double s_;
  // Rejection-inversion constants.
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double threshold_ = 0.0;
  // Small-n exact CDF table (used when n_ <= kTableLimit).
  static constexpr std::uint64_t kTableLimit = 1u << 16;
  std::vector<double> cdf_;
};

}  // namespace perfq
