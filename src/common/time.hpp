// Simulation time types.
//
// All simulator components exchange time as integer nanoseconds wrapped in a
// strong type so that raw integers (packet counts, byte counts, ...) cannot be
// accidentally used as timestamps. The paper's hardware runs a 1 GHz pipeline,
// i.e. one packet per nanosecond, so nanosecond resolution is exact for every
// experiment in §4.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace perfq {

/// A point in simulated time, in nanoseconds since simulation start.
class Nanos {
 public:
  constexpr Nanos() = default;
  constexpr explicit Nanos(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t count() const { return ns_; }

  /// Sentinel used for "packet was dropped": the paper assigns tout = infinity
  /// to dropped packets so that WHERE tout == infinity selects drops.
  [[nodiscard]] static constexpr Nanos infinity() {
    return Nanos{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr auto operator<=>(Nanos, Nanos) = default;

  constexpr Nanos& operator+=(Nanos d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr Nanos& operator-=(Nanos d) {
    ns_ -= d.ns_;
    return *this;
  }
  friend constexpr Nanos operator+(Nanos a, Nanos b) { return Nanos{a.ns_ + b.ns_}; }
  friend constexpr Nanos operator-(Nanos a, Nanos b) { return Nanos{a.ns_ - b.ns_}; }
  friend constexpr Nanos operator*(Nanos a, std::int64_t k) { return Nanos{a.ns_ * k}; }
  friend constexpr Nanos operator*(std::int64_t k, Nanos a) { return Nanos{a.ns_ * k}; }

 private:
  std::int64_t ns_ = 0;
};

constexpr Nanos operator""_ns(unsigned long long v) {
  return Nanos{static_cast<std::int64_t>(v)};
}
constexpr Nanos operator""_us(unsigned long long v) {
  return Nanos{static_cast<std::int64_t>(v) * 1'000};
}
constexpr Nanos operator""_ms(unsigned long long v) {
  return Nanos{static_cast<std::int64_t>(v) * 1'000'000};
}
constexpr Nanos operator""_s(unsigned long long v) {
  return Nanos{static_cast<std::int64_t>(v) * 1'000'000'000};
}

/// Seconds as a double, for reporting only (never for simulation arithmetic).
[[nodiscard]] inline double to_seconds(Nanos t) {
  return static_cast<double>(t.count()) * 1e-9;
}

/// Human-readable rendering, e.g. "1.500 ms" or "inf".
[[nodiscard]] std::string to_string(Nanos t);

}  // namespace perfq
