#include "common/failpoint.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>

namespace perfq::failpoint {
namespace {

struct Site {
  Spec spec;
  bool armed = false;
  std::uint64_t hits = 0;   ///< evaluations while armed
  std::uint64_t fires = 0;  ///< actions taken (past skip, within count)
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

/// Fast-path gate: evaluate() returns immediately while zero sites are
/// armed, so instrumented-but-idle builds pay one relaxed load per site.
std::atomic<std::uint64_t> g_armed{0};

/// One-shot PERFQ_FAILPOINTS env parsing. Grammar documented in the header.
std::once_flag g_env_once;

void arm_from_env() {
  const char* env = std::getenv("PERFQ_FAILPOINTS");
  if (env == nullptr) return;
  std::string_view rest{env};
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view entry = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;  // malformed entry
    const std::string name{entry.substr(0, eq)};
    std::string_view opts = entry.substr(eq + 1);
    Spec spec;
    bool first = true;
    bool ok = true;
    while (!opts.empty()) {
      const std::size_t colon = opts.find(':');
      std::string_view tok = opts.substr(0, colon);
      opts = colon == std::string_view::npos ? std::string_view{}
                                             : opts.substr(colon + 1);
      const auto parse_u64 = [&ok](std::string_view s) -> std::uint64_t {
        if (s.empty()) ok = false;
        std::uint64_t v = 0;
        for (const char c : s) {
          if (c < '0' || c > '9') {
            ok = false;
            break;
          }
          v = v * 10 + static_cast<std::uint64_t>(c - '0');
        }
        return v;
      };
      if (first) {
        first = false;
        if (tok == "throw") {
          spec.action = Action::kThrow;
        } else if (tok.substr(0, 5) == "sleep") {
          spec.action = Action::kSleep;
          spec.sleep_ms = static_cast<std::uint32_t>(parse_u64(tok.substr(5)));
        } else {
          ok = false;
        }
      } else if (tok.substr(0, 5) == "skip=") {
        spec.skip = parse_u64(tok.substr(5));
      } else if (tok.substr(0, 6) == "count=") {
        spec.count = parse_u64(tok.substr(6));
      } else {
        ok = false;
      }
    }
    if (ok && !first) arm(name, spec);
  }
}

}  // namespace

bool compiled_in() {
#if defined(PERFQ_FAILPOINTS)
  return true;
#else
  return false;
#endif
}

void arm(const std::string& name, Spec spec) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  Site& site = r.sites[name];
  if (!site.armed) g_armed.fetch_add(1, std::memory_order_relaxed);
  site.spec = spec;
  site.armed = true;
  site.hits = 0;
  site.fires = 0;
}

void disarm(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(name);
  if (it == r.sites.end() || !it->second.armed) return;
  it->second.armed = false;
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.sites) {
    if (site.armed) {
      site.armed = false;
      g_armed.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

std::uint64_t hit_count(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fire_count(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.fires;
}

void evaluate(const char* name) {
  std::call_once(g_env_once, arm_from_env);
  if (g_armed.load(std::memory_order_relaxed) == 0) return;
  Spec spec;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    const auto it = r.sites.find(name);
    if (it == r.sites.end() || !it->second.armed) return;
    Site& site = it->second;
    ++site.hits;
    if (site.hits <= site.spec.skip) return;
    if (site.spec.count != 0 && site.fires >= site.spec.count) return;
    ++site.fires;
    spec = site.spec;
  }
  // Act outside the lock: a sleeping or throwing site must not hold the
  // registry hostage (other threads keep evaluating their own sites).
  switch (spec.action) {
    case Action::kThrow:
      throw FaultInjected{std::string{"failpoint "} + name};
    case Action::kSleep:
      std::this_thread::sleep_for(std::chrono::milliseconds{spec.sleep_ms});
      break;
  }
}

}  // namespace perfq::failpoint
