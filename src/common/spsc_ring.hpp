// Fixed-capacity single-producer/single-consumer ring buffer.
//
// This is the record conduit of the sharded runtime (src/runtime/sharded):
// the dispatcher thread is the sole producer of each shard's ring and the
// shard worker its sole consumer, so the ring needs no locks — just one
// release store per publish and one acquire load per consume (the classic
// Lamport queue with cached counterparts, as in DPDK-style forwarders).
//
// Layout notes:
//   - head_ (consumer cursor) and tail_ (producer cursor) live on separate
//     cache lines so the two threads never false-share.
//   - Each side keeps a *cached* copy of the other side's cursor on its own
//     line and only re-reads the shared atomic when the cached value says the
//     ring looks full/empty, which keeps steady-state cross-core traffic to
//     the unavoidable data lines.
//   - Indices increase monotonically (mod 2^64) and are masked into the slot
//     array; capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace perfq {

/// Destructive interference distance. The C++17 constant is not constexpr-
/// portable across our toolchains; 64 bytes is correct for every x86-64 and
/// almost every aarch64 part we target.
inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (min 2).
  explicit SpscRing(std::size_t capacity) {
    if (capacity == 0) throw ConfigError{"SpscRing: zero capacity"};
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side: move as many of `items` into the ring as fit right now.
  /// Returns the number consumed from `items` (0 when full). Publishing is a
  /// single release store, so a batch becomes visible to the consumer at once.
  std::size_t push_bulk(std::span<T> items) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - (tail - cached_head_);
    if (free < items.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
    }
    const std::size_t n = free < items.size() ? free : items.size();
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  bool try_push(T&& item) { return push_bulk({&item, 1}) == 1; }

  /// Consumer side: move up to `out.size()` items out of the ring. Returns
  /// the number produced (0 when empty).
  std::size_t pop_bulk(std::span<T> out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n = avail < out.size() ? avail : out.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  bool try_pop(T& out) { return pop_bulk({&out, 1}) == 1; }

  /// Consumer-side emptiness check (exact for the consumer; a hint for
  /// anyone else).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy, readable from any thread (exact only when both
  /// sides are quiescent). Used by the drain watchdog's diagnostic dump.
  [[nodiscard]] std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::size_t mask_ = 0;
  std::vector<T> slots_;
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(kCacheLineBytes) std::size_t cached_tail_ = 0;       ///< consumer's view of tail_
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(kCacheLineBytes) std::size_t cached_head_ = 0;       ///< producer's view of head_
};

}  // namespace perfq
