// Error handling for the perfq library.
//
// Following the Core Guidelines (I.10, E.2) we signal failures with
// exceptions. The hierarchy distinguishes user-facing query errors (bad
// syntax, type errors, uncompilable constructs) from internal invariant
// violations, so callers like the REPL example can catch QueryError and keep
// running while programming bugs still terminate loudly.
#pragma once

#include <stdexcept>
#include <string>

namespace perfq {

/// Base class of all perfq exceptions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A problem with a user-supplied query: lexing, parsing, type checking, or
/// a construct the compiler cannot lower to the switch primitives.
class QueryError : public Error {
 public:
  QueryError(std::string stage, std::string message, int line = 0, int column = 0)
      : Error(format(stage, message, line, column)),
        stage_(std::move(stage)),
        line_(line),
        column_(column) {}

  [[nodiscard]] const std::string& stage() const { return stage_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] int column() const { return column_; }

 private:
  static std::string format(const std::string& stage, const std::string& message,
                            int line, int column) {
    std::string out = stage + " error";
    if (line > 0) {
      out += " at " + std::to_string(line) + ":" + std::to_string(column);
    }
    out += ": " + message;
    return out;
  }
  std::string stage_;
  int line_;
  int column_;
};

/// Misconfiguration of a simulator/hardware component (e.g. zero-slot cache).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation; indicates a bug in perfq itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

/// Throw InternalError if `condition` is false. Cheap enough to keep enabled
/// in release builds; used for invariants that guard data integrity.
inline void check(bool condition, const char* message) {
  if (!condition) throw InternalError{message};
}

}  // namespace perfq
