// Streaming statistics helpers used by the evaluation harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace perfq {

/// Streaming mean/variance/min/max (Welford). O(1) space.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets + 2, 0) {}

  void add(double x) { add_count(x, 1); }

  /// Add `n` observations at `x` in one step — the bulk-load path for
  /// rebuilding a histogram from pre-bucketed counts (obs::HistogramSnapshot
  /// reuses quantile() through this).
  void add_count(double x, std::uint64_t n) {
    if (n == 0) return;
    total_ += n;
    if (x < lo_) {
      counts_.front() += n;
    } else if (x >= hi_) {
      counts_.back() += n;
    } else {
      const auto b = static_cast<std::size_t>(
          (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size() - 2));
      counts_[b + 1] += n;
    }
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return counts_.front(); }
  [[nodiscard]] std::uint64_t overflow() const { return counts_.back(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i + 1]; }
  [[nodiscard]] std::size_t buckets() const { return counts_.size() - 2; }

  /// Bucket-interpolated quantile; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact quantiles over a stored sample (used where samples are modest).
class QuantileSample {
 public:
  void add(double x) { xs_.push_back(x); }
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

  /// q in [0, 1]; nearest-rank on a sorted copy.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> xs_;
};

}  // namespace perfq
