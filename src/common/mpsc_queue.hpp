// Unbounded multi-producer queue with swap-based draining.
//
// The sharded runtime's eviction path uses one of these per shard: the shard
// worker pushes EvictedValue batches (it is the queue's only producer — the
// per-key epoch-order contract of the backing store's merge depends on one
// FIFO stream per key, so keep it that way), and the background merge thread
// drains whole batches at a time into the concurrent backing store.
// Throughput here is nowhere near the fold path's,
// so a mutex with O(1) swap-drain beats a lock-free list in both simplicity
// and cache behavior: producers append to a vector, the consumer swaps it
// out wholesale and reuses its own buffer's capacity across drains.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

namespace perfq {

template <typename T>
class MpscQueue {
 public:
  void push(T&& item) {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(item));
  }

  /// Move the whole `batch` in under one lock; `batch` is left empty with its
  /// capacity intact (producers reuse it as their staging buffer).
  void push_batch(std::vector<T>& batch) {
    if (batch.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        items_.swap(batch);
      } else {
        items_.insert(items_.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
      }
    }
    batch.clear();
  }

  /// Swap all queued items into `out` (cleared first). Returns false if the
  /// queue was empty. FIFO per producer, which is what the per-key epoch
  /// merge order requires (each key's evictions come from a single shard).
  bool drain(std::vector<T>& out) {
    out.clear();
    const std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    items_.swap(out);
    return true;
  }

  [[nodiscard]] bool empty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::vector<T> items_;
};

}  // namespace perfq
