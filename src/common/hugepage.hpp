// Page-granular allocation with optional transparent-huge-page advice.
//
// The cache's slot arena is the one multi-hundred-megabyte array on the fold
// hot path; at 4 KiB pages its random bucket accesses are DTLB-capped (the
// ROADMAP "batch gain" item). Backing it with 2 MiB pages cuts TLB reach
// pressure by 512x. We use MADV_HUGEPAGE rather than hugetlbfs so no
// reservation or privileges are needed: on kernels with THP=never the advice
// is simply ignored and everything still works — the required graceful
// fallback.
#pragma once

#include <cstddef>
#include <new>

namespace perfq {

/// mmap `bytes` of zeroed anonymous memory (rounded up to page size); when
/// `huge` is set and the region is at least one huge page, advise the kernel
/// to back it with transparent huge pages. Throws std::bad_alloc on failure.
[[nodiscard]] void* map_pages(std::size_t bytes, bool huge);

/// Release a map_pages() region. `bytes` must match the allocation request.
void unmap_pages(void* p, std::size_t bytes) noexcept;

/// True when the platform can honor MADV_HUGEPAGE (best effort; used by
/// benches to annotate results, never to gate correctness).
[[nodiscard]] bool huge_pages_supported();

/// STL allocator over map_pages(). The advice flag only changes how the
/// kernel backs the pages, never how they are freed, so all PageAllocators
/// are interchangeable (operator== is always true) and containers can carry
/// the flag as runtime state.
template <typename T>
class PageAllocator {
 public:
  using value_type = T;

  PageAllocator() = default;
  explicit PageAllocator(bool huge) : huge_(huge) {}
  template <typename U>
  PageAllocator(const PageAllocator<U>& other) : huge_(other.huge()) {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(map_pages(n * sizeof(T), huge_));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    unmap_pages(p, n * sizeof(T));
  }

  [[nodiscard]] bool huge() const { return huge_; }

  friend bool operator==(const PageAllocator&, const PageAllocator&) {
    return true;
  }

 private:
  bool huge_ = false;
};

}  // namespace perfq
