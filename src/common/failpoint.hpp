// Failpoint fault injection: named sites compiled into the engine's failure
// domains (fold core, eviction path, ring push/pop, merge thread, snapshot
// rendezvous) that tests can arm to throw or stall on demand.
//
// The whole framework is compiled OUT by default: PERFQ_FAILPOINT(name)
// expands to nothing unless the build defines PERFQ_FAILPOINTS (CMake option
// -DPERFQ_FAILPOINTS=ON), so the hot paths carry zero cost in production
// builds. In an instrumented build a disarmed site costs one relaxed atomic
// load (a global armed-site counter); only armed sites take the registry
// lock. The arm/disarm/hit_count API below is compiled unconditionally so
// test code links in every build and can skip itself via compiled_in().
//
// Triggers:
//   - programmatic: failpoint::arm("sharded.ring_pop", {...}) / disarm /
//     disarm_all (tests use this; always disarm_all in teardown);
//   - environment:  PERFQ_FAILPOINTS="site=throw;site2=sleep50:skip=3:count=1"
//     parsed once on first site evaluation — lets a stock binary run a fault
//     drill without recompiling the harness.
//
// Spec grammar (env form): `name=action[:skip=N][:count=M]` entries joined
// by ';'. Actions: `throw` (throw FaultInjected at the site) or `sleep<ms>`
// (stall the calling thread — exercises the drain watchdogs). `skip` fires
// the action only after N hits; `count` fires it at most M times (0 = every
// hit once past skip).
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

#if defined(PERFQ_FAILPOINTS)
#define PERFQ_FAILPOINT(name) ::perfq::failpoint::evaluate(name)
#else
#define PERFQ_FAILPOINT(name) ((void)0)
#endif

namespace perfq {

/// The exception an armed `throw` failpoint raises: a synthetic fault,
/// distinguishable from organic errors so tests can assert provenance.
class FaultInjected : public Error {
 public:
  using Error::Error;
};

namespace failpoint {

enum class Action : std::uint8_t {
  kThrow,  ///< throw FaultInjected{"failpoint <name>"}
  kSleep,  ///< stall the calling thread for sleep_ms milliseconds
};

struct Spec {
  Action action = Action::kThrow;
  std::uint32_t sleep_ms = 0;  ///< kSleep only
  std::uint64_t skip = 0;      ///< hits to pass through before firing
  std::uint64_t count = 0;     ///< max fires (0 = unlimited once past skip)
};

/// True when the library was built with -DPERFQ_FAILPOINTS=ON, i.e. the
/// PERFQ_FAILPOINT sites actually call evaluate(). Tests gate on this.
[[nodiscard]] bool compiled_in();

/// Arm `name` with `spec`. Replaces any existing spec (hit/fire counters
/// reset). Safe from any thread.
void arm(const std::string& name, Spec spec);

/// Disarm one site / every site (counters kept for hit_count()).
void disarm(const std::string& name);
void disarm_all();

/// Hits observed at a site since it was (last) armed. Zero for names never
/// armed — disarmed sites are not tracked, to keep them near-free.
[[nodiscard]] std::uint64_t hit_count(const std::string& name);

/// Times the site's action actually fired (past skip, within count).
[[nodiscard]] std::uint64_t fire_count(const std::string& name);

/// The site call, reached through the PERFQ_FAILPOINT macro. May throw
/// FaultInjected or sleep, per the armed spec; a no-op when nothing is armed.
void evaluate(const char* name);

}  // namespace failpoint
}  // namespace perfq
