// Functional model of the paper's switch architecture (§3):
//
//   frame bytes -> programmable parser -> match stages (TCAM where the WHERE
//   predicate is match-expressible, ALU fallback otherwise) -> stateful
//   key-value store stage -> (record continues to the queue/telemetry path).
//
// SwitchPipeline is the architectural counterpart of runtime::QueryEngine's
// processing loop: it consumes raw frames plus the queue metadata the
// traffic manager supplies (enqueue/dequeue timestamps, depth — §3.1 notes
// these "are provided by metadata available on programmable switches"), and
// must produce byte-identical aggregation state. Tests assert exactly that.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "compiler/program.hpp"
#include "kvstore/kvstore.hpp"
#include "switchsim/match_compiler.hpp"
#include "switchsim/parser.hpp"
#include "switchsim/tcam.hpp"

namespace perfq::sw {

/// Per-packet metadata injected by the traffic manager.
struct QueueMetadata {
  std::uint32_t qid = 0;
  Nanos tin;
  Nanos tout;
  std::uint32_t qsize = 0;
};

struct StageReport {
  std::string query;
  bool tcam = false;             ///< predicate realized as match entries
  std::size_t tcam_entries = 0;
  std::uint64_t matched = 0;     ///< records passed to the KV stage
  std::uint64_t filtered = 0;    ///< records rejected by the predicate
};

class SwitchPipeline {
 public:
  /// The pipeline holds a reference to `program`; it must outlive this.
  SwitchPipeline(const compiler::CompiledProgram& program,
                 kv::CacheGeometry geometry,
                 ParserGraph parser = ParserGraph::standard());

  /// Parse a raw frame and run every query stage.
  void process_frame(std::span<const std::byte> frame, const QueueMetadata& meta);

  /// Run stages on an already-parsed record (bypasses the parser).
  void process_record(const PacketRecord& rec);

  void flush(Nanos now);

  [[nodiscard]] const kv::KeyValueStore& store(std::size_t stage) const {
    return *stages_.at(stage).store;
  }
  [[nodiscard]] std::vector<StageReport> report() const;
  [[nodiscard]] std::uint64_t frames_parsed() const { return frames_; }
  [[nodiscard]] std::size_t stage_count() const { return stages_.size(); }

 private:
  struct Stage {
    const compiler::SwitchQueryPlan* plan;
    std::optional<TcamTable> tcam;  ///< engaged when predicate lowered
    std::unique_ptr<kv::KeyValueStore> store;
    std::uint64_t matched = 0;
    std::uint64_t filtered = 0;
  };

  const compiler::CompiledProgram& program_;
  ParserGraph parser_;
  std::vector<Stage> stages_;
  std::uint64_t frames_ = 0;
};

}  // namespace perfq::sw
