#include "switchsim/pipeline.hpp"

#include "common/error.hpp"

namespace perfq::sw {

SwitchPipeline::SwitchPipeline(const compiler::CompiledProgram& program,
                               kv::CacheGeometry geometry, ParserGraph parser)
    : program_(program), parser_(std::move(parser)) {
  for (const auto& plan : program_.switch_plans) {
    Stage stage;
    stage.plan = &plan;
    stage.store = std::make_unique<kv::KeyValueStore>(geometry, plan.kernel);
    if (plan.prefilter_ast != nullptr) {
      auto entries = compile_where_to_tcam(*plan.prefilter_ast, /*action=*/1);
      if (entries.has_value()) {
        TcamTable table;
        for (auto& e : *entries) table.install(std::move(e));
        stage.tcam = std::move(table);
      }
    }
    stages_.push_back(std::move(stage));
  }
}

void SwitchPipeline::process_frame(std::span<const std::byte> frame,
                                   const QueueMetadata& meta) {
  const ParserGraph::Result parsed = parser_.parse(frame);
  ++frames_;
  PacketRecord rec;
  rec.pkt = parsed.pkt;
  rec.qid = meta.qid;
  rec.tin = meta.tin;
  rec.tout = meta.tout;
  rec.qsize = meta.qsize;
  process_record(rec);
}

void SwitchPipeline::process_record(const PacketRecord& rec) {
  for (Stage& stage : stages_) {
    bool pass = true;
    if (stage.tcam.has_value()) {
      pass = stage.tcam->lookup(rec).has_value();
    } else if (stage.plan->prefilter.has_value()) {
      pass = stage.plan->prefilter->eval_bool(compiler::RecordSource({&rec, 1}));
    }
    if (!pass) {
      ++stage.filtered;
      continue;
    }
    ++stage.matched;
    stage.store->process(compiler::extract_key(*stage.plan, rec), rec);
  }
}

void SwitchPipeline::flush(Nanos now) {
  for (Stage& stage : stages_) stage.store->flush(now);
}

std::vector<StageReport> SwitchPipeline::report() const {
  std::vector<StageReport> out;
  for (const auto& stage : stages_) {
    StageReport r;
    r.query = stage.plan->name;
    r.tcam = stage.tcam.has_value();
    r.tcam_entries = stage.tcam.has_value() ? stage.tcam->size() : 0;
    r.matched = stage.matched;
    r.filtered = stage.filtered;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace perfq::sw
