// Table-driven programmable packet parser (§3.1 cites Gibb et al., "Design
// Principles for Packet Parsers").
//
// A ParserGraph is a set of states; each state extracts header fields at
// byte offsets, then selects the next state from a (offset, width) -> value
// transition table, exactly like a P4 parser's state machine. standard()
// builds the Ethernet/IPv4/{TCP,UDP} graph matching src/packet/wire.hpp; the
// point of keeping it table-driven is that tests can extend or reprogram the
// graph without touching code — the paper's "flexible packet parsing".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/packet.hpp"

namespace perfq::sw {

/// Destination slots a parser can write into (a subset of Packet's fields).
enum class PacketSlot : std::uint8_t {
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProto,
  kTcpSeq,
  kTcpFlags,
  kIpTtl,
  kIpTotalLen,
  kIpIdent,
};

struct FieldExtract {
  std::size_t offset = 0;  ///< bytes from the start of this header
  std::size_t width = 0;   ///< 1, 2, or 4 bytes (big-endian)
  PacketSlot slot = PacketSlot::kSrcIp;
};

struct ParserState {
  std::string name;
  std::size_t header_len = 0;
  std::vector<FieldExtract> extracts;
  /// Select the next state by a header field value; empty selector = accept.
  std::size_t select_offset = 0;
  std::size_t select_width = 0;
  std::map<std::uint64_t, std::string> transitions;
  bool accept = false;
};

class ParserGraph {
 public:
  void add_state(ParserState state);
  void set_start(std::string name) { start_ = std::move(name); }

  /// Walk the graph over `bytes`; fills a Packet. Throws ConfigError on
  /// truncated input or missing transitions.
  struct Result {
    Packet pkt;
    std::size_t header_bytes = 0;
    std::vector<std::string> path;  ///< visited state names (tests/debug)
  };
  [[nodiscard]] Result parse(std::span<const std::byte> bytes) const;

  /// The Ethernet II / IPv4 / {TCP, UDP} graph used by the repo's wire
  /// format.
  [[nodiscard]] static ParserGraph standard();

  [[nodiscard]] std::size_t state_count() const { return states_.size(); }

 private:
  [[nodiscard]] const ParserState& state(const std::string& name) const;
  std::vector<ParserState> states_;
  std::string start_;
};

}  // namespace perfq::sw
