#include "switchsim/tcam.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace perfq::sw {

bool TcamEntry::matches_record(const PacketRecord& rec) const {
  for (const auto& m : matches) {
    const double v = field_value(rec, m.field);
    // Ternary matching is defined over integer field encodings; infinity
    // (dropped tout) saturates to all-ones within the field width.
    std::uint64_t bits;
    if (v == std::numeric_limits<double>::infinity()) {
      bits = ~std::uint64_t{0};
    } else {
      bits = static_cast<std::uint64_t>(v);
    }
    if (!m.matches(bits)) return false;
  }
  return true;
}

void TcamTable::install(TcamEntry entry) {
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const TcamEntry& a, const TcamEntry& b) { return a.priority > b.priority; });
  entries_.insert(pos, std::move(entry));
}

std::optional<std::uint32_t> TcamTable::lookup(const PacketRecord& rec) const {
  for (const auto& entry : entries_) {
    if (entry.matches_record(rec)) return entry.action;
  }
  return std::nullopt;
}

std::vector<TernaryMatch> range_to_prefixes(FieldId field, std::uint64_t lo,
                                            std::uint64_t hi, int bits) {
  if (lo > hi) throw ConfigError{"range_to_prefixes: lo > hi"};
  if (bits < 1 || bits > 64) throw ConfigError{"range_to_prefixes: bad width"};
  const std::uint64_t full =
      bits == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  if (hi > full) throw ConfigError{"range_to_prefixes: hi exceeds field width"};

  std::vector<TernaryMatch> out;
  std::uint64_t cursor = lo;
  for (;;) {
    // Largest aligned power-of-two block starting at cursor that fits in
    // [cursor, hi].
    int block = 0;
    while (block < bits) {
      const std::uint64_t size = std::uint64_t{1} << (block + 1);
      const bool aligned = (cursor & (size - 1)) == 0;
      const bool fits = cursor + size - 1 <= hi && cursor + size - 1 >= cursor;
      if (!aligned || !fits) break;
      ++block;
    }
    const std::uint64_t size = std::uint64_t{1} << block;
    TernaryMatch m;
    m.field = field;
    m.value = cursor;
    m.mask = full & ~(size - 1);
    out.push_back(m);
    if (hi - cursor < size) break;  // covered through hi
    cursor += size;
    if (cursor == 0) break;  // wrapped (bits == 64 full range)
  }
  return out;
}

}  // namespace perfq::sw
