// Lowering WHERE predicates to TCAM entries (§3.1: "we can implement the
// WHERE predicate as the match condition" of a match-action stage).
//
// Supported shape: a conjunction (AND) of comparisons between a base-schema
// field and a constant. Each comparison becomes one or two integer ranges,
// ranges expand to prefixes, and the conjunction becomes the cross product.
// Predicates outside this shape (arithmetic between fields such as
// `tout - tin > 1ms`, disjunctions, ...) return nullopt; the pipeline then
// falls back to an ALU-stage evaluation (compiler::ScalarExpr), mirroring
// how real designs split work between match stages and action ALUs.
#pragma once

#include <optional>
#include <vector>

#include "lang/ast.hpp"
#include "switchsim/tcam.hpp"

namespace perfq::sw {

/// Maximum entries a single predicate may expand to before we refuse
/// (mirrors real TCAM capacity pressure).
inline constexpr std::size_t kMaxTcamEntries = 4096;

/// Lower `where` to TCAM entries with the given action id. Returns nullopt
/// if the predicate is not TCAM-expressible.
[[nodiscard]] std::optional<std::vector<TcamEntry>> compile_where_to_tcam(
    const lang::Expr& where, std::uint32_t action);

}  // namespace perfq::sw
