#include "switchsim/match_compiler.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace perfq::sw {
namespace {

using lang::BinaryOp;
using lang::Expr;
using lang::ExprKind;

/// A comparison lowered to a disjunction of per-field ternary alternatives.
using Alternatives = std::vector<TernaryMatch>;

std::optional<FieldId> field_of(const Expr& e) {
  if (e.kind != ExprKind::kName) return std::nullopt;
  return field_from_name(e.name);
}

std::optional<double> constant_of(const Expr& e) {
  if (e.kind == ExprKind::kNumber) return e.number;
  if (e.kind == ExprKind::kInfinity) {
    return std::numeric_limits<double>::infinity();
  }
  // Built-in value constants were already folded to numbers by sema.
  return std::nullopt;
}

BinaryOp flip(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // == and != are symmetric
  }
}

std::optional<Alternatives> lower_comparison(const Expr& e) {
  if (e.kind != ExprKind::kBinary || !lang::is_comparison(e.op)) {
    return std::nullopt;
  }
  // Normalize to `field op constant`.
  auto field = field_of(*e.lhs);
  auto konst = constant_of(*e.rhs);
  BinaryOp op = e.op;
  if (!field.has_value() || !konst.has_value()) {
    field = field_of(*e.rhs);
    konst = constant_of(*e.lhs);
    op = flip(op);
  }
  if (!field.has_value() || !konst.has_value()) return std::nullopt;

  const int bits = field_bits(*field);
  const std::uint64_t full =
      bits == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);

  // Infinity (drop sentinel) saturates to the all-ones encoding.
  const double value = *konst;
  std::uint64_t k;
  if (std::isinf(value)) {
    k = full;
  } else if (value < 0) {
    // Fields are unsigned; comparisons against negatives are degenerate.
    switch (op) {
      case BinaryOp::kGt:
      case BinaryOp::kGe:
      case BinaryOp::kNe:
        return Alternatives{TernaryMatch{*field, 0, 0}};  // always true
      default:
        return Alternatives{};  // always false (no alternatives)
    }
  } else {
    k = static_cast<std::uint64_t>(std::llround(std::min(
        value, static_cast<double>(full))));
  }

  auto ranges = [&](std::uint64_t lo, std::uint64_t hi) -> Alternatives {
    if (lo > hi) return {};
    return range_to_prefixes(*field, lo, hi, bits);
  };

  switch (op) {
    case BinaryOp::kEq:
      return Alternatives{TernaryMatch{*field, k, full}};
    case BinaryOp::kNe: {
      Alternatives alts;
      if (k > 0) {
        for (auto& m : ranges(0, k - 1)) alts.push_back(m);
      }
      if (k < full) {
        for (auto& m : ranges(k + 1, full)) alts.push_back(m);
      }
      return alts;
    }
    case BinaryOp::kLt: return k == 0 ? Alternatives{} : ranges(0, k - 1);
    case BinaryOp::kLe: return ranges(0, k);
    case BinaryOp::kGt: return k == full ? Alternatives{} : ranges(k + 1, full);
    case BinaryOp::kGe: return ranges(k, full);
    default: return std::nullopt;
  }
}

/// Collect the conjuncts of a chain of ANDs.
bool collect_conjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kAnd) {
    return collect_conjuncts(*e.lhs, out) && collect_conjuncts(*e.rhs, out);
  }
  out.push_back(&e);
  return true;
}

}  // namespace

std::optional<std::vector<TcamEntry>> compile_where_to_tcam(const Expr& where,
                                                            std::uint32_t action) {
  std::vector<const Expr*> conjuncts;
  if (!collect_conjuncts(where, conjuncts)) return std::nullopt;

  std::vector<Alternatives> per_conjunct;
  for (const Expr* c : conjuncts) {
    auto alts = lower_comparison(*c);
    if (!alts.has_value()) return std::nullopt;
    per_conjunct.push_back(std::move(*alts));
  }

  // Cross product of alternatives -> entries.
  std::vector<TcamEntry> entries;
  entries.push_back(TcamEntry{{}, action, 0});
  for (const auto& alts : per_conjunct) {
    if (alts.empty()) return std::vector<TcamEntry>{};  // always-false
    std::vector<TcamEntry> next;
    for (const auto& partial : entries) {
      for (const auto& alt : alts) {
        TcamEntry e = partial;
        e.matches.push_back(alt);
        next.push_back(std::move(e));
        if (next.size() > kMaxTcamEntries) return std::nullopt;
      }
    }
    entries = std::move(next);
  }
  return entries;
}

}  // namespace perfq::sw
