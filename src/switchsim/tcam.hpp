// Ternary match tables (TCAM) as found in match-action pipelines (§3.1 cites
// RMT/Forwarding Metamorphosis). A WHERE predicate that is a conjunction of
// field comparisons lowers to TCAM entries; comparisons against arbitrary
// thresholds use the classic range-to-prefix expansion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "packet/record.hpp"

namespace perfq::sw {

/// Match on one field: (value & mask) must equal (match.value & mask).
struct TernaryMatch {
  FieldId field = FieldId::kSrcIp;
  std::uint64_t value = 0;
  std::uint64_t mask = 0;  ///< 0 = wildcard (always matches)

  [[nodiscard]] bool matches(std::uint64_t field_value) const {
    return (field_value & mask) == (value & mask);
  }
};

/// One TCAM entry: a conjunction of per-field ternary matches.
struct TcamEntry {
  std::vector<TernaryMatch> matches;
  std::uint32_t action = 0;  ///< opaque action id (e.g. "feed the KV store")
  std::int32_t priority = 0;

  [[nodiscard]] bool matches_record(const PacketRecord& rec) const;
};

/// Priority-ordered ternary table.
class TcamTable {
 public:
  void install(TcamEntry entry);

  /// Highest-priority matching entry's action, or nullopt.
  [[nodiscard]] std::optional<std::uint32_t> lookup(const PacketRecord& rec) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<TcamEntry>& entries() const { return entries_; }

 private:
  std::vector<TcamEntry> entries_;  ///< kept sorted by descending priority
};

/// Expand the integer range [lo, hi] over a `bits`-wide field into the
/// minimal set of (value, mask) prefixes — the standard trick for realizing
/// range matches in TCAMs. Both bounds inclusive; lo <= hi required.
[[nodiscard]] std::vector<TernaryMatch> range_to_prefixes(FieldId field,
                                                          std::uint64_t lo,
                                                          std::uint64_t hi,
                                                          int bits);

}  // namespace perfq::sw
