#include "switchsim/parser.hpp"

#include "common/error.hpp"
#include "packet/wire.hpp"

namespace perfq::sw {
namespace {

std::uint64_t read_be(std::span<const std::byte> bytes, std::size_t offset,
                      std::size_t width) {
  if (offset + width > bytes.size()) {
    throw ConfigError{"parser: truncated header"};
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v = (v << 8) | std::to_integer<std::uint64_t>(bytes[offset + i]);
  }
  return v;
}

void store(Packet& pkt, PacketSlot slot, std::uint64_t v) {
  switch (slot) {
    case PacketSlot::kSrcIp: pkt.flow.src_ip = static_cast<std::uint32_t>(v); break;
    case PacketSlot::kDstIp: pkt.flow.dst_ip = static_cast<std::uint32_t>(v); break;
    case PacketSlot::kSrcPort:
      pkt.flow.src_port = static_cast<std::uint16_t>(v);
      break;
    case PacketSlot::kDstPort:
      pkt.flow.dst_port = static_cast<std::uint16_t>(v);
      break;
    case PacketSlot::kProto: pkt.flow.proto = static_cast<std::uint8_t>(v); break;
    case PacketSlot::kTcpSeq: pkt.tcp_seq = static_cast<std::uint32_t>(v); break;
    case PacketSlot::kTcpFlags:
      pkt.tcp_flags = static_cast<std::uint8_t>(v);
      break;
    case PacketSlot::kIpTtl: pkt.ip_ttl = static_cast<std::uint8_t>(v); break;
    case PacketSlot::kIpTotalLen:
      // pkt_len = frame length; payload derived at accept time.
      pkt.pkt_len = static_cast<std::uint32_t>(v) +
                    static_cast<std::uint32_t>(wire::kEthHeaderLen);
      break;
    case PacketSlot::kIpIdent: pkt.pkt_uniq = v; break;
  }
}

}  // namespace

void ParserGraph::add_state(ParserState state) {
  for (const auto& s : states_) {
    if (s.name == state.name) {
      throw ConfigError{"parser: duplicate state '" + state.name + "'"};
    }
  }
  if (states_.empty() && start_.empty()) start_ = state.name;
  states_.push_back(std::move(state));
}

const ParserState& ParserGraph::state(const std::string& name) const {
  for (const auto& s : states_) {
    if (s.name == name) return s;
  }
  throw ConfigError{"parser: unknown state '" + name + "'"};
}

ParserGraph::Result ParserGraph::parse(std::span<const std::byte> bytes) const {
  check(!states_.empty(), "parser: empty graph");
  Result result;
  std::size_t cursor = 0;
  const ParserState* current = &state(start_);
  for (;;) {
    result.path.push_back(current->name);
    if (cursor + current->header_len > bytes.size()) {
      throw ConfigError{"parser: truncated at state '" + current->name + "'"};
    }
    const auto header = bytes.subspan(cursor, current->header_len);
    for (const auto& ex : current->extracts) {
      store(result.pkt, ex.slot, read_be(header, ex.offset, ex.width));
    }
    cursor += current->header_len;
    if (current->accept) break;
    const std::uint64_t sel =
        read_be(header, current->select_offset, current->select_width);
    const auto it = current->transitions.find(sel);
    if (it == current->transitions.end()) {
      throw ConfigError{"parser: no transition from '" + current->name +
                        "' on value " + std::to_string(sel)};
    }
    current = &state(it->second);
  }
  result.header_bytes = cursor;
  // Derived lengths (the deparser's job in a real pipeline).
  if (result.pkt.pkt_len >= cursor) {
    result.pkt.payload_len =
        result.pkt.pkt_len - static_cast<std::uint32_t>(cursor);
  }
  return result;
}

ParserGraph ParserGraph::standard() {
  ParserGraph g;

  ParserState eth;
  eth.name = "ethernet";
  eth.header_len = wire::kEthHeaderLen;
  eth.select_offset = 12;
  eth.select_width = 2;
  eth.transitions.emplace(wire::kEtherTypeIpv4, "ipv4");
  g.add_state(std::move(eth));

  ParserState ipv4;
  ipv4.name = "ipv4";
  ipv4.header_len = wire::kIpv4HeaderLen;
  ipv4.extracts = {
      {2, 2, PacketSlot::kIpTotalLen}, {4, 2, PacketSlot::kIpIdent},
      {8, 1, PacketSlot::kIpTtl},      {9, 1, PacketSlot::kProto},
      {12, 4, PacketSlot::kSrcIp},     {16, 4, PacketSlot::kDstIp},
  };
  ipv4.select_offset = 9;
  ipv4.select_width = 1;
  ipv4.transitions.emplace(static_cast<std::uint64_t>(IpProto::kTcp), "tcp");
  ipv4.transitions.emplace(static_cast<std::uint64_t>(IpProto::kUdp), "udp");
  g.add_state(std::move(ipv4));

  ParserState tcp;
  tcp.name = "tcp";
  tcp.header_len = wire::kTcpHeaderLen;
  tcp.extracts = {
      {0, 2, PacketSlot::kSrcPort},
      {2, 2, PacketSlot::kDstPort},
      {4, 4, PacketSlot::kTcpSeq},
      {13, 1, PacketSlot::kTcpFlags},
  };
  tcp.accept = true;
  g.add_state(std::move(tcp));

  ParserState udp;
  udp.name = "udp";
  udp.header_len = wire::kUdpHeaderLen;
  udp.extracts = {
      {0, 2, PacketSlot::kSrcPort},
      {2, 2, PacketSlot::kDstPort},
  };
  udp.accept = true;
  g.add_state(std::move(udp));

  g.set_start("ethernet");
  return g;
}

}  // namespace perfq::sw
