#include "lang/schema.hpp"

#include "common/error.hpp"

namespace perfq::lang {

const std::vector<std::string>& five_tuple_names() {
  static const std::vector<std::string> kNames{"srcip", "dstip", "srcport",
                                               "dstport", "proto"};
  return kNames;
}

Schema Schema::base() {
  Schema s;
  s.stream_over_base = true;
  for (std::size_t i = 0; i < kNumFields; ++i) {
    const auto id = static_cast<FieldId>(i);
    Column c;
    c.name = std::string{field_name(id)};
    c.bits = field_bits(id);
    c.base_field = id;
    if (id == FieldId::kQsize) c.aliases.emplace_back("qin");
    s.add(std::move(c));
  }
  return s;
}

void Schema::add(Column column) {
  if (find(column.name) != nullptr) {
    throw QueryError{"schema", "duplicate column '" + column.name + "'"};
  }
  columns_.push_back(std::move(column));
}

const Column* Schema::find(std::string_view name) const {
  for (const auto& c : columns_) {
    if (c.matches(name)) return &c;
  }
  return nullptr;
}

int Schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].matches(name)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> Schema::expand(std::string_view name) const {
  if (name == "5tuple") {
    for (const auto& n : five_tuple_names()) {
      if (find(n) == nullptr) {
        throw QueryError{"schema",
                         "'5tuple' used but column '" + n + "' is absent"};
      }
    }
    return five_tuple_names();
  }
  return {std::string{name}};
}

std::string Schema::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
  }
  out += ")";
  if (!key.empty()) {
    out += " key=[";
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (i > 0) out += ", ";
      out += key[i];
    }
    out += "]";
  }
  return out;
}

}  // namespace perfq::lang
