// Recursive-descent parser for the query language (grammar of Fig. 1).
#pragma once

#include <string_view>

#include "lang/ast.hpp"

namespace perfq::lang {

/// Parse a whole program (fold definitions + queries). Throws QueryError.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parse a single expression (used by tests and the REPL).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace perfq::lang
