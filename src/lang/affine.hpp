// Linear-in-state analysis of fold functions (§3.2).
//
// The paper's merge correctness hinges on whether a fold's update is
//
//     S' = A · S + B
//
// with A, B functions of the current packet alone — or, per footnote 4, of
// "a constant number of packets preceding and including the current packet".
// This analyzer decides that mechanically by symbolic affine dataflow:
//
//   * Every expression is evaluated to an *affine form*: a constant term
//     plus one coefficient per state variable, all of which are packet-pure
//     expression trees. Non-affine combinations (state×state, division by
//     state, max/min over state) invalidate the form.
//   * Branches on packet-pure predicates merge via predicated selection
//     (coefficients become `__select(cond, a, b)` expression nodes).
//   * Branches on state-dependent predicates poison every variable whose
//     two branch values differ — unless the offending state variables are
//     *history variables*: variables whose post-body value is itself
//     packet-pure (e.g. outofseq's `lastseq = tcpseq + payload_len`). Those
//     are re-bound to the previous packet's expression (names prefixed with
//     "prev$") and the analysis re-runs with history window h = 1.
//
// The result reproduces Fig. 2's "Linear in state?" column: everything is
// linear except `nonmt`, whose `maxseq` carries unbounded history.
#pragma once

#include <string>
#include <vector>

#include "kvstore/fold.hpp"
#include "lang/ast.hpp"

namespace perfq::lang {

/// Marker prefix for references to the previous packet's argument values in
/// extracted coefficient/constant expressions ("prev$tcpseq").
inline constexpr std::string_view kPrevPrefix = "prev$";

/// Internal call name for predicated selection in extracted expressions:
/// __select(cond, then, else).
inline constexpr std::string_view kSelectFn = "__select";

/// One row of the extracted update: S'[i] = sum_j coeffs[j]*S[j] + constant.
struct AffineRow {
  std::vector<ExprPtr> coeffs;  ///< packet-pure; size = state dims
  ExprPtr constant;             ///< packet-pure

  [[nodiscard]] AffineRow clone() const;
};

struct LinearityResult {
  kv::Linearity classification = kv::Linearity::kNotLinear;
  std::size_t history_window = 0;  ///< h (0 or 1)
  std::string reason;  ///< human-readable justification / failure cause
  std::vector<AffineRow> rows;  ///< valid when linear; size = state dims

  [[nodiscard]] bool linear() const {
    return classification != kv::Linearity::kNotLinear;
  }

  [[nodiscard]] LinearityResult clone() const;
};

/// Analyze a fold body. Preconditions: free constants already folded to
/// numbers (see fold_constants in sema.hpp); body references only state vars,
/// packet args, numbers, and max/min calls.
[[nodiscard]] LinearityResult analyze_linearity(const FoldDef& fold);

}  // namespace perfq::lang
