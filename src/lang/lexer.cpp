#include "lang/lexer.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace perfq::lang {
namespace {

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

const std::unordered_map<std::string, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string, TokenKind> kTable{
      {"select", TokenKind::kSelect}, {"from", TokenKind::kFrom},
      {"where", TokenKind::kWhere},   {"groupby", TokenKind::kGroupBy},
      {"join", TokenKind::kJoin},     {"on", TokenKind::kOn},
      {"def", TokenKind::kDef},       {"if", TokenKind::kIf},
      {"else", TokenKind::kElse},     {"and", TokenKind::kAnd},
      {"or", TokenKind::kOr},         {"not", TokenKind::kNot},
      {"infinity", TokenKind::kInfinity},
  };
  return kTable;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    indents_.push_back(0);
    while (!at_end()) lex_line();
    // Close the file: trailing newline, dedents back to level 0, EOF.
    emit(TokenKind::kNewline, "\n");
    while (indents_.back() > 0) {
      indents_.pop_back();
      emit(TokenKind::kDedent, "");
    }
    emit(TokenKind::kEndOfFile, "");
    return std::move(tokens_);
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    ++column_;
    return c;
  }

  void emit(TokenKind kind, std::string text, double number = 0.0) {
    tokens_.push_back(Token{kind, std::move(text), number, line_, column_});
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw QueryError{"lex", message, line_, column_};
  }

  void lex_line() {
    // Measure indentation (spaces; tabs count as 4).
    int indent = 0;
    while (!at_end() && (peek() == ' ' || peek() == '\t')) {
      indent += peek() == '\t' ? 4 : 1;
      advance();
    }
    // Blank or comment-only lines do not affect indentation.
    if (at_end() || peek() == '\n' || peek() == '#') {
      skip_to_eol();
      consume_newline(false);
      return;
    }
    handle_indent(indent);
    while (!at_end() && peek() != '\n') {
      lex_token();
    }
    consume_newline(true);
  }

  void skip_to_eol() {
    while (!at_end() && peek() != '\n') advance();
  }

  void consume_newline(bool emit_token) {
    if (!at_end() && peek() == '\n') advance();
    if (emit_token) emit(TokenKind::kNewline, "\n");
    ++line_;
    column_ = 1;
  }

  void handle_indent(int indent) {
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      emit(TokenKind::kIndent, "");
      return;
    }
    while (indent < indents_.back()) {
      indents_.pop_back();
      emit(TokenKind::kDedent, "");
    }
    if (indent != indents_.back()) fail("inconsistent indentation");
  }

  void lex_token() {
    const char c = peek();
    if (c == ' ' || c == '\t') {
      advance();
      return;
    }
    if (c == '#') {
      skip_to_eol();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      lex_number_or_5tuple();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      lex_identifier();
      return;
    }
    lex_operator();
  }

  void lex_number_or_5tuple() {
    // "5tuple" — the paper's abbreviation — begins with a digit.
    if (src_.compare(pos_, 6, "5tuple") == 0) {
      pos_ += 6;
      column_ += 6;
      emit(TokenKind::kIdentifier, "5tuple");
      return;
    }
    std::string digits;
    bool saw_dot = false;
    while (!at_end() &&
           (std::isdigit(static_cast<unsigned char>(peek())) ||
            (peek() == '.' && !saw_dot &&
             std::isdigit(static_cast<unsigned char>(peek(1)))))) {
      if (peek() == '.') saw_dot = true;
      digits.push_back(advance());
    }
    // Exponent ("1e+06"): produced by canonical printing of large decimals.
    if ((peek() == 'e' || peek() == 'E') &&
        (std::isdigit(static_cast<unsigned char>(peek(1))) ||
         ((peek(1) == '+' || peek(1) == '-') &&
          std::isdigit(static_cast<unsigned char>(peek(2)))))) {
      digits.push_back(advance());  // e
      if (peek() == '+' || peek() == '-') digits.push_back(advance());
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits.push_back(advance());
      }
    }
    double value = 0.0;
    try {
      value = std::stod(digits);
    } catch (const std::out_of_range&) {
      fail("numeric literal out of range: " + digits.substr(0, 24) + "...");
    } catch (const std::invalid_argument&) {
      fail("malformed numeric literal");
    }
    // Optional time-unit suffix, normalized to nanoseconds.
    std::string suffix;
    while (!at_end() && std::isalpha(static_cast<unsigned char>(peek()))) {
      suffix.push_back(advance());
    }
    if (!suffix.empty()) {
      const std::string s = lower(suffix);
      if (s == "ns") {
        value *= 1.0;
      } else if (s == "us") {
        value *= 1e3;
      } else if (s == "ms") {
        value *= 1e6;
      } else if (s == "s") {
        value *= 1e9;
      } else {
        fail("unknown numeric suffix '" + suffix + "'");
      }
      digits += suffix;
    }
    emit(TokenKind::kNumber, digits, value);
  }

  void lex_identifier() {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      text.push_back(advance());
    }
    const auto& table = keyword_table();
    if (const auto it = table.find(lower(text)); it != table.end()) {
      emit(it->second, std::move(text));
    } else {
      emit(TokenKind::kIdentifier, std::move(text));
    }
  }

  void lex_operator() {
    const char c = advance();
    switch (c) {
      case '(': emit(TokenKind::kLParen, "("); return;
      case ')': emit(TokenKind::kRParen, ")"); return;
      case ',': emit(TokenKind::kComma, ","); return;
      case ':': emit(TokenKind::kColon, ":"); return;
      case '.': emit(TokenKind::kDot, "."); return;
      case '+': emit(TokenKind::kPlus, "+"); return;
      case '-': emit(TokenKind::kMinus, "-"); return;
      case '*': emit(TokenKind::kStar, "*"); return;
      case '/': emit(TokenKind::kSlash, "/"); return;
      case '=':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kEq, "==");
        } else {
          emit(TokenKind::kAssign, "=");
        }
        return;
      case '!':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kNe, "!=");
          return;
        }
        fail("unexpected '!'");
      case '<':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kLe, "<=");
        } else {
          emit(TokenKind::kLt, "<");
        }
        return;
      case '>':
        if (peek() == '=') {
          advance();
          emit(TokenKind::kGe, ">=");
        } else {
          emit(TokenKind::kGt, ">");
        }
        return;
      default:
        fail(std::string{"unexpected character '"} + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Lexer{source}.run();
}

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kNumber: return "number";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kGroupBy: return "GROUPBY";
    case TokenKind::kJoin: return "JOIN";
    case TokenKind::kOn: return "ON";
    case TokenKind::kDef: return "def";
    case TokenKind::kIf: return "if";
    case TokenKind::kElse: return "else";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kInfinity: return "infinity";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kColon: return ":";
    case TokenKind::kDot: return ".";
    case TokenKind::kAssign: return "=";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kIndent: return "indent";
    case TokenKind::kDedent: return "dedent";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

}  // namespace perfq::lang
