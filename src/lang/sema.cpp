#include "lang/sema.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "lang/parser.hpp"

namespace perfq::lang {
namespace {

[[noreturn]] void sema_fail(const std::string& message, int line = 0) {
  throw QueryError{"sema", message, line, line > 0 ? 1 : 0};
}

bool contains(const std::vector<std::string>& xs, std::string_view x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

// ----------------------------------------------------- constant folding ----

void fold_constants_impl(ExprPtr& expr, const std::map<std::string, double>& params,
                         const std::vector<std::string>& bound) {
  Expr& e = *expr;
  switch (e.kind) {
    case ExprKind::kNumber:
    case ExprKind::kInfinity:
    case ExprKind::kDotted:
      return;
    case ExprKind::kName: {
      if (contains(bound, e.name)) return;
      const auto it = params.find(e.name);
      if (it != params.end()) {
        expr = make_number(it->second, e.line, e.column);
      }
      return;  // unresolved names are validated by the caller's context
    }
    case ExprKind::kUnary: {
      fold_constants_impl(e.lhs, params, bound);
      if (!e.is_not && e.lhs->kind == ExprKind::kNumber) {
        expr = make_number(-e.lhs->number, e.line, e.column);
      }
      return;
    }
    case ExprKind::kCall:
      for (auto& a : e.args) fold_constants_impl(a, params, bound);
      return;
    case ExprKind::kBinary: {
      fold_constants_impl(e.lhs, params, bound);
      fold_constants_impl(e.rhs, params, bound);
      if (e.lhs->kind == ExprKind::kNumber && e.rhs->kind == ExprKind::kNumber &&
          is_arithmetic(e.op)) {
        const double a = e.lhs->number;
        const double b = e.rhs->number;
        double v = 0.0;
        switch (e.op) {
          case BinaryOp::kAdd: v = a + b; break;
          case BinaryOp::kSub: v = a - b; break;
          case BinaryOp::kMul: v = a * b; break;
          case BinaryOp::kDiv:
            if (b == 0.0) sema_fail("division by zero in constant expression",
                                    e.line);
            v = a / b;
            break;
          default: return;
        }
        expr = make_number(v, e.line, e.column);
      }
      return;
    }
  }
}

// -------------------------------------------------- expression validation --

/// Built-in value-level constants usable in queries (WHERE proto == TCP).
const std::map<std::string, double>& builtin_constants() {
  static const std::map<std::string, double> kConstants{
      {"TCP", 6.0},
      {"UDP", 17.0},
  };
  return kConstants;
}

/// Check that `e` only references columns of `schema` (whole-call and dotted
/// sub-expressions may resolve as column names, e.g. "SUM(tout - tin)" or
/// "R1.COUNT"). Returns nothing; throws on failure.
void check_expr(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kNumber:
    case ExprKind::kInfinity:
      return;
    case ExprKind::kName: {
      if (schema.find(e.name) != nullptr) return;
      if (builtin_constants().count(e.name) > 0) return;
      sema_fail("unknown column '" + e.name + "' (schema " + schema.to_string() +
                    ")",
                e.line);
    }
    case ExprKind::kDotted: {
      if (schema.find(to_string(e)) != nullptr) return;
      sema_fail("unknown column '" + to_string(e) + "'", e.line);
    }
    case ExprKind::kCall: {
      // A call may *be* a column (aggregate result referenced downstream).
      if (schema.find(to_string(e)) != nullptr) return;
      if (e.name == "max" || e.name == "min") {
        if (e.args.size() != 2) {
          sema_fail("'" + e.name + "' expects 2 arguments", e.line);
        }
        for (const auto& a : e.args) check_expr(*a, schema);
        return;
      }
      sema_fail("unknown function or column '" + to_string(e) + "'", e.line);
    }
    case ExprKind::kUnary:
      check_expr(*e.lhs, schema);
      return;
    case ExprKind::kBinary:
      check_expr(*e.lhs, schema);
      check_expr(*e.rhs, schema);
      return;
  }
}

// --------------------------------------------------------- fold analysis --

void collect_free_names(const Expr& e, const std::vector<std::string>& bound,
                        std::set<std::string>& out) {
  switch (e.kind) {
    case ExprKind::kName:
      if (!contains(bound, e.name)) out.insert(e.name);
      return;
    case ExprKind::kDotted:
      sema_fail("dotted name '" + to_string(e) + "' not allowed in fold body",
                e.line);
    case ExprKind::kCall:
      if (e.name != "max" && e.name != "min") {
        sema_fail("call to '" + e.name + "' not allowed in fold body (only "
                  "max/min)",
                  e.line);
      }
      for (const auto& a : e.args) collect_free_names(*a, bound, out);
      return;
    case ExprKind::kUnary:
      collect_free_names(*e.lhs, bound, out);
      return;
    case ExprKind::kBinary:
      collect_free_names(*e.lhs, bound, out);
      collect_free_names(*e.rhs, bound, out);
      return;
    default:
      return;
  }
}

void walk_stmts(const std::vector<Stmt>& body, const FoldDef& fold,
                const std::map<std::string, double>& params,
                std::set<std::string>& free_names) {
  std::vector<std::string> bound = fold.state_vars;
  bound.insert(bound.end(), fold.packet_args.begin(), fold.packet_args.end());
  for (const Stmt& s : body) {
    if (s.kind == Stmt::Kind::kAssign) {
      if (!contains(fold.state_vars, s.target)) {
        sema_fail("fold '" + fold.name + "' assigns to '" + s.target +
                      "', which is not a state variable",
                  s.line);
      }
      collect_free_names(*s.value, bound, free_names);
    } else {
      collect_free_names(*s.condition, bound, free_names);
      walk_stmts(s.then_body, fold, params, free_names);
      walk_stmts(s.else_body, fold, params, free_names);
    }
  }
}

void fold_body_constants(std::vector<Stmt>& body,
                         const std::map<std::string, double>& params,
                         const std::vector<std::string>& bound) {
  for (Stmt& s : body) {
    if (s.kind == Stmt::Kind::kAssign) {
      fold_constants_impl(s.value, params, bound);
    } else {
      fold_constants_impl(s.condition, params, bound);
      fold_body_constants(s.then_body, params, bound);
      fold_body_constants(s.else_body, params, bound);
    }
  }
}

AnalyzedFold analyze_fold(const FoldDef& fold,
                          const std::map<std::string, double>& params) {
  if (fold.state_vars.empty()) sema_fail("fold has no state variables", fold.line);
  std::set<std::string> seen;
  for (const auto& v : fold.state_vars) {
    if (!seen.insert(v).second) {
      sema_fail("duplicate state variable '" + v + "' in fold '" + fold.name + "'",
                fold.line);
    }
  }
  for (const auto& a : fold.packet_args) {
    if (!seen.insert(a).second) {
      sema_fail("packet argument '" + a + "' collides with another name in '" +
                    fold.name + "'",
                fold.line);
    }
  }

  // Free names must be supplied constants.
  std::set<std::string> free_names;
  walk_stmts(fold.body, fold, params, free_names);
  for (const auto& n : free_names) {
    if (params.count(n) == 0) {
      sema_fail("fold '" + fold.name + "' references '" + n +
                    "', which is neither a state variable, packet argument, "
                    "nor a provided constant",
                fold.line);
    }
  }

  AnalyzedFold out;
  out.def.name = fold.name;
  out.def.state_vars = fold.state_vars;
  out.def.packet_args = fold.packet_args;
  out.def.line = fold.line;
  for (const auto& s : fold.body) out.def.body.push_back(s.clone());
  std::vector<std::string> bound = fold.state_vars;
  bound.insert(bound.end(), fold.packet_args.begin(), fold.packet_args.end());
  fold_body_constants(out.def.body, params, bound);

  out.linearity = analyze_linearity(out.def);
  return out;
}

// ---------------------------------------------------------------- queries --

class ProgramAnalyzer {
 public:
  ProgramAnalyzer(const Program& program, std::map<std::string, double> params)
      : program_(program) {
    // Built-in value constants are always available in query position.
    result_.params = std::move(params);
    for (const auto& [k, v] : builtin_constants()) {
      result_.params.emplace(k, v);
    }
  }

  AnalyzedProgram run() {
    for (const auto& f : program_.folds) {
      if (result_.fold_index(f.name) >= 0) {
        sema_fail("duplicate fold definition '" + f.name + "'", f.line);
      }
      result_.folds.push_back(analyze_fold(f, result_.params));
    }
    for (const auto& q : program_.queries) {
      result_.queries.push_back(analyze_query(q));
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] const Schema& schema_of(int index) const {
    static const Schema kBase = Schema::base();
    return index < 0 ? kBase : result_.queries[static_cast<std::size_t>(index)].output;
  }

  [[nodiscard]] int resolve_table(const std::string& name, int line) const {
    if (name == "T") return -1;
    const int idx = result_.query_index(name);
    if (idx < 0) sema_fail("unknown table '" + name + "'", line);
    return idx;
  }

  [[nodiscard]] AnalyzedQuery analyze_query(const QueryDef& q) {
    AnalyzedQuery out;
    out.def.kind = q.kind;
    out.def.result_name = q.result_name;
    out.def.from = q.from;
    out.def.join_left = q.join_left;
    out.def.join_right = q.join_right;
    out.def.join_keys = q.join_keys;
    out.def.line = q.line;
    for (const auto& item : q.select_list) {
      SelectItem copy;
      copy.star = item.star;
      if (item.expr) {
        copy.expr = item.expr->clone();
        fold_constants_impl(copy.expr, result_.params, {});
      }
      out.def.select_list.push_back(std::move(copy));
    }
    if (q.where) {
      out.def.where = q.where->clone();
      fold_constants_impl(out.def.where, result_.params, {});
    }
    for (const auto& g : q.groupby_fields) {
      out.def.groupby_fields.push_back(g->clone());
    }

    if (!q.result_name.empty() && result_.query_index(q.result_name) >= 0) {
      sema_fail("duplicate table name '" + q.result_name + "'", q.line);
    }

    switch (q.kind) {
      case QueryDef::Kind::kSelect: analyze_select(out); break;
      case QueryDef::Kind::kGroupBy: analyze_groupby(out); break;
      case QueryDef::Kind::kJoin: analyze_join(out); break;
    }
    return out;
  }

  void analyze_select(AnalyzedQuery& out) {
    out.input = resolve_table(out.def.from, out.def.line);
    const Schema& in = schema_of(out.input);
    if (out.def.where) check_expr(*out.def.where, in);

    Schema schema;
    schema.stream_over_base = in.stream_over_base;
    for (const auto& item : out.def.select_list) {
      if (item.star) {
        for (const auto& c : in.columns()) {
          schema.add(c);
          out.projections.push_back(
              AnalyzedQuery::Projection{c.name, make_name(c.name)});
        }
        continue;
      }
      // "5tuple" expands to five projections.
      if (item.expr->kind == ExprKind::kName && item.expr->name == "5tuple") {
        for (const auto& n : in.expand("5tuple")) {
          const Column* c = in.find(n);
          schema.add(*c);
          out.projections.push_back(AnalyzedQuery::Projection{n, make_name(n)});
        }
        continue;
      }
      check_expr(*item.expr, in);
      Column c;
      if (item.expr->kind == ExprKind::kName) {
        c = *in.find(item.expr->name);  // keep canonical name/bits/aliases
      } else if (const Column* whole = in.find(to_string(*item.expr))) {
        c = *whole;
      } else {
        c.name = to_string(*item.expr);
      }
      if (schema.find(c.name) == nullptr) schema.add(c);
      out.projections.push_back(
          AnalyzedQuery::Projection{c.name, item.expr->clone()});
    }
    if (out.projections.empty()) sema_fail("empty select list", out.def.line);
    // A projection that retains the whole key keeps the table keyed.
    if (!in.key.empty()) {
      const bool keeps_key =
          std::all_of(in.key.begin(), in.key.end(), [&](const std::string& k) {
            return schema.find(k) != nullptr;
          });
      if (keeps_key) schema.key = in.key;
    }
    out.output = std::move(schema);
  }

  void analyze_groupby(AnalyzedQuery& out) {
    out.input = resolve_table(out.def.from, out.def.line);
    const Schema& in = schema_of(out.input);
    if (out.def.where) check_expr(*out.def.where, in);

    // Resolve key columns ("5tuple" expands). Grouping by pkt_uniq also keys
    // on the five-tuple: the paper assumes "pkt_uniq is a tuple of packet
    // fields that includes the 5tuple" (§2), which is what lets a downstream
    // query GROUPBY 5tuple over a per-packet aggregate.
    for (const auto& g : out.def.groupby_fields) {
      if (g->kind != ExprKind::kName) {
        // Computed key (e.g. GROUPBY qid, qsize / 64): legal only over the
        // packet stream, where the on-switch key-value store evaluates the
        // expression per record. The collection layer resolves soft-GROUPBY
        // keys by column name against materialized tables, so those keep
        // requiring plain names.
        if (!in.stream_over_base) {
          sema_fail("GROUPBY field over an aggregate must be a column name, "
                    "got '" + to_string(*g) + "'",
                    out.def.line);
        }
        ExprPtr expr = g->clone();
        fold_constants_impl(expr, result_.params, {});
        check_expr(*expr, in);
        std::string name = to_string(*expr);
        if (!contains(out.key_columns, name)) {
          out.key_columns.push_back(name);
          out.computed_keys.emplace(std::move(name), std::move(expr));
        }
        continue;
      }
      if (g->name == "pkt_uniq" && in.find("srcip") != nullptr) {
        for (const auto& name : in.expand("5tuple")) {
          if (!contains(out.key_columns, name)) out.key_columns.push_back(name);
        }
      }
      for (const auto& name : in.expand(g->name)) {
        const Column* c = in.find(name);
        if (c == nullptr) sema_fail("unknown GROUPBY column '" + name + "'",
                                    out.def.line);
        if (!contains(out.key_columns, c->name)) {
          out.key_columns.push_back(c->name);
        }
      }
    }
    if (out.key_columns.empty()) sema_fail("GROUPBY with no fields", out.def.line);

    // Classify select items.
    for (const auto& item : out.def.select_list) {
      if (item.star) {
        sema_fail("SELECT * is not allowed with GROUPBY", out.def.line);
      }
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kName) {
        if (e.name == "5tuple") {
          for (const auto& n : in.expand("5tuple")) {
            if (!contains(out.key_columns, n)) {
              sema_fail("'5tuple' selected but not grouped by", out.def.line);
            }
          }
          continue;
        }
        if (e.name == "COUNT") {
          AggregationSpec agg;
          agg.kind = AggregationSpec::Kind::kCount;
          agg.column = "COUNT";
          out.aggregations.push_back(std::move(agg));
          continue;
        }
        if (result_.fold_index(e.name) >= 0) {
          AggregationSpec agg;
          agg.kind = AggregationSpec::Kind::kFold;
          agg.fold_name = e.name;
          agg.column = e.name;
          out.aggregations.push_back(std::move(agg));
          continue;
        }
        const Column* c = in.find(e.name);
        if (c != nullptr && contains(out.key_columns, c->name)) continue;
        sema_fail("select item '" + e.name +
                      "' is neither a GROUPBY key, an aggregation, nor a fold",
                  e.line);
      }
      if (e.kind == ExprKind::kCall && e.name == "SUM") {
        if (e.args.size() != 1) sema_fail("SUM expects one argument", e.line);
        check_expr(*e.args[0], in);
        AggregationSpec agg;
        agg.kind = AggregationSpec::Kind::kSum;
        agg.sum_expr = e.args[0]->clone();
        agg.column = to_string(e);
        out.aggregations.push_back(std::move(agg));
        continue;
      }
      sema_fail("unsupported select item '" + to_string(e) + "' under GROUPBY",
                e.line);
    }
    // A key-only GROUPBY means "distinct keys"; give it a COUNT so the
    // result table carries a value column (Fig. 2's composed queries rely on
    // exactly this reading).
    if (out.aggregations.empty()) {
      AggregationSpec agg;
      agg.kind = AggregationSpec::Kind::kCount;
      agg.column = "COUNT";
      out.aggregations.push_back(std::move(agg));
    }

    // Output schema: keys, then aggregate columns.
    Schema schema;
    schema.key = out.key_columns;
    for (const auto& k : out.key_columns) {
      if (const Column* c = in.find(k)) {
        schema.add(*c);
        continue;
      }
      // Computed key: a fresh 64-bit column (key values are packed as
      // 8-byte truncated unsigned integers; see extract_key's clamp).
      check(out.computed_keys.count(k) > 0, "groupby: unresolved key column");
      Column c;
      c.name = k;
      c.bits = 64;
      schema.add(std::move(c));
    }
    for (auto& agg : out.aggregations) {
      if (agg.kind == AggregationSpec::Kind::kFold) {
        const auto& fold =
            result_.folds[static_cast<std::size_t>(result_.fold_index(agg.fold_name))];
        for (const auto& var : fold.def.state_vars) {
          Column c;
          const std::string dotted = agg.fold_name + "." + var;
          if (schema.find(var) == nullptr) {
            c.name = var;
            c.aliases.push_back(dotted);
          } else {
            c.name = dotted;
          }
          if (fold.def.state_vars.size() == 1 &&
              schema.find(agg.fold_name) == nullptr && c.name != agg.fold_name) {
            c.aliases.push_back(agg.fold_name);  // single-var folds: fold name too
          }
          agg.out_columns.push_back(c.name);
          schema.add(std::move(c));
        }
      } else {
        Column c;
        c.name = agg.column;
        if (schema.find(c.name) != nullptr) {
          sema_fail("duplicate aggregate column '" + c.name + "'", out.def.line);
        }
        agg.out_columns.push_back(c.name);
        schema.add(std::move(c));
      }
    }
    out.on_switch = in.stream_over_base;
    out.output = std::move(schema);
  }

  void analyze_join(AnalyzedQuery& out) {
    out.left = resolve_table(out.def.join_left, out.def.line);
    out.right = resolve_table(out.def.join_right, out.def.line);
    if (out.left < 0 || out.right < 0) {
      sema_fail("JOIN over the raw packet table T is not permitted (result "
                "size is O(#pkts^2); see §2)",
                out.def.line);
    }
    const Schema& left = schema_of(out.left);
    const Schema& right = schema_of(out.right);

    // Expand and canonicalize the ON keys; both sides must be keyed by them
    // (the paper's "key uniquely identifies records in both tables").
    std::vector<std::string> keys;
    for (const auto& k : out.def.join_keys) {
      for (const auto& n : left.expand(k)) {
        if (!contains(keys, n)) keys.push_back(n);
      }
    }
    auto same_key = [&](const Schema& s) {
      if (s.key.size() != keys.size()) return false;
      return std::all_of(keys.begin(), keys.end(), [&](const std::string& k) {
        return contains(s.key, k);
      });
    };
    if (!same_key(left) || !same_key(right)) {
      sema_fail("JOIN ON keys must be exactly the GROUPBY keys of both inputs "
                "(left key " +
                    left.to_string() + ", right key " + right.to_string() + ")",
                out.def.line);
    }
    out.key_columns = keys;

    // Joined schema: keys unprefixed; other columns visible both as
    // "Table.col" and (when unambiguous) bare "col".
    Schema joined;
    joined.key = keys;
    for (const auto& k : keys) joined.add(*left.find(k));
    auto add_side = [&](const Schema& side, const std::string& prefix,
                        const Schema& other) {
      for (const auto& c : side.columns()) {
        if (contains(keys, c.name)) continue;
        Column col;
        col.name = prefix + "." + c.name;
        col.bits = c.bits;
        if (other.find(c.name) == nullptr && joined.find(c.name) == nullptr) {
          col.aliases.push_back(c.name);
        }
        for (const auto& a : c.aliases) {
          col.aliases.push_back(prefix + "." + a);
        }
        joined.add(std::move(col));
      }
    };
    add_side(left, out.def.join_left, right);
    add_side(right, out.def.join_right, left);

    if (out.def.where) check_expr(*out.def.where, joined);
    out.joined_schema = joined;

    // Projection over the joined schema.
    Schema schema;
    schema.key = keys;
    for (const auto& k : keys) schema.add(*left.find(k));
    for (const auto& item : out.def.select_list) {
      if (item.star) {
        for (const auto& c : joined.columns()) {
          if (contains(keys, c.name)) continue;
          schema.add(c);
          out.projections.push_back(
              AnalyzedQuery::Projection{c.name, make_name(c.name)});
        }
        continue;
      }
      if (item.expr->kind == ExprKind::kName && item.expr->name == "5tuple") {
        continue;  // keys are always included
      }
      check_expr(*item.expr, joined);
      if (item.expr->kind == ExprKind::kName &&
          contains(keys, item.expr->name)) {
        continue;
      }
      Column c;
      c.name = to_string(*item.expr);
      if (schema.find(c.name) == nullptr) {
        schema.add(c);
        out.projections.push_back(
            AnalyzedQuery::Projection{c.name, item.expr->clone()});
      }
    }
    out.output = std::move(schema);
  }

  const Program& program_;
  AnalyzedProgram result_;
};

}  // namespace

int AnalyzedProgram::fold_index(std::string_view name) const {
  for (std::size_t i = 0; i < folds.size(); ++i) {
    if (folds[i].def.name == name) return static_cast<int>(i);
  }
  return -1;
}

int AnalyzedProgram::query_index(std::string_view result_name) const {
  if (result_name.empty()) return -1;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].def.result_name == result_name) return static_cast<int>(i);
  }
  return -1;
}

void fold_constants(ExprPtr& expr, const std::map<std::string, double>& params,
                    const std::vector<std::string>& bound) {
  fold_constants_impl(expr, params, bound);
}

AnalyzedProgram analyze(const Program& program,
                        const std::map<std::string, double>& params) {
  return ProgramAnalyzer{program, params}.run();
}

AnalyzedProgram analyze_source(std::string_view source,
                               const std::map<std::string, double>& params) {
  const Program program = parse_program(source);
  return analyze(program, params);
}

AnalyzedFold AnalyzedFold::clone() const {
  AnalyzedFold out;
  out.def = def.clone();
  out.linearity = linearity.clone();
  return out;
}

AnalyzedQuery AnalyzedQuery::clone() const {
  AnalyzedQuery out;
  out.def = def.clone();
  out.input = input;
  out.left = left;
  out.right = right;
  out.output = output;
  out.joined_schema = joined_schema;
  out.key_columns = key_columns;
  for (const auto& [name, expr] : computed_keys) {
    out.computed_keys.emplace(name, expr->clone());
  }
  out.aggregations.reserve(aggregations.size());
  for (const auto& agg : aggregations) {
    AggregationSpec copy;
    copy.kind = agg.kind;
    copy.fold_name = agg.fold_name;
    if (agg.sum_expr) copy.sum_expr = agg.sum_expr->clone();
    copy.column = agg.column;
    copy.out_columns = agg.out_columns;
    out.aggregations.push_back(std::move(copy));
  }
  out.on_switch = on_switch;
  out.projections.reserve(projections.size());
  for (const auto& p : projections) {
    out.projections.push_back(Projection{p.column, p.expr->clone()});
  }
  return out;
}

AnalyzedProgram AnalyzedProgram::clone() const {
  AnalyzedProgram out;
  out.params = params;
  out.folds.reserve(folds.size());
  for (const auto& f : folds) out.folds.push_back(f.clone());
  out.queries.reserve(queries.size());
  for (const auto& q : queries) out.queries.push_back(q.clone());
  return out;
}

}  // namespace perfq::lang
