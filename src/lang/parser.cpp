#include "lang/parser.hpp"

#include "common/error.hpp"
#include "lang/lexer.hpp"

namespace perfq::lang {
namespace {

class Parser {
 public:
  /// Recursive-descent depth cap. Nesting (parenthesized subexpressions,
  /// call arguments, nested if-suites) recurses on the C++ stack, so without
  /// a bound pathologically nested input — fuzzers find it immediately —
  /// overflows the stack well before any semantic check can reject it
  /// (ASan's instrumented frames hit it first; that was the PR 3 finding).
  /// 256 levels is far beyond any legitimate query and keeps the worst-case
  /// parser stack in the tens of KB. Every unbounded recursion is funneled
  /// through parse_expr()/parse_stmt(), whose guards count exactly one level
  /// per syntactic nesting level (`not`/unary-minus chains iterate instead).
  /// The outermost expression itself consumes one level, so the deepest
  /// legal paren nesting is kMaxNestingDepth - 1 (255) and one more is a
  /// clean QueryError — pinned by lang_parser_test's ExactDepthBoundary.
  static constexpr int kMaxNestingDepth = 256;

  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse() {
    Program program;
    skip_newlines();
    while (!check(TokenKind::kEndOfFile)) {
      if (check(TokenKind::kDef)) {
        program.folds.push_back(parse_fold());
      } else {
        program.queries.push_back(parse_query_stmt());
      }
      skip_newlines();
    }
    if (program.queries.empty()) {
      throw QueryError{"parse", "program contains no queries"};
    }
    return program;
  }

  ExprPtr parse_single_expression() {
    skip_newlines();
    ExprPtr e = parse_expr();
    skip_newlines();
    expect(TokenKind::kEndOfFile, "end of expression");
    return e;
  }

 private:
  // ------------------------------------------------------------- helpers --
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().is(kind); }
  const Token& advance() { return tokens_[pos_++]; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& what) {
    if (!check(kind)) {
      fail("expected " + what + ", found '" + peek().text + "'");
    }
    return advance();
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw QueryError{"parse", message, peek().line, peek().column};
  }
  void skip_newlines() {
    while (match(TokenKind::kNewline)) {
    }
  }

  /// RAII nesting-depth accounting for the self-recursive entry points.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > kMaxNestingDepth) {
        // fail() throws, but the guard is already constructed — keep the
        // counter balanced for the exception path.
        --parser_.depth_;
        parser_.fail("nesting deeper than " +
                     std::to_string(kMaxNestingDepth) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser& parser_;
  };

  // --------------------------------------------------------------- folds --
  FoldDef parse_fold() {
    FoldDef fold;
    fold.line = peek().line;
    expect(TokenKind::kDef, "'def'");
    fold.name = expect(TokenKind::kIdentifier, "fold name").text;
    expect(TokenKind::kLParen, "'('");
    // State parameters: a single identifier or a parenthesized tuple.
    if (match(TokenKind::kLParen)) {
      fold.state_vars.push_back(expect(TokenKind::kIdentifier, "state var").text);
      while (match(TokenKind::kComma)) {
        fold.state_vars.push_back(expect(TokenKind::kIdentifier, "state var").text);
      }
      expect(TokenKind::kRParen, "')'");
    } else {
      fold.state_vars.push_back(expect(TokenKind::kIdentifier, "state var").text);
    }
    expect(TokenKind::kComma, "','");
    // Packet parameters: identifier or parenthesized tuple (paper writes both
    // `(tin, tout)` and bare `tcpseq`).
    if (match(TokenKind::kLParen)) {
      if (!check(TokenKind::kRParen)) {
        fold.packet_args.push_back(parse_packet_arg());
        while (match(TokenKind::kComma)) {
          fold.packet_args.push_back(parse_packet_arg());
        }
      }
      expect(TokenKind::kRParen, "')'");
    } else {
      fold.packet_args.push_back(parse_packet_arg());
    }
    expect(TokenKind::kRParen, "')'");
    expect(TokenKind::kColon, "':'");
    fold.body = parse_suite();
    if (fold.body.empty()) fail("fold '" + fold.name + "' has an empty body");
    return fold;
  }

  std::string parse_packet_arg() {
    return expect(TokenKind::kIdentifier, "packet argument").text;
  }

  /// A suite is either statements on the same line, or an indented block.
  std::vector<Stmt> parse_suite() {
    std::vector<Stmt> body;
    if (match(TokenKind::kNewline)) {
      expect(TokenKind::kIndent, "indented block");
      while (!check(TokenKind::kDedent)) {
        body.push_back(parse_stmt());
        skip_newlines();
      }
      expect(TokenKind::kDedent, "dedent");
    } else {
      body.push_back(parse_stmt());
    }
    return body;
  }

  Stmt parse_stmt() {
    const DepthGuard guard(*this);
    Stmt stmt;
    stmt.line = peek().line;
    if (match(TokenKind::kIf)) {
      stmt.kind = Stmt::Kind::kIf;
      stmt.condition = parse_expr();
      expect(TokenKind::kColon, "':' after if condition");
      stmt.then_body = parse_suite();
      // An `else` may appear after the suite (aligned) or inline.
      skip_newlines();
      if (match(TokenKind::kElse)) {
        expect(TokenKind::kColon, "':' after else");
        stmt.else_body = parse_suite();
      }
      return stmt;
    }
    stmt.kind = Stmt::Kind::kAssign;
    stmt.target = expect(TokenKind::kIdentifier, "assignment target").text;
    expect(TokenKind::kAssign, "'='");
    stmt.value = parse_expr();
    return stmt;
  }

  // ------------------------------------------------------------- queries --
  QueryDef parse_query_stmt() {
    QueryDef query;
    query.line = peek().line;
    // Optional binding: `R1 = SELECT ...`.
    if (check(TokenKind::kIdentifier) && peek(1).is(TokenKind::kAssign)) {
      query.result_name = advance().text;
      advance();  // '='
    }
    expect(TokenKind::kSelect, "SELECT");
    // Select list.
    do {
      SelectItem item;
      if (match(TokenKind::kStar)) {
        item.star = true;
      } else {
        item.expr = parse_expr();
      }
      query.select_list.push_back(std::move(item));
    } while (match(TokenKind::kComma));

    if (match(TokenKind::kFrom)) {
      query.from = expect(TokenKind::kIdentifier, "table name").text;
      if (match(TokenKind::kJoin)) {
        query.kind = QueryDef::Kind::kJoin;
        query.join_left = query.from;
        query.join_right = expect(TokenKind::kIdentifier, "table name").text;
        expect(TokenKind::kOn, "ON");
        query.join_keys.push_back(parse_join_key());
        while (match(TokenKind::kComma)) {
          query.join_keys.push_back(parse_join_key());
        }
        if (match(TokenKind::kWhere)) query.where = parse_expr();
        end_of_query();
        return query;
      }
    }

    if (match(TokenKind::kGroupBy)) {
      query.kind = QueryDef::Kind::kGroupBy;
      do {
        query.groupby_fields.push_back(parse_expr());
      } while (match(TokenKind::kComma));
    }
    if (match(TokenKind::kWhere)) query.where = parse_expr();
    end_of_query();
    return query;
  }

  std::string parse_join_key() {
    return expect(TokenKind::kIdentifier, "join key").text;
  }

  void end_of_query() {
    if (!check(TokenKind::kNewline) && !check(TokenKind::kEndOfFile)) {
      fail("unexpected '" + peek().text + "' after query");
    }
  }

  // --------------------------------------------------------- expressions --
  ExprPtr parse_expr() {
    const DepthGuard guard(*this);
    return parse_or();
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (check(TokenKind::kOr)) {
      advance();
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (check(TokenKind::kAnd)) {
      advance();
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_not());
    }
    return lhs;
  }

  ExprPtr parse_not() {
    // Iterative (a `not` chain is linear, not nested): the depth guard in
    // parse_expr() then bounds every remaining recursion path.
    std::size_t nots = 0;
    while (match(TokenKind::kNot)) ++nots;
    ExprPtr e = parse_comparison();
    for (; nots > 0; --nots) {
      auto wrapped = std::make_unique<Expr>();
      wrapped->kind = ExprKind::kUnary;
      wrapped->is_not = true;
      wrapped->lhs = std::move(e);
      e = std::move(wrapped);
    }
    return e;
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    for (;;) {
      BinaryOp op;
      if (check(TokenKind::kEq)) {
        op = BinaryOp::kEq;
      } else if (check(TokenKind::kNe)) {
        op = BinaryOp::kNe;
      } else if (check(TokenKind::kLt)) {
        op = BinaryOp::kLt;
      } else if (check(TokenKind::kLe)) {
        op = BinaryOp::kLe;
      } else if (check(TokenKind::kGt)) {
        op = BinaryOp::kGt;
      } else if (check(TokenKind::kGe)) {
        op = BinaryOp::kGe;
      } else {
        return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), parse_additive());
    }
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      if (match(TokenKind::kPlus)) {
        lhs = make_binary(BinaryOp::kAdd, std::move(lhs), parse_multiplicative());
      } else if (match(TokenKind::kMinus)) {
        lhs = make_binary(BinaryOp::kSub, std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      if (match(TokenKind::kStar)) {
        lhs = make_binary(BinaryOp::kMul, std::move(lhs), parse_unary());
      } else if (match(TokenKind::kSlash)) {
        lhs = make_binary(BinaryOp::kDiv, std::move(lhs), parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    // Iterative, like parse_not(): `----x` is a chain, not nesting.
    std::size_t minuses = 0;
    while (match(TokenKind::kMinus)) ++minuses;
    ExprPtr e = parse_primary();
    for (; minuses > 0; --minuses) {
      auto wrapped = std::make_unique<Expr>();
      wrapped->kind = ExprKind::kUnary;
      wrapped->is_not = false;
      wrapped->lhs = std::move(e);
      e = std::move(wrapped);
    }
    return e;
  }

  ExprPtr parse_primary() {
    const Token& tok = peek();
    if (match(TokenKind::kNumber)) {
      return make_number(tok.number, tok.line, tok.column);
    }
    if (match(TokenKind::kInfinity)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInfinity;
      e->line = tok.line;
      e->column = tok.column;
      return e;
    }
    if (match(TokenKind::kLParen)) {
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    if (check(TokenKind::kIdentifier)) {
      const Token& name = advance();
      if (match(TokenKind::kDot)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kDotted;
        e->name = name.text;
        e->member = expect(TokenKind::kIdentifier, "member name").text;
        e->line = name.line;
        e->column = name.column;
        return e;
      }
      if (match(TokenKind::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCall;
        e->name = name.text;
        e->line = name.line;
        e->column = name.column;
        if (!check(TokenKind::kRParen)) {
          e->args.push_back(parse_expr());
          while (match(TokenKind::kComma)) e->args.push_back(parse_expr());
        }
        expect(TokenKind::kRParen, "')'");
        return e;
      }
      return make_name(name.text, name.line, name.column);
    }
    fail("expected an expression, found '" + tok.text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< live parse_expr/parse_stmt nesting (see DepthGuard)
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser{tokenize(source)}.parse();
}

ExprPtr parse_expression(std::string_view source) {
  return Parser{tokenize(source)}.parse_single_expression();
}

}  // namespace perfq::lang
