// Table schemas for the query language.
//
// Every query consumes a table and produces a table (§2: "a performance
// query is a function that takes one table of records and returns another").
// The base table T has the packet-observation schema; GROUPBY queries
// produce aggregate tables keyed by their GROUPBY fields; JOINs require both
// inputs keyed by the join key (the paper's compilable restriction).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "packet/record.hpp"

namespace perfq::lang {

struct Column {
  std::string name;                   ///< canonical name
  std::vector<std::string> aliases;   ///< alternate spellings that resolve here
  int bits = 64;                      ///< width when used as a key component
  std::optional<FieldId> base_field;  ///< set for base-schema columns

  [[nodiscard]] bool matches(std::string_view n) const {
    if (name == n) return true;
    for (const auto& a : aliases) {
      if (a == n) return true;
    }
    return false;
  }
};

class Schema {
 public:
  /// The packet-observation schema of T (every FieldId, plus the "qin" alias).
  [[nodiscard]] static Schema base();

  void add(Column column);

  [[nodiscard]] const Column* find(std::string_view name) const;
  [[nodiscard]] int index_of(std::string_view name) const;  ///< -1 if absent
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] std::size_t size() const { return columns_.size(); }

  /// True while the table is an unbounded record stream processable on the
  /// switch (T itself, or T through stream-preserving SELECTs). GROUPBY over
  /// a stream compiles to the key-value store; anything downstream of an
  /// aggregate runs in the collection layer.
  bool stream_over_base = false;

  /// GROUPBY key column names (empty for streams); JOIN legality is checked
  /// against these (the key uniquely identifies rows — §2's restriction).
  std::vector<std::string> key;

  /// Expand "5tuple" into the five transport-tuple column names if present
  /// in this schema; returns {name} for ordinary columns.
  [[nodiscard]] std::vector<std::string> expand(std::string_view name) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Column> columns_;
};

/// The canonical five column names "srcip dstip srcport dstport proto".
[[nodiscard]] const std::vector<std::string>& five_tuple_names();

}  // namespace perfq::lang
