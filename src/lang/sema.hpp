// Semantic analysis: name resolution, schema derivation, aggregation
// classification, join-legality checking, and linearity analysis.
//
// analyze() turns a parsed Program plus a map of free constants (alpha, K,
// L, ... — the paper's example queries use symbolic thresholds) into an
// AnalyzedProgram the compiler lowers directly. All user-facing diagnostics
// (unknown columns, illegal joins, unsupported constructs) surface here as
// QueryError.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lang/affine.hpp"
#include "lang/ast.hpp"
#include "lang/schema.hpp"

namespace perfq::lang {

/// One aggregation operation of a GROUPBY query.
struct AggregationSpec {
  enum class Kind : std::uint8_t { kCount, kSum, kFold };
  Kind kind = Kind::kCount;
  std::string fold_name;  ///< kFold: references AnalyzedProgram::folds
  ExprPtr sum_expr;       ///< kSum: the summed expression (input columns)
  std::string column;     ///< display/base name ("COUNT", "SUM(pkt_len)", fold)
  std::vector<std::string> out_columns;  ///< canonical output column names
};

struct AnalyzedFold {
  FoldDef def;               ///< with free constants folded to literals
  LinearityResult linearity;

  [[nodiscard]] AnalyzedFold clone() const;
};

struct AnalyzedQuery {
  QueryDef def;  ///< owned copy (resolved from/groupby/select intact)
  // Dataflow inputs: indices into AnalyzedProgram::queries, or -1 for T.
  int input = -1;
  int left = -1;
  int right = -1;
  Schema output;
  /// kJoin only: the full joined schema (keys + both sides' prefixed
  /// columns) that projections and WHERE are evaluated against.
  Schema joined_schema;
  // kGroupBy:
  std::vector<std::string> key_columns;  ///< expanded + canonicalized
  /// Expression-valued key columns (e.g. GROUPBY qid, qsize / 64), keyed by
  /// output column name (the expression's canonical rendering). Only legal
  /// for on-switch GROUPBYs, where the key-value store evaluates the
  /// expression per record; absent for plain-name keys. Computed keys never
  /// take the compiler's fast-field extraction path.
  std::map<std::string, ExprPtr> computed_keys;
  std::vector<AggregationSpec> aggregations;
  bool on_switch = false;  ///< true: lowers to the switch key-value store
  // kSelect / kJoin projections: output column name + expression.
  struct Projection {
    std::string column;
    ExprPtr expr;
  };
  std::vector<Projection> projections;

  [[nodiscard]] AnalyzedQuery clone() const;
};

struct AnalyzedProgram {
  std::map<std::string, double> params;
  std::vector<AnalyzedFold> folds;
  std::vector<AnalyzedQuery> queries;  ///< in program order

  [[nodiscard]] int fold_index(std::string_view name) const;
  [[nodiscard]] int query_index(std::string_view result_name) const;
  /// The last query is the program's primary result.
  [[nodiscard]] const AnalyzedQuery& result() const { return queries.back(); }

  /// Deep copy (the structs hold ExprPtr ASTs, so they are move-only; the
  /// federation layer clones one compiled program per switch engine).
  [[nodiscard]] AnalyzedProgram clone() const;
};

/// Analyze a parsed program. `params` provides values for free constants.
[[nodiscard]] AnalyzedProgram analyze(const Program& program,
                                      const std::map<std::string, double>& params);

/// Convenience: parse + analyze.
[[nodiscard]] AnalyzedProgram analyze_source(std::string_view source,
                                             const std::map<std::string, double>&
                                                 params = {});

/// Replace free-constant names with literals and fold constant arithmetic.
/// Names in `bound` are left untouched; unknown free names throw QueryError.
void fold_constants(ExprPtr& expr, const std::map<std::string, double>& params,
                    const std::vector<std::string>& bound);

}  // namespace perfq::lang
