// Indentation-aware lexer for the query language.
//
// The paper writes fold bodies in Python-like indented blocks:
//
//     def ewma (lat_est, (tin, tout)):
//         lat_est = (1 - alpha) * lat_est + alpha * (tout - tin)
//
// so the lexer tracks an indent stack and emits INDENT/DEDENT tokens.
// Keywords are case-insensitive ("GROUPBY" and "groupby" both appear in
// Fig. 2). Numeric literals accept time suffixes (ns/us/ms/s) and normalize
// to nanoseconds, letting operators write `WHERE tout - tin > 1ms` verbatim.
// "5tuple" is special-cased as an identifier even though it starts with a
// digit. Comments run from '#' to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace perfq::lang {

/// Tokenize a whole program. Throws QueryError on bad input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace perfq::lang
