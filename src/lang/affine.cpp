#include "lang/affine.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "common/error.hpp"

namespace perfq::lang {
namespace {

// ----------------------------------------------------- expression helpers --

[[nodiscard]] bool is_literal(const Expr* e, double* value = nullptr) {
  if (e == nullptr) {
    if (value != nullptr) *value = 0.0;
    return true;  // null expression denotes the constant 0
  }
  if (e->kind != ExprKind::kNumber) return false;
  if (value != nullptr) *value = e->number;
  return true;
}

[[nodiscard]] bool exprs_equal(const Expr* a, const Expr* b) {
  double va = 0.0;
  double vb = 0.0;
  if (is_literal(a, &va) && is_literal(b, &vb)) return va == vb;
  if (a == nullptr || b == nullptr) return false;
  return to_string(*a) == to_string(*b);
}

[[nodiscard]] ExprPtr clone_or_null(const ExprPtr& e) {
  return e ? e->clone() : nullptr;
}

[[nodiscard]] ExprPtr add_exprs(const ExprPtr& a, const ExprPtr& b) {
  double va = 0.0;
  double vb = 0.0;
  const bool la = is_literal(a.get(), &va);
  const bool lb = is_literal(b.get(), &vb);
  if (la && lb) return (va + vb) == 0.0 ? nullptr : make_number(va + vb);
  if (la && va == 0.0) return b->clone();
  if (lb && vb == 0.0) return a->clone();
  return make_binary(BinaryOp::kAdd, a->clone(), b->clone());
}

[[nodiscard]] ExprPtr mul_exprs(const ExprPtr& a, const ExprPtr& b) {
  double va = 0.0;
  double vb = 0.0;
  const bool la = is_literal(a.get(), &va);
  const bool lb = is_literal(b.get(), &vb);
  if ((la && va == 0.0) || (lb && vb == 0.0)) return nullptr;
  if (la && lb) return make_number(va * vb);
  if (la && va == 1.0) return b->clone();
  if (lb && vb == 1.0) return a->clone();
  return make_binary(BinaryOp::kMul, a ? a->clone() : make_number(0),
                     b ? b->clone() : make_number(0));
}

[[nodiscard]] ExprPtr div_exprs(const ExprPtr& a, const ExprPtr& b) {
  double va = 0.0;
  double vb = 0.0;
  if (is_literal(a.get(), &va) && va == 0.0) return nullptr;
  if (is_literal(a.get(), &va) && is_literal(b.get(), &vb) && vb != 0.0) {
    return make_number(va / vb);
  }
  return make_binary(BinaryOp::kDiv, a ? a->clone() : make_number(0), b->clone());
}

[[nodiscard]] ExprPtr negate_expr(const ExprPtr& a) {
  double v = 0.0;
  if (is_literal(a.get(), &v)) return v == 0.0 ? nullptr : make_number(-v);
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->is_not = false;
  e->lhs = a->clone();
  return e;
}

/// __select(cond, a, b); simplifies when both sides are equal.
[[nodiscard]] ExprPtr select_expr(const Expr& cond, const ExprPtr& a,
                                  const ExprPtr& b) {
  if (exprs_equal(a.get(), b.get())) return clone_or_null(a);
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->name = std::string{kSelectFn};
  e->args.push_back(cond.clone());
  e->args.push_back(a ? a->clone() : make_number(0));
  e->args.push_back(b ? b->clone() : make_number(0));
  return e;
}

/// Rename every packet-argument reference `x` to `prev$x` (history rebinding).
[[nodiscard]] ExprPtr rename_to_prev(const Expr& e) {
  ExprPtr out = e.clone();
  struct Walker {
    static void walk(Expr& node) {
      if (node.kind == ExprKind::kName) {
        node.name = std::string{kPrevPrefix} + node.name;
        return;
      }
      if (node.lhs) walk(*node.lhs);
      if (node.rhs) walk(*node.rhs);
      for (auto& a : node.args) walk(*a);
    }
  };
  Walker::walk(*out);
  return out;
}

// ------------------------------------------------------------ affine form --

struct AffineForm {
  bool valid = true;
  std::string why;              ///< failure reason when !valid
  ExprPtr constant;             ///< packet-pure; null = 0
  std::vector<ExprPtr> coeffs;  ///< per state var; null = 0

  [[nodiscard]] static AffineForm invalid(std::string reason) {
    AffineForm f;
    f.valid = false;
    f.why = std::move(reason);
    return f;
  }
  [[nodiscard]] static AffineForm pure(ExprPtr value, std::size_t dims) {
    AffineForm f;
    f.constant = std::move(value);
    f.coeffs.resize(dims);
    return f;
  }
  [[nodiscard]] static AffineForm identity(std::size_t var, std::size_t dims) {
    AffineForm f;
    f.coeffs.resize(dims);
    f.coeffs[var] = make_number(1.0);
    return f;
  }

  [[nodiscard]] bool is_pure() const {
    if (!valid) return false;
    return std::all_of(coeffs.begin(), coeffs.end(), [](const ExprPtr& c) {
      double v = 0.0;
      return is_literal(c.get(), &v) && v == 0.0;
    });
  }

  [[nodiscard]] AffineForm clone() const {
    AffineForm f;
    f.valid = valid;
    f.why = why;
    f.constant = clone_or_null(constant);
    for (const auto& c : coeffs) f.coeffs.push_back(clone_or_null(c));
    return f;
  }
};

[[nodiscard]] bool forms_equal(const AffineForm& a, const AffineForm& b) {
  if (a.valid != b.valid) return false;
  if (!a.valid) return true;
  if (!exprs_equal(a.constant.get(), b.constant.get())) return false;
  for (std::size_t i = 0; i < a.coeffs.size(); ++i) {
    if (!exprs_equal(a.coeffs[i].get(), b.coeffs[i].get())) return false;
  }
  return true;
}

// --------------------------------------------------------------- analyzer --

class Analyzer {
 public:
  explicit Analyzer(const FoldDef& fold) : fold_(fold) {
    for (std::size_t i = 0; i < fold.state_vars.size(); ++i) {
      state_index_[fold.state_vars[i]] = i;
    }
  }

  LinearityResult run() {
    // Phase A: plain analysis (h = 0).
    std::vector<AffineForm> env = identity_env();
    exec_body(env);
    if (all_valid(env)) return finish(env, 0);

    // Phase B: rebind history variables (those whose post-body value is
    // packet-pure) to the previous packet's expression and retry (h = 1).
    std::vector<std::optional<ExprPtr>> history(dims());
    bool any_history = false;
    for (std::size_t i = 0; i < dims(); ++i) {
      if (env[i].valid && env[i].is_pure()) {
        const ExprPtr value =
            env[i].constant ? env[i].constant->clone() : make_number(0);
        history[i] = rename_to_prev(*value);
        any_history = true;
      }
    }
    const std::string phase_a_reason = first_reason(env);
    if (!any_history) return not_linear(phase_a_reason);

    std::vector<AffineForm> env2(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      env2[i] = history[i].has_value()
                    ? AffineForm::pure((*history[i])->clone(), dims())
                    : AffineForm::identity(i, dims());
    }
    exec_body(env2);
    if (all_valid(env2)) return finish(env2, 1);
    return not_linear(first_reason(env2));
  }

 private:
  [[nodiscard]] std::size_t dims() const { return fold_.state_vars.size(); }

  [[nodiscard]] std::vector<AffineForm> identity_env() const {
    std::vector<AffineForm> env;
    env.reserve(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      env.push_back(AffineForm::identity(i, dims()));
    }
    return env;
  }

  [[nodiscard]] static bool all_valid(const std::vector<AffineForm>& env) {
    return std::all_of(env.begin(), env.end(),
                       [](const AffineForm& f) { return f.valid; });
  }

  [[nodiscard]] static std::string first_reason(const std::vector<AffineForm>& env) {
    for (const auto& f : env) {
      if (!f.valid) return f.why;
    }
    return "not affine";
  }

  [[nodiscard]] LinearityResult not_linear(std::string reason) const {
    LinearityResult r;
    r.classification = kv::Linearity::kNotLinear;
    r.reason = std::move(reason);
    return r;
  }

  [[nodiscard]] LinearityResult finish(std::vector<AffineForm>& env,
                                       std::size_t h) const {
    LinearityResult r;
    r.history_window = h;
    bool const_a = true;
    for (std::size_t i = 0; i < dims(); ++i) {
      AffineRow row;
      for (auto& c : env[i].coeffs) {
        if (c != nullptr && c->kind != ExprKind::kNumber) const_a = false;
        row.coeffs.push_back(std::move(c));
      }
      row.constant = std::move(env[i].constant);
      r.rows.push_back(std::move(row));
    }
    r.classification =
        const_a ? kv::Linearity::kLinearConstA : kv::Linearity::kLinear;
    r.reason = "update is affine in state with packet-pure coefficients";
    if (h > 0) r.reason += " given a " + std::to_string(h) + "-packet history";
    if (const_a) r.reason += "; A is packet-independent";
    return r;
  }

  void exec_body(std::vector<AffineForm>& env) const {
    exec_block(fold_.body, env);
  }

  void exec_block(const std::vector<Stmt>& stmts,
                  std::vector<AffineForm>& env) const {
    for (const Stmt& s : stmts) exec_stmt(s, env);
  }

  void exec_stmt(const Stmt& s, std::vector<AffineForm>& env) const {
    if (s.kind == Stmt::Kind::kAssign) {
      const auto it = state_index_.find(s.target);
      check(it != state_index_.end(), "affine: assignment to non-state var");
      env[it->second] = eval(*s.value, env);
      return;
    }
    // if/else
    const AffineForm cond = eval(*s.condition, env);
    std::vector<AffineForm> then_env;
    std::vector<AffineForm> else_env;
    then_env.reserve(env.size());
    else_env.reserve(env.size());
    for (const auto& f : env) {
      then_env.push_back(f.clone());
      else_env.push_back(f.clone());
    }
    exec_block(s.then_body, then_env);
    exec_block(s.else_body, else_env);

    const bool cond_pure = cond.valid && cond.is_pure();
    for (std::size_t i = 0; i < env.size(); ++i) {
      if (forms_equal(then_env[i], else_env[i])) {
        env[i] = std::move(then_env[i]);
        continue;
      }
      if (!then_env[i].valid || !else_env[i].valid) {
        env[i] = AffineForm::invalid(!then_env[i].valid ? then_env[i].why
                                                        : else_env[i].why);
        continue;
      }
      if (!cond_pure) {
        env[i] = AffineForm::invalid(
            "state variable '" + fold_.state_vars[i] +
            "' is updated under a state-dependent predicate '" +
            to_string(*s.condition) + "'");
        continue;
      }
      // Predicated merge: coefficients become __select(cond, then, else).
      const ExprPtr cond_expr =
          cond.constant ? cond.constant->clone() : make_number(0);
      AffineForm merged;
      merged.coeffs.resize(env.size());
      merged.constant =
          select_expr(*cond_expr, then_env[i].constant, else_env[i].constant);
      for (std::size_t j = 0; j < env.size(); ++j) {
        merged.coeffs[j] =
            select_expr(*cond_expr, then_env[i].coeffs[j], else_env[i].coeffs[j]);
      }
      env[i] = std::move(merged);
    }
  }

  /// Rewrite `e` with every state-variable reference replaced by its current
  /// (pure) form. Precondition: every referenced state var has a pure form.
  [[nodiscard]] ExprPtr substitute_state(const Expr& e,
                                         const std::vector<AffineForm>& env) const {
    if (e.kind == ExprKind::kName) {
      const auto it = state_index_.find(e.name);
      if (it != state_index_.end()) {
        const AffineForm& form = env[it->second];
        check(form.valid && form.is_pure(),
              "affine: substituting impure state form");
        return form.constant ? form.constant->clone() : make_number(0);
      }
      return e.clone();
    }
    ExprPtr out = e.clone();
    if (e.lhs) out->lhs = substitute_state(*e.lhs, env);
    if (e.rhs) out->rhs = substitute_state(*e.rhs, env);
    out->args.clear();
    for (const auto& a : e.args) out->args.push_back(substitute_state(*a, env));
    return out;
  }

  [[nodiscard]] AffineForm eval(const Expr& e,
                                const std::vector<AffineForm>& env) const {
    switch (e.kind) {
      case ExprKind::kNumber:
        return AffineForm::pure(make_number(e.number), dims());
      case ExprKind::kInfinity:
        return AffineForm::pure(e.clone(), dims());
      case ExprKind::kName: {
        const auto it = state_index_.find(e.name);
        if (it != state_index_.end()) return env[it->second].clone();
        return AffineForm::pure(e.clone(), dims());  // packet argument
      }
      case ExprKind::kDotted:
        return AffineForm::invalid("dotted name '" + to_string(e) +
                                   "' inside a fold body");
      case ExprKind::kUnary: {
        AffineForm v = eval(*e.lhs, env);
        if (!v.valid) return v;
        if (e.is_not) {
          if (!v.is_pure()) {
            return AffineForm::invalid("'not' applied to state-dependent value");
          }
          return AffineForm::pure(substitute_state(e, env), dims());
        }
        AffineForm out;
        out.coeffs.resize(dims());
        out.constant = negate_expr(v.constant);
        for (std::size_t j = 0; j < dims(); ++j) {
          out.coeffs[j] = v.coeffs[j] ? negate_expr(v.coeffs[j]) : nullptr;
        }
        return out;
      }
      case ExprKind::kCall: {
        // max/min (and anything else sema admitted) must be packet-pure.
        for (const auto& a : e.args) {
          AffineForm v = eval(*a, env);
          if (!v.valid) return v;
          if (!v.is_pure()) {
            return AffineForm::invalid("'" + e.name +
                                       "' applied to a state variable");
          }
        }
        return AffineForm::pure(substitute_state(e, env), dims());
      }
      case ExprKind::kBinary:
        return eval_binary(e, env);
    }
    return AffineForm::invalid("unsupported expression");
  }

  [[nodiscard]] AffineForm eval_binary(const Expr& e,
                                       const std::vector<AffineForm>& env) const {
    AffineForm l = eval(*e.lhs, env);
    if (!l.valid) return l;
    AffineForm r = eval(*e.rhs, env);
    if (!r.valid) return r;

    if (is_comparison(e.op) || is_logical(e.op)) {
      // A predicate used as a value: fine if both sides are packet-pure (it
      // is then itself a packet-pure 0/1 value), otherwise non-affine.
      if (l.is_pure() && r.is_pure()) {
        return AffineForm::pure(substitute_state(e, env), dims());
      }
      return AffineForm::invalid("state-dependent predicate '" + to_string(e) +
                                 "' used as a value");
    }

    AffineForm out;
    out.coeffs.resize(dims());
    switch (e.op) {
      case BinaryOp::kAdd:
        out.constant = add_exprs(l.constant, r.constant);
        for (std::size_t j = 0; j < dims(); ++j) {
          out.coeffs[j] = add_exprs(l.coeffs[j], r.coeffs[j]);
        }
        return out;
      case BinaryOp::kSub: {
        out.constant = add_exprs(l.constant, negate_expr(r.constant));
        for (std::size_t j = 0; j < dims(); ++j) {
          out.coeffs[j] = add_exprs(l.coeffs[j],
                                    r.coeffs[j] ? negate_expr(r.coeffs[j]) : nullptr);
        }
        return out;
      }
      case BinaryOp::kMul: {
        const AffineForm* pure = l.is_pure() ? &l : (r.is_pure() ? &r : nullptr);
        const AffineForm* other = pure == &l ? &r : &l;
        if (pure == nullptr) {
          return AffineForm::invalid("product of two state-dependent values '" +
                                     to_string(e) + "'");
        }
        const ExprPtr scale = pure->constant ? pure->constant->clone() : nullptr;
        if (scale == nullptr) return out;  // multiply by 0
        out.constant = other->constant ? mul_exprs(other->constant, scale) : nullptr;
        for (std::size_t j = 0; j < dims(); ++j) {
          out.coeffs[j] =
              other->coeffs[j] ? mul_exprs(other->coeffs[j], scale) : nullptr;
        }
        return out;
      }
      case BinaryOp::kDiv: {
        if (!r.is_pure()) {
          return AffineForm::invalid("division by a state-dependent value '" +
                                     to_string(e) + "'");
        }
        const ExprPtr denom = r.constant ? r.constant->clone() : make_number(0);
        out.constant = l.constant ? div_exprs(l.constant, denom) : nullptr;
        for (std::size_t j = 0; j < dims(); ++j) {
          out.coeffs[j] = l.coeffs[j] ? div_exprs(l.coeffs[j], denom) : nullptr;
        }
        return out;
      }
      default:
        return AffineForm::invalid("unsupported operator in fold body");
    }
  }

  const FoldDef& fold_;
  std::map<std::string, std::size_t> state_index_;
};

}  // namespace

LinearityResult analyze_linearity(const FoldDef& fold) {
  return Analyzer{fold}.run();
}

AffineRow AffineRow::clone() const {
  AffineRow out;
  out.coeffs.reserve(coeffs.size());
  for (const auto& c : coeffs) out.coeffs.push_back(c ? c->clone() : nullptr);
  if (constant) out.constant = constant->clone();
  return out;
}

LinearityResult LinearityResult::clone() const {
  LinearityResult out;
  out.classification = classification;
  out.history_window = history_window;
  out.reason = reason;
  out.rows.reserve(rows.size());
  for (const auto& r : rows) out.rows.push_back(r.clone());
  return out;
}

}  // namespace perfq::lang
