#include "lang/ast.hpp"

#include <array>
#include <cstdio>

#include "common/error.hpp"

namespace perfq::lang {

const char* to_cstring(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

bool is_comparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool is_logical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool is_arithmetic(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul ||
         op == BinaryOp::kDiv;
}

ExprPtr Expr::clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->number = number;
  out->name = name;
  out->member = member;
  out->op = op;
  out->is_not = is_not;
  out->line = line;
  out->column = column;
  if (lhs) out->lhs = lhs->clone();
  if (rhs) out->rhs = rhs->clone();
  for (const auto& a : args) out->args.push_back(a->clone());
  return out;
}

Stmt Stmt::clone() const {
  Stmt out;
  out.kind = kind;
  out.target = target;
  out.line = line;
  if (value) out.value = value->clone();
  if (condition) out.condition = condition->clone();
  for (const auto& s : then_body) out.then_body.push_back(s.clone());
  for (const auto& s : else_body) out.else_body.push_back(s.clone());
  return out;
}

FoldDef FoldDef::clone() const {
  FoldDef out;
  out.name = name;
  out.state_vars = state_vars;
  out.packet_args = packet_args;
  for (const auto& s : body) out.body.push_back(s.clone());
  out.line = line;
  return out;
}

QueryDef QueryDef::clone() const {
  QueryDef out;
  out.kind = kind;
  out.result_name = result_name;
  for (const auto& item : select_list) {
    SelectItem copy;
    copy.star = item.star;
    if (item.expr) copy.expr = item.expr->clone();
    out.select_list.push_back(std::move(copy));
  }
  out.from = from;
  if (where) out.where = where->clone();
  for (const auto& f : groupby_fields) out.groupby_fields.push_back(f->clone());
  out.join_left = join_left;
  out.join_right = join_right;
  out.join_keys = join_keys;
  out.line = line;
  return out;
}

namespace {

int precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return 1;
    case BinaryOp::kAnd: return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
      return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return 5;
  }
  return 0;
}

void print_expr(const Expr& e, std::string& out, int parent_prec) {
  switch (e.kind) {
    case ExprKind::kNumber: {
      // Integral values print without a trailing ".0"; decimals use %g so the
      // canonical text is short and re-lexable.
      const auto as_int = static_cast<long long>(e.number);
      if (static_cast<double>(as_int) == e.number) {
        out += std::to_string(as_int);
      } else {
        std::array<char, 64> buf{};
        std::snprintf(buf.data(), buf.size(), "%g", e.number);
        out += buf.data();
      }
      return;
    }
    case ExprKind::kInfinity:
      out += "infinity";
      return;
    case ExprKind::kName:
      out += e.name;
      return;
    case ExprKind::kDotted:
      out += e.name + "." + e.member;
      return;
    case ExprKind::kUnary:
      out += e.is_not ? "not " : "-";
      print_expr(*e.lhs, out, 6);
      return;
    case ExprKind::kCall: {
      out += e.name + "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        print_expr(*e.args[i], out, 0);
      }
      out += ")";
      return;
    }
    case ExprKind::kBinary: {
      const int prec = precedence(e.op);
      const bool parens = prec < parent_prec;
      if (parens) out += "(";
      print_expr(*e.lhs, out, prec);
      const bool word = is_logical(e.op);
      out += word ? (std::string{" "} + to_cstring(e.op) + " ")
                  : (std::string{" "} + to_cstring(e.op) + " ");
      print_expr(*e.rhs, out, prec + 1);
      if (parens) out += ")";
      return;
    }
  }
  throw InternalError{"print_expr: unknown ExprKind"};
}

void print_stmts(const std::vector<Stmt>& body, std::string& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 4, ' ');
  for (const auto& s : body) {
    if (s.kind == Stmt::Kind::kAssign) {
      out += pad + s.target + " = " + to_string(*s.value) + "\n";
    } else {
      out += pad + "if " + to_string(*s.condition) + ":\n";
      print_stmts(s.then_body, out, depth + 1);
      if (!s.else_body.empty()) {
        out += pad + "else:\n";
        print_stmts(s.else_body, out, depth + 1);
      }
    }
  }
}

}  // namespace

std::string to_string(const Expr& expr) {
  std::string out;
  print_expr(expr, out, 0);
  return out;
}

ExprPtr make_number(double value, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumber;
  e->number = value;
  e->line = line;
  e->column = col;
  return e;
}

ExprPtr make_name(std::string name, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kName;
  e->name = std::move(name);
  e->line = line;
  e->column = col;
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->line = lhs ? lhs->line : 0;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::string to_string(const FoldDef& fold) {
  std::string out = "def " + fold.name + " (";
  if (fold.state_vars.size() == 1) {
    out += fold.state_vars[0];
  } else {
    out += "(";
    for (std::size_t i = 0; i < fold.state_vars.size(); ++i) {
      if (i > 0) out += ", ";
      out += fold.state_vars[i];
    }
    out += ")";
  }
  out += ", (";
  for (std::size_t i = 0; i < fold.packet_args.size(); ++i) {
    if (i > 0) out += ", ";
    out += fold.packet_args[i];
  }
  out += ")):\n";
  print_stmts(fold.body, out, 1);
  return out;
}

std::string to_string(const QueryDef& query) {
  std::string out;
  if (!query.result_name.empty()) out += query.result_name + " = ";
  out += "SELECT ";
  for (std::size_t i = 0; i < query.select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += query.select_list[i].star ? "*" : to_string(*query.select_list[i].expr);
  }
  if (query.kind == QueryDef::Kind::kJoin) {
    out += " FROM " + query.join_left + " JOIN " + query.join_right + " ON ";
    for (std::size_t i = 0; i < query.join_keys.size(); ++i) {
      if (i > 0) out += ", ";
      out += query.join_keys[i];
    }
  } else {
    if (query.from != "T") out += " FROM " + query.from;
    if (query.kind == QueryDef::Kind::kGroupBy) {
      out += " GROUPBY ";
      for (std::size_t i = 0; i < query.groupby_fields.size(); ++i) {
        if (i > 0) out += ", ";
        out += to_string(*query.groupby_fields[i]);
      }
    }
  }
  if (query.where) out += " WHERE " + to_string(*query.where);
  return out;
}

std::string to_string(const Program& program) {
  std::string out;
  for (const auto& f : program.folds) out += to_string(f) + "\n";
  for (const auto& q : program.queries) out += to_string(q) + "\n";
  return out;
}

}  // namespace perfq::lang
