// Abstract syntax tree of the performance query language (Fig. 1).
//
// A program is a list of fold definitions and queries. Queries may bind their
// result to a name (R1 = SELECT ...) for composition; the last query (named
// or not) is the program's primary result unless the caller asks for others.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace perfq::lang {

// ------------------------------------------------------------ expressions --

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

[[nodiscard]] const char* to_cstring(BinaryOp op);
[[nodiscard]] bool is_comparison(BinaryOp op);
[[nodiscard]] bool is_logical(BinaryOp op);
[[nodiscard]] bool is_arithmetic(BinaryOp op);

enum class ExprKind : std::uint8_t {
  kNumber,   // literal (time suffixes already normalized to ns)
  kInfinity, // the `infinity` keyword (drop sentinel)
  kName,     // identifier: field, state var, packet param, or free constant
  kDotted,   // qualified name: R1.COUNT, perc.high
  kBinary,
  kUnary,    // -x, not p
  kCall,     // max(a, b), SUM(expr), user_fold(...) in select lists
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  double number = 0.0;            // kNumber
  std::string name;               // kName / kDotted(base) / kCall(callee)
  std::string member;             // kDotted member
  BinaryOp op = BinaryOp::kAdd;   // kBinary
  bool is_not = false;            // kUnary: true = logical not, false = negate
  ExprPtr lhs;
  ExprPtr rhs;                    // kBinary rhs, kUnary operand in lhs
  std::vector<ExprPtr> args;      // kCall
  int line = 0;
  int column = 0;

  [[nodiscard]] ExprPtr clone() const;
};

/// Canonical text of an expression; doubles as the derived-column name
/// ("SUM(pkt_len)", "R2.COUNT/R1.COUNT").
[[nodiscard]] std::string to_string(const Expr& expr);

// Construction helpers (used by parser and tests).
[[nodiscard]] ExprPtr make_number(double value, int line = 0, int col = 0);
[[nodiscard]] ExprPtr make_name(std::string name, int line = 0, int col = 0);
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

// ------------------------------------------------------- fold definitions --

struct Stmt;

/// `target = expr` or `if pred: block [else: block]`.
struct Stmt {
  enum class Kind : std::uint8_t { kAssign, kIf };
  Kind kind = Kind::kAssign;
  std::string target;            // kAssign
  ExprPtr value;                 // kAssign
  ExprPtr condition;             // kIf
  std::vector<Stmt> then_body;   // kIf
  std::vector<Stmt> else_body;   // kIf
  int line = 0;

  Stmt() = default;
  Stmt(Stmt&&) = default;
  Stmt& operator=(Stmt&&) = default;
  [[nodiscard]] Stmt clone() const;
};

/// def name ((state...), (args...)): body
struct FoldDef {
  std::string name;
  std::vector<std::string> state_vars;  ///< accumulator components, in order
  std::vector<std::string> packet_args; ///< bound to input columns by name
  std::vector<Stmt> body;
  int line = 0;

  [[nodiscard]] FoldDef clone() const;
};

// ------------------------------------------------------------------ query --

/// One item of a SELECT list: an expression plus, for aggregation queries,
/// whether it is an aggregation call (COUNT / SUM(e) / user fold name).
struct SelectItem {
  ExprPtr expr;        // null for '*'
  bool star = false;
};

struct QueryDef {
  enum class Kind : std::uint8_t { kSelect, kGroupBy, kJoin };
  Kind kind = Kind::kSelect;
  std::string result_name;            ///< "" if unnamed
  std::vector<SelectItem> select_list;
  std::string from = "T";             ///< input table (default: base table)
  ExprPtr where;                      ///< nullable
  std::vector<ExprPtr> groupby_fields;  ///< kGroupBy (names or "5tuple")
  // kJoin:
  std::string join_left;
  std::string join_right;
  std::vector<std::string> join_keys;
  int line = 0;

  [[nodiscard]] QueryDef clone() const;
};

struct Program {
  std::vector<FoldDef> folds;
  std::vector<QueryDef> queries;
};

/// Render a whole program back to (normalized) source; round-trip tested.
[[nodiscard]] std::string to_string(const Program& program);
[[nodiscard]] std::string to_string(const QueryDef& query);
[[nodiscard]] std::string to_string(const FoldDef& fold);

}  // namespace perfq::lang
