// Tokens of the performance query language (Fig. 1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace perfq::lang {

enum class TokenKind : std::uint8_t {
  // Literals and names.
  kNumber,      // 42, 1.5, 1ms (time suffixes normalize to nanoseconds)
  kIdentifier,  // srcip, ewma, R1, 5tuple (special-cased)
  // Keywords (case-insensitive, matching the paper's mixed usage).
  kSelect,
  kFrom,
  kWhere,
  kGroupBy,
  kJoin,
  kOn,
  kDef,
  kIf,
  kElse,
  kAnd,
  kOr,
  kNot,
  kInfinity,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kComma,
  kColon,
  kDot,
  kAssign,   // =
  kEq,       // ==
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,     // also SELECT *
  kSlash,
  // Layout.
  kNewline,
  kIndent,
  kDedent,
  kEndOfFile,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;    ///< raw lexeme (identifiers keep original case)
  double number = 0.0; ///< value for kNumber (time suffixes applied)
  int line = 0;
  int column = 0;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

}  // namespace perfq::lang
