// Runtime-evaluable scalar expressions.
//
// The compiler lowers lang::Expr trees (WHERE predicates, fold coefficient
// expressions, projection expressions) into ScalarExpr: a resolved form where
// every name has become a (depth, slot) reference into a ValueSource. The
// same IR evaluates against
//   - live packet records on the simulated switch (RecordSource), including
//     the one-packet history window of linear folds ("prev$" names map to
//     depth 1), and
//   - materialized result-table rows in the collection layer (RowSource).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "packet/record.hpp"
#include "packet/wire_view.hpp"

namespace perfq::compiler {

/// Resolved reference: value `index` of the record `depth` packets back
/// (depth 0 = current). For row evaluation depth is always 0.
struct Slot {
  int depth = 0;
  int index = 0;
};

/// Provides slot values during evaluation.
class ValueSource {
 public:
  virtual ~ValueSource() = default;
  [[nodiscard]] virtual double value(Slot slot) const = 0;
};

/// ValueSource over a window of packet records; slot.index is a FieldId.
/// window.back() is the current packet (depth 0).
class RecordSource final : public ValueSource {
 public:
  explicit RecordSource(std::span<const PacketRecord> window) : window_(window) {}
  [[nodiscard]] double value(Slot slot) const override;

 private:
  std::span<const PacketRecord> window_;
};

/// ValueSource over one lazy wire-view record (depth 0 only: the wire
/// ingest path serves current-packet expressions — prefilters, key
/// components, stream projections; history-windowed folds materialize).
class WireRecordSource final : public ValueSource {
 public:
  explicit WireRecordSource(const WireRecordView& rec) : rec_(&rec) {}
  [[nodiscard]] double value(Slot slot) const override;

 private:
  const WireRecordView* rec_;
};

/// Uniform ValueSource construction for code templated over the record
/// type: the eager record gets the windowed RecordSource, the wire view its
/// depth-0 source. Both load fields through the field_value overload set,
/// so evaluation is bit-identical across representations.
[[nodiscard]] inline RecordSource record_source(const PacketRecord& rec) {
  return RecordSource({&rec, 1});
}
[[nodiscard]] inline WireRecordSource record_source(const WireRecordView& rec) {
  return WireRecordSource(rec);
}

/// ValueSource over a row of doubles; slot.index is a column index.
class RowSource final : public ValueSource {
 public:
  explicit RowSource(std::span<const double> row) : row_(row) {}
  [[nodiscard]] double value(Slot slot) const override;

 private:
  std::span<const double> row_;
};

/// Maps a name to a slot; returns nullopt for unknown names (compile error).
using Resolver = std::function<std::optional<Slot>(const std::string&)>;

/// Resolver over the base packet schema: names are field names ("srcip"),
/// optionally "prev$"-prefixed for the previous record.
[[nodiscard]] Resolver base_record_resolver();

/// Compiled expression tree.
class ScalarExpr {
 public:
  /// Lower `expr`, resolving every name through `resolver`.
  /// Throws QueryError on unresolvable names.
  [[nodiscard]] static ScalarExpr compile(const lang::Expr& expr,
                                          const Resolver& resolver);

  /// Constant expression (used for absent/zero coefficients).
  [[nodiscard]] static ScalarExpr constant(double value);

  [[nodiscard]] double eval(const ValueSource& source) const;

  /// Convenience for predicates: nonzero = true.
  [[nodiscard]] bool eval_bool(const ValueSource& source) const {
    return eval(source) != 0.0;
  }

  /// True if the expression is a literal constant (A-matrix classification).
  [[nodiscard]] bool is_constant(double* value = nullptr) const;

  /// If the whole expression is a single depth-0 slot load, that slot.
  /// Lets hot paths (key extraction) bypass tree evaluation entirely.
  [[nodiscard]] std::optional<Slot> as_slot_load() const {
    if (root_ < 0) return std::nullopt;
    const Node& n = nodes_[static_cast<std::size_t>(root_)];
    if (n.op != Op::kSlot || n.slot.depth != 0) return std::nullopt;
    return n.slot;
  }

  /// Largest record depth referenced (0 = current packet only).
  [[nodiscard]] int max_depth() const { return max_depth_; }

  /// Accumulate every record field this expression reads into `usage` — the
  /// sema side of the FieldUsage contract (packet/record.hpp). Only
  /// meaningful for record-context expressions (slot.index is a FieldId);
  /// state references (fold_compiler's kStateDepth) are skipped.
  void collect_fields(FieldUsage& usage) const {
    for (const Node& n : nodes_) {
      if (n.op == Op::kSlot && n.slot.depth >= 0) {
        usage.set(static_cast<FieldId>(n.slot.index));
      }
    }
  }

 private:
  // The fold bytecode compiler translates the resolved node tree into flat
  // register code (src/compiler/fold_vm.hpp) without re-walking the lang AST.
  friend class FoldVmCompiler;

  enum class Op : std::uint8_t {
    kConst, kSlot,
    kAdd, kSub, kMul, kDiv,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kAnd, kOr, kNot, kNeg,
    kMax, kMin, kSelect,
  };
  struct Node {
    Op op = Op::kConst;
    double k = 0.0;
    Slot slot;
    int a = -1;  ///< child indices into nodes_
    int b = -1;
    int c = -1;
  };

  [[nodiscard]] int lower(const lang::Expr& expr, const Resolver& resolver);
  [[nodiscard]] double eval_node(int index, const ValueSource& source) const;

  /// The one authoritative definition of every binary/unary operator's IEEE
  /// semantics: eval_node and the fold VM's compile-time constant folder
  /// both call it, so the VM-vs-interpreter bit-for-bit invariant cannot be
  /// broken by the two sides drifting. (Unary ops ignore `b`.)
  [[nodiscard]] static double eval_op(Op op, double a, double b);

  std::vector<Node> nodes_;
  int root_ = -1;
  int max_depth_ = 0;
};

}  // namespace perfq::compiler
