// Flat register-based bytecode for fold bodies.
//
// CompiledFoldKernel's per-packet update() used to re-walk the ScalarExpr
// AST for every record: one virtual ValueSource call per name plus one
// recursive eval_node() frame per operator. This VM lowers a compiled
// FoldBody once into straight-line register code so the per-packet path is
// a short dispatch loop over a few instructions. Design, tuned against the
// hand-written kernels in bench/kvstore_micro.cpp:
//
//   - Dispatch-free preamble. Constants (deduplicated, constant-only
//     subtrees folded with the interpreter's own operator semantics),
//     every referenced packet field, and every state variable that is
//     provably read before any write are loaded into pinned registers by
//     three tight loops before the bytecode runs. Field reads are pure, so
//     hoisting them out of `if` arms cannot change results. The body then
//     never pays a dispatch for a load: most Fig. 2 folds execute in 1-4
//     instructions.
//   - Store fusion. Every value-producing opcode has a twin (+1 in the
//     enum) that writes its result straight to a state variable, so
//     `assign` statements cost zero extra dispatches.
//   - Direct-threaded dispatch (computed goto) on GCC/Clang, a switch loop
//     elsewhere. Instructions are 8 bytes.
//   - No fused arithmetic (e.g. no mul+add): each instruction performs
//     exactly one IEEE operation, so results stay bit-identical to the
//     AST-walking interpreter, which FoldBody::execute_interpreted() keeps
//     alive for differential tests.
//
// `if` statements become kJz/kJmp over the flattened blocks; state reads
// that follow an earlier (possible) write re-load via kLoadState.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "compiler/scalar_expr.hpp"

namespace perfq::compiler {

class FoldBody;

class FoldVm {
 public:
  /// Opcode layout rule: every value-producing op is immediately followed by
  /// its store-to-state twin ("St": state[dst] = value instead of
  /// r[dst] = value), so fusion is op+1.
  enum class Op : std::uint8_t {
    kHalt = 0,
    kLoadState, kLoadStateSt,   ///< r[dst]/state[dst] = state[a]
    kStoreState,                ///< state[dst] = r[a]
    kAdd, kAddSt, kSub, kSubSt, kMul, kMulSt, kDiv, kDivSt,
    kEq, kEqSt, kNe, kNeSt, kLt, kLtSt, kLe, kLeSt, kGt, kGtSt, kGe, kGeSt,
    kAnd, kAndSt, kOr, kOrSt, kMax, kMaxSt, kMin, kMinSt,
    kNot, kNotSt, kNeg, kNegSt,
    kSelect, kSelectSt,         ///< c operand lives in `target`
    kJz,                        ///< if (r[a] == 0) goto target
    kJmp,                       ///< goto target
  };

  struct Instr {
    Op op = Op::kHalt;
    std::uint8_t dst = 0;
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    std::int32_t target = 0;  ///< kJz/kJmp destination; kSelect's c register
  };
  static_assert(sizeof(Instr) == 8);

  /// A default-constructed FoldVm is an empty program (single kHalt), so
  /// executing it is a harmless no-op.
  FoldVm() : code_{Instr{}} {}

  /// Preamble entries (executed by plain loops, not dispatched).
  struct FieldLoad {
    Slot slot;
    std::uint8_t reg = 0;
  };
  struct StateLoad {
    std::uint8_t idx = 0;
    std::uint8_t reg = 0;
  };

  /// Register file size; fold bodies are tiny (registers are reused), so
  /// exceeding this is a compile-time InternalError, not a runtime concern.
  static constexpr std::size_t kMaxRegs = 96;

  /// Quickened whole-program shapes (classic VM superinstruction
  /// specialization, detected by pattern-matching the emitted bytecode).
  /// Each specialization performs exactly the same IEEE operations as the
  /// bytecode it replaces — one rounding per original instruction — so
  /// results stay bit-identical; only dispatch overhead is removed.
  enum class Special : std::uint8_t {
    kNone = 0,
    /// The canonical linear fold (EWMA): one statement of the form
    ///   state[s] = cA * state[s] + cB * (fx - fy)
    kAffine1Diff,
  };

  /// Run the program against a generic value source (collection-layer rows).
  void execute(std::span<double> state, const ValueSource& input) const {
    run([&input](Slot s) { return input.value(s); }, state);
  }

  /// Fast path for the per-packet hot loop: fields are read straight from
  /// the record window (window.back() = current packet), no virtual call.
  /// Defined inline below so callers fold the whole VM into their loop.
  void execute_record(std::span<double> state,
                      std::span<const PacketRecord> window) const;

  /// Single-record convenience used by kernel update().
  void execute_record(std::span<double> state, const PacketRecord& rec) const {
    execute_record(state, {&rec, 1});
  }

  /// Lazy wire-view path: field preamble loads decode straight off the
  /// frame bytes. Depth-0 only (history-windowed folds materialize before
  /// reaching the VM); same IEEE operations, bit-identical results.
  void execute_record(std::span<double> state, const WireRecordView& rec) const {
    run(
        [&rec](Slot slot) {
          check(slot.depth == 0, "FoldVm: wire views carry no record history");
          return field_value(rec, static_cast<FieldId>(slot.index));
        },
        state);
  }

  [[nodiscard]] std::size_t instruction_count() const { return code_.size(); }
  [[nodiscard]] std::size_t register_count() const { return reg_count_; }
  [[nodiscard]] std::span<const Instr> code() const { return code_; }

 private:
  friend class FoldVmCompiler;

  template <typename LoadFn>
  void run(LoadFn&& load, std::span<double> state) const;

  std::vector<Instr> code_;          ///< always ends with kHalt
  std::vector<double> const_pool_;   ///< copied into the low registers per run
  std::vector<FieldLoad> fields_;    ///< loaded into the registers on entry
  std::vector<StateLoad> states_;    ///< loaded into the registers on entry
  std::uint32_t reg_count_ = 0;

  // Quickened shape operands (valid when special_ != kNone).
  Special special_ = Special::kNone;
  Slot sp_fx_, sp_fy_;
  double sp_ca_ = 0.0, sp_cb_ = 0.0;
  std::uint8_t sp_state_ = 0;
};

template <typename LoadFn>
void FoldVm::run(LoadFn&& load, std::span<double> state) const {
  double* st = state.data();
  if (special_ == Special::kAffine1Diff) {
    // state[s] = cA*state[s] + cB*(fx - fy); ops and rounding exactly as the
    // bytecode would perform them, minus the dispatch.
    const double fx = load(sp_fx_);
    const double fy = load(sp_fy_);
    const double scaled = sp_ca_ * st[sp_state_];
    const double diff = fx - fy;
    const double delta = sp_cb_ * diff;
    st[sp_state_] = scaled + delta;
    return;
  }

  // Per-call register file on the stack: execution is re-entrant, so shard
  // workers can share one compiled kernel per query with no synchronization.
  // Constants occupy the low registers; every other register the program
  // reads is written first (field/state preloads below, scratch by the
  // bytecode itself), so the rest needs no initialization.
  double regs[kMaxRegs];
  double* r = regs;
  if (!const_pool_.empty()) {
    std::memcpy(r, const_pool_.data(), const_pool_.size() * sizeof(double));
  }
  for (const FieldLoad& f : fields_) r[f.reg] = load(f.slot);
  for (const StateLoad& s : states_) r[s.reg] = state[s.idx];

  const Instr* pc = code_.data();

#if defined(__GNUC__) || defined(__clang__)
  // Direct-threaded dispatch. Table order MUST match the Op enum.
  static const void* const kTbl[] = {
      &&L_Halt,
      &&L_LoadState, &&L_LoadStateSt,
      &&L_StoreState,
      &&L_Add, &&L_AddSt, &&L_Sub, &&L_SubSt, &&L_Mul, &&L_MulSt,
      &&L_Div, &&L_DivSt,
      &&L_Eq, &&L_EqSt, &&L_Ne, &&L_NeSt, &&L_Lt, &&L_LtSt, &&L_Le, &&L_LeSt,
      &&L_Gt, &&L_GtSt, &&L_Ge, &&L_GeSt,
      &&L_And, &&L_AndSt, &&L_Or, &&L_OrSt, &&L_Max, &&L_MaxSt,
      &&L_Min, &&L_MinSt,
      &&L_Not, &&L_NotSt, &&L_Neg, &&L_NegSt,
      &&L_Select, &&L_SelectSt,
      &&L_Jz, &&L_Jmp,
  };
#define PERFQ_VM_NEXT goto* kTbl[static_cast<std::size_t>(pc->op)]
#define PERFQ_VM_BIN(NAME, EXPR)                       \
  L_##NAME : {                                         \
    const double x = r[pc->a], y = r[pc->b];           \
    r[pc->dst] = (EXPR);                               \
  }                                                    \
  ++pc;                                                \
  PERFQ_VM_NEXT;                                       \
  L_##NAME##St : {                                     \
    const double x = r[pc->a], y = r[pc->b];           \
    st[pc->dst] = (EXPR);                              \
  }                                                    \
  ++pc;                                                \
  PERFQ_VM_NEXT

  PERFQ_VM_NEXT;
L_Halt:
  return;
L_LoadState:
  r[pc->dst] = st[pc->a];
  ++pc;
  PERFQ_VM_NEXT;
L_LoadStateSt:
  st[pc->dst] = st[pc->a];
  ++pc;
  PERFQ_VM_NEXT;
L_StoreState:
  st[pc->dst] = r[pc->a];
  ++pc;
  PERFQ_VM_NEXT;
  PERFQ_VM_BIN(Add, x + y);
  PERFQ_VM_BIN(Sub, x - y);
  PERFQ_VM_BIN(Mul, x* y);
  PERFQ_VM_BIN(Div, x / y);
  PERFQ_VM_BIN(Eq, x == y ? 1.0 : 0.0);
  PERFQ_VM_BIN(Ne, x != y ? 1.0 : 0.0);
  PERFQ_VM_BIN(Lt, x < y ? 1.0 : 0.0);
  PERFQ_VM_BIN(Le, x <= y ? 1.0 : 0.0);
  PERFQ_VM_BIN(Gt, x > y ? 1.0 : 0.0);
  PERFQ_VM_BIN(Ge, x >= y ? 1.0 : 0.0);
  PERFQ_VM_BIN(And, (x != 0.0 && y != 0.0) ? 1.0 : 0.0);
  PERFQ_VM_BIN(Or, (x != 0.0 || y != 0.0) ? 1.0 : 0.0);
  PERFQ_VM_BIN(Max, x < y ? y : x);  // std::max(x, y) semantics
  PERFQ_VM_BIN(Min, y < x ? y : x);  // std::min(x, y) semantics
L_Not:
  r[pc->dst] = r[pc->a] == 0.0 ? 1.0 : 0.0;
  ++pc;
  PERFQ_VM_NEXT;
L_NotSt:
  st[pc->dst] = r[pc->a] == 0.0 ? 1.0 : 0.0;
  ++pc;
  PERFQ_VM_NEXT;
L_Neg:
  r[pc->dst] = -r[pc->a];
  ++pc;
  PERFQ_VM_NEXT;
L_NegSt:
  st[pc->dst] = -r[pc->a];
  ++pc;
  PERFQ_VM_NEXT;
L_Select:
  r[pc->dst] = r[pc->a] != 0.0 ? r[pc->b] : r[pc->target];
  ++pc;
  PERFQ_VM_NEXT;
L_SelectSt:
  st[pc->dst] = r[pc->a] != 0.0 ? r[pc->b] : r[pc->target];
  ++pc;
  PERFQ_VM_NEXT;
L_Jz:
  pc = r[pc->a] == 0.0 ? code_.data() + pc->target : pc + 1;
  PERFQ_VM_NEXT;
L_Jmp:
  pc = code_.data() + pc->target;
  PERFQ_VM_NEXT;
#undef PERFQ_VM_BIN
#undef PERFQ_VM_NEXT

#else  // portable fallback: switch dispatch
  for (;;) {
    const Instr& i = *pc;
    switch (i.op) {
      case Op::kHalt: return;
      case Op::kLoadState: r[i.dst] = st[i.a]; break;
      case Op::kLoadStateSt: st[i.dst] = st[i.a]; break;
      case Op::kStoreState: st[i.dst] = r[i.a]; break;
#define PERFQ_VM_CASE(NAME, EXPR)                                      \
  case Op::k##NAME: {                                                  \
    const double x = r[i.a], y = r[i.b];                               \
    (void)y;                                                           \
    r[i.dst] = (EXPR);                                                 \
    break;                                                             \
  }                                                                    \
  case Op::k##NAME##St: {                                              \
    const double x = r[i.a], y = r[i.b];                               \
    (void)y;                                                           \
    st[i.dst] = (EXPR);                                                \
    break;                                                             \
  }
      PERFQ_VM_CASE(Add, x + y)
      PERFQ_VM_CASE(Sub, x - y)
      PERFQ_VM_CASE(Mul, x* y)
      PERFQ_VM_CASE(Div, x / y)
      PERFQ_VM_CASE(Eq, x == y ? 1.0 : 0.0)
      PERFQ_VM_CASE(Ne, x != y ? 1.0 : 0.0)
      PERFQ_VM_CASE(Lt, x < y ? 1.0 : 0.0)
      PERFQ_VM_CASE(Le, x <= y ? 1.0 : 0.0)
      PERFQ_VM_CASE(Gt, x > y ? 1.0 : 0.0)
      PERFQ_VM_CASE(Ge, x >= y ? 1.0 : 0.0)
      PERFQ_VM_CASE(And, (x != 0.0 && y != 0.0) ? 1.0 : 0.0)
      PERFQ_VM_CASE(Or, (x != 0.0 || y != 0.0) ? 1.0 : 0.0)
      PERFQ_VM_CASE(Max, x < y ? y : x)
      PERFQ_VM_CASE(Min, y < x ? y : x)
      PERFQ_VM_CASE(Not, x == 0.0 ? 1.0 : 0.0)
      PERFQ_VM_CASE(Neg, -x)
#undef PERFQ_VM_CASE
      case Op::kSelect:
        r[i.dst] = r[i.a] != 0.0 ? r[i.b] : r[i.target];
        break;
      case Op::kSelectSt:
        st[i.dst] = r[i.a] != 0.0 ? r[i.b] : r[i.target];
        break;
      case Op::kJz:
        if (r[i.a] == 0.0) {
          pc = code_.data() + i.target;
          continue;
        }
        break;
      case Op::kJmp: pc = code_.data() + i.target; continue;
    }
    ++pc;
  }
#endif
}

inline void FoldVm::execute_record(std::span<double> state,
                                   std::span<const PacketRecord> window) const {
  run(
      [window](Slot slot) {
        const auto depth = static_cast<std::size_t>(slot.depth);
        check(depth < window.size(), "FoldVm: window shallower than slot depth");
        const PacketRecord& rec = window[window.size() - 1 - depth];
        return field_value(rec, static_cast<FieldId>(slot.index));
      },
      state);
}

/// Lowers a compiled FoldBody's statement tree into FoldVm bytecode.
class FoldVmCompiler {
 public:
  [[nodiscard]] static FoldVm compile(const FoldBody& body);
};

}  // namespace perfq::compiler
