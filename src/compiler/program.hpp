// Whole-program compilation: analyzed queries -> switch configurations.
//
// The paper sketches this mapping in §3.1-3.2: WHERE predicates become
// match conditions in the match-action pipeline, GROUPBYs become
// programmable key-value store instances keyed by the aggregation fields.
// compile_program() walks each on-switch GROUPBY's upstream SELECT chain,
// pushes projections/renames into the fold's argument bindings and the
// composed prefilter, and emits one SwitchQueryPlan per GROUPBY. Everything
// downstream of an aggregate (SELECT over results, soft GROUPBYs, JOINs) is
// executed by the collection layer in src/runtime directly from the
// analysis.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "compiler/fold_compiler.hpp"
#include "compiler/scalar_expr.hpp"
#include "kvstore/fold.hpp"
#include "kvstore/key.hpp"
#include "lang/sema.hpp"
#include "packet/wire_view.hpp"

namespace perfq::compiler {

/// One key component: which output column it fills, how to compute it from a
/// packet, and how many bytes of the packed key it occupies.
struct KeyComponent {
  std::string column;
  ScalarExpr expr;
  int bytes = 8;
};

/// Configuration of one on-switch GROUPBY (one key-value store instance).
struct SwitchQueryPlan {
  int query_index = -1;  ///< into AnalyzedProgram::queries
  std::string name;      ///< result table name (or "result")
  std::optional<ScalarExpr> prefilter;  ///< composed WHERE chain over T
  lang::ExprPtr prefilter_ast;  ///< same predicate as AST (for TCAM lowering)
  std::vector<KeyComponent> key;
  /// Fast extractor: when every key component is a plain field reference
  /// (the common case — e.g. 5tuple, srcip, qid), the FieldIds are
  /// precomputed here and extract_key() reads fields directly instead of
  /// evaluating expression trees. This is the sharded dispatcher's per-
  /// record routing cost, so it matters doubly there. Empty = slow path.
  std::vector<FieldId> fast_key_fields;
  /// Byte-direct wire extraction: when every fast key field lives on the
  /// wire at a fixed offset with exactly the component's packed width (the
  /// 5-tuple case — big-endian on the wire, big-endian in the key), the
  /// packed key bytes ARE frame bytes. extract_key on a WireRecordView then
  /// gathers those slices and hashes once, skipping the double round-trips
  /// entirely. False whenever any component is computed, sidecar-sourced, or
  /// width-mismatched; those take the fast_key_fields / expression paths.
  bool wire_direct_key = false;
  std::array<WireFieldSlice, 16> wire_key_slices{};
  std::shared_ptr<const kv::FoldKernel> kernel;  ///< combined aggregations
  std::vector<std::string> value_columns;  ///< per state dim, output order
  kv::Linearity linearity = kv::Linearity::kNotLinear;
  /// Every record field this plan reads per packet: prefilter, key
  /// components, and the kernel's fold body / coefficient expressions.
  /// The wire ingest path decodes only these fields from frame bytes.
  FieldUsage used_fields;

  [[nodiscard]] int key_bytes() const {
    int total = 0;
    for (const auto& k : key) total += k.bytes;
    return total;
  }

  /// Deep copy (prefilter_ast is an owned AST). The fold kernel is SHARED:
  /// kernels are immutable after construction, so clones fold through the
  /// same instance — exactly as the sharded engine's workers already do.
  [[nodiscard]] SwitchQueryPlan clone() const;
};

struct CompiledProgram {
  lang::AnalyzedProgram analysis;
  std::vector<SwitchQueryPlan> switch_plans;
  /// Union of every plan's used_fields plus the filters/projections of
  /// unconsumed stream SELECTs — the program's whole per-packet read set.
  /// wire_fields_skipped() is the lazy path's decode saving per frame.
  FieldUsage field_usage;

  /// The switch plan for query index `q`, or nullptr.
  [[nodiscard]] const SwitchQueryPlan* plan_for(int q) const {
    for (const auto& p : switch_plans) {
      if (p.query_index == q) return &p;
    }
    return nullptr;
  }

  /// Deep copy — compiled programs are move-only (owned ASTs inside), and
  /// one engine consumes one program, so running the SAME program on many
  /// engines (the federation layer: one engine per switch) clones it per
  /// engine. Clones share the (immutable) fold kernels.
  [[nodiscard]] CompiledProgram clone() const;
};

/// A stream SELECT compiled down to the base table: the composed filter and
/// per-output-column expressions over T. Used by the runtime to deliver
/// streaming results (e.g. §2's "SELECT srcip, qid WHERE tout - tin > 1ms").
struct CompiledStreamSelect {
  int query_index = -1;
  std::optional<ScalarExpr> filter;
  std::vector<std::pair<std::string, ScalarExpr>> projections;  ///< schema order
};

/// Compile a stream SELECT query (kind kSelect with stream_over_base output).
[[nodiscard]] CompiledStreamSelect compile_stream_select(
    const lang::AnalyzedProgram& analysis, int query_index);

/// Lower an analyzed program. Throws QueryError on uncompilable constructs.
[[nodiscard]] CompiledProgram compile_program(lang::AnalyzedProgram analysis);

/// Parse + analyze + compile.
[[nodiscard]] CompiledProgram compile_source(
    std::string_view source, const std::map<std::string, double>& params = {});

/// The one definition of how a key component's double value becomes the
/// unsigned integer that gets packed: clamp defensively (key fields are
/// integer-valued, but expressions can produce infinity) and truncate.
/// extract_key and the sharded runtime's KeyRouter must agree bit-for-bit.
[[nodiscard]] inline std::uint64_t key_component_value(double v) {
  const double clamped = std::clamp(v, 0.0, 18446744073709549568.0 /* ~2^64 */);
  return static_cast<std::uint64_t>(clamped);
}

/// Shared value extraction of extract_key/extract_key_prehashed: fill
/// `values`/`widths` for every key component (fast field path or expression
/// tree), with the clamp/truncation both packers must agree on. Generic over
/// the record representation: the fast path reads fields through the
/// field_value overload set (lazy decode on wire views), the expression path
/// through record_source(). Both packers below produce bit-identical keys
/// for a PacketRecord and the wire view it parses from.
template <typename Rec>
void extract_key_values(const SwitchQueryPlan& plan, const Rec& rec,
                        std::uint64_t* values, std::uint8_t* widths) {
  check(plan.key.size() <= 16, "extract_key: too many key components");
  if (!plan.fast_key_fields.empty()) {
    // Plain-field key (5tuple, srcip, qid, ...): read the fields directly —
    // same value, clamp and pack as the expression path below, minus the
    // tree walk. This is the dispatcher's per-record routing cost in the
    // sharded runtime.
    for (std::size_t i = 0; i < plan.key.size(); ++i) {
      values[i] = key_component_value(field_value(rec, plan.fast_key_fields[i]));
      widths[i] = static_cast<std::uint8_t>(plan.key[i].bytes);
    }
    return;
  }
  const auto source = record_source(rec);
  for (std::size_t i = 0; i < plan.key.size(); ++i) {
    values[i] = key_component_value(plan.key[i].expr.eval(source));
    widths[i] = static_cast<std::uint8_t>(plan.key[i].bytes);
  }
}

/// Gather a wire-direct key's bytes (precondition: plan.wire_direct_key)
/// into `buf` (at least kv::Key::kCapacity bytes); returns the key length.
/// Produces exactly the bytes kv::Key::pack would: each slice is the
/// component's big-endian canonical encoding, already laid out on the wire.
[[nodiscard]] inline std::size_t gather_wire_key(const SwitchQueryPlan& plan,
                                                 const WireRecordView& rec,
                                                 std::byte* buf) {
  const std::byte* b = rec.bytes.data();
  std::size_t len = 0;
  for (std::size_t i = 0; i < plan.key.size(); ++i) {
    const WireFieldSlice s = plan.wire_key_slices[i];
    std::memcpy(buf + len, b + s.offset, s.width);
    len += s.width;
  }
  return len;
}

/// Extract the packed key for one record under a plan.
template <typename Rec>
[[nodiscard]] kv::Key extract_key(const SwitchQueryPlan& plan, const Rec& rec) {
  if constexpr (std::is_same_v<Rec, WireRecordView>) {
    if (plan.wire_direct_key) {
      std::array<std::byte, kv::Key::kCapacity> buf;
      const std::size_t len = gather_wire_key(plan, rec, buf.data());
      return kv::Key({buf.data(), len});
    }
  }
  std::array<std::uint64_t, 16> values{};
  std::array<std::uint8_t, 16> widths{};
  extract_key_values(plan, rec, values.data(), widths.data());
  return kv::Key::pack({values.data(), plan.key.size()},
                       {widths.data(), plan.key.size()});
}

/// extract_key() with the byte-level hash supplied (from a dispatcher that
/// already extracted this record's key) instead of recomputed — the sharded
/// worker's path for computed-key plans, keeping one hash per record.
template <typename Rec>
[[nodiscard]] kv::Key extract_key_prehashed(const SwitchQueryPlan& plan,
                                            const Rec& rec,
                                            std::uint64_t raw_hash) {
  std::array<std::uint64_t, 16> values{};
  std::array<std::uint8_t, 16> widths{};
  extract_key_values(plan, rec, values.data(), widths.data());
  return kv::Key::pack_prehashed({values.data(), plan.key.size()},
                                 {widths.data(), plan.key.size()}, raw_hash);
}

/// Inverse of extract_key: unpack component values from a packed key.
[[nodiscard]] std::vector<double> unpack_key(const SwitchQueryPlan& plan,
                                             const kv::Key& key);

}  // namespace perfq::compiler
