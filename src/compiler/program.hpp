// Whole-program compilation: analyzed queries -> switch configurations.
//
// The paper sketches this mapping in §3.1-3.2: WHERE predicates become
// match conditions in the match-action pipeline, GROUPBYs become
// programmable key-value store instances keyed by the aggregation fields.
// compile_program() walks each on-switch GROUPBY's upstream SELECT chain,
// pushes projections/renames into the fold's argument bindings and the
// composed prefilter, and emits one SwitchQueryPlan per GROUPBY. Everything
// downstream of an aggregate (SELECT over results, soft GROUPBYs, JOINs) is
// executed by the collection layer in src/runtime directly from the
// analysis.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/fold_compiler.hpp"
#include "compiler/scalar_expr.hpp"
#include "kvstore/fold.hpp"
#include "kvstore/key.hpp"
#include "lang/sema.hpp"

namespace perfq::compiler {

/// One key component: which output column it fills, how to compute it from a
/// packet, and how many bytes of the packed key it occupies.
struct KeyComponent {
  std::string column;
  ScalarExpr expr;
  int bytes = 8;
};

/// Configuration of one on-switch GROUPBY (one key-value store instance).
struct SwitchQueryPlan {
  int query_index = -1;  ///< into AnalyzedProgram::queries
  std::string name;      ///< result table name (or "result")
  std::optional<ScalarExpr> prefilter;  ///< composed WHERE chain over T
  lang::ExprPtr prefilter_ast;  ///< same predicate as AST (for TCAM lowering)
  std::vector<KeyComponent> key;
  /// Fast extractor: when every key component is a plain field reference
  /// (the common case — e.g. 5tuple, srcip, qid), the FieldIds are
  /// precomputed here and extract_key() reads fields directly instead of
  /// evaluating expression trees. This is the sharded dispatcher's per-
  /// record routing cost, so it matters doubly there. Empty = slow path.
  std::vector<FieldId> fast_key_fields;
  std::shared_ptr<const kv::FoldKernel> kernel;  ///< combined aggregations
  std::vector<std::string> value_columns;  ///< per state dim, output order
  kv::Linearity linearity = kv::Linearity::kNotLinear;

  [[nodiscard]] int key_bytes() const {
    int total = 0;
    for (const auto& k : key) total += k.bytes;
    return total;
  }
};

struct CompiledProgram {
  lang::AnalyzedProgram analysis;
  std::vector<SwitchQueryPlan> switch_plans;

  /// The switch plan for query index `q`, or nullptr.
  [[nodiscard]] const SwitchQueryPlan* plan_for(int q) const {
    for (const auto& p : switch_plans) {
      if (p.query_index == q) return &p;
    }
    return nullptr;
  }
};

/// A stream SELECT compiled down to the base table: the composed filter and
/// per-output-column expressions over T. Used by the runtime to deliver
/// streaming results (e.g. §2's "SELECT srcip, qid WHERE tout - tin > 1ms").
struct CompiledStreamSelect {
  int query_index = -1;
  std::optional<ScalarExpr> filter;
  std::vector<std::pair<std::string, ScalarExpr>> projections;  ///< schema order
};

/// Compile a stream SELECT query (kind kSelect with stream_over_base output).
[[nodiscard]] CompiledStreamSelect compile_stream_select(
    const lang::AnalyzedProgram& analysis, int query_index);

/// Lower an analyzed program. Throws QueryError on uncompilable constructs.
[[nodiscard]] CompiledProgram compile_program(lang::AnalyzedProgram analysis);

/// Parse + analyze + compile.
[[nodiscard]] CompiledProgram compile_source(
    std::string_view source, const std::map<std::string, double>& params = {});

/// The one definition of how a key component's double value becomes the
/// unsigned integer that gets packed: clamp defensively (key fields are
/// integer-valued, but expressions can produce infinity) and truncate.
/// extract_key and the sharded runtime's KeyRouter must agree bit-for-bit.
[[nodiscard]] inline std::uint64_t key_component_value(double v) {
  const double clamped = std::clamp(v, 0.0, 18446744073709549568.0 /* ~2^64 */);
  return static_cast<std::uint64_t>(clamped);
}

/// Extract the packed key for one record under a plan.
[[nodiscard]] kv::Key extract_key(const SwitchQueryPlan& plan,
                                  const PacketRecord& rec);

/// extract_key() with the byte-level hash supplied (from a dispatcher that
/// already extracted this record's key) instead of recomputed — the sharded
/// worker's path for computed-key plans, keeping one hash per record.
[[nodiscard]] kv::Key extract_key_prehashed(const SwitchQueryPlan& plan,
                                            const PacketRecord& rec,
                                            std::uint64_t raw_hash);

/// Inverse of extract_key: unpack component values from a packed key.
[[nodiscard]] std::vector<double> unpack_key(const SwitchQueryPlan& plan,
                                             const kv::Key& key);

}  // namespace perfq::compiler
