#include "compiler/program.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "common/error.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/combined.hpp"
#include "lang/parser.hpp"

namespace perfq::compiler {
namespace {

using lang::AnalyzedProgram;
using lang::AnalyzedQuery;
using lang::Expr;
using lang::ExprPtr;

const lang::Schema& base_schema() {
  static const lang::Schema kBase = lang::Schema::base();
  return kBase;
}

/// The upstream SELECT chain of an on-switch GROUPBY, flattened: a composed
/// column map (output column -> expression over T) and the conjunction of
/// all WHERE predicates along the chain.
struct StreamView {
  std::map<std::string, ExprPtr> columns;  ///< absent = identity base field
  std::vector<ExprPtr> filters;            ///< each over T
};

[[nodiscard]] std::map<std::string, const Expr*> as_pointer_map(
    const std::map<std::string, ExprPtr>& owned) {
  std::map<std::string, const Expr*> out;
  for (const auto& [k, v] : owned) out.emplace(k, v.get());
  return out;
}

StreamView build_stream_view(const AnalyzedProgram& analysis, int query_index) {
  // Collect the SELECT chain base..query_index (exclusive of the groupby).
  std::vector<const AnalyzedQuery*> chain;
  int idx = query_index;
  while (idx >= 0) {
    const AnalyzedQuery& q = analysis.queries[static_cast<std::size_t>(idx)];
    check(q.def.kind == lang::QueryDef::Kind::kSelect,
          "stream chain contains a non-SELECT stage");
    chain.push_back(&q);
    idx = q.input;
  }
  std::reverse(chain.begin(), chain.end());

  StreamView view;
  for (const AnalyzedQuery* q : chain) {
    const auto bindings = as_pointer_map(view.columns);
    if (q->def.where != nullptr) {
      view.filters.push_back(substitute_names(*q->def.where, bindings));
    }
    std::map<std::string, ExprPtr> next;
    for (const auto& proj : q->projections) {
      next.emplace(proj.column, substitute_names(*proj.expr, bindings));
    }
    view.columns = std::move(next);
  }
  return view;
}

/// Builds the conjunction of the chain's filters (as AST); null = no filter.
[[nodiscard]] ExprPtr conjoin_filters(const StreamView& view,
                                      const Expr* groupby_where,
                                      const std::map<std::string, const Expr*>&
                                          bindings) {
  std::vector<ExprPtr> all;
  for (const auto& f : view.filters) all.push_back(f->clone());
  if (groupby_where != nullptr) {
    all.push_back(substitute_names(*groupby_where, bindings));
  }
  if (all.empty()) return nullptr;
  ExprPtr conj = std::move(all.front());
  for (std::size_t i = 1; i < all.size(); ++i) {
    conj = lang::make_binary(lang::BinaryOp::kAnd, std::move(conj),
                             std::move(all[i]));
  }
  return conj;
}

SwitchQueryPlan build_switch_plan(const AnalyzedProgram& analysis,
                                  int query_index) {
  const AnalyzedQuery& q = analysis.queries[static_cast<std::size_t>(query_index)];
  const StreamView view = build_stream_view(analysis, q.input);
  const auto bindings = as_pointer_map(view.columns);
  const lang::Schema& in_schema =
      q.input < 0 ? base_schema() : analysis.queries[static_cast<std::size_t>(
                                        q.input)].output;

  SwitchQueryPlan plan;
  plan.query_index = query_index;
  plan.name = q.def.result_name.empty() ? "result" : q.def.result_name;
  plan.prefilter_ast = conjoin_filters(view, q.def.where.get(), bindings);
  if (plan.prefilter_ast != nullptr) {
    plan.prefilter =
        ScalarExpr::compile(*plan.prefilter_ast, base_record_resolver());
  }

  // Key components: column expressions composed down to T.
  for (const auto& col : q.key_columns) {
    KeyComponent comp;
    comp.column = col;
    if (const auto ck = q.computed_keys.find(col); ck != q.computed_keys.end()) {
      // Computed key: bind the expression through the stream view and keep
      // the tree — computed keys are never eligible for the fast-field path.
      const lang::Column* column = q.output.find(col);
      check(column != nullptr, "switch plan: computed key missing from schema");
      comp.bytes = (column->bits + 7) / 8;
      const ExprPtr bound = substitute_names(*ck->second, bindings);
      comp.expr = ScalarExpr::compile(*bound, base_record_resolver());
    } else {
      const lang::Column* column = in_schema.find(col);
      check(column != nullptr, "switch plan: key column missing from schema");
      comp.bytes = (column->bits + 7) / 8;
      const auto it = bindings.find(col);
      const ExprPtr name_expr = lang::make_name(col);
      const Expr& source_expr = it != bindings.end() ? *it->second : *name_expr;
      comp.expr = ScalarExpr::compile(source_expr, base_record_resolver());
    }
    plan.key.push_back(std::move(comp));
  }

  // Precompute the fast extractor when every component is a plain field
  // reference (record-context slots index FieldId).
  for (const auto& comp : plan.key) {
    const auto slot = comp.expr.as_slot_load();
    if (!slot.has_value()) {
      plan.fast_key_fields.clear();
      break;
    }
    plan.fast_key_fields.push_back(static_cast<FieldId>(slot->index));
  }

  // Byte-direct wire layout: valid only when every fast key field sits on
  // the wire big-endian at a fixed offset with exactly the component's
  // packed width, so gathered frame bytes equal kv::Key::pack's output.
  if (!plan.fast_key_fields.empty()) {
    plan.wire_direct_key = true;
    for (std::size_t i = 0; i < plan.key.size(); ++i) {
      const WireFieldSlice s = wire_field_slice(plan.fast_key_fields[i]);
      if (s.width == 0 || static_cast<int>(s.width) != plan.key[i].bytes) {
        plan.wire_direct_key = false;
        break;
      }
      plan.wire_key_slices[i] = s;
    }
  }

  // Aggregation kernels.
  std::vector<std::shared_ptr<const kv::FoldKernel>> parts;
  for (const auto& agg : q.aggregations) {
    switch (agg.kind) {
      case lang::AggregationSpec::Kind::kCount:
        parts.push_back(std::make_shared<kv::CountKernel>());
        break;
      case lang::AggregationSpec::Kind::kSum: {
        const ExprPtr bound = substitute_names(*agg.sum_expr, bindings);
        parts.push_back(std::make_shared<SumExprKernel>(
            agg.column,
            ScalarExpr::compile(*bound, base_record_resolver())));
        break;
      }
      case lang::AggregationSpec::Kind::kFold: {
        const int fi = analysis.fold_index(agg.fold_name);
        check(fi >= 0, "switch plan: unknown fold");
        const lang::AnalyzedFold& fold =
            analysis.folds[static_cast<std::size_t>(fi)];
        // Bind packet args through the stream view's column map.
        std::map<std::string, const Expr*> arg_bindings;
        for (const auto& arg : fold.def.packet_args) {
          const auto it = bindings.find(arg);
          if (it != bindings.end()) arg_bindings.emplace(arg, it->second);
        }
        parts.push_back(
            std::make_shared<CompiledFoldKernel>(fold, arg_bindings));
        break;
      }
    }
    for (const auto& col : agg.out_columns) plan.value_columns.push_back(col);
  }
  if (parts.size() == 1) {
    plan.kernel = parts.front();
  } else {
    plan.kernel = std::make_shared<kv::CombinedKernel>(std::move(parts));
  }
  plan.linearity = plan.kernel->linearity();

  // Per-plan read set: prefilter, key components, kernel body/coefficients.
  if (plan.prefilter.has_value()) plan.prefilter->collect_fields(plan.used_fields);
  for (const auto& comp : plan.key) comp.expr.collect_fields(plan.used_fields);
  plan.used_fields |= plan.kernel->used_fields();
  return plan;
}

}  // namespace

CompiledStreamSelect compile_stream_select(const AnalyzedProgram& analysis,
                                           int query_index) {
  const AnalyzedQuery& q = analysis.queries.at(static_cast<std::size_t>(query_index));
  check(q.def.kind == lang::QueryDef::Kind::kSelect && q.output.stream_over_base,
        "compile_stream_select: not a stream SELECT");
  const StreamView view = build_stream_view(analysis, query_index);

  CompiledStreamSelect out;
  out.query_index = query_index;
  if (const ExprPtr conj = conjoin_filters(view, nullptr, {})) {
    out.filter = ScalarExpr::compile(*conj, base_record_resolver());
  }
  for (const auto& col : q.output.columns()) {
    const auto it = view.columns.find(col.name);
    const ExprPtr name_expr = lang::make_name(col.name);
    const Expr& source = it != view.columns.end() ? *it->second : *name_expr;
    out.projections.emplace_back(
        col.name, ScalarExpr::compile(source, base_record_resolver()));
  }
  return out;
}

CompiledProgram compile_program(AnalyzedProgram analysis) {
  CompiledProgram out;
  out.analysis = std::move(analysis);
  for (std::size_t i = 0; i < out.analysis.queries.size(); ++i) {
    const AnalyzedQuery& q = out.analysis.queries[i];
    if (q.def.kind == lang::QueryDef::Kind::kGroupBy && q.on_switch) {
      out.switch_plans.push_back(
          build_switch_plan(out.analysis, static_cast<int>(i)));
    }
  }

  // Program-wide read set: every plan's per-packet reads, plus the filters
  // and projections of unconsumed stream SELECTs (the runtime's StreamStage
  // evaluates those per record too). Whatever is NOT in this union never
  // needs decoding from frame bytes on the wire ingest path.
  for (const auto& plan : out.switch_plans) out.field_usage |= plan.used_fields;
  std::set<int> consumed;
  for (const auto& q : out.analysis.queries) {
    consumed.insert(q.input);
    consumed.insert(q.left);
    consumed.insert(q.right);
  }
  for (std::size_t i = 0; i < out.analysis.queries.size(); ++i) {
    const AnalyzedQuery& q = out.analysis.queries[i];
    if (q.def.kind != lang::QueryDef::Kind::kSelect ||
        !q.output.stream_over_base || consumed.count(static_cast<int>(i)) > 0) {
      continue;
    }
    const CompiledStreamSelect sel =
        compile_stream_select(out.analysis, static_cast<int>(i));
    if (sel.filter.has_value()) sel.filter->collect_fields(out.field_usage);
    for (const auto& [name, expr] : sel.projections) {
      expr.collect_fields(out.field_usage);
    }
  }
  return out;
}

CompiledProgram compile_source(std::string_view source,
                               const std::map<std::string, double>& params) {
  return compile_program(lang::analyze_source(source, params));
}

std::vector<double> unpack_key(const SwitchQueryPlan& plan, const kv::Key& key) {
  std::vector<double> out;
  const auto bytes = key.bytes();
  std::size_t pos = 0;
  for (const auto& comp : plan.key) {
    check(pos + static_cast<std::size_t>(comp.bytes) <= bytes.size(),
          "unpack_key: key too short");
    std::uint64_t v = 0;
    for (int b = 0; b < comp.bytes; ++b) {
      v = (v << 8) | std::to_integer<std::uint64_t>(bytes[pos++]);
    }
    out.push_back(static_cast<double>(v));
  }
  return out;
}

SwitchQueryPlan SwitchQueryPlan::clone() const {
  SwitchQueryPlan out;
  out.query_index = query_index;
  out.name = name;
  out.prefilter = prefilter;
  if (prefilter_ast) out.prefilter_ast = prefilter_ast->clone();
  out.key = key;
  out.fast_key_fields = fast_key_fields;
  out.wire_direct_key = wire_direct_key;
  out.wire_key_slices = wire_key_slices;
  out.kernel = kernel;  // shared: kernels are immutable after construction
  out.value_columns = value_columns;
  out.linearity = linearity;
  out.used_fields = used_fields;
  return out;
}

CompiledProgram CompiledProgram::clone() const {
  CompiledProgram out;
  out.analysis = analysis.clone();
  out.switch_plans.reserve(switch_plans.size());
  for (const auto& p : switch_plans) out.switch_plans.push_back(p.clone());
  out.field_usage = field_usage;
  return out;
}

}  // namespace perfq::compiler
