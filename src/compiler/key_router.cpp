#include "compiler/key_router.hpp"

namespace perfq::compiler {

std::optional<KeyRouter> KeyRouter::make(const SwitchQueryPlan& plan) {
  if (plan.fast_key_fields.empty()) return std::nullopt;
  return KeyRouter(plan);
}

KeyRouter::KeyRouter(const SwitchQueryPlan& plan) {
  check(plan.fast_key_fields.size() == plan.key.size() &&
            plan.key.size() <= components_.size(),
        "KeyRouter: plan/fast-field mismatch");
  arity_ = plan.key.size();
  for (std::size_t i = 0; i < arity_; ++i) {
    components_[i] = Component{plan.fast_key_fields[i],
                               static_cast<std::uint8_t>(plan.key[i].bytes)};
    key_len_ += static_cast<std::size_t>(plan.key[i].bytes);
  }
  check(key_len_ <= kv::Key::kCapacity, "KeyRouter: key too long");
}

std::size_t KeyRouter::pack_values(const PacketRecord& rec,
                                   std::uint64_t* values,
                                   std::uint8_t* widths) const {
  for (std::size_t i = 0; i < arity_; ++i) {
    // Same read + truncation as extract_key (shared key_component_value):
    // the packed bytes, and therefore the hash, must be bit-identical
    // between both paths.
    values[i] = key_component_value(field_value(rec, components_[i].field));
    widths[i] = components_[i].bytes;
  }
  return arity_;
}

std::uint64_t KeyRouter::raw_hash(const PacketRecord& rec) const {
  // Value extraction and byte layout each have exactly one definition:
  // pack_values (shared with make_key) and Key::pack_bytes (via
  // hash_packed, shared with every Key packer).
  std::array<std::uint64_t, 16> values;
  std::array<std::uint8_t, 16> widths;
  const std::size_t n = pack_values(rec, values.data(), widths.data());
  return kv::Key::hash_packed({values.data(), n}, {widths.data(), n});
}

kv::Key KeyRouter::make_key(const PacketRecord& rec,
                            std::uint64_t raw_hash) const {
  std::array<std::uint64_t, 16> values;
  std::array<std::uint8_t, 16> widths;
  const std::size_t n = pack_values(rec, values.data(), widths.data());
  return kv::Key::pack_prehashed({values.data(), n}, {widths.data(), n},
                                 raw_hash);
}

}  // namespace perfq::compiler
