#include "compiler/key_router.hpp"

namespace perfq::compiler {

std::optional<KeyRouter> KeyRouter::make(const SwitchQueryPlan& plan) {
  if (plan.fast_key_fields.empty()) return std::nullopt;
  return KeyRouter(plan);
}

KeyRouter::KeyRouter(const SwitchQueryPlan& plan) {
  check(plan.fast_key_fields.size() == plan.key.size() &&
            plan.key.size() <= components_.size(),
        "KeyRouter: plan/fast-field mismatch");
  arity_ = plan.key.size();
  for (std::size_t i = 0; i < arity_; ++i) {
    components_[i] = Component{plan.fast_key_fields[i],
                               static_cast<std::uint8_t>(plan.key[i].bytes)};
    key_len_ += static_cast<std::size_t>(plan.key[i].bytes);
  }
  check(key_len_ <= kv::Key::kCapacity, "KeyRouter: key too long");
  wire_direct_ = plan.wire_direct_key;
  slices_ = plan.wire_key_slices;
}

}  // namespace perfq::compiler
