#include "compiler/fold_vm.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <set>
#include <utility>

#include "compiler/fold_compiler.hpp"

namespace perfq::compiler {

FoldVm FoldVmCompiler::compile(const FoldBody& body) {
  using Op = FoldVm::Op;
  using EOp = ScalarExpr::Op;

  // Local class: inherits this member function's friend access to
  // ScalarExpr/FoldBody internals.
  struct Builder {
    FoldVm vm;
    std::vector<std::uint64_t> const_bits;  ///< parallel to vm.const_pool_
    std::vector<std::pair<int, int>> field_slots;  ///< (depth, index), ordered
    std::vector<int> preload_states;  ///< state indices preloaded on entry
    std::set<int> written;  ///< state slots possibly written so far (lockstep)
    std::vector<std::uint8_t> free_regs;
    std::uint32_t pinned_end = 0;  ///< consts + fields + state preloads
    std::uint32_t next_reg = 0;

    // ---- pass A: constants, field set, preloadable state reads -------------
    std::uint8_t intern(double v) {
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
      for (std::size_t i = 0; i < const_bits.size(); ++i) {
        if (const_bits[i] == bits) return static_cast<std::uint8_t>(i);
      }
      check(const_bits.size() < FoldVm::kMaxRegs,
            "FoldVm: constant pool exceeds register budget");
      const_bits.push_back(bits);
      vm.const_pool_.push_back(v);
      return static_cast<std::uint8_t>(const_bits.size() - 1);
    }

    /// Evaluate a constant-only subtree with the interpreter's exact operator
    /// semantics (ScalarExpr::eval_op is the shared authoritative table), so
    /// folding never changes a bit.
    std::optional<double> fold(const ScalarExpr& e, int idx) const {
      const ScalarExpr::Node& n = e.nodes_[static_cast<std::size_t>(idx)];
      switch (n.op) {
        case EOp::kConst: return n.k;
        case EOp::kSlot: return std::nullopt;
        case EOp::kNot:
        case EOp::kNeg: {
          const auto a = fold(e, n.a);
          if (!a) return std::nullopt;
          return ScalarExpr::eval_op(n.op, *a, 0.0);
        }
        case EOp::kSelect: {
          const auto a = fold(e, n.a);
          const auto b = fold(e, n.b);
          const auto c = fold(e, n.c);
          if (!a || !b || !c) return std::nullopt;
          return *a != 0.0 ? *b : *c;
        }
        default: {
          const auto a = fold(e, n.a);
          const auto b = fold(e, n.b);
          if (!a || !b) return std::nullopt;
          return ScalarExpr::eval_op(n.op, *a, *b);
        }
      }
    }

    void note_field(Slot slot) {
      const std::pair<int, int> key{slot.depth, slot.index};
      if (std::find(field_slots.begin(), field_slots.end(), key) ==
          field_slots.end()) {
        field_slots.push_back(key);
      }
    }
    void note_state_read(int idx) {
      // Preloadable iff never (possibly) written before this read; reads
      // after a write re-load at the use site instead.
      if (written.count(idx) != 0) return;
      if (std::find(preload_states.begin(), preload_states.end(), idx) ==
          preload_states.end()) {
        preload_states.push_back(idx);
      }
    }

    void scan_expr(const ScalarExpr& e, int idx) {
      if (const auto v = fold(e, idx)) {
        intern(*v);
        return;
      }
      const ScalarExpr::Node& n = e.nodes_[static_cast<std::size_t>(idx)];
      if (n.op == EOp::kSlot) {
        if (n.slot.depth == kStateDepth) {
          note_state_read(n.slot.index);
        } else {
          note_field(n.slot);
        }
        return;
      }
      if (n.a >= 0) scan_expr(e, n.a);
      if (n.b >= 0) scan_expr(e, n.b);
      if (n.c >= 0) scan_expr(e, n.c);
    }

    void scan_block(const std::vector<FoldBody::CompiledStmt>& block) {
      for (const auto& s : block) {
        scan_expr(s.expr, s.expr.root_);
        if (s.is_if) {
          scan_block(s.then_body);
          scan_block(s.else_body);
        } else {
          written.insert(s.target);
        }
      }
    }

    // ---- register file layout ----------------------------------------------
    std::uint8_t field_reg(Slot slot) const {
      const std::pair<int, int> key{slot.depth, slot.index};
      const auto it = std::find(field_slots.begin(), field_slots.end(), key);
      check(it != field_slots.end(), "FoldVm: unscanned field slot");
      return static_cast<std::uint8_t>(vm.const_pool_.size() +
                                       (it - field_slots.begin()));
    }
    std::optional<std::uint8_t> preloaded_state_reg(int idx) const {
      if (written.count(idx) != 0) return std::nullopt;  // stale after write
      const auto it =
          std::find(preload_states.begin(), preload_states.end(), idx);
      if (it == preload_states.end()) return std::nullopt;
      return static_cast<std::uint8_t>(vm.const_pool_.size() +
                                       field_slots.size() +
                                       (it - preload_states.begin()));
    }

    std::uint8_t alloc() {
      if (!free_regs.empty()) {
        const std::uint8_t r = free_regs.back();
        free_regs.pop_back();
        return r;
      }
      check(next_reg < FoldVm::kMaxRegs, "FoldVm: register budget exceeded");
      const auto r = static_cast<std::uint8_t>(next_reg++);
      vm.reg_count_ = next_reg;
      return r;
    }
    void release(std::uint8_t r) {
      if (r >= pinned_end) free_regs.push_back(r);  // pinned regs stay
    }

    // ---- pass B: emission --------------------------------------------------
    static Op lower_op(EOp op) {
      switch (op) {
        case EOp::kAdd: return Op::kAdd;
        case EOp::kSub: return Op::kSub;
        case EOp::kMul: return Op::kMul;
        case EOp::kDiv: return Op::kDiv;
        case EOp::kEq: return Op::kEq;
        case EOp::kNe: return Op::kNe;
        case EOp::kLt: return Op::kLt;
        case EOp::kLe: return Op::kLe;
        case EOp::kGt: return Op::kGt;
        case EOp::kGe: return Op::kGe;
        case EOp::kAnd: return Op::kAnd;
        case EOp::kOr: return Op::kOr;
        case EOp::kNot: return Op::kNot;
        case EOp::kNeg: return Op::kNeg;
        case EOp::kMax: return Op::kMax;
        case EOp::kMin: return Op::kMin;
        default: throw InternalError{"FoldVm: unlowerable op"};
      }
    }

    std::uint8_t emit_expr(const ScalarExpr& e, int idx) {
      if (const auto v = fold(e, idx)) return intern(*v);
      const ScalarExpr::Node& n = e.nodes_[static_cast<std::size_t>(idx)];
      switch (n.op) {
        case EOp::kConst:
          throw InternalError{"FoldVm: unfolded constant"};
        case EOp::kSlot: {
          if (n.slot.depth != kStateDepth) return field_reg(n.slot);
          if (const auto pre = preloaded_state_reg(n.slot.index)) return *pre;
          const std::uint8_t r = alloc();
          vm.code_.push_back({Op::kLoadState, r,
                              static_cast<std::uint8_t>(n.slot.index), 0, 0});
          return r;
        }
        case EOp::kNot:
        case EOp::kNeg: {
          const std::uint8_t a = emit_expr(e, n.a);
          release(a);
          const std::uint8_t r = alloc();
          vm.code_.push_back({lower_op(n.op), r, a, 0, 0});
          return r;
        }
        case EOp::kSelect: {
          const std::uint8_t a = emit_expr(e, n.a);
          const std::uint8_t b = emit_expr(e, n.b);
          const std::uint8_t c = emit_expr(e, n.c);
          release(a);
          release(b);
          release(c);
          const std::uint8_t r = alloc();
          vm.code_.push_back({Op::kSelect, r, a, b, c});
          return r;
        }
        default: {
          const std::uint8_t a = emit_expr(e, n.a);
          const std::uint8_t b = emit_expr(e, n.b);
          release(a);
          release(b);
          const std::uint8_t r = alloc();
          vm.code_.push_back({lower_op(n.op), r, a, b, 0});
          return r;
        }
      }
    }

    void emit_block(const std::vector<FoldBody::CompiledStmt>& block) {
      for (const auto& s : block) {
        if (!s.is_if) {
          const std::size_t before = vm.code_.size();
          const std::uint8_t r = emit_expr(s.expr, s.expr.root_);
          const auto target = static_cast<std::uint8_t>(s.target);
          FoldVm::Instr* last =
              vm.code_.size() > before ? &vm.code_.back() : nullptr;
          if (last != nullptr && last->dst == r && r >= pinned_end) {
            // Store fusion: redirect the producing instruction to write the
            // state variable directly (St twin = op + 1).
            last->op = static_cast<Op>(static_cast<std::uint8_t>(last->op) + 1);
            last->dst = target;
          } else {
            // Right-hand side is a pinned register (constant, field, or
            // preloaded state): plain store.
            vm.code_.push_back({Op::kStoreState, target, r, 0, 0});
          }
          release(r);
          written.insert(s.target);
          continue;
        }
        const std::uint8_t cond = emit_expr(s.expr, s.expr.root_);
        const std::size_t jz_at = vm.code_.size();
        vm.code_.push_back({Op::kJz, 0, cond, 0, 0});
        release(cond);
        emit_block(s.then_body);
        if (s.else_body.empty()) {
          vm.code_[jz_at].target = static_cast<std::int32_t>(vm.code_.size());
        } else {
          const std::size_t jmp_at = vm.code_.size();
          vm.code_.push_back({Op::kJmp, 0, 0, 0, 0});
          vm.code_[jz_at].target = static_cast<std::int32_t>(vm.code_.size());
          emit_block(s.else_body);
          vm.code_[jmp_at].target = static_cast<std::int32_t>(vm.code_.size());
        }
      }
    }
  };

  Builder b;
  b.scan_block(body.body_);
  b.written.clear();  // pass B re-runs the same lockstep write tracking

  const std::size_t pinned = b.vm.const_pool_.size() + b.field_slots.size() +
                             b.preload_states.size();
  check(pinned < FoldVm::kMaxRegs, "FoldVm: pinned registers exceed budget");
  b.pinned_end = static_cast<std::uint32_t>(pinned);
  b.next_reg = b.pinned_end;
  b.vm.reg_count_ = b.pinned_end;

  for (std::size_t i = 0; i < b.field_slots.size(); ++i) {
    b.vm.fields_.push_back(FoldVm::FieldLoad{
        Slot{b.field_slots[i].first, b.field_slots[i].second},
        static_cast<std::uint8_t>(b.vm.const_pool_.size() + i)});
  }
  for (std::size_t i = 0; i < b.preload_states.size(); ++i) {
    b.vm.states_.push_back(FoldVm::StateLoad{
        static_cast<std::uint8_t>(b.preload_states[i]),
        static_cast<std::uint8_t>(b.vm.const_pool_.size() +
                                  b.field_slots.size() + i)});
  }

  b.vm.code_.clear();  // drop the default-constructed kHalt program
  b.emit_block(body.body_);
  b.vm.code_.push_back({Op::kHalt, 0, 0, 0, 0});

  // ---- quickening: recognize whole-program superinstruction shapes --------
  // The canonical linear fold (EWMA, Fig. 2):
  //   [kMul t1 = cA * sPre] [kSub t2 = fx - fy] [kMul t3 = cB * t2]
  //   [kAddSt state[s] = t1 + t3] [kHalt]
  {
    const auto pool = static_cast<std::uint8_t>(b.vm.const_pool_.size());
    const auto fields_end =
        static_cast<std::uint8_t>(pool + b.vm.fields_.size());
    const auto is_const = [&](std::uint8_t reg) { return reg < pool; };
    const auto is_field = [&](std::uint8_t reg) {
      return reg >= pool && reg < fields_end;
    };
    const auto& c = b.vm.code_;
    if (c.size() == 5 && c[0].op == Op::kMul && c[1].op == Op::kSub &&
        c[2].op == Op::kMul && c[3].op == Op::kAddSt &&
        is_const(c[0].a) && is_const(c[2].a) && is_field(c[1].a) &&
        is_field(c[1].b) && c[2].b == c[1].dst && c[3].a == c[0].dst &&
        c[3].b == c[2].dst) {
      for (const FoldVm::StateLoad& s : b.vm.states_) {
        if (s.reg == c[0].b && s.idx == c[3].dst) {
          b.vm.special_ = FoldVm::Special::kAffine1Diff;
          b.vm.sp_ca_ = b.vm.const_pool_[c[0].a];
          b.vm.sp_cb_ = b.vm.const_pool_[c[2].a];
          b.vm.sp_state_ = c[3].dst;
          b.vm.sp_fx_ = b.vm.fields_[c[1].a - pool].slot;
          b.vm.sp_fy_ = b.vm.fields_[c[1].b - pool].slot;
          break;
        }
      }
    }
  }

  return std::move(b.vm);
}

}  // namespace perfq::compiler
