// Lowering fold definitions to executable kernels.
//
// A CompiledFoldKernel executes the user's fold body for the ground-truth
// update(), and — when the linearity analyzer proved the fold linear —
// evaluates the extracted (A, B) coefficient expressions per packet for the
// cache's running-product maintenance and the backing store's exact merge.
//
// Hot-path design: the fold body is lowered TWICE. The statement tree of
// resolved ScalarExprs remains the reference semantics (execute_interpreted
// walks it, one recursive eval per operator), and FoldVmCompiler flattens it
// into register-based bytecode (src/compiler/fold_vm.hpp) that the per-packet
// update() runs instead — no AST recursion, no virtual ValueSource call per
// field on the record fast path. Property tests assert the two paths agree
// bit-for-bit on the Fig. 2 corpus.
#pragma once

#include <map>
#include <memory>

#include "compiler/fold_vm.hpp"
#include "compiler/scalar_expr.hpp"
#include "kvstore/fold.hpp"
#include "lang/sema.hpp"

namespace perfq::compiler {

/// Slot depth used for state-variable references inside fold bodies.
inline constexpr int kStateDepth = -1;

/// ValueSource adapter exposing fold state alongside an inner source.
class StatefulSource final : public ValueSource {
 public:
  StatefulSource(const ValueSource& inner, std::span<const double> state)
      : inner_(inner), state_(state) {}
  [[nodiscard]] double value(Slot slot) const override {
    if (slot.depth == kStateDepth) {
      return state_[static_cast<std::size_t>(slot.index)];
    }
    return inner_.value(slot);
  }

 private:
  const ValueSource& inner_;
  std::span<const double> state_;
};

/// A fold body compiled against a name resolver (state vars resolve
/// internally; everything else through `resolver`). Reused by both the
/// on-switch kernel (records) and the collection-layer GROUPBY (rows).
class FoldBody {
 public:
  [[nodiscard]] static FoldBody compile(const lang::FoldDef& fold,
                                        const Resolver& resolver);

  /// Run the body once (bytecode VM): state is read and written in place;
  /// `input` supplies non-state names.
  void execute(std::span<double> state, const ValueSource& input) const {
    vm_.execute(state, input);
  }

  /// Hot-path variant over a packet-record window (window.back() = current
  /// packet): fields load directly, no virtual dispatch.
  void execute_record(std::span<double> state,
                      std::span<const PacketRecord> window) const {
    vm_.execute_record(state, window);
  }
  void execute_record(std::span<double> state, const PacketRecord& rec) const {
    vm_.execute_record(state, rec);
  }
  void execute_record(std::span<double> state, const WireRecordView& rec) const {
    vm_.execute_record(state, rec);
  }

  /// Every record field the body reads (state refs excluded) — sema's input
  /// to the program-level FieldUsage union.
  void collect_fields(FieldUsage& usage) const { collect_block(body_, usage); }

  /// Reference semantics: walk the resolved statement tree. Kept for
  /// differential tests and the interpreted-vs-VM microbenchmark.
  void execute_interpreted(std::span<double> state,
                           const ValueSource& input) const;

  [[nodiscard]] std::size_t state_dims() const { return dims_; }
  [[nodiscard]] const FoldVm& vm() const { return vm_; }

 private:
  friend class FoldVmCompiler;

  struct CompiledStmt {
    bool is_if = false;
    int target = -1;       // assign
    ScalarExpr expr;       // assign value or if condition
    std::vector<CompiledStmt> then_body;
    std::vector<CompiledStmt> else_body;
  };

  static std::vector<CompiledStmt> compile_block(
      const std::vector<lang::Stmt>& body, const lang::FoldDef& fold,
      const Resolver& resolver);
  static void exec_block(const std::vector<CompiledStmt>& block,
                         std::span<double> state, const ValueSource& input);
  static void collect_block(const std::vector<CompiledStmt>& block,
                            FieldUsage& usage) {
    for (const CompiledStmt& s : block) {
      s.expr.collect_fields(usage);
      collect_block(s.then_body, usage);
      collect_block(s.else_body, usage);
    }
  }

  std::vector<CompiledStmt> body_;
  FoldVm vm_;
  std::size_t dims_ = 0;
};

/// kv::FoldKernel lowered from an analyzed fold, with packet arguments bound
/// to base-schema expressions (identity bindings for direct GROUPBY over T;
/// substituted expressions when the stream passed through SELECT renames).
class CompiledFoldKernel final : public kv::FoldKernel {
 public:
  /// `arg_bindings` maps packet-arg names to base-stream expressions; args
  /// not present bind to the base field of the same name.
  CompiledFoldKernel(const lang::AnalyzedFold& fold,
                     const std::map<std::string, const lang::Expr*>& arg_bindings);

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t state_dims() const override { return dims_; }
  [[nodiscard]] kv::StateVector initial_state() const override {
    return kv::StateVector(dims_);
  }
  /// Inline so concrete (devirtualized) callers fold the VM into their loop.
  void update(kv::StateVector& state, const PacketRecord& rec) const override {
    body_.execute_record(state.span(), rec);
  }
  /// Lazy wire update: history-free folds run the VM straight off the frame
  /// bytes; history-windowed folds (h > 0) fall back to the materializing
  /// default (their window storage needs owning records anyway).
  void update(kv::StateVector& state,
              const WireRecordView& rec) const override {
    if (history_ > 0) {
      kv::FoldKernel::update(state, rec);
      return;
    }
    body_.execute_record(state.span(), rec);
  }
  /// Fold body reads plus the linear-merge coefficient expressions (the
  /// cache evaluates those per record too when the fold is kLinear).
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    body_.collect_fields(usage);
    for (const CompiledRow& row : rows_) {
      for (const ScalarExpr& c : row.coeffs) c.collect_fields(usage);
      row.constant.collect_fields(usage);
    }
    return usage;
  }
  /// update() via the AST-walking reference path (tests, benchmarks).
  void update_interpreted(kv::StateVector& state, const PacketRecord& rec) const;
  [[nodiscard]] const FoldBody& body() const { return body_; }
  [[nodiscard]] kv::Linearity linearity() const override { return linearity_; }
  [[nodiscard]] std::size_t history_window() const override { return history_; }
  [[nodiscard]] kv::AffineTransform transform(
      std::span<const PacketRecord> window) const override;
  [[nodiscard]] kv::SmallMatrix constant_a() const override;

  [[nodiscard]] const std::string& linearity_reason() const { return reason_; }

 private:
  std::string name_;
  std::size_t dims_ = 0;
  kv::Linearity linearity_ = kv::Linearity::kNotLinear;
  std::size_t history_ = 0;
  std::string reason_;
  FoldBody body_;
  // Extracted update: rows_[i] = (coeff exprs over window, constant expr).
  struct CompiledRow {
    std::vector<ScalarExpr> coeffs;
    ScalarExpr constant;
  };
  std::vector<CompiledRow> rows_;
  kv::SmallMatrix const_a_;  ///< precomputed when kLinearConstA
};

/// SUM(expr) aggregation kernel (linear, A = I, h = 0).
class SumExprKernel final : public kv::FoldKernel {
 public:
  SumExprKernel(std::string display_name, ScalarExpr expr)
      : name_(std::move(display_name)), expr_(std::move(expr)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::size_t state_dims() const override { return 1; }
  [[nodiscard]] kv::StateVector initial_state() const override {
    return kv::StateVector(1);
  }
  void update(kv::StateVector& state, const PacketRecord& rec) const override {
    state[0] += expr_.eval(RecordSource({&rec, 1}));
  }
  void update(kv::StateVector& state,
              const WireRecordView& rec) const override {
    state[0] += expr_.eval(WireRecordSource(rec));
  }
  [[nodiscard]] FieldUsage used_fields() const override {
    FieldUsage usage;
    expr_.collect_fields(usage);
    return usage;
  }
  [[nodiscard]] kv::Linearity linearity() const override {
    return kv::Linearity::kLinearConstA;
  }
  [[nodiscard]] kv::AffineTransform transform(
      std::span<const PacketRecord> window) const override {
    kv::AffineTransform t{kv::SmallMatrix::identity(1), kv::StateVector(1)};
    t.b[0] = expr_.eval(RecordSource(window.subspan(window.size() - 1)));
    return t;
  }
  [[nodiscard]] kv::SmallMatrix constant_a() const override {
    return kv::SmallMatrix::identity(1);
  }

 private:
  std::string name_;
  ScalarExpr expr_;
};

/// Replace name references with bound expressions (stream-SELECT renames are
/// pushed into fold bodies and WHERE clauses this way). A "prev$x" reference
/// substitutes the binding of "x" with all of *its* names prev$-renamed.
/// Names without a binding are left untouched.
[[nodiscard]] lang::ExprPtr substitute_names(
    const lang::Expr& expr,
    const std::map<std::string, const lang::Expr*>& bindings);

}  // namespace perfq::compiler
