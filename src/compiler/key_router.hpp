// Record-direct key routing for plain-field GROUPBY keys.
//
// The sharded runtime's dispatcher must know each record's key hash to pick a
// shard, and PR 2 paid for that with a full extract_key(): evaluate/clamp the
// fields, pack a kv::Key (32-byte inline array + length bookkeeping), hash
// it, then copy the whole Key into the shard message. For plain-field keys
// (5tuple, srcip, qid — every key component a direct FieldId load, i.e.
// SwitchQueryPlan::fast_key_fields non-empty) none of that materialization is
// needed on the dispatch path: KeyRouter packs the key bytes into a stack
// buffer and hashes them there, so dispatch cost drops to the hash-only
// floor and the shard message carries an 8-byte hash instead of a 48-byte
// Key. The shard worker re-packs the key on its own core — parallel, off the
// serial dispatcher — and installs the shipped hash via Key::pack_prehashed,
// so the byte-level hash is still computed exactly once per record.
//
// Equivalence contract: raw_hash(rec) == extract_key(plan, rec).raw_hash()
// and make_key(rec, raw_hash(rec)) == extract_key(plan, rec), bit for bit
// (same field_value() reads, same clamp, same big-endian packing).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "compiler/program.hpp"
#include "kvstore/key.hpp"

namespace perfq::compiler {

class KeyRouter {
 public:
  /// A router for `plan`, or nullopt when the plan has computed key
  /// components (those must take extract_key()'s expression-tree path).
  /// Self-contained: the router copies the field ids and widths it needs.
  [[nodiscard]] static std::optional<KeyRouter> make(const SwitchQueryPlan& plan);

  /// The key's seed-0 byte hash computed straight from the record: pack the
  /// plain fields into a stack buffer, hash once. No kv::Key materialized.
  [[nodiscard]] std::uint64_t raw_hash(const PacketRecord& rec) const;

  /// Worker-side rebuild: pack the key and install the dispatcher's hash
  /// (skipping the byte-level rehash). `raw_hash` must come from
  /// raw_hash(rec) for this same record.
  [[nodiscard]] kv::Key make_key(const PacketRecord& rec,
                                 std::uint64_t raw_hash) const;

 private:
  explicit KeyRouter(const SwitchQueryPlan& plan);

  /// Pack the key's fields (field_value read + clamp + truncate, identical
  /// to extract_key's fast path) into `values`/`widths`; returns arity.
  std::size_t pack_values(const PacketRecord& rec, std::uint64_t* values,
                          std::uint8_t* widths) const;

  struct Component {
    FieldId field;
    std::uint8_t bytes;
  };
  /// Key components never exceed extract_key's 16-component bound.
  std::array<Component, 16> components_{};
  std::size_t arity_ = 0;
  std::size_t key_len_ = 0;  ///< total packed bytes
};

}  // namespace perfq::compiler
