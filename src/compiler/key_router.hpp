// Record-direct key routing for plain-field GROUPBY keys.
//
// The sharded runtime's dispatcher must know each record's key hash to pick a
// shard, and PR 2 paid for that with a full extract_key(): evaluate/clamp the
// fields, pack a kv::Key (32-byte inline array + length bookkeeping), hash
// it, then copy the whole Key into the shard message. For plain-field keys
// (5tuple, srcip, qid — every key component a direct FieldId load, i.e.
// SwitchQueryPlan::fast_key_fields non-empty) none of that materialization is
// needed on the dispatch path: KeyRouter packs the key bytes into a stack
// buffer and hashes them there, so dispatch cost drops to the hash-only
// floor and the shard message carries an 8-byte hash instead of a 48-byte
// Key. The shard worker re-packs the key on its own core — parallel, off the
// serial dispatcher — and installs the shipped hash via Key::pack_prehashed,
// so the byte-level hash is still computed exactly once per record.
//
// Equivalence contract: raw_hash(rec) == extract_key(plan, rec).raw_hash()
// and make_key(rec, raw_hash(rec)) == extract_key(plan, rec), bit for bit
// (same field_value() reads, same clamp, same big-endian packing).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>

#include "compiler/program.hpp"
#include "kvstore/key.hpp"

namespace perfq::compiler {

class KeyRouter {
 public:
  /// A router for `plan`, or nullopt when the plan has computed key
  /// components (those must take extract_key()'s expression-tree path).
  /// Self-contained: the router copies the field ids and widths it needs.
  [[nodiscard]] static std::optional<KeyRouter> make(const SwitchQueryPlan& plan);

  /// The key's seed-0 byte hash computed straight from the record: pack the
  /// plain fields into a stack buffer, hash once. No kv::Key materialized.
  /// Generic over the record representation — on a WireRecordView the fields
  /// decode lazily from frame bytes, so a plain-field key hashes straight
  /// off the wire without ever building a PacketRecord.
  template <typename Rec>
  [[nodiscard]] std::uint64_t raw_hash(const Rec& rec) const {
    if constexpr (std::is_same_v<Rec, WireRecordView>) {
      // Byte-direct plans: the key bytes are frame bytes (same layout as
      // gather_wire_key / Key::pack — see SwitchQueryPlan::wire_direct_key),
      // so hashing is a gather + one hash_bytes, no doubles anywhere.
      if (wire_direct_) {
        std::array<std::byte, kv::Key::kCapacity> buf;
        return hash_bytes({buf.data(), gather(rec, buf.data())}, 0);
      }
    }
    // Value extraction and byte layout each have exactly one definition:
    // pack_values (shared with make_key) and Key::pack_bytes (via
    // hash_packed, shared with every Key packer).
    std::array<std::uint64_t, 16> values;
    std::array<std::uint8_t, 16> widths;
    const std::size_t n = pack_values(rec, values.data(), widths.data());
    return kv::Key::hash_packed({values.data(), n}, {widths.data(), n});
  }

  /// Worker-side rebuild: pack the key and install the dispatcher's hash
  /// (skipping the byte-level rehash). `raw_hash` must come from
  /// raw_hash(rec) for this same record.
  template <typename Rec>
  [[nodiscard]] kv::Key make_key(const Rec& rec, std::uint64_t raw_hash) const {
    if constexpr (std::is_same_v<Rec, WireRecordView>) {
      if (wire_direct_) {
        std::array<std::byte, kv::Key::kCapacity> buf;
        const std::size_t len = gather(rec, buf.data());
        return kv::Key::from_bytes_prehashed({buf.data(), len}, raw_hash);
      }
    }
    std::array<std::uint64_t, 16> values;
    std::array<std::uint8_t, 16> widths;
    const std::size_t n = pack_values(rec, values.data(), widths.data());
    return kv::Key::pack_prehashed({values.data(), n}, {widths.data(), n},
                                   raw_hash);
  }

 private:
  explicit KeyRouter(const SwitchQueryPlan& plan);

  /// Pack the key's fields (field_value read + clamp + truncate, identical
  /// to extract_key's fast path) into `values`/`widths`; returns arity.
  template <typename Rec>
  std::size_t pack_values(const Rec& rec, std::uint64_t* values,
                          std::uint8_t* widths) const {
    for (std::size_t i = 0; i < arity_; ++i) {
      // Same read + truncation as extract_key (shared key_component_value):
      // the packed bytes, and therefore the hash, must be bit-identical
      // between both paths.
      values[i] = key_component_value(field_value(rec, components_[i].field));
      widths[i] = components_[i].bytes;
    }
    return arity_;
  }

  /// Byte-direct gather (precondition: wire_direct_): copy each component's
  /// wire slice into `buf`; returns the key length. Identical bytes to
  /// pack_values + Key::pack_bytes for these plans.
  [[nodiscard]] std::size_t gather(const WireRecordView& rec,
                                   std::byte* buf) const {
    const std::byte* b = rec.bytes.data();
    std::size_t len = 0;
    for (std::size_t i = 0; i < arity_; ++i) {
      const WireFieldSlice s = slices_[i];
      std::memcpy(buf + len, b + s.offset, s.width);
      len += s.width;
    }
    return len;
  }

  struct Component {
    FieldId field;
    std::uint8_t bytes;
  };
  /// Key components never exceed extract_key's 16-component bound.
  std::array<Component, 16> components_{};
  std::array<WireFieldSlice, 16> slices_{};
  std::size_t arity_ = 0;
  std::size_t key_len_ = 0;  ///< total packed bytes
  bool wire_direct_ = false;  ///< mirrors SwitchQueryPlan::wire_direct_key
};

}  // namespace perfq::compiler
