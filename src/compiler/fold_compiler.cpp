#include "compiler/fold_compiler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lang/affine.hpp"

namespace perfq::compiler {
namespace {

using lang::Expr;
using lang::ExprKind;
using lang::ExprPtr;

ExprPtr rename_names_to_prev(const Expr& e) {
  ExprPtr out = e.clone();
  struct Walker {
    static void walk(Expr& node) {
      if (node.kind == ExprKind::kName) {
        node.name = std::string{lang::kPrevPrefix} + node.name;
        return;
      }
      if (node.lhs) walk(*node.lhs);
      if (node.rhs) walk(*node.rhs);
      for (auto& a : node.args) walk(*a);
    }
  };
  Walker::walk(*out);
  return out;
}

}  // namespace

ExprPtr substitute_names(const Expr& expr,
                         const std::map<std::string, const Expr*>& bindings) {
  if (expr.kind == ExprKind::kName) {
    const auto direct = bindings.find(expr.name);
    if (direct != bindings.end()) return direct->second->clone();
    if (expr.name.starts_with(lang::kPrevPrefix)) {
      const std::string base = expr.name.substr(lang::kPrevPrefix.size());
      const auto it = bindings.find(base);
      if (it != bindings.end()) return rename_names_to_prev(*it->second);
    }
    return expr.clone();
  }
  ExprPtr out = expr.clone();
  if (expr.lhs) out->lhs = substitute_names(*expr.lhs, bindings);
  if (expr.rhs) out->rhs = substitute_names(*expr.rhs, bindings);
  out->args.clear();
  for (const auto& a : expr.args) out->args.push_back(substitute_names(*a, bindings));
  return out;
}

// ----------------------------------------------------------------- FoldBody

FoldBody FoldBody::compile(const lang::FoldDef& fold, const Resolver& resolver) {
  FoldBody out;
  out.dims_ = fold.state_vars.size();
  out.body_ = compile_block(fold.body, fold, resolver);
  out.vm_ = FoldVmCompiler::compile(out);
  return out;
}

std::vector<FoldBody::CompiledStmt> FoldBody::compile_block(
    const std::vector<lang::Stmt>& body, const lang::FoldDef& fold,
    const Resolver& resolver) {
  // State variables resolve to the state slot space; other names defer.
  Resolver combined = [&fold, &resolver](const std::string& name)
      -> std::optional<Slot> {
    for (std::size_t i = 0; i < fold.state_vars.size(); ++i) {
      if (fold.state_vars[i] == name) {
        return Slot{kStateDepth, static_cast<int>(i)};
      }
    }
    return resolver(name);
  };

  std::vector<CompiledStmt> out;
  for (const lang::Stmt& s : body) {
    CompiledStmt c;
    if (s.kind == lang::Stmt::Kind::kAssign) {
      c.is_if = false;
      const auto it = std::find(fold.state_vars.begin(), fold.state_vars.end(),
                                s.target);
      check(it != fold.state_vars.end(), "FoldBody: assign to non-state var");
      c.target = static_cast<int>(it - fold.state_vars.begin());
      c.expr = ScalarExpr::compile(*s.value, combined);
    } else {
      c.is_if = true;
      c.expr = ScalarExpr::compile(*s.condition, combined);
      c.then_body = compile_block(s.then_body, fold, resolver);
      c.else_body = compile_block(s.else_body, fold, resolver);
    }
    out.push_back(std::move(c));
  }
  return out;
}

void FoldBody::execute_interpreted(std::span<double> state,
                                   const ValueSource& input) const {
  exec_block(body_, state, input);
}

void FoldBody::exec_block(const std::vector<CompiledStmt>& block,
                          std::span<double> state, const ValueSource& input) {
  const StatefulSource source(input, {state.data(), state.size()});
  for (const CompiledStmt& c : block) {
    if (!c.is_if) {
      state[static_cast<std::size_t>(c.target)] = c.expr.eval(source);
    } else if (c.expr.eval_bool(source)) {
      exec_block(c.then_body, state, input);
    } else {
      exec_block(c.else_body, state, input);
    }
  }
}

// ------------------------------------------------------- CompiledFoldKernel

CompiledFoldKernel::CompiledFoldKernel(
    const lang::AnalyzedFold& fold,
    const std::map<std::string, const Expr*>& arg_bindings) {
  name_ = fold.def.name;
  dims_ = fold.def.state_vars.size();
  linearity_ = fold.linearity.classification;
  history_ = fold.linearity.history_window;
  reason_ = fold.linearity.reason;

  // Substitute packet-arg bindings into the body, then compile it against
  // the base record schema.
  lang::FoldDef bound;
  bound.name = fold.def.name;
  bound.state_vars = fold.def.state_vars;
  bound.packet_args = fold.def.packet_args;
  std::vector<lang::Stmt> stmts;
  struct Subst {
    static lang::Stmt apply(const lang::Stmt& s,
                            const std::map<std::string, const Expr*>& b) {
      lang::Stmt out;
      out.kind = s.kind;
      out.target = s.target;
      out.line = s.line;
      if (s.value) out.value = substitute_names(*s.value, b);
      if (s.condition) out.condition = substitute_names(*s.condition, b);
      for (const auto& t : s.then_body) out.then_body.push_back(apply(t, b));
      for (const auto& e : s.else_body) out.else_body.push_back(apply(e, b));
      return out;
    }
  };
  for (const auto& s : fold.def.body) {
    bound.body.push_back(Subst::apply(s, arg_bindings));
  }
  body_ = FoldBody::compile(bound, base_record_resolver());

  if (fold.linearity.linear()) {
    const Resolver base = base_record_resolver();
    for (const auto& row : fold.linearity.rows) {
      CompiledRow crow;
      for (const auto& coeff : row.coeffs) {
        if (coeff == nullptr) {
          crow.coeffs.push_back(ScalarExpr::constant(0.0));
        } else {
          const ExprPtr sub = substitute_names(*coeff, arg_bindings);
          crow.coeffs.push_back(ScalarExpr::compile(*sub, base));
        }
      }
      if (row.constant == nullptr) {
        crow.constant = ScalarExpr::constant(0.0);
      } else {
        const ExprPtr sub = substitute_names(*row.constant, arg_bindings);
        crow.constant = ScalarExpr::compile(*sub, base);
      }
      rows_.push_back(std::move(crow));
    }
    if (linearity_ == kv::Linearity::kLinearConstA) {
      const_a_ = kv::SmallMatrix(dims_);
      for (std::size_t r = 0; r < dims_; ++r) {
        for (std::size_t c = 0; c < dims_; ++c) {
          double v = 0.0;
          check(rows_[r].coeffs[c].is_constant(&v),
                "const-A kernel has non-constant coefficient");
          const_a_.at(r, c) = v;
        }
      }
    }
  }
}

void CompiledFoldKernel::update_interpreted(kv::StateVector& state,
                                            const PacketRecord& rec) const {
  const RecordSource source({&rec, 1});
  body_.execute_interpreted(state.span(), source);
}

kv::AffineTransform CompiledFoldKernel::transform(
    std::span<const PacketRecord> window) const {
  check(!rows_.empty(), "transform on non-linear compiled fold");
  check(window.size() == history_ + 1, "transform: wrong window size");
  const RecordSource source(window);
  kv::AffineTransform t{kv::SmallMatrix(dims_), kv::StateVector(dims_)};
  for (std::size_t r = 0; r < dims_; ++r) {
    for (std::size_t c = 0; c < dims_; ++c) {
      t.a.at(r, c) = rows_[r].coeffs[c].eval(source);
    }
    t.b[r] = rows_[r].constant.eval(source);
  }
  return t;
}

kv::SmallMatrix CompiledFoldKernel::constant_a() const {
  check(linearity_ == kv::Linearity::kLinearConstA,
        "constant_a on kernel without fixed A");
  return const_a_;
}

}  // namespace perfq::compiler
