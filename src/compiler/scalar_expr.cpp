#include "compiler/scalar_expr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "lang/affine.hpp"

namespace perfq::compiler {

double RecordSource::value(Slot slot) const {
  const auto depth = static_cast<std::size_t>(slot.depth);
  check(depth < window_.size(), "RecordSource: window shallower than slot depth");
  const PacketRecord& rec = window_[window_.size() - 1 - depth];
  return field_value(rec, static_cast<FieldId>(slot.index));
}

double WireRecordSource::value(Slot slot) const {
  check(slot.depth == 0,
        "WireRecordSource: wire views carry no record history");
  return field_value(*rec_, static_cast<FieldId>(slot.index));
}

double RowSource::value(Slot slot) const {
  check(slot.depth == 0, "RowSource: rows have no history");
  check(static_cast<std::size_t>(slot.index) < row_.size(),
        "RowSource: slot out of range");
  return row_[static_cast<std::size_t>(slot.index)];
}

Resolver base_record_resolver() {
  return [](const std::string& name) -> std::optional<Slot> {
    std::string_view n = name;
    int depth = 0;
    while (n.starts_with(lang::kPrevPrefix)) {
      ++depth;
      n.remove_prefix(lang::kPrevPrefix.size());
    }
    const auto field = field_from_name(n);
    if (!field.has_value()) return std::nullopt;
    return Slot{depth, static_cast<int>(*field)};
  };
}

ScalarExpr ScalarExpr::constant(double value) {
  ScalarExpr e;
  e.nodes_.push_back(Node{Op::kConst, value, {}, -1, -1, -1});
  e.root_ = 0;
  return e;
}

ScalarExpr ScalarExpr::compile(const lang::Expr& expr, const Resolver& resolver) {
  ScalarExpr out;
  out.root_ = out.lower(expr, resolver);
  return out;
}

int ScalarExpr::lower(const lang::Expr& e, const Resolver& resolver) {
  using lang::BinaryOp;
  using lang::ExprKind;
  auto push = [this](Node n) {
    nodes_.push_back(n);
    return static_cast<int>(nodes_.size()) - 1;
  };

  switch (e.kind) {
    case ExprKind::kNumber:
      return push(Node{Op::kConst, e.number, {}, -1, -1, -1});
    case ExprKind::kInfinity:
      return push(Node{Op::kConst, std::numeric_limits<double>::infinity(),
                       {}, -1, -1, -1});
    case ExprKind::kName:
    case ExprKind::kDotted: {
      const std::string name =
          e.kind == ExprKind::kName ? e.name : lang::to_string(e);
      const auto slot = resolver(name);
      if (!slot.has_value()) {
        throw QueryError{"compile", "cannot resolve name '" + name + "'", e.line,
                         e.column};
      }
      max_depth_ = std::max(max_depth_, slot->depth);
      return push(Node{Op::kSlot, 0.0, *slot, -1, -1, -1});
    }
    case ExprKind::kUnary: {
      const int a = lower(*e.lhs, resolver);
      return push(Node{e.is_not ? Op::kNot : Op::kNeg, 0.0, {}, a, -1, -1});
    }
    case ExprKind::kCall: {
      if (e.name == lang::kSelectFn) {
        check(e.args.size() == 3, "__select expects 3 arguments");
        const int a = lower(*e.args[0], resolver);
        const int b = lower(*e.args[1], resolver);
        const int c = lower(*e.args[2], resolver);
        return push(Node{Op::kSelect, 0.0, {}, a, b, c});
      }
      if (e.name == "max" || e.name == "min") {
        check(e.args.size() == 2, "max/min expect 2 arguments");
        const int a = lower(*e.args[0], resolver);
        const int b = lower(*e.args[1], resolver);
        return push(Node{e.name == "max" ? Op::kMax : Op::kMin, 0.0, {}, a, b, -1});
      }
      // A whole call may name a column ("SUM(tout - tin)") downstream.
      const auto slot = resolver(lang::to_string(e));
      if (slot.has_value()) {
        max_depth_ = std::max(max_depth_, slot->depth);
        return push(Node{Op::kSlot, 0.0, *slot, -1, -1, -1});
      }
      throw QueryError{"compile", "cannot lower call '" + lang::to_string(e) + "'",
                       e.line, e.column};
    }
    case ExprKind::kBinary: {
      const int a = lower(*e.lhs, resolver);
      const int b = lower(*e.rhs, resolver);
      Op op = Op::kAdd;
      switch (e.op) {
        case BinaryOp::kAdd: op = Op::kAdd; break;
        case BinaryOp::kSub: op = Op::kSub; break;
        case BinaryOp::kMul: op = Op::kMul; break;
        case BinaryOp::kDiv: op = Op::kDiv; break;
        case BinaryOp::kEq: op = Op::kEq; break;
        case BinaryOp::kNe: op = Op::kNe; break;
        case BinaryOp::kLt: op = Op::kLt; break;
        case BinaryOp::kLe: op = Op::kLe; break;
        case BinaryOp::kGt: op = Op::kGt; break;
        case BinaryOp::kGe: op = Op::kGe; break;
        case BinaryOp::kAnd: op = Op::kAnd; break;
        case BinaryOp::kOr: op = Op::kOr; break;
      }
      return push(Node{op, 0.0, {}, a, b, -1});
    }
  }
  throw InternalError{"ScalarExpr::lower: unknown ExprKind"};
}

double ScalarExpr::eval(const ValueSource& source) const {
  check(root_ >= 0, "ScalarExpr: evaluating empty expression");
  return eval_node(root_, source);
}

double ScalarExpr::eval_op(Op op, double a, double b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kDiv: return a / b;
    case Op::kEq: return a == b ? 1.0 : 0.0;
    case Op::kNe: return a != b ? 1.0 : 0.0;
    case Op::kLt: return a < b ? 1.0 : 0.0;
    case Op::kLe: return a <= b ? 1.0 : 0.0;
    case Op::kGt: return a > b ? 1.0 : 0.0;
    case Op::kGe: return a >= b ? 1.0 : 0.0;
    case Op::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case Op::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case Op::kNot: return a == 0.0 ? 1.0 : 0.0;
    case Op::kNeg: return -a;
    case Op::kMax: return std::max(a, b);
    case Op::kMin: return std::min(a, b);
    case Op::kConst:
    case Op::kSlot:
    case Op::kSelect:
      break;  // not value-combining ops
  }
  throw InternalError{"ScalarExpr::eval_op: unknown op"};
}

double ScalarExpr::eval_node(int index, const ValueSource& source) const {
  const Node& n = nodes_[static_cast<std::size_t>(index)];
  switch (n.op) {
    case Op::kConst: return n.k;
    case Op::kSlot: return source.value(n.slot);
    case Op::kNot:
    case Op::kNeg:
      return eval_op(n.op, eval_node(n.a, source), 0.0);
    case Op::kSelect:
      return eval_node(n.a, source) != 0.0 ? eval_node(n.b, source)
                                           : eval_node(n.c, source);
    default:
      return eval_op(n.op, eval_node(n.a, source), eval_node(n.b, source));
  }
}

bool ScalarExpr::is_constant(double* value) const {
  if (root_ < 0) return false;
  const Node& n = nodes_[static_cast<std::size_t>(root_)];
  if (n.op != Op::kConst) return false;
  if (value != nullptr) *value = n.k;
  return true;
}

}  // namespace perfq::compiler
