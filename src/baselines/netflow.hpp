// NetFlow-style baselines the paper positions against (§1, §5): exact
// unbounded per-flow tables (infeasible in SRAM at line rate) and packet-
// sampled collection (cheap but approximate).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "packet/record.hpp"

namespace perfq::baselines {

/// Per-flow counters tracked by the NetFlow-style baselines.
struct FlowCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Exact, unbounded flow table — the semantics GROUPBY 5tuple wants, with
/// the memory footprint §4 shows is infeasible on-chip (3.8 M flows would
/// need a 486-Mbit / 38%-of-die SRAM).
class ExactFlowTable {
 public:
  void process(const PacketRecord& rec) {
    auto& c = table_[rec.pkt.flow];
    ++c.packets;
    c.bytes += rec.pkt.pkt_len;
  }

  [[nodiscard]] const FlowCounters* lookup(const FiveTuple& flow) const {
    const auto it = table_.find(flow);
    return it == table_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t flows() const { return table_.size(); }

  /// On-chip bits this table would need at `bits_per_pair` per entry.
  [[nodiscard]] double required_mbits(int bits_per_pair = 128) const {
    return static_cast<double>(table_.size()) *
           static_cast<double>(bits_per_pair) / (1024.0 * 1024.0);
  }

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [flow, counters] : table_) fn(flow, counters);
  }

 private:
  std::unordered_map<FiveTuple, FlowCounters> table_;
};

/// 1-in-N packet-sampled NetFlow: what sFlow/NetFlow actually deploy (§1's
/// "sampling" citation). Estimates scale counts by N; small flows are
/// frequently missed entirely.
class SampledFlowTable {
 public:
  SampledFlowTable(std::uint32_t sample_every, std::uint64_t seed)
      : n_(sample_every), rng_(seed) {
    if (n_ == 0) throw ConfigError{"SampledFlowTable: N must be positive"};
  }

  void process(const PacketRecord& rec) {
    ++seen_;
    if (rng_.below(n_) != 0) return;
    auto& c = table_[rec.pkt.flow];
    ++c.packets;
    c.bytes += rec.pkt.pkt_len;
  }

  /// Estimated packet count (sampled count x N); 0 if never sampled.
  [[nodiscard]] double estimate_packets(const FiveTuple& flow) const {
    const auto it = table_.find(flow);
    if (it == table_.end()) return 0.0;
    return static_cast<double>(it->second.packets) * n_;
  }

  [[nodiscard]] std::size_t flows_observed() const { return table_.size(); }
  [[nodiscard]] std::uint64_t packets_seen() const { return seen_; }
  [[nodiscard]] std::uint32_t sampling_rate() const { return n_; }

 private:
  std::uint32_t n_;
  Rng rng_;
  std::uint64_t seen_ = 0;
  std::unordered_map<FiveTuple, FlowCounters> table_;
};

}  // namespace perfq::baselines
