// Count-Min sketch baseline (§5 positions performance queries against
// sketch-based systems: OpenSketch, UnivMon, Counter Braids). Sketches give
// fixed memory but pay an accuracy-memory tradeoff that the paper's
// linear-in-state design sidesteps for a broad query class.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "packet/record.hpp"

namespace perfq::baselines {

class CountMinSketch {
 public:
  /// depth rows x width counters; optional conservative update.
  CountMinSketch(std::size_t depth, std::size_t width, std::uint64_t seed = 7,
                 bool conservative = false)
      : depth_(depth), width_(width), conservative_(conservative),
        counters_(depth * width, 0) {
    if (depth == 0 || width == 0) throw ConfigError{"CountMinSketch: zero size"};
    for (std::size_t d = 0; d < depth; ++d) {
      seeds_.push_back(mix64(seed + d * 0x9E3779B97F4A7C15ULL));
    }
  }

  void add(const FiveTuple& flow, std::uint64_t count = 1) {
    if (!conservative_) {
      for (std::size_t d = 0; d < depth_; ++d) slot(d, flow) += count;
      total_ += count;
      return;
    }
    // Conservative update: raise only the minimal counters.
    std::uint64_t current = estimate(flow);
    for (std::size_t d = 0; d < depth_; ++d) {
      auto& c = slot(d, flow);
      c = std::max(c, current + count);
    }
    total_ += count;
  }

  [[nodiscard]] std::uint64_t estimate(const FiveTuple& flow) const {
    std::uint64_t est = ~std::uint64_t{0};
    for (std::size_t d = 0; d < depth_; ++d) {
      est = std::min(est, slot(d, flow));
    }
    return est;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::size_t width() const { return width_; }

  /// Memory in Mbit at `bits_per_counter`.
  [[nodiscard]] double mbits(int bits_per_counter = 32) const {
    return static_cast<double>(depth_ * width_) *
           static_cast<double>(bits_per_counter) / (1024.0 * 1024.0);
  }

 private:
  [[nodiscard]] std::uint64_t& slot(std::size_t d, const FiveTuple& flow) {
    return counters_[d * width_ + reduce_range(flow.hash(seeds_[d]), width_)];
  }
  [[nodiscard]] const std::uint64_t& slot(std::size_t d,
                                          const FiveTuple& flow) const {
    return counters_[d * width_ + reduce_range(flow.hash(seeds_[d]), width_)];
  }

  std::size_t depth_;
  std::size_t width_;
  bool conservative_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::uint64_t> seeds_;
  std::uint64_t total_ = 0;
};

}  // namespace perfq::baselines
