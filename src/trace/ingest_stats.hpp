// Per-run ingest accounting for resilient feeds.
//
// Live capture and on-disk traces both deliver damaged input as a matter of
// course — snap-length truncation, foreign EtherTypes, files cut off by a
// crashed writer. The ingest layer (wire::try_parse, TraceReader,
// replay_frames, Engine::process_wire_batch) skips such input instead of
// aborting the run, and counts what it skipped here so the caller can tell
// "clean trace" from "mostly garbage" — a run that silently dropped half its
// frames is not a result.
#pragma once

#include <cstdint>
#include <string>

#include "packet/wire.hpp"

namespace perfq::trace {

struct IngestStats {
  std::uint64_t parsed = 0;       ///< records/frames delivered to the engine
  std::uint64_t truncated = 0;    ///< fewer bytes than the headers require
  std::uint64_t unsupported = 0;  ///< non-IPv4 / non-TCP/UDP frames
  std::uint64_t bad_length = 0;   ///< self-inconsistent headers
  std::uint64_t bad_checksum = 0;  ///< IPv4 checksum mismatch (opt-in check)

  /// Frames skipped for any reason.
  [[nodiscard]] std::uint64_t dropped() const {
    return truncated + unsupported + bad_length + bad_checksum;
  }
  /// Frames seen (delivered + skipped).
  [[nodiscard]] std::uint64_t total() const { return parsed + dropped(); }

  [[nodiscard]] std::string to_string() const {
    return "ingest: parsed=" + std::to_string(parsed) +
           " truncated=" + std::to_string(truncated) +
           " unsupported=" + std::to_string(unsupported) +
           " bad_length=" + std::to_string(bad_length) +
           " bad_checksum=" + std::to_string(bad_checksum);
  }

  IngestStats& operator+=(const IngestStats& other) {
    parsed += other.parsed;
    truncated += other.truncated;
    unsupported += other.unsupported;
    bad_length += other.bad_length;
    bad_checksum += other.bad_checksum;
    return *this;
  }
};

/// The one mapping from a parse failure to its stats bucket — every resilient
/// feed (replay_frames, process_wire_batch) classifies through this so the
/// buckets can never drift between ingest paths.
inline void count_parse_error(IngestStats& stats, wire::ParseError err) {
  switch (err) {
    case wire::ParseError::kTruncated: ++stats.truncated; break;
    case wire::ParseError::kUnsupportedEtherType:
    case wire::ParseError::kNotIpv4:
    case wire::ParseError::kUnsupportedProtocol:
      ++stats.unsupported;
      break;
    case wire::ParseError::kBadLength: ++stats.bad_length; break;
    case wire::ParseError::kBadChecksum: ++stats.bad_checksum; break;
  }
}

}  // namespace perfq::trace
