// Seeded fabric-scale workload generator: the netsim-driven counterpart of
// the FlowSessionGenerator trace. Where flow_session.hpp synthesizes a
// single bottleneck queue, this builds a REAL leaf-spine fabric and installs
// a deterministic flow population on it — heavy-tailed (bounded-Pareto) flow
// sizes, a TCP/UDP mix, bursty arrival modulation, plus scheduled incast and
// hotspot episodes that concentrate loss on specific queues. The network's
// own queues/ECMP/retransmissions then produce the record streams, so every
// switch sees exactly its share of the network-wide table T.
//
// Everything is derived from one seed through Rng::split, so a config is a
// complete reproducible experiment: the same config produces the same flows,
// the same drops, and (through the per-node taps) the same federated tables
// on every run. Scales from test-sized (hundreds of flows) to fabric-sized
// (10^6+ concurrent flows) by num_flows alone.
#pragma once

#include <cstdint>
#include <vector>

#include "netsim/network.hpp"

namespace perfq::trace {

/// A synchronized fan-in: `fanin` senders (one per other leaf, round-robin)
/// each fire a burst at one target host at `start` — the classic incast
/// episode that overflows the target's edge queue.
struct FabricIncast {
  std::uint32_t fanin = 8;
  std::uint32_t target_leaf = 0;
  std::uint32_t target_host = 0;
  Nanos start{0};
  std::uint64_t pkts_per_sender = 64;
  std::uint32_t pkt_len = 1500;
};

/// A transient leaf-to-leaf traffic surge: extra flows from hosts under
/// `src_leaf` to hosts under `dst_leaf` during [start, start + duration).
struct FabricHotspot {
  std::uint32_t src_leaf = 0;
  std::uint32_t dst_leaf = 1;
  Nanos start{0};
  Nanos duration{0};
  /// Extra flows as a multiple of the baseline per-leaf-pair flow count.
  double load_factor = 2.0;
};

struct FabricTraceConfig {
  std::uint64_t seed = 1;

  // ---- topology ------------------------------------------------------------
  std::uint32_t leaves = 2;
  std::uint32_t spines = 2;
  std::uint32_t hosts_per_leaf = 4;
  net::LinkConfig edge{10.0, 1000_ns, 64};
  net::LinkConfig fabric_links{40.0, 2000_ns, 64};

  // ---- baseline flow population ---------------------------------------------
  /// Flow arrivals spread over [0, duration); flows may outlive it.
  Nanos duration{2'000'000};
  std::uint64_t num_flows = 200;
  /// Bounded-Pareto flow sizes: shape alpha (heavier tail as alpha -> 1),
  /// mean mean_flow_pkts, hard cap max_flow_pkts (elephants).
  double flow_size_alpha = 1.2;
  double mean_flow_pkts = 12.0;
  std::uint64_t max_flow_pkts = 4096;
  /// Bimodal packet lengths (ACK-sized vs MTU-sized), the classic datacenter
  /// mix; mean_pkt_len steers the large mode.
  std::uint32_t mean_pkt_len = 1000;
  /// Fraction of flows using the window-limited reliable sender (the rest
  /// are open-loop Poisson UDP).
  double tcp_fraction = 0.5;
  /// Open-loop sender packet rate.
  double udp_rate_pps = 200'000.0;

  // ---- bursty arrivals ------------------------------------------------------
  /// Arrival times are modulated by an on/off square wave of period
  /// burst_period: a fraction burst_on of each period carries ALL arrivals
  /// of that period (burst_factor-fold compression). burst_period zero
  /// disables (uniform arrivals).
  Nanos burst_period{0};
  double burst_on = 0.25;

  // ---- episodes -------------------------------------------------------------
  std::vector<FabricIncast> incasts;
  std::vector<FabricHotspot> hotspots;

  void validate() const;
};

/// Build the leaf-spine topology of `config` (routes finalized).
net::LeafSpine build_fabric(net::Network& net, const FabricTraceConfig& config);

/// Install the full deterministic flow population of `config` on a fabric
/// previously built by build_fabric: baseline mix + hotspots + incasts.
/// Returns the number of flows installed.
std::uint64_t install_fabric_flows(net::Network& net, const net::LeafSpine& fabric,
                                   const FabricTraceConfig& config);

}  // namespace perfq::trace
