// Wire-frame replay: feed raw captured frames into any engine, resiliently.
//
// The PQTR format stores fully-decoded PacketRecords; this driver is the
// other ingest path — byte frames straight off a capture (or a test vector),
// decoded through wire::try_parse. Damaged frames (snap-length truncation,
// foreign EtherTypes, self-inconsistent headers) are SKIPPED AND COUNTED,
// never thrown on: one bad frame in a billion-packet capture must not abort
// the run, but the caller gets an exact IngestStats accounting of what was
// dropped. Statically polymorphic over the engine like replay.hpp.
//
// This is the eager (materialize-per-frame) reference path. Engines expose
// process_wire_batch() (runtime/engine_api.hpp) for the fused lazy path that
// folds straight off the frame bytes; results are bit-identical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "packet/record.hpp"
#include "packet/wire.hpp"
#include "packet/wire_view.hpp"
#include "trace/ingest_stats.hpp"

namespace perfq::trace {

/// FrameObservation lives in packet/wire_view.hpp with the wire-view record
/// it feeds; aliased here for the trace-facing callers that predate it.
using perfq::FrameObservation;

/// Decode `frames` through wire::try_parse and feed the survivors into
/// `engine` in `batch`-sized time-ordered batches (frames must arrive
/// time-ordered; skipping preserves order). Returns the ingest accounting;
/// stats.parsed is exactly the number of records the engine received.
/// `verify_checksums` adds the opt-in IPv4 header checksum test (failures
/// count as bad_checksum).
template <typename Engine>
IngestStats replay_frames(Engine& engine,
                          std::span<const FrameObservation> frames,
                          std::size_t batch = 1024,
                          bool verify_checksums = false) {
  if (batch == 0) batch = 1;
  IngestStats stats;
  std::vector<PacketRecord> pending;
  pending.reserve(std::min(batch, frames.size()));
  for (const FrameObservation& frame : frames) {
    wire::ParseError err{};
    const auto parsed = wire::try_parse(frame.bytes, &err, verify_checksums);
    if (!parsed) {
      count_parse_error(stats, err);
      continue;
    }
    // Build the record in place: one header decode, zero record copies.
    PacketRecord& rec = pending.emplace_back();
    rec.pkt = parsed->pkt;
    rec.qid = frame.qid;
    rec.tin = frame.tin;
    rec.tout = frame.tout;
    rec.qsize = frame.qsize;
    ++stats.parsed;
    if (pending.size() >= batch) {
      engine.process_batch(std::span<const PacketRecord>(pending));
      pending.clear();
    }
  }
  if (!pending.empty()) {
    engine.process_batch(std::span<const PacketRecord>(pending));
  }
  // Fold the feed's accounting into the engine's own telemetry (metrics()
  // .ingest) when the engine exposes the surface; test doubles without it
  // still work — the caller always gets the stats back either way.
  if constexpr (requires { engine.record_ingest(stats); }) {
    engine.record_ingest(stats);
  }
  return stats;
}

}  // namespace perfq::trace
