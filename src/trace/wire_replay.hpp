// Wire-frame replay: feed raw captured frames into any engine, resiliently.
//
// The PQTR format stores fully-decoded PacketRecords; this driver is the
// other ingest path — byte frames straight off a capture (or a test vector),
// decoded through wire::try_parse. Damaged frames (snap-length truncation,
// foreign EtherTypes, self-inconsistent headers) are SKIPPED AND COUNTED,
// never thrown on: one bad frame in a billion-packet capture must not abort
// the run, but the caller gets an exact IngestStats accounting of what was
// dropped. Statically polymorphic over the engine like replay.hpp.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "packet/record.hpp"
#include "packet/wire.hpp"
#include "trace/ingest_stats.hpp"

namespace perfq::trace {

/// One captured frame: the wire bytes (possibly truncated by the capture's
/// snap length) plus the telemetry the INT/queue layer observed for it —
/// the fields a raw frame does not encode.
struct FrameObservation {
  std::span<const std::byte> bytes;
  std::uint32_t qid = 0;
  Nanos tin{0};
  Nanos tout{0};
  std::uint32_t qsize = 0;
};

/// Decode `frames` through wire::try_parse and feed the survivors into
/// `engine` in `batch`-sized time-ordered batches (frames must arrive
/// time-ordered; skipping preserves order). Returns the ingest accounting;
/// stats.parsed is exactly the number of records the engine received.
template <typename Engine>
IngestStats replay_frames(Engine& engine,
                          std::span<const FrameObservation> frames,
                          std::size_t batch = 1024) {
  if (batch == 0) batch = 1;
  IngestStats stats;
  std::vector<PacketRecord> pending;
  pending.reserve(std::min(batch, frames.size()));
  for (const FrameObservation& frame : frames) {
    wire::ParseError err{};
    const auto parsed = wire::try_parse(frame.bytes, &err);
    if (!parsed) {
      switch (err) {
        case wire::ParseError::kTruncated: ++stats.truncated; break;
        case wire::ParseError::kUnsupportedEtherType:
        case wire::ParseError::kNotIpv4:
        case wire::ParseError::kUnsupportedProtocol:
          ++stats.unsupported;
          break;
        case wire::ParseError::kBadLength: ++stats.bad_length; break;
      }
      continue;
    }
    PacketRecord rec;
    rec.pkt = parsed->pkt;
    rec.qid = frame.qid;
    rec.tin = frame.tin;
    rec.tout = frame.tout;
    rec.qsize = frame.qsize;
    pending.push_back(rec);
    ++stats.parsed;
    if (pending.size() >= batch) {
      engine.process_batch(std::span<const PacketRecord>(pending));
      pending.clear();
    }
  }
  if (!pending.empty()) {
    engine.process_batch(std::span<const PacketRecord>(pending));
  }
  // Fold the feed's accounting into the engine's own telemetry (metrics()
  // .ingest) when the engine exposes the surface; test doubles without it
  // still work — the caller always gets the stats back either way.
  if constexpr (requires { engine.record_ingest(stats); }) {
    engine.record_ingest(stats);
  }
  return stats;
}

}  // namespace perfq::trace
