// Binary trace file format ("PQTR"): store and replay PacketRecord streams.
//
// Lets examples persist generated workloads and rerun queries over the exact
// same packets, the way the paper replays one CAIDA trace across all cache
// configurations. Fixed-width little-endian records; version-checked header.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "packet/record.hpp"
#include "trace/ingest_stats.hpp"

namespace perfq::trace {

inline constexpr std::uint32_t kTraceMagic = 0x50515452;  // "PQTR"
inline constexpr std::uint32_t kTraceVersion = 1;

class TraceWriter {
 public:
  explicit TraceWriter(const std::filesystem::path& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const PacketRecord& rec);

  /// Finalize the header (record count); called by the destructor too.
  void close();

  [[nodiscard]] std::uint64_t records_written() const { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Streaming reader. A file whose header is damaged (wrong magic/version)
/// is rejected at construction — there is nothing meaningful to salvage.
/// A file cut short of its header's record count (a crashed writer, a
/// partial copy) is a data condition: next() ends the stream early instead
/// of throwing, and stats() reports how many records the header promised
/// but the bytes couldn't deliver.
class TraceReader {
 public:
  explicit TraceReader(const std::filesystem::path& path);

  [[nodiscard]] std::optional<PacketRecord> next();
  /// Record count the header promises (the file may deliver fewer).
  [[nodiscard]] std::uint64_t record_count() const { return total_; }
  [[nodiscard]] std::uint64_t records_read() const { return read_; }
  /// Ingest accounting: parsed == records_read(); truncated == records the
  /// header promised but the file couldn't deliver. Complete only after
  /// next() has returned nullopt.
  [[nodiscard]] const IngestStats& stats() const { return stats_; }

 private:
  std::ifstream in_;
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
  IngestStats stats_;
  bool exhausted_ = false;
};

/// Round-trip helpers.
void write_trace(const std::filesystem::path& path,
                 const std::vector<PacketRecord>& records);
[[nodiscard]] std::vector<PacketRecord> read_trace(const std::filesystem::path& path);

}  // namespace perfq::trace
