// Workload model configuration for synthetic packet traces.
//
// The paper evaluates on a 5-minute CAIDA 2016 trace: 157 M packets,
// ~3.8 M unique 5-tuples, 10 Gb/s (§4). We cannot redistribute CAIDA data,
// so src/trace synthesizes an Internet-mix trace with the properties that
// drive cache behaviour: heavy-tailed flow sizes (mean ≈ 41 pkts/flow like
// the CAIDA numbers), Poisson flow arrivals (churn creates compulsory
// misses), and within-flow packet pacing (temporal locality determines LRU
// hit rates). The `scale` knob shrinks packets, flows, AND cache sizes by
// the same factor so the eviction-rate *shape* (Fig. 5) is preserved while
// benches stay laptop-sized; scale = 1.0 reproduces paper-scale counts.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/time.hpp"

namespace perfq::trace {

struct TraceConfig {
  std::uint64_t seed = 1;

  /// Trace length in simulated time.
  Nanos duration = 300_s;

  /// Unique flows (5-tuples) arriving over the whole trace.
  std::uint64_t num_flows = 3'800'000;

  /// Mean packets per flow (CAIDA 2016-04: 157 M / 3.8 M ≈ 41).
  double mean_flow_pkts = 41.0;

  /// Flow-size distribution: bounded Pareto shape (heavy tail; ~1.1-1.3 for
  /// Internet traffic) with the mean above and this cap.
  double flow_size_alpha = 1.2;
  std::uint64_t max_flow_pkts = 200'000;

  /// Flow duration is lognormal(mu derived from these, sigma): most flows
  /// live O(seconds), a fat tail persists for minutes — matching the mix of
  /// short transactions and long-lived connections in Internet traces, which
  /// is what makes evicted keys *reappear* (the driver of Fig. 6's invalid
  /// keys and of capacity-miss churn in Fig. 5).
  Nanos median_flow_duration = 4_s;
  double flow_duration_sigma = 1.8;

  /// A slice of flows is *sparse*: few packets spread over minutes (keep-
  /// alives, periodic telemetry, slow scans). Within a short query window
  /// such a key appears once (valid); over the full trace it reappears after
  /// every eviction (invalid) — this is what gives Fig. 6 its accuracy gain
  /// at shorter intervals.
  double sparse_flow_fraction = 0.15;
  Nanos sparse_min_duration = 60_s;

  /// Fraction of flows that are TCP (rest UDP).
  double tcp_fraction = 0.9;

  /// Mean wire packet size in bytes (Internet mix ≈ 700; the paper's
  /// datacenter workload model uses 850 for rate conversion).
  std::uint32_t mean_pkt_bytes = 700;

  /// Per-packet probability of sequence-number anomalies, exercising the
  /// TCP out-of-seq / non-monotonic queries (Fig. 2).
  double reorder_prob = 0.01;
  double retx_prob = 0.005;

  /// Per-packet drop probability at the synthetic bottleneck queue (tout
  /// becomes infinity, feeding the loss-rate queries). The netsim module
  /// produces *real* congestive drops; this keeps trace-driven runs honest.
  double drop_prob = 0.002;

  /// Returns a copy scaled by `s` in {packets, flows}: duration is kept so
  /// time-windowed experiments (Fig. 6) remain meaningful.
  [[nodiscard]] TraceConfig scaled(double s) const {
    if (s <= 0.0 || s > 1.0) throw ConfigError{"TraceConfig: scale must be in (0,1]"};
    TraceConfig c = *this;
    c.num_flows = static_cast<std::uint64_t>(static_cast<double>(num_flows) * s);
    if (c.num_flows == 0) c.num_flows = 1;
    return c;
  }

  [[nodiscard]] double expected_packets() const {
    return static_cast<double>(num_flows) * mean_flow_pkts;
  }

  void validate() const {
    if (num_flows == 0) throw ConfigError{"TraceConfig: num_flows == 0"};
    if (duration <= 0_ns) throw ConfigError{"TraceConfig: non-positive duration"};
    if (mean_flow_pkts < 1.0) throw ConfigError{"TraceConfig: mean_flow_pkts < 1"};
    if (flow_size_alpha <= 1.0) {
      throw ConfigError{"TraceConfig: flow_size_alpha must exceed 1 (finite mean)"};
    }
    if (tcp_fraction < 0.0 || tcp_fraction > 1.0) {
      throw ConfigError{"TraceConfig: tcp_fraction outside [0,1]"};
    }
  }

  /// Preset mirroring the paper's CAIDA trace at full scale.
  [[nodiscard]] static TraceConfig caida_like() { return TraceConfig{}; }

  /// Preset mirroring the Benson et al. datacenter mix used for the rate
  /// conversion in §4 (850-byte average packets).
  [[nodiscard]] static TraceConfig datacenter_like() {
    TraceConfig c;
    c.mean_pkt_bytes = 850;
    c.median_flow_duration = 500_ms;
    c.flow_duration_sigma = 1.2;
    return c;
  }
};

}  // namespace perfq::trace
