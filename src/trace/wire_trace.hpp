// Binary frame-trace files ("PQWF"): store and replay raw wire frames.
//
// PQTR (trace_io.hpp) persists fully-decoded PacketRecords; PQWF is its
// wire-level sibling — each entry is the captured frame bytes plus the
// telemetry sidecar (qid/tin/tout/qsize) a raw frame cannot encode. The
// reader memory-maps the file so replay hands the engine FrameObservation
// spans that point straight into the page cache: capture bytes → fold with
// zero copies on the lazy process_wire_batch path.
//
// Layout (little-endian, fixed width):
//   file header   {u32 magic "PQWF", u32 version, u64 frame_count}
//   per frame     {u32 wire_len, u32 qid, u32 qsize, u32 reserved,
//                  i64 tin_ns, i64 tout_ns} + wire_len frame bytes
// frame_count is patched on close, like PQTR.
//
// The same reader fronts pcap-lite files (microsecond 0xa1b2c3d4 and
// nanosecond 0xa1b23c4d little-endian magics): pcap carries no queue
// telemetry, so qid/qsize read 0 and tin = tout = the capture timestamp.
//
// Failure contract mirrors TraceReader: a damaged file header (bad
// magic/version, byte-swapped pcap) is rejected at construction; a torn
// tail — a crashed writer or partial copy cutting a frame header or body
// short — is a data condition: next() ends the stream early and stats()
// counts the frames the file promised but could not deliver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "packet/wire_view.hpp"
#include "trace/ingest_stats.hpp"

namespace perfq::trace {

inline constexpr std::uint32_t kWireTraceMagic = 0x50515746;  // "PQWF"
inline constexpr std::uint32_t kWireTraceVersion = 1;
inline constexpr std::uint32_t kPcapMagicMicros = 0xa1b2c3d4;
inline constexpr std::uint32_t kPcapMagicNanos = 0xa1b23c4d;

class WireTraceWriter {
 public:
  explicit WireTraceWriter(const std::filesystem::path& path);
  ~WireTraceWriter();
  WireTraceWriter(const WireTraceWriter&) = delete;
  WireTraceWriter& operator=(const WireTraceWriter&) = delete;

  void write(const FrameObservation& frame);

  /// Finalize the header (frame count); called by the destructor too.
  void close();

  [[nodiscard]] std::uint64_t frames_written() const { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

/// Memory-mapped streaming reader for PQWF and pcap-lite files.
///
/// next() yields FrameObservations whose bytes span aliases the mapping:
/// valid until the reader is destroyed, so drive bursts through the engine
/// while the reader is live (see replay_wire_trace below). Falls back to a
/// heap read where mmap is unavailable or fails — same surface either way.
class WireTraceReader {
 public:
  explicit WireTraceReader(const std::filesystem::path& path);
  ~WireTraceReader();
  WireTraceReader(const WireTraceReader&) = delete;
  WireTraceReader& operator=(const WireTraceReader&) = delete;

  [[nodiscard]] std::optional<FrameObservation> next();

  /// Frame count the header promises (0 for pcap: the format does not say).
  [[nodiscard]] std::uint64_t frame_count() const { return total_; }
  [[nodiscard]] std::uint64_t frames_read() const { return read_; }
  /// File-level accounting: truncated == frames the file promised (PQWF) or
  /// started (pcap) but cut short. Complete once next() returns nullopt.
  /// Frame-content damage is NOT judged here — that is the engine's job.
  [[nodiscard]] const IngestStats& stats() const { return stats_; }
  [[nodiscard]] bool is_pcap() const { return pcap_; }
  /// True when the file is mmap'd (false on the heap-read fallback).
  [[nodiscard]] bool mapped() const { return map_ != nullptr; }

 private:
  [[nodiscard]] const std::byte* data() const;
  void end_torn();  ///< count the undeliverable tail and end the stream

  void* map_ = nullptr;          ///< mmap'd region, or nullptr
  std::size_t size_ = 0;         ///< file size in bytes
  std::vector<std::byte> heap_;  ///< fallback storage when not mapped
  std::size_t pos_ = 0;          ///< read cursor past the file header
  std::uint64_t total_ = 0;
  std::uint64_t read_ = 0;
  IngestStats stats_;
  bool pcap_ = false;
  bool pcap_nanos_ = false;
  bool exhausted_ = false;
};

/// Round-trip helper (the read direction is streaming-only by design: the
/// observations alias the reader's mapping, so there is no owning vector to
/// return).
void write_wire_trace(const std::filesystem::path& path,
                      std::span<const FrameObservation> frames);

/// Stream a PQWF/pcap file into `engine` in `burst`-sized bursts through
/// the fused process_wire_batch path. Returns the combined accounting:
/// file-level truncation from the reader plus the engine's per-frame
/// skip-and-count verdicts. Statically polymorphic like replay_frames.
template <typename Engine>
IngestStats replay_wire_trace(Engine& engine,
                              const std::filesystem::path& path,
                              std::size_t burst = 1024) {
  if (burst == 0) burst = 1;
  WireTraceReader reader(path);
  std::vector<FrameObservation> pending;
  pending.reserve(burst);
  IngestStats stats;
  while (auto frame = reader.next()) {
    pending.push_back(*frame);
    if (pending.size() >= burst) {
      stats += engine.process_wire_batch(
          std::span<const FrameObservation>(pending));
      pending.clear();
    }
  }
  if (!pending.empty()) {
    stats += engine.process_wire_batch(
        std::span<const FrameObservation>(pending));
  }
  // The engine already judged every delivered frame (parsed or skipped);
  // the reader only adds what the file itself failed to deliver.
  stats.truncated += reader.stats().truncated;
  return stats;
}

}  // namespace perfq::trace
