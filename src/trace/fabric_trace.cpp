#include "trace/fabric_trace.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "packet/fivetuple.hpp"

namespace perfq::trace {

void FabricTraceConfig::validate() const {
  check(leaves >= 1 && spines >= 1 && hosts_per_leaf >= 1,
        "fabric trace: topology dimensions must be >= 1");
  check(duration > Nanos{0}, "fabric trace: duration must be positive");
  check(flow_size_alpha > 1.0,
        "fabric trace: flow_size_alpha must exceed 1 (finite mean)");
  check(mean_flow_pkts >= 1.0, "fabric trace: mean_flow_pkts must be >= 1");
  check(max_flow_pkts >= 1, "fabric trace: max_flow_pkts must be >= 1");
  check(tcp_fraction >= 0.0 && tcp_fraction <= 1.0,
        "fabric trace: tcp_fraction must be in [0, 1]");
  check(udp_rate_pps > 0.0, "fabric trace: udp_rate_pps must be positive");
  check(burst_period == Nanos{0} || (burst_on > 0.0 && burst_on <= 1.0),
        "fabric trace: burst_on must be in (0, 1]");
  for (const FabricIncast& inc : incasts) {
    check(inc.fanin >= 1, "fabric trace: incast fanin must be >= 1");
    check(inc.target_leaf < leaves && inc.target_host < hosts_per_leaf,
          "fabric trace: incast target outside the topology");
    check(leaves >= 2, "fabric trace: incast needs at least two leaves");
  }
  for (const FabricHotspot& hs : hotspots) {
    check(hs.src_leaf < leaves && hs.dst_leaf < leaves,
          "fabric trace: hotspot leaf outside the topology");
    check(hs.src_leaf != hs.dst_leaf,
          "fabric trace: hotspot must cross leaves");
    check(hs.duration > Nanos{0}, "fabric trace: hotspot duration must be positive");
    check(hs.load_factor > 0.0, "fabric trace: hotspot load_factor must be positive");
  }
}

net::LeafSpine build_fabric(net::Network& net, const FabricTraceConfig& config) {
  config.validate();
  return net::build_leaf_spine(net, config.leaves, config.spines,
                               config.hosts_per_leaf, config.edge,
                               config.fabric_links);
}

namespace {

/// Bounded Pareto flow size with mean ~= mean_pkts (unbounded mean; the cap
/// trims elephants): xm chosen so E[Pareto(xm, alpha)] = mean_pkts.
std::uint64_t draw_flow_pkts(Rng& rng, const FabricTraceConfig& c) {
  const double xm = c.mean_flow_pkts * (c.flow_size_alpha - 1.0) / c.flow_size_alpha;
  const double drawn = rng.pareto(std::max(1.0, xm), c.flow_size_alpha);
  const auto pkts = static_cast<std::uint64_t>(std::llround(drawn));
  return std::clamp<std::uint64_t>(pkts, 1, c.max_flow_pkts);
}

/// Bimodal packet length: control-sized with probability 0.3, else uniform
/// around mean_pkt_len, clamped to a sane MTU range.
std::uint32_t draw_pkt_len(Rng& rng, const FabricTraceConfig& c) {
  if (rng.chance(0.3)) return 64;
  const std::uint32_t lo = std::max<std::uint32_t>(256, c.mean_pkt_len / 2);
  const std::uint32_t hi =
      std::clamp<std::uint32_t>(c.mean_pkt_len + c.mean_pkt_len / 2, lo, 1500);
  return static_cast<std::uint32_t>(rng.between(lo, hi));
}

/// Uniform arrival over [0, duration), optionally compressed into the first
/// burst_on fraction of each burst_period (on/off arrival modulation: the
/// same arrival mass lands in 1/burst_on the time).
Nanos draw_arrival(Rng& rng, const FabricTraceConfig& c) {
  const double span = static_cast<double>(c.duration.count());
  double t = rng.uniform() * span;
  if (c.burst_period > Nanos{0}) {
    const double period = static_cast<double>(c.burst_period.count());
    const double phase = std::fmod(t, period);
    t = (t - phase) + phase * c.burst_on;
  }
  return Nanos{static_cast<std::int64_t>(t)};
}

struct HostPicker {
  const FabricTraceConfig* config;

  [[nodiscard]] std::uint32_t ip(std::uint32_t leaf, std::uint32_t host) const {
    return net::leaf_spine_ip(leaf, host);
  }
  /// Uniform host under one leaf.
  [[nodiscard]] std::uint32_t under(Rng& rng, std::uint32_t leaf) const {
    return ip(leaf, static_cast<std::uint32_t>(rng.below(config->hosts_per_leaf)));
  }
  /// Uniform host anywhere.
  [[nodiscard]] std::uint32_t any(Rng& rng) const {
    return under(rng, static_cast<std::uint32_t>(rng.below(config->leaves)));
  }
};

struct FlowInstaller {
  net::Network* net;
  const FabricTraceConfig* config;
  std::uint64_t installed = 0;

  void install(Rng& rng, std::uint32_t src_ip, std::uint32_t dst_ip,
               Nanos start, std::uint64_t pkts) {
    FiveTuple flow;
    flow.src_ip = src_ip;
    flow.dst_ip = dst_ip;
    flow.src_port = static_cast<std::uint16_t>(1024 + rng.below(50'000));
    flow.dst_port = static_cast<std::uint16_t>(1024 + rng.below(50'000));
    const bool tcp = rng.chance(config->tcp_fraction);
    const std::uint32_t len = draw_pkt_len(rng, *config);
    if (tcp) {
      flow.proto = static_cast<std::uint8_t>(IpProto::kTcp);
      const auto window = static_cast<std::uint32_t>(rng.between(8, 32));
      net->add_window_flow(flow, start, pkts, len, window, Nanos{5'000'000});
    } else {
      flow.proto = static_cast<std::uint8_t>(IpProto::kUdp);
      net->add_udp_flow(flow, start, pkts, len, config->udp_rate_pps,
                        /*poisson=*/true);
    }
    ++installed;
  }
};

}  // namespace

std::uint64_t install_fabric_flows(net::Network& net,
                                   const net::LeafSpine& fabric,
                                   const FabricTraceConfig& config) {
  config.validate();
  (void)fabric;  // topology must match config; addressing is leaf_spine_ip
  const Rng root{config.seed};
  // Independent streams per concern: adding an episode never perturbs the
  // baseline population's draws (split-stream reproducibility).
  Rng baseline = root.split(1);
  Rng hotspot_rng = root.split(2);
  Rng incast_rng = root.split(3);

  const HostPicker hosts{&config};
  FlowInstaller installer{&net, &config};

  // Baseline heavy-tailed population over random host pairs.
  for (std::uint64_t f = 0; f < config.num_flows; ++f) {
    const std::uint32_t src = hosts.any(baseline);
    std::uint32_t dst = hosts.any(baseline);
    while (dst == src) dst = hosts.any(baseline);
    installer.install(baseline, src, dst, draw_arrival(baseline, config),
                      draw_flow_pkts(baseline, config));
  }

  // Hotspot episodes: extra cross-leaf flows during their windows.
  const std::uint64_t leaf_pairs =
      std::max<std::uint64_t>(1, std::uint64_t{config.leaves} * config.leaves);
  for (const FabricHotspot& hs : config.hotspots) {
    const auto extra = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(
               hs.load_factor * static_cast<double>(config.num_flows) /
               static_cast<double>(leaf_pairs))));
    for (std::uint64_t f = 0; f < extra; ++f) {
      const std::uint32_t src = hosts.under(hotspot_rng, hs.src_leaf);
      const std::uint32_t dst = hosts.under(hotspot_rng, hs.dst_leaf);
      const Nanos start =
          hs.start + Nanos{static_cast<std::int64_t>(
                         hotspot_rng.uniform() *
                         static_cast<double>(hs.duration.count()))};
      installer.install(hotspot_rng, src, dst, start,
                        draw_flow_pkts(hotspot_rng, config));
    }
  }

  // Incast episodes: synchronized open-loop bursts into one target host.
  // Senders rotate over the OTHER leaves so the fan-in converges on the
  // target's edge queue through the fabric.
  for (const FabricIncast& inc : config.incasts) {
    const std::uint32_t target = hosts.ip(inc.target_leaf, inc.target_host);
    std::uint32_t next_leaf = 0;
    for (std::uint32_t s = 0; s < inc.fanin; ++s) {
      if (next_leaf == inc.target_leaf) next_leaf = (next_leaf + 1) % config.leaves;
      const std::uint32_t sender = hosts.under(incast_rng, next_leaf);
      next_leaf = (next_leaf + 1) % config.leaves;
      FiveTuple flow;
      flow.src_ip = sender;
      flow.dst_ip = target;
      flow.src_port = static_cast<std::uint16_t>(1024 + incast_rng.below(50'000));
      flow.dst_port = 4791;  // one service port: the fan-in converges
      flow.proto = static_cast<std::uint8_t>(IpProto::kUdp);
      // Back-to-back burst (non-Poisson, near line rate) with sub-us jitter
      // so senders collide at the target queue instead of serializing.
      const Nanos start = inc.start + Nanos{static_cast<std::int64_t>(
                                          incast_rng.below(1000))};
      net.add_udp_flow(flow, start, inc.pkts_per_sender, inc.pkt_len,
                       2'000'000.0, /*poisson=*/false);
      ++installer.installed;
    }
  }

  return installer.installed;
}

}  // namespace perfq::trace
