// Flow-session trace generator: the CAIDA-trace stand-in.
//
// Flows arrive by a Poisson process over the trace window; each flow draws a
// heavy-tailed packet count and a lognormal lifetime, then paces its packets
// across that lifetime with exponential jitter. The interleaving of a large,
// churning flow population is what stresses the cache: popular flows stay
// resident, the long tail of mice causes initializations and evictions —
// the dynamics behind Fig. 5.
//
// Records are emitted in nondecreasing timestamp order via an event heap.
// Telemetry fields (qid/tin/tout/qsize) are filled with a single synthetic
// bottleneck-queue model so that latency/queue queries have meaningful input
// even on trace-driven (non-netsim) runs.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "packet/record.hpp"
#include "trace/config.hpp"

namespace perfq::trace {

/// Pull-based generator; next() returns records until the trace ends.
class FlowSessionGenerator {
 public:
  explicit FlowSessionGenerator(const TraceConfig& config);

  /// Next record in timestamp order, or nullopt at end of trace.
  [[nodiscard]] std::optional<PacketRecord> next();

  [[nodiscard]] std::uint64_t packets_emitted() const { return packets_emitted_; }
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] const TraceConfig& config() const { return config_; }

 private:
  struct ActiveFlow {
    FiveTuple tuple;
    std::uint64_t remaining_pkts = 0;
    Nanos gap;               ///< mean inter-packet spacing
    std::uint32_t next_seq = 0;
    std::uint32_t prev_seq_adv = 0;  ///< last seq advance (for retx emulation)
    std::uint32_t flow_label = 0;    ///< feeds pkt_path
  };

  struct Event {
    Nanos when;
    std::uint32_t flow_slot;  ///< index into active_, or kArrival
    friend bool operator>(const Event& a, const Event& b) { return a.when > b.when; }
  };
  static constexpr std::uint32_t kArrival = ~std::uint32_t{0};

  void schedule_next_arrival(Nanos now);
  void start_flow(Nanos now);
  [[nodiscard]] PacketRecord emit_packet(ActiveFlow& flow, Nanos now);
  [[nodiscard]] FiveTuple random_tuple(bool tcp);
  [[nodiscard]] std::uint64_t draw_flow_size();
  [[nodiscard]] std::uint32_t draw_pkt_len(const ActiveFlow& flow) const;

  TraceConfig config_;
  mutable Rng rng_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<ActiveFlow> active_;
  std::vector<std::uint32_t> free_slots_;
  double arrival_rate_per_ns_;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t uniq_counter_ = 0;
  // Synthetic bottleneck queue state for telemetry fields.
  Nanos queue_busy_until_;
  std::uint32_t queue_depth_pkts_ = 0;
  Nanos last_emit_time_;
};

/// Convenience: drain the generator into a vector (tests, small traces).
[[nodiscard]] std::vector<PacketRecord> generate_all(const TraceConfig& config,
                                                     std::uint64_t max_packets = 0);

}  // namespace perfq::trace
