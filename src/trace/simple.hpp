// Small deterministic record builders for tests and microbenchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "packet/record.hpp"

namespace perfq::trace {

/// Builder for hand-constructed records in tests.
class RecordBuilder {
 public:
  RecordBuilder& flow(const FiveTuple& t) {
    rec_.pkt.flow = t;
    return *this;
  }
  RecordBuilder& flow_index(std::uint32_t i) {
    rec_.pkt.flow = FiveTuple{0x0A000000u + i, 0x0B000000u + i,
                              static_cast<std::uint16_t>(1000 + (i % 60000)), 80,
                              static_cast<std::uint8_t>(IpProto::kTcp)};
    return *this;
  }
  RecordBuilder& len(std::uint32_t wire, std::uint32_t payload) {
    rec_.pkt.pkt_len = wire;
    rec_.pkt.payload_len = payload;
    return *this;
  }
  RecordBuilder& seq(std::uint32_t s) {
    rec_.pkt.tcp_seq = s;
    return *this;
  }
  RecordBuilder& times(Nanos tin, Nanos tout) {
    rec_.tin = tin;
    rec_.tout = tout;
    return *this;
  }
  RecordBuilder& dropped_at(Nanos tin) {
    rec_.tin = tin;
    rec_.tout = Nanos::infinity();
    return *this;
  }
  RecordBuilder& queue(std::uint32_t qid, std::uint32_t qsize) {
    rec_.qid = qid;
    rec_.qsize = qsize;
    return *this;
  }
  RecordBuilder& uniq(std::uint64_t u) {
    rec_.pkt.pkt_uniq = u;
    return *this;
  }
  [[nodiscard]] PacketRecord build() const { return rec_; }

 private:
  PacketRecord rec_ = [] {
    PacketRecord r;
    r.pkt.pkt_len = 1000;
    r.pkt.payload_len = 946;
    r.tin = Nanos{0};
    r.tout = Nanos{1000};
    return r;
  }();
};

/// `count` records round-robin across `flows` distinct 5-tuples, 1 us apart.
[[nodiscard]] std::vector<PacketRecord> round_robin_records(std::uint64_t count,
                                                            std::uint32_t flows);

/// `count` records with flows drawn Zipf(s) from `flows` tuples (stationary
/// popularity; no churn). Useful for cache unit tests with known skew.
[[nodiscard]] std::vector<PacketRecord> zipf_records(std::uint64_t count,
                                                     std::uint32_t flows, double s,
                                                     std::uint64_t seed);

}  // namespace perfq::trace
