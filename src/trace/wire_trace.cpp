#include "trace/wire_trace.hpp"

#include <cstring>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PERFQ_WIRE_TRACE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace perfq::trace {
namespace {

// On-disk layouts (little-endian, packed by hand to stay portable). Frame
// bodies have arbitrary lengths, so headers after the first frame land at
// unaligned offsets — always memcpy out of the mapping, never cast.
struct FileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t count;
};
static_assert(sizeof(FileHeader) == 16, "wire trace header layout drifted");

struct FrameHeader {
  std::uint32_t wire_len;
  std::uint32_t qid;
  std::uint32_t qsize;
  std::uint32_t reserved;
  std::int64_t tin_ns;
  std::int64_t tout_ns;
};
static_assert(sizeof(FrameHeader) == 32, "wire frame header layout drifted");

// pcap-lite: the classic libpcap container, little-endian host order only.
struct PcapFileHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t network;
};
static_assert(sizeof(PcapFileHeader) == 24, "pcap header layout drifted");

struct PcapRecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_frac;  ///< micro- or nanoseconds, per the file magic
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};
static_assert(sizeof(PcapRecordHeader) == 16, "pcap record layout drifted");

constexpr std::uint32_t byte_swap(std::uint32_t v) {
  return (v >> 24) | ((v >> 8) & 0x0000ff00u) | ((v << 8) & 0x00ff0000u) |
         (v << 24);
}

}  // namespace

WireTraceWriter::WireTraceWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw ConfigError{"WireTraceWriter: cannot open " + path.string()};
  }
  const FileHeader hdr{kWireTraceMagic, kWireTraceVersion, 0};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
}

WireTraceWriter::~WireTraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; a failed close surfaces when close() is
    // called explicitly.
  }
}

void WireTraceWriter::write(const FrameObservation& frame) {
  check(!closed_, "WireTraceWriter: write after close");
  FrameHeader hdr{};
  hdr.wire_len = static_cast<std::uint32_t>(frame.bytes.size());
  hdr.qid = frame.qid;
  hdr.qsize = frame.qsize;
  hdr.tin_ns = frame.tin.count();
  hdr.tout_ns = frame.tout.count();
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out_.write(reinterpret_cast<const char*>(frame.bytes.data()),
             static_cast<std::streamsize>(frame.bytes.size()));
  ++count_;
}

void WireTraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(0);
  const FileHeader hdr{kWireTraceMagic, kWireTraceVersion, count_};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out_.flush();
  if (!out_) throw ConfigError{"WireTraceWriter: write failure on close"};
}

WireTraceReader::WireTraceReader(const std::filesystem::path& path) {
#ifdef PERFQ_WIRE_TRACE_MMAP
  // Map read-only and let the page cache feed the bursts; MAP_PRIVATE so a
  // concurrently-truncated file cannot alias our view with someone's writes.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* m = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
      if (m != MAP_FAILED) {
        map_ = m;
        size_ = static_cast<std::size_t>(st.st_size);
      }
    }
    ::close(fd);
  }
#endif
  if (map_ == nullptr) {
    // Heap fallback: empty files, exotic filesystems, non-POSIX builds.
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      throw ConfigError{"WireTraceReader: cannot open " + path.string()};
    }
    const std::streamsize bytes = in.tellg();
    heap_.resize(static_cast<std::size_t>(bytes));
    in.seekg(0);
    in.read(reinterpret_cast<char*>(heap_.data()), bytes);
    if (!in && bytes > 0) {
      throw ConfigError{"WireTraceReader: cannot read " + path.string()};
    }
    size_ = heap_.size();
  }

  // The header decides the dialect; damage here is rejected outright —
  // unlike a torn tail, there is nothing meaningful to salvage.
  std::uint32_t magic = 0;
  if (size_ >= sizeof(magic)) std::memcpy(&magic, data(), sizeof(magic));
  if (magic == kWireTraceMagic) {
    FileHeader hdr{};
    if (size_ < sizeof(hdr)) {
      throw ConfigError{"WireTraceReader: truncated PQWF header in " +
                        path.string()};
    }
    std::memcpy(&hdr, data(), sizeof(hdr));
    if (hdr.version != kWireTraceVersion) {
      throw ConfigError{"WireTraceReader: unsupported PQWF version " +
                        std::to_string(hdr.version)};
    }
    total_ = hdr.count;
    pos_ = sizeof(hdr);
  } else if (magic == kPcapMagicMicros || magic == kPcapMagicNanos) {
    if (size_ < sizeof(PcapFileHeader)) {
      throw ConfigError{"WireTraceReader: truncated pcap header in " +
                        path.string()};
    }
    pcap_ = true;
    pcap_nanos_ = magic == kPcapMagicNanos;
    pos_ = sizeof(PcapFileHeader);
  } else if (byte_swap(magic) == kPcapMagicMicros ||
             byte_swap(magic) == kPcapMagicNanos) {
    throw ConfigError{
        "WireTraceReader: byte-swapped pcap unsupported: " + path.string()};
  } else {
    throw ConfigError{"WireTraceReader: not a PQWF or pcap trace: " +
                      path.string()};
  }
}

WireTraceReader::~WireTraceReader() {
#ifdef PERFQ_WIRE_TRACE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

const std::byte* WireTraceReader::data() const {
  return map_ != nullptr ? static_cast<const std::byte*>(map_) : heap_.data();
}

void WireTraceReader::end_torn() {
  // A frame started (or was promised) but the bytes ran out: crashed
  // writer, partial copy. Data condition — count and end, never throw.
  if (pcap_) {
    ++stats_.truncated;  // pcap has no promised count; charge the torn one
  } else {
    stats_.truncated += total_ - read_;
  }
  exhausted_ = true;
}

std::optional<FrameObservation> WireTraceReader::next() {
  if (exhausted_) return std::nullopt;
  if (!pcap_ && read_ >= total_) return std::nullopt;
  if (pcap_ && pos_ >= size_) {  // clean pcap EOF: ran exactly dry
    exhausted_ = true;
    return std::nullopt;
  }

  std::uint32_t wire_len = 0;
  FrameObservation out;
  if (pcap_) {
    PcapRecordHeader hdr{};
    if (size_ - pos_ < sizeof(hdr)) {
      end_torn();
      return std::nullopt;
    }
    std::memcpy(&hdr, data() + pos_, sizeof(hdr));
    pos_ += sizeof(hdr);
    wire_len = hdr.incl_len;
    const std::int64_t frac_ns =
        pcap_nanos_ ? static_cast<std::int64_t>(hdr.ts_frac)
                    : static_cast<std::int64_t>(hdr.ts_frac) * 1000;
    // pcap carries no queue telemetry: tin = tout = capture time, so the
    // observation reads as "forwarded instantly" downstream.
    out.tin = Nanos{static_cast<std::int64_t>(hdr.ts_sec) * 1'000'000'000 +
                    frac_ns};
    out.tout = out.tin;
  } else {
    FrameHeader hdr{};
    if (size_ - pos_ < sizeof(hdr)) {
      end_torn();
      return std::nullopt;
    }
    std::memcpy(&hdr, data() + pos_, sizeof(hdr));
    pos_ += sizeof(hdr);
    wire_len = hdr.wire_len;
    out.qid = hdr.qid;
    out.qsize = hdr.qsize;
    out.tin = Nanos{hdr.tin_ns};
    out.tout = Nanos{hdr.tout_ns};
  }

  if (size_ - pos_ < wire_len) {
    end_torn();
    return std::nullopt;
  }
  out.bytes = std::span<const std::byte>(data() + pos_, wire_len);
  pos_ += wire_len;
  ++read_;
  ++stats_.parsed;
  return out;
}

void write_wire_trace(const std::filesystem::path& path,
                      std::span<const FrameObservation> frames) {
  WireTraceWriter writer(path);
  for (const FrameObservation& frame : frames) writer.write(frame);
  writer.close();
}

}  // namespace perfq::trace
