#include "trace/trace_io.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace perfq::trace {
namespace {

// On-disk record layout (little-endian, packed by hand to stay portable).
struct DiskRecord {
  std::uint32_t src_ip;
  std::uint32_t dst_ip;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint8_t proto;
  std::uint8_t tcp_flags;
  std::uint8_t ip_ttl;
  std::uint8_t pad = 0;
  std::uint32_t pkt_len;
  std::uint32_t payload_len;
  std::uint32_t tcp_seq;
  std::uint32_t pkt_path;
  std::uint64_t pkt_uniq;
  std::uint32_t qid;
  std::uint32_t qsize;
  std::int64_t tin_ns;
  std::int64_t tout_ns;
};
static_assert(sizeof(DiskRecord) == 64, "trace record layout drifted");

DiskRecord to_disk(const PacketRecord& rec) {
  DiskRecord d{};
  d.src_ip = rec.pkt.flow.src_ip;
  d.dst_ip = rec.pkt.flow.dst_ip;
  d.src_port = rec.pkt.flow.src_port;
  d.dst_port = rec.pkt.flow.dst_port;
  d.proto = rec.pkt.flow.proto;
  d.tcp_flags = rec.pkt.tcp_flags;
  d.ip_ttl = rec.pkt.ip_ttl;
  d.pkt_len = rec.pkt.pkt_len;
  d.payload_len = rec.pkt.payload_len;
  d.tcp_seq = rec.pkt.tcp_seq;
  d.pkt_path = rec.pkt.pkt_path;
  d.pkt_uniq = rec.pkt.pkt_uniq;
  d.qid = rec.qid;
  d.qsize = rec.qsize;
  d.tin_ns = rec.tin.count();
  d.tout_ns = rec.tout.count();
  return d;
}

PacketRecord from_disk(const DiskRecord& d) {
  PacketRecord rec;
  rec.pkt.flow =
      FiveTuple{d.src_ip, d.dst_ip, d.src_port, d.dst_port, d.proto};
  rec.pkt.tcp_flags = d.tcp_flags;
  rec.pkt.ip_ttl = d.ip_ttl;
  rec.pkt.pkt_len = d.pkt_len;
  rec.pkt.payload_len = d.payload_len;
  rec.pkt.tcp_seq = d.tcp_seq;
  rec.pkt.pkt_path = d.pkt_path;
  rec.pkt.pkt_uniq = d.pkt_uniq;
  rec.qid = d.qid;
  rec.qsize = d.qsize;
  rec.tin = Nanos{d.tin_ns};
  rec.tout = Nanos{d.tout_ns};
  return rec;
}

struct Header {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t count;
};

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw ConfigError{"TraceWriter: cannot open " + path.string()};
  const Header hdr{kTraceMagic, kTraceVersion, 0};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw (Core Guidelines C.36); a failed close is
    // surfaced when close() is called explicitly.
  }
}

void TraceWriter::write(const PacketRecord& rec) {
  check(!closed_, "TraceWriter: write after close");
  const DiskRecord d = to_disk(rec);
  out_.write(reinterpret_cast<const char*>(&d), sizeof(d));
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(0);
  const Header hdr{kTraceMagic, kTraceVersion, count_};
  out_.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out_.flush();
  if (!out_) throw ConfigError{"TraceWriter: write failure on close"};
}

TraceReader::TraceReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw ConfigError{"TraceReader: cannot open " + path.string()};
  Header hdr{};
  in_.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in_ || hdr.magic != kTraceMagic) {
    throw ConfigError{"TraceReader: not a PQTR trace: " + path.string()};
  }
  if (hdr.version != kTraceVersion) {
    throw ConfigError{"TraceReader: unsupported trace version " +
                      std::to_string(hdr.version)};
  }
  total_ = hdr.count;
}

std::optional<PacketRecord> TraceReader::next() {
  if (exhausted_ || read_ >= total_) return std::nullopt;
  DiskRecord d{};
  in_.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in_) {
    // The file ran out before the header's count: a crashed writer or a
    // partial copy. Skip-and-count — end the stream and record how many
    // records the header promised but the bytes couldn't deliver.
    stats_.truncated += total_ - read_;
    exhausted_ = true;
    return std::nullopt;
  }
  ++read_;
  ++stats_.parsed;
  return from_disk(d);
}

void write_trace(const std::filesystem::path& path,
                 const std::vector<PacketRecord>& records) {
  TraceWriter writer(path);
  for (const auto& rec : records) writer.write(rec);
  writer.close();
}

std::vector<PacketRecord> read_trace(const std::filesystem::path& path) {
  TraceReader reader(path);
  std::vector<PacketRecord> out;
  out.reserve(reader.record_count());
  while (auto rec = reader.next()) out.push_back(*rec);
  return out;
}

}  // namespace perfq::trace
