#include "trace/flow_session.hpp"

#include <algorithm>
#include <cmath>

namespace perfq::trace {
namespace {

constexpr std::uint32_t kMinWire = 64;
constexpr std::uint32_t kMaxWire = 1500;

}  // namespace

FlowSessionGenerator::FlowSessionGenerator(const TraceConfig& config)
    : config_(config), rng_(config.seed) {
  config_.validate();
  arrival_rate_per_ns_ = static_cast<double>(config_.num_flows) /
                         static_cast<double>(config_.duration.count());
  queue_busy_until_ = 0_ns;
  last_emit_time_ = 0_ns;
  schedule_next_arrival(0_ns);
}

void FlowSessionGenerator::schedule_next_arrival(Nanos now) {
  const double gap = rng_.exponential(arrival_rate_per_ns_);
  const Nanos when = now + Nanos{static_cast<std::int64_t>(gap)};
  if (when <= config_.duration) events_.push(Event{when, kArrival});
}

std::uint64_t FlowSessionGenerator::draw_flow_size() {
  // Bounded Pareto sized so the unbounded mean matches mean_flow_pkts.
  const double alpha = config_.flow_size_alpha;
  const double xm = config_.mean_flow_pkts * (alpha - 1.0) / alpha;
  const double raw = rng_.pareto(xm, alpha);
  const double capped = std::min(raw, static_cast<double>(config_.max_flow_pkts));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(capped));
}

FiveTuple FlowSessionGenerator::random_tuple(bool tcp) {
  FiveTuple t;
  t.src_ip = static_cast<std::uint32_t>(rng_());
  t.dst_ip = static_cast<std::uint32_t>(rng_());
  t.src_port = static_cast<std::uint16_t>(rng_.between(1024, 65535));
  t.dst_port = static_cast<std::uint16_t>(
      rng_.chance(0.5) ? rng_.between(1, 1023) : rng_.between(1024, 65535));
  t.proto = static_cast<std::uint8_t>(tcp ? IpProto::kTcp : IpProto::kUdp);
  return t;
}

void FlowSessionGenerator::start_flow(Nanos now) {
  ActiveFlow flow;
  flow.tuple = random_tuple(rng_.chance(config_.tcp_fraction));
  flow.remaining_pkts = draw_flow_size();
  // Lifetime lognormal around the configured median; pace packets over it.
  // Sparse flows instead live for a large fraction of the trace window.
  const double median_ns = static_cast<double>(config_.median_flow_duration.count());
  double life_ns = rng_.lognormal(std::log(median_ns), config_.flow_duration_sigma);
  if (rng_.chance(config_.sparse_flow_fraction)) {
    const double lo = static_cast<double>(config_.sparse_min_duration.count());
    const double hi = static_cast<double>(config_.duration.count());
    if (hi > lo) life_ns = lo + rng_.uniform() * (hi - lo);
    // Sparse flows carry only a handful of packets, so consecutive packets
    // of one key are minutes apart.
    flow.remaining_pkts = 2 + rng_.below(6);
  }
  const double gap_ns =
      std::max(1.0, life_ns / static_cast<double>(flow.remaining_pkts));
  flow.gap = Nanos{static_cast<std::int64_t>(gap_ns)};
  flow.next_seq = static_cast<std::uint32_t>(rng_());
  flow.flow_label = static_cast<std::uint32_t>(flows_started_);
  ++flows_started_;

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    active_[slot] = flow;
  } else {
    slot = static_cast<std::uint32_t>(active_.size());
    active_.push_back(flow);
  }
  // First packet almost immediately (SYN-ish), with small jitter.
  const Nanos first = now + Nanos{static_cast<std::int64_t>(rng_.exponential(1e-3))};
  if (first <= config_.duration) {
    events_.push(Event{first, slot});
  } else {
    free_slots_.push_back(slot);
  }
}

std::uint32_t FlowSessionGenerator::draw_pkt_len(const ActiveFlow& flow) const {
  // Mix of minimum-size (ACK-like) and exponential-bodied packets, clamped to
  // the Ethernet MTU; mean approximately config_.mean_pkt_bytes.
  if (rng_.chance(0.25)) return kMinWire;
  const double body_mean =
      (static_cast<double>(config_.mean_pkt_bytes) - 0.25 * kMinWire) / 0.75 -
      static_cast<double>(kMinWire);
  const double body = rng_.exponential(1.0 / std::max(1.0, body_mean));
  const auto len = static_cast<std::uint32_t>(static_cast<double>(kMinWire) + body);
  const bool udp = flow.tuple.proto == static_cast<std::uint8_t>(IpProto::kUdp);
  return std::clamp(len, kMinWire, udp ? std::uint32_t{1492} : kMaxWire);
}

PacketRecord FlowSessionGenerator::emit_packet(ActiveFlow& flow, Nanos now) {
  PacketRecord rec;
  rec.pkt.flow = flow.tuple;
  rec.pkt.pkt_len = draw_pkt_len(flow);
  const std::uint32_t hdr = flow.tuple.proto == static_cast<std::uint8_t>(IpProto::kTcp)
                                ? 54u
                                : 42u;
  rec.pkt.payload_len = rec.pkt.pkt_len > hdr ? rec.pkt.pkt_len - hdr : 0u;
  rec.pkt.pkt_uniq = ++uniq_counter_;
  rec.pkt.pkt_path = flow.flow_label;
  rec.qid = 0;

  if (rec.pkt.flow.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
    if (flow.prev_seq_adv > 0 && rng_.chance(config_.retx_prob)) {
      // Retransmission: resend the previous segment's sequence number.
      rec.pkt.tcp_seq = flow.next_seq - flow.prev_seq_adv;
    } else if (rng_.chance(config_.reorder_prob)) {
      // Reordering: a later segment overtakes; do not advance next_seq, so
      // the following packet appears with a lower (non-monotonic) number.
      rec.pkt.tcp_seq = flow.next_seq + rec.pkt.payload_len;
    } else {
      rec.pkt.tcp_seq = flow.next_seq;
      flow.next_seq += rec.pkt.payload_len;
      flow.prev_seq_adv = rec.pkt.payload_len;
    }
  }

  // Synthetic bottleneck queue (FIFO, work-conserving) for telemetry fields.
  const double pps = config_.expected_packets() /
                     (static_cast<double>(config_.duration.count()) * 1e-9);
  const double mean_service_ns = 0.5e9 / std::max(1.0, pps);  // ~50% utilization
  const auto service = Nanos{static_cast<std::int64_t>(
      mean_service_ns * static_cast<double>(rec.pkt.pkt_len) /
      static_cast<double>(config_.mean_pkt_bytes))};

  rec.tin = now;
  const Nanos start = std::max(queue_busy_until_, now);
  if (queue_busy_until_ > now) {
    rec.qsize = static_cast<std::uint32_t>(
        static_cast<double>((queue_busy_until_ - now).count()) / mean_service_ns);
  } else {
    rec.qsize = 0;
  }
  if (rng_.chance(config_.drop_prob)) {
    rec.tout = Nanos::infinity();  // dropped: does not occupy the queue
  } else {
    queue_busy_until_ = start + service;
    rec.tout = queue_busy_until_;
  }
  last_emit_time_ = now;
  ++packets_emitted_;
  return rec;
}

std::optional<PacketRecord> FlowSessionGenerator::next() {
  while (!events_.empty()) {
    const Event e = events_.top();
    events_.pop();
    if (e.when > config_.duration) return std::nullopt;  // heap is time-ordered
    if (e.flow_slot == kArrival) {
      start_flow(e.when);
      schedule_next_arrival(e.when);
      continue;
    }
    ActiveFlow& flow = active_[e.flow_slot];
    PacketRecord rec = emit_packet(flow, e.when);
    if (--flow.remaining_pkts > 0) {
      const double jitter = rng_.exponential(1.0 / static_cast<double>(flow.gap.count()));
      const Nanos next_at = e.when + Nanos{static_cast<std::int64_t>(jitter) + 1};
      if (next_at <= config_.duration) {
        events_.push(Event{next_at, e.flow_slot});
      } else {
        free_slots_.push_back(e.flow_slot);
      }
    } else {
      free_slots_.push_back(e.flow_slot);
    }
    return rec;
  }
  return std::nullopt;
}

std::vector<PacketRecord> generate_all(const TraceConfig& config,
                                       std::uint64_t max_packets) {
  FlowSessionGenerator gen(config);
  std::vector<PacketRecord> out;
  while (auto rec = gen.next()) {
    out.push_back(*rec);
    if (max_packets != 0 && out.size() >= max_packets) break;
  }
  return out;
}

}  // namespace perfq::trace
