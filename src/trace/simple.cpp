#include "trace/simple.hpp"

namespace perfq::trace {

std::vector<PacketRecord> round_robin_records(std::uint64_t count,
                                              std::uint32_t flows) {
  std::vector<PacketRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto f = static_cast<std::uint32_t>(i % flows);
    out.push_back(RecordBuilder{}
                      .flow_index(f)
                      .times(Nanos{static_cast<std::int64_t>(i) * 1000},
                             Nanos{static_cast<std::int64_t>(i) * 1000 + 500})
                      .uniq(i + 1)
                      .build());
  }
  return out;
}

std::vector<PacketRecord> zipf_records(std::uint64_t count, std::uint32_t flows,
                                       double s, std::uint64_t seed) {
  Rng rng(seed);
  ZipfDistribution zipf(flows, s);
  std::vector<PacketRecord> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto f = static_cast<std::uint32_t>(zipf(rng));
    out.push_back(RecordBuilder{}
                      .flow_index(f)
                      .times(Nanos{static_cast<std::int64_t>(i) * 1000},
                             Nanos{static_cast<std::int64_t>(i) * 1000 + 700})
                      .uniq(i + 1)
                      .build());
  }
  return out;
}

}  // namespace perfq::trace
