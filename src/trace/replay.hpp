// Trace replay driver: stream a record trace into any engine.
//
// Works with both QueryEngine and ShardedEngine (anything exposing
// process_batch/finish) and is the harness the scaling bench and the shard
// equivalence tests use: time-ordered batched delivery, optional trace
// repetition for longer steady-state runs, and a throughput readout.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>

#include "packet/record.hpp"

namespace perfq::trace {

struct ReplayStats {
  std::uint64_t records = 0;
  double seconds = 0.0;

  [[nodiscard]] double records_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }
};

/// Feed `records` into `engine` in `batch`-sized time-ordered batches,
/// `repeats` times over, without calling finish(). Returns wall-clock
/// throughput of the delivery (for a pipelined engine this measures the
/// sustainable dispatch rate; finish() settles the tail).
template <typename Engine>
ReplayStats replay_into(Engine& engine, std::span<const PacketRecord> records,
                        std::size_t batch = 1024, std::size_t repeats = 1) {
  if (batch == 0) batch = 1;
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t base = 0; base < records.size(); base += batch) {
      const std::size_t n = std::min(batch, records.size() - base);
      engine.process_batch(records.subspan(base, n));
      stats.records += n;
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return stats;
}

}  // namespace perfq::trace
