// Trace replay driver: stream a record trace into any engine.
//
// Drives any runtime::Engine — pass the engine by reference (dereference the
// unique_ptr EngineBuilder::build() returns): the serial and sharded engines
// are interchangeable here, which is exactly how the scaling bench and the
// shard equivalence tests use it. Statically polymorphic (a template, not
// Engine&) so the trace layer keeps zero dependency on the runtime and
// anything else exposing process_batch() — e.g. a test double — works too.
// Time-ordered batched delivery, optional trace repetition for longer
// steady-state runs, and a throughput readout.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "packet/record.hpp"

namespace perfq::trace {

struct ReplayStats {
  std::uint64_t records = 0;
  double seconds = 0.0;

  [[nodiscard]] double records_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }
};

/// The per-repeat timestamp shift that keeps a repeated trace time-ordered:
/// one more nanosecond than the trace's tin span, so repeat r's first record
/// lands strictly after repeat r-1's last. Zero for empty traces.
[[nodiscard]] inline Nanos repeat_period(std::span<const PacketRecord> records) {
  if (records.empty()) return Nanos{0};
  Nanos lo = records.front().tin;
  Nanos hi = records.front().tin;
  for (const PacketRecord& rec : records) {
    lo = std::min(lo, rec.tin);
    hi = std::max(hi, rec.tin);
  }
  return hi - lo + Nanos{1};
}

/// Feed `records` into `engine` in `batch`-sized time-ordered batches,
/// `repeats` times over, without calling finish(). Each repeat is shifted
/// forward by the trace's time span (tin and finite tout alike), so delivery
/// stays time-ordered across repeats — refresh-epoch logic must never see
/// time go backwards. Returns wall-clock throughput of the delivery (for a
/// pipelined engine this measures the sustainable dispatch rate; finish()
/// settles the tail).
template <typename Engine>
ReplayStats replay_into(Engine& engine, std::span<const PacketRecord> records,
                        std::size_t batch = 1024, std::size_t repeats = 1) {
  if (batch == 0) batch = 1;
  const Nanos period = repeats > 1 ? repeat_period(records) : Nanos{0};
  std::vector<PacketRecord> shifted;  // per-batch scratch for repeats > 1
  ReplayStats stats;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < repeats; ++r) {
    const Nanos offset = period * static_cast<std::int64_t>(r);
    for (std::size_t base = 0; base < records.size(); base += batch) {
      const std::size_t n = std::min(batch, records.size() - base);
      if (offset == Nanos{0}) {
        // First pass (and the repeats == 1 fast path): no copy.
        engine.process_batch(records.subspan(base, n));
      } else {
        shifted.assign(records.begin() + static_cast<std::ptrdiff_t>(base),
                       records.begin() + static_cast<std::ptrdiff_t>(base + n));
        for (PacketRecord& rec : shifted) {
          rec.tin += offset;
          // Dropped packets keep tout = infinity (the sentinel must survive
          // the shift for WHERE tout == infinity).
          if (!rec.tout.is_infinite()) rec.tout += offset;
        }
        engine.process_batch(std::span<const PacketRecord>(shifted));
      }
      stats.records += n;
    }
  }
  stats.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // Engines that expose the telemetry surface get the replay accounting
  // folded into metrics() (runtime-free test doubles simply don't match).
  if constexpr (requires {
                  engine.record_replay(std::uint64_t{}, std::uint64_t{});
                }) {
    engine.record_replay(stats.records,
                         static_cast<std::uint64_t>(stats.seconds * 1e9));
  }
  return stats;
}

}  // namespace perfq::trace
