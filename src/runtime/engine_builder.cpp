#include "runtime/engine_builder.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/sampler.hpp"
#include "runtime/engine.hpp"
#include "runtime/sharded/sharded_engine.hpp"

namespace perfq::runtime {

namespace {

/// Wrap the built engine with the background sampler when requested.
std::unique_ptr<Engine> maybe_sample(
    std::unique_ptr<Engine> engine,
    const std::optional<std::chrono::milliseconds>& interval,
    std::size_t capacity) {
  if (!interval) return engine;
  return std::make_unique<obs::SampledEngine>(std::move(engine), *interval,
                                              capacity);
}

}  // namespace

std::unique_ptr<Engine> EngineBuilder::build() {
  if (built_) {
    throw ConfigError{"EngineBuilder: build() called twice (the builder's "
                      "program was already consumed)"};
  }
  built_ = true;
  if (sampler_interval_ && sampler_interval_->count() <= 0) {
    throw ConfigError{"EngineBuilder: metrics_sampler interval must be "
                      "positive"};
  }
  if (sampler_interval_ && sampler_capacity_ == 0) {
    throw ConfigError{"EngineBuilder: metrics_sampler capacity must be "
                      "positive"};
  }
  if (shards_ == 0) {
    const auto reject = [](bool set, const char* knob) {
      if (set) {
        throw ConfigError{std::string{"EngineBuilder: "} + knob +
                          " is a sharded-engine knob; call sharded(N) first"};
      }
    };
    reject(dispatchers_.has_value(), "dispatchers()");
    reject(ring_capacity_.has_value(), "ring_capacity()");
    reject(dispatch_batch_.has_value(), "dispatch_batch()");
    reject(backing_shards_.has_value(), "backing_shards()");
    reject(eviction_batch_.has_value(), "eviction_batch()");
    reject(drain_timeout_.has_value(), "drain_timeout()");
    return maybe_sample(std::make_unique<QueryEngine>(std::move(program_),
                                                      std::move(config_)),
                        sampler_interval_, sampler_capacity_);
  }
  ShardedEngineConfig config;
  config.engine = std::move(config_);
  config.num_shards = shards_;
  if (dispatchers_) config.num_dispatchers = *dispatchers_;
  if (ring_capacity_) config.ring_capacity = *ring_capacity_;
  if (dispatch_batch_) config.dispatch_batch = *dispatch_batch_;
  if (backing_shards_) config.backing_shards = *backing_shards_;
  if (eviction_batch_) config.eviction_batch = *eviction_batch_;
  if (drain_timeout_) config.drain_timeout = *drain_timeout_;
  return maybe_sample(std::make_unique<ShardedEngine>(std::move(program_),
                                                      std::move(config)),
                      sampler_interval_, sampler_capacity_);
}

}  // namespace perfq::runtime
