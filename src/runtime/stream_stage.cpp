#include "runtime/stream_stage.hpp"

#include <set>
#include <utility>

#include "common/error.hpp"

namespace perfq::runtime {

StreamStage::StreamStage(const compiler::CompiledProgram& program,
                         const EngineConfig& config) {
  // Stream SELECT sinks: stream selects no other query consumes.
  std::set<int> consumed;
  for (const auto& q : program.analysis.queries) {
    consumed.insert(q.input);
    consumed.insert(q.left);
    consumed.insert(q.right);
  }
  std::set<std::string> matched;
  for (std::size_t i = 0; i < program.analysis.queries.size(); ++i) {
    const auto& q = program.analysis.queries[i];
    if (q.def.kind != lang::QueryDef::Kind::kSelect ||
        !q.output.stream_over_base || consumed.count(static_cast<int>(i)) > 0) {
      continue;
    }
    Entry entry;
    entry.compiled =
        compiler::compile_stream_select(program.analysis, static_cast<int>(i));
    entry.name = q.def.result_name;
    entry.schema = q.output;
    if (const auto it = config.stream_sinks.find(entry.name);
        !entry.name.empty() && it != config.stream_sinks.end()) {
      if (it->second == nullptr) {
        throw ConfigError{"stream sink for '" + entry.name + "' is null"};
      }
      entry.sink = it->second;
      matched.insert(entry.name);
    } else {
      auto table_sink =
          std::make_shared<TableStreamSink>(config.max_stream_rows);
      entry.default_sink = table_sink.get();
      entry.sink = std::move(table_sink);
    }
    entry.sink->open(entry.name, entry.schema);
    entries_.push_back(std::move(entry));
  }
  for (const auto& [name, sink] : config.stream_sinks) {
    if (matched.count(name) == 0) {
      throw ConfigError{"stream sink '" + name +
                        "' does not name an unconsumed stream SELECT query"};
    }
  }
}

template <typename Rec>
void StreamStage::observe(const Rec& rec) {
  const auto source = compiler::record_source(rec);
  for (Entry& entry : entries_) {
    // A saturated sink (e.g. an overflowed table sink) drops every further
    // row anyway: skip the filter/projection work per record.
    if (entry.sink->saturated()) continue;
    if (entry.compiled.filter.has_value() &&
        !entry.compiled.filter->eval_bool(source)) {
      continue;
    }
    std::vector<double> row;
    row.reserve(entry.compiled.projections.size());
    for (const auto& [name, expr] : entry.compiled.projections) {
      row.push_back(expr.eval(source));
    }
    entry.batch.push_back(std::move(row));
  }
}

template void StreamStage::observe<PacketRecord>(const PacketRecord&);
template void StreamStage::observe<WireRecordView>(const WireRecordView&);

void StreamStage::deliver_entry(Entry& entry) {
  if (entry.batch.empty()) return;
  StreamBatch batch;
  batch.query = entry.name;
  batch.schema = &entry.schema;
  batch.rows = entry.batch;
  entry.delivered += entry.batch.size();
  entry.sink->on_batch(batch);
  entry.batch.clear();
}

void StreamStage::deliver() {
  for (Entry& entry : entries_) deliver_entry(entry);
}

void StreamStage::attach(
    std::shared_ptr<const compiler::CompiledProgram> program,
    const std::string& name, std::shared_ptr<StreamSink> sink,
    const EngineConfig& config, std::uint64_t epoch) {
  const int index =
      static_cast<int>(program->analysis.queries.size()) - 1;
  const auto& q = program->analysis.queries[index];
  Entry entry;
  entry.compiled = compiler::compile_stream_select(program->analysis, index);
  entry.name = name;
  entry.schema = q.output;
  if (sink != nullptr) {
    entry.sink = std::move(sink);
  } else {
    auto table_sink = std::make_shared<TableStreamSink>(config.max_stream_rows);
    entry.default_sink = table_sink.get();
    entry.sink = std::move(table_sink);
  }
  entry.attached_program = std::move(program);
  entry.attach_records = epoch;
  entry.sink->open(entry.name, entry.schema);
  entries_.push_back(std::move(entry));
}

ResultTable StreamStage::detach(std::string_view name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name != name) continue;
    if (it->attached_program == nullptr) {
      throw QueryError{"result",
                       "detach: '" + std::string(name) +
                           "' is a base-program stream, not a dynamic attach"};
    }
    deliver_entry(*it);
    it->sink->on_finish();
    ResultTable table{it->schema};
    if (it->default_sink != nullptr) {
      table = it->default_sink->take_table();
    } else if (const ResultTable* t = it->sink->finished_table()) {
      table = *t;
    }
    entries_.erase(it);
    return table;
  }
  throw QueryError{"result",
                   "detach: unknown stream query '" + std::string(name) + "'"};
}

bool StreamStage::has(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return true;
  }
  return false;
}

bool StreamStage::has_attached(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return entry.attached_program != nullptr;
  }
  return false;
}

void StreamStage::collect(std::vector<StreamSinkMetrics>& out) const {
  for (const Entry& entry : entries_) {
    StreamSinkMetrics m;
    m.query = entry.name;
    m.rows_delivered = entry.delivered;
    m.rows_dropped = entry.sink->rows_dropped();
    m.saturated = entry.sink->saturated();
    m.attached = entry.attached_program != nullptr;
    m.attach_records = entry.attach_records;
    out.push_back(std::move(m));
  }
}

void StreamStage::finish(
    std::map<int, ResultTable>& tables,
    std::map<std::string, ResultTable, std::less<>>& attached_tables) {
  deliver();
  for (Entry& entry : entries_) {
    entry.sink->on_finish();
    ResultTable table{entry.schema};
    bool have = false;
    if (entry.default_sink != nullptr) {
      table = entry.default_sink->take_table();
      have = true;
    } else if (const ResultTable* t = entry.sink->finished_table()) {
      table = *t;
      have = true;
    }
    if (entry.attached_program != nullptr) {
      attached_tables.emplace(entry.name, std::move(table));
    } else if (have) {
      tables.emplace(entry.compiled.query_index, std::move(table));
    }
  }
}

}  // namespace perfq::runtime
