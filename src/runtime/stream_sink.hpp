// Pluggable delivery of stream SELECT rows (§3.1: "SELECT ... FROM T"
// queries that stream per-packet rows instead of aggregating on-switch).
//
// Every stream SELECT a program leaves unconsumed gets a StreamSink. The
// engine evaluates the query's filter/projections per record (in record
// order, on the caller thread for both the serial and sharded engines) and
// delivers the matching rows in batches: exactly one on_batch() call per
// engine-level process_batch() call that produced at least one row, carrying
// the rows of exactly those records, in record order. finish() flushes any
// remaining rows and then calls on_finish() once.
//
// Three implementations cover the paper's deployment modes:
//   TableStreamSink    buffer everything into a ResultTable (the default —
//                      preserves the pre-sink engine behavior, including the
//                      max_stream_rows cap and its overflow flag);
//   CallbackStreamSink hand each batch to a user function (export to an
//                      external collector without any engine-side buffering);
//   RingStreamSink     bounded drop-oldest ring a monitoring thread drains
//                      concurrently (the "tail -f" view of the stream).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "lang/schema.hpp"
#include "obs/metrics.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

/// One delivery of stream rows: row-major values under `schema`, all
/// produced by the same process_batch() call. Spans borrow engine-internal
/// buffers — valid only for the duration of the on_batch() call; sinks that
/// keep rows must copy them.
struct StreamBatch {
  std::string_view query;  ///< the query's result name ("" if unnamed)
  const lang::Schema* schema = nullptr;
  std::span<const std::vector<double>> rows;
};

class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// Called once, before any rows, when the engine wires the sink to a
  /// stream query (engine construction time).
  virtual void open(std::string_view /*query*/, const lang::Schema& /*schema*/) {}

  /// Deliver one batch of rows (never empty). Runs on the engine's caller
  /// thread inside process_batch()/finish().
  virtual void on_batch(const StreamBatch& batch) = 0;

  /// The stream is complete (engine finish()); no further batches follow.
  virtual void on_finish() {}

  /// A saturated sink drops everything it is offered from now on; the
  /// engine then stops evaluating and buffering rows for it entirely (the
  /// per-record fast path the capped default sink relied on before sinks
  /// were pluggable). Once true it must stay true.
  [[nodiscard]] virtual bool saturated() const { return false; }

  /// A sink that buffers the complete stream as a table may expose it here;
  /// the engine then materializes the query's result table from it at
  /// finish(), making table(name)/result() work exactly as with the default
  /// sink. Return nullptr (the default) for pass-through sinks — the query's
  /// table is then simply not materialized.
  [[nodiscard]] virtual const ResultTable* finished_table() const {
    return nullptr;
  }

  /// Rows this sink was offered but discarded (capped tables, full rings).
  /// Surfaced uniformly through EngineMetrics::streams; must be safe to call
  /// from a metrics thread while the engine delivers. Unbounded sinks keep
  /// the default 0.
  [[nodiscard]] virtual std::uint64_t rows_dropped() const { return 0; }
};

/// The default sink: buffer rows into a ResultTable, capped at `max_rows`.
/// Past the cap rows are dropped and overflowed() latches true — exactly the
/// engine-internal behavior before sinks were pluggable.
class TableStreamSink : public StreamSink {
 public:
  explicit TableStreamSink(std::size_t max_rows = 1'000'000)
      : max_rows_(max_rows) {}

  void open(std::string_view query, const lang::Schema& schema) override;
  void on_batch(const StreamBatch& batch) override;
  /// Saturates once the first row has been dropped (the overflow flag is
  /// latched then — matching the pre-sink engine, which recorded overflow on
  /// the first excess row before short-circuiting the rest).
  [[nodiscard]] bool saturated() const override {
    return overflowed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ResultTable* finished_table() const override {
    return &table_;
  }
  [[nodiscard]] std::uint64_t rows_dropped() const override { return dropped_; }

  [[nodiscard]] const ResultTable& table() const { return table_; }
  [[nodiscard]] bool overflowed() const { return saturated(); }
  [[nodiscard]] std::size_t max_rows() const { return max_rows_; }
  /// Engine-internal (default-sink) path: move the table out at finish().
  [[nodiscard]] ResultTable take_table() { return std::move(table_); }

 private:
  std::size_t max_rows_;
  ResultTable table_;
  /// atomic/RelaxedU64 so a metrics thread can poll saturation and drops
  /// while the caller thread delivers (single writer: the caller thread).
  std::atomic<bool> overflowed_{false};
  obs::RelaxedU64 dropped_;
};

/// Hand every batch to a user function; nothing is buffered engine-side.
class CallbackStreamSink : public StreamSink {
 public:
  using Callback = std::function<void(const StreamBatch&)>;
  using FinishCallback = std::function<void()>;

  explicit CallbackStreamSink(Callback on_batch,
                              FinishCallback on_finish = nullptr)
      : callback_(std::move(on_batch)), finish_(std::move(on_finish)) {}

  void on_batch(const StreamBatch& batch) override { callback_(batch); }
  void on_finish() override {
    if (finish_) finish_();
  }

 private:
  Callback callback_;
  FinishCallback finish_;
};

/// Bounded ring of the most recent rows, safe to drain from another thread
/// while the engine keeps processing (the paper's monitoring pull, applied
/// to streams): a full ring drops its oldest rows and counts them.
class RingStreamSink : public StreamSink {
 public:
  explicit RingStreamSink(std::size_t capacity);

  void on_batch(const StreamBatch& batch) override;

  /// Move all currently buffered rows into `out` (cleared first); returns
  /// the number of rows drained. Thread-safe against on_batch().
  std::size_t drain(std::vector<std::vector<double>>& out);

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t rows_dropped() const override { return dropped(); }

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::vector<double>> rows_;
  std::uint64_t dropped_ = 0;
};

}  // namespace perfq::runtime
