// The per-switch-query fold core: the line-rate hot path of one on-switch
// GROUPBY, factored out of QueryEngine so the same code drives both the
// single-threaded engine and the sharded runtime's shard workers.
//
// The core owns the chunked two-pass scratch of the batched path:
//   pass 1  prepare(): prefilter, key extraction (computing the cached hash
//           once), software-prefetch of the owning cache bucket;
//   pass 2  fold():    the actual cache operation, in record order.
// so the bucket fetch of record i+k overlaps the fold of record i. The
// sharded path uses prepare_extracted(): its dispatcher has already evaluated
// the prefilter and extracted the key (it needed the hash to route), so the
// worker only prefetches and folds.
#pragma once

#include <array>
#include <cstddef>

#include "common/failpoint.hpp"
#include "compiler/program.hpp"
#include "kvstore/cache.hpp"

namespace perfq::runtime {

class SwitchFoldCore {
 public:
  /// Records per prefetch chunk: large enough to hide bucket fetch latency,
  /// small enough that prefetched lines survive until their fold.
  static constexpr std::size_t kChunk = 32;

  /// Non-owning: `plan` and `cache` must outlive the core.
  SwitchFoldCore(const compiler::SwitchQueryPlan& plan, kv::Cache& cache)
      : plan_(&plan), cache_(&cache) {}

  /// Pass 1 for chunk slot `i`: evaluate the prefilter, extract the key and
  /// prefetch its bucket. Returns whether the record passed. Generic over
  /// the record representation (PacketRecord or lazy WireRecordView): both
  /// read fields through the field_value overload set, so pass/fail and the
  /// packed key are bit-identical across representations.
  template <typename Rec>
  bool prepare(std::size_t i, const Rec& rec) {
    const auto source = compiler::record_source(rec);
    pass_[i] = !plan_->prefilter.has_value() ||
               plan_->prefilter->eval_bool(source);
    if (pass_[i]) {
      keys_[i] = compiler::extract_key(*plan_, rec);
      cache_->prefetch(keys_[i]);
    }
    return pass_[i];
  }

  /// Pass 1 variant for the sharded path: the admit decision and the key
  /// arrive from the dispatcher, so only the prefetch remains.
  void prepare_extracted(std::size_t i, const kv::Key& key) {
    pass_[i] = true;
    keys_[i] = key;
    cache_->prefetch(key);
  }

  /// Pass 2 for chunk slot `i`: fold the record if it passed pass 1.
  template <typename Rec>
  void fold(std::size_t i, const Rec& rec) {
    PERFQ_FAILPOINT("fold_core.fold");
    if (pass_[i]) cache_->process(keys_[i], rec);
  }

  void flush(Nanos now) { cache_->flush(now); }

  [[nodiscard]] const compiler::SwitchQueryPlan& plan() const { return *plan_; }
  [[nodiscard]] kv::Cache& cache() { return *cache_; }
  [[nodiscard]] const kv::Cache& cache() const { return *cache_; }

 private:
  const compiler::SwitchQueryPlan* plan_;
  kv::Cache* cache_;
  std::array<kv::Key, kChunk> keys_;
  std::array<bool, kChunk> pass_{};
};

}  // namespace perfq::runtime
