#include "runtime/stream_sink.hpp"

#include "common/error.hpp"

namespace perfq::runtime {

void TableStreamSink::open(std::string_view /*query*/,
                           const lang::Schema& schema) {
  table_ = ResultTable(schema);
}

void TableStreamSink::on_batch(const StreamBatch& batch) {
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    if (table_.row_count() >= max_rows_) {
      // Rows arrive in order; everything further in this batch also
      // overflows. (Once saturated the stage stops offering rows at all, so
      // dropped_ counts only rows actually offered and discarded.)
      overflowed_.store(true, std::memory_order_relaxed);
      dropped_ += batch.rows.size() - i;
      return;
    }
    table_.add_row(batch.rows[i]);
  }
}

RingStreamSink::RingStreamSink(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw ConfigError{"RingStreamSink: zero capacity"};
}

void RingStreamSink::on_batch(const StreamBatch& batch) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& row : batch.rows) {
    if (rows_.size() == capacity_) {
      rows_.pop_front();
      ++dropped_;
    }
    rows_.push_back(row);
  }
}

std::size_t RingStreamSink::drain(std::vector<std::vector<double>>& out) {
  out.clear();
  const std::lock_guard<std::mutex> lock(mu_);
  out.assign(std::make_move_iterator(rows_.begin()),
             std::make_move_iterator(rows_.end()));
  rows_.clear();
  return out.size();
}

std::uint64_t RingStreamSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace perfq::runtime
