// The collection layer, shared by QueryEngine and ShardedEngine: soft
// SELECTs over materialized aggregates, soft GROUPBYs, JOINs (§3.1's
// "everything downstream of the switch runs at the collector"), plus the
// canonical materialization of on-switch GROUPBY results out of a backing
// store.
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "compiler/program.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

/// The table for query `index`, or nullptr if not (yet) materialized.
[[nodiscard]] const ResultTable* find_collection_table(
    const std::map<int, ResultTable>& tables, int index);

/// Execute soft query `index` (SELECT over results / soft GROUPBY / JOIN)
/// over already-materialized inputs and insert its table into `tables`.
/// Stream-intermediate SELECTs produce no table and are skipped.
void run_collection_query(const compiler::CompiledProgram& program, int index,
                          std::map<int, ResultTable>& tables);

/// Materialize one on-switch GROUPBY's result table from a backing store
/// (anything with `for_each(fn(key, value, valid))`: BackingStore or
/// ShardedBackingStore). Rows are sorted into canonical key order so the
/// result is independent of map iteration and eviction interleaving — this
/// is what lets the sharded engine's downstream collection queries (which
/// accumulate in row order) reproduce the single-threaded engine's floating-
/// point results bit-for-bit.
template <typename Backing>
[[nodiscard]] ResultTable materialize_switch_table(
    const compiler::CompiledProgram& program,
    const compiler::SwitchQueryPlan& plan, const Backing& backing) {
  const auto& q =
      program.analysis.queries[static_cast<std::size_t>(plan.query_index)];
  std::vector<std::vector<double>> rows;
  backing.for_each([&](const kv::Key& key, const kv::StateVector& value,
                       bool /*valid*/) {
    std::vector<double> row = compiler::unpack_key(plan, key);
    for (std::size_t d = 0; d < value.dims(); ++d) row.push_back(value[d]);
    rows.push_back(std::move(row));
  });
  // Keys are unique and lead each row, so the lexicographic compare is
  // decided within the (finite, integer-valued) key columns.
  std::sort(rows.begin(), rows.end());
  ResultTable table(q.output);
  for (auto& row : rows) table.add_row(std::move(row));
  return table;
}

}  // namespace perfq::runtime
