#include "runtime/table.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "packet/fivetuple.hpp"

namespace perfq::runtime {

void ResultTable::add_row(std::vector<double> row) {
  check(row.size() == schema_.size(), "ResultTable: row arity mismatch");
  rows_.push_back(std::move(row));
}

std::size_t ResultTable::column(std::string_view name) const {
  const int idx = schema_.index_of(name);
  if (idx < 0) {
    throw QueryError{"result", "no column '" + std::string{name} + "' in " +
                                   schema_.to_string()};
  }
  return static_cast<std::size_t>(idx);
}

void ResultTable::sort_desc(std::string_view name) {
  const std::size_t c = column(name);
  std::sort(rows_.begin(), rows_.end(),
            [c](const std::vector<double>& a, const std::vector<double>& b) {
              return a[c] > b[c];
            });
}

std::string ResultTable::to_text(const std::string& title,
                                 std::size_t limit) const {
  TextTable table(title);
  std::vector<std::string> header;
  for (const auto& col : schema_.columns()) header.push_back(col.name);
  table.set_header(std::move(header));

  const std::size_t n = limit == 0 ? rows_.size() : std::min(limit, rows_.size());
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < schema_.size(); ++c) {
      const auto& col = schema_.columns()[c];
      const double v = rows_[r][c];
      // IP-valued columns render dotted-quad for readability.
      if (col.base_field == FieldId::kSrcIp || col.base_field == FieldId::kDstIp) {
        cells.push_back(ipv4_to_string(static_cast<std::uint32_t>(v)));
      } else if (v == static_cast<double>(static_cast<long long>(v))) {
        cells.push_back(std::to_string(static_cast<long long>(v)));
      } else {
        cells.push_back(fmt_double(v, 3));
      }
    }
    table.add_row(std::move(cells));
  }
  std::string out = table.to_text();
  if (n < rows_.size()) {
    out += "(" + std::to_string(rows_.size() - n) + " more rows)\n";
  }
  return out;
}

}  // namespace perfq::runtime
