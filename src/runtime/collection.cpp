#include "runtime/collection.hpp"

#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "compiler/fold_compiler.hpp"

namespace perfq::runtime {

namespace {

/// Name resolver over a schema for row-based evaluation.
compiler::Resolver schema_resolver(const lang::Schema& schema) {
  return [&schema](const std::string& name) -> std::optional<compiler::Slot> {
    const int idx = schema.index_of(name);
    if (idx < 0) {
      // Query-level value constants (TCP/UDP) still resolve in row context
      // through sema's constant folding; anything left unknown is an error.
      return std::nullopt;
    }
    return compiler::Slot{0, idx};
  };
}

}  // namespace

const ResultTable* find_collection_table(
    const std::map<int, ResultTable>& tables, int index) {
  const auto it = tables.find(index);
  return it == tables.end() ? nullptr : &it->second;
}

void run_collection_query(const compiler::CompiledProgram& program, int index,
                          std::map<int, ResultTable>& tables) {
  const auto& q = program.analysis.queries[static_cast<std::size_t>(index)];

  switch (q.def.kind) {
    case lang::QueryDef::Kind::kSelect: {
      if (q.output.stream_over_base) return;  // intermediate stream: no table
      const ResultTable* in = find_collection_table(tables, q.input);
      check(in != nullptr, "collection: input table missing");
      const lang::Schema& in_schema = in->schema();
      const auto resolver = schema_resolver(in_schema);
      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<compiler::ScalarExpr> projections;
      projections.reserve(q.projections.size());
      for (const auto& p : q.projections) {
        projections.push_back(compiler::ScalarExpr::compile(*p.expr, resolver));
      }
      ResultTable out(q.output);
      for (const auto& row : in->rows()) {
        const compiler::RowSource source({row.data(), row.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> projected;
        projected.reserve(projections.size());
        for (const auto& p : projections) projected.push_back(p.eval(source));
        out.add_row(std::move(projected));
      }
      tables.emplace(index, std::move(out));
      return;
    }

    case lang::QueryDef::Kind::kGroupBy: {
      check(!q.on_switch, "collection: on-switch groupby reached soft path");
      const ResultTable* in = find_collection_table(tables, q.input);
      check(in != nullptr, "collection: input table missing");
      const lang::Schema& in_schema = in->schema();
      const auto resolver = schema_resolver(in_schema);

      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<std::size_t> key_idx;
      for (const auto& k : q.key_columns) {
        key_idx.push_back(static_cast<std::size_t>(in_schema.index_of(k)));
      }

      // Aggregation executors over rows.
      struct SoftAgg {
        lang::AggregationSpec::Kind kind;
        std::optional<compiler::ScalarExpr> sum_expr;
        std::optional<compiler::FoldBody> fold;
        std::size_t dims = 1;
      };
      std::vector<SoftAgg> aggs;
      std::size_t value_dims = 0;
      for (const auto& spec : q.aggregations) {
        SoftAgg agg;
        agg.kind = spec.kind;
        if (spec.kind == lang::AggregationSpec::Kind::kSum) {
          agg.sum_expr = compiler::ScalarExpr::compile(*spec.sum_expr, resolver);
        } else if (spec.kind == lang::AggregationSpec::Kind::kFold) {
          const int fi = program.analysis.fold_index(spec.fold_name);
          check(fi >= 0, "collection: unknown fold");
          const auto& fold =
              program.analysis.folds[static_cast<std::size_t>(fi)];
          agg.fold = compiler::FoldBody::compile(fold.def, resolver);
          agg.dims = fold.def.state_vars.size();
        }
        value_dims += agg.dims;
        aggs.push_back(std::move(agg));
      }

      std::map<std::vector<double>, std::vector<double>> groups;
      for (const auto& row : in->rows()) {
        const compiler::RowSource source({row.data(), row.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> key;
        key.reserve(key_idx.size());
        for (const auto i : key_idx) key.push_back(row[i]);
        auto [it, inserted] = groups.try_emplace(std::move(key));
        if (inserted) it->second.assign(value_dims, 0.0);
        std::size_t off = 0;
        for (const auto& agg : aggs) {
          switch (agg.kind) {
            case lang::AggregationSpec::Kind::kCount:
              it->second[off] += 1.0;
              break;
            case lang::AggregationSpec::Kind::kSum:
              it->second[off] += agg.sum_expr->eval(source);
              break;
            case lang::AggregationSpec::Kind::kFold:
              agg.fold->execute({it->second.data() + off, agg.dims}, source);
              break;
          }
          off += agg.dims;
        }
      }

      ResultTable out(q.output);
      for (const auto& [key, values] : groups) {
        std::vector<double> row = key;
        row.insert(row.end(), values.begin(), values.end());
        out.add_row(std::move(row));
      }
      tables.emplace(index, std::move(out));
      return;
    }

    case lang::QueryDef::Kind::kJoin: {
      const ResultTable* left = find_collection_table(tables, q.left);
      const ResultTable* right = find_collection_table(tables, q.right);
      check(left != nullptr && right != nullptr,
            "collection: join input missing");
      const lang::Schema& ls = left->schema();
      const lang::Schema& rs = right->schema();

      std::vector<std::size_t> lkey;
      std::vector<std::size_t> rkey;
      for (const auto& k : q.key_columns) {
        lkey.push_back(static_cast<std::size_t>(ls.index_of(k)));
        rkey.push_back(static_cast<std::size_t>(rs.index_of(k)));
      }
      std::vector<std::size_t> lval;
      std::vector<std::size_t> rval;
      for (std::size_t c = 0; c < ls.size(); ++c) {
        if (std::find(lkey.begin(), lkey.end(), c) == lkey.end()) {
          lval.push_back(c);
        }
      }
      for (std::size_t c = 0; c < rs.size(); ++c) {
        if (std::find(rkey.begin(), rkey.end(), c) == rkey.end()) {
          rval.push_back(c);
        }
      }

      // Hash join (keys are unique on both sides by construction).
      std::map<std::vector<double>, const std::vector<double>*> left_index;
      for (const auto& row : left->rows()) {
        std::vector<double> key;
        for (const auto i : lkey) key.push_back(row[i]);
        left_index.emplace(std::move(key), &row);
      }

      const auto resolver = schema_resolver(q.joined_schema);
      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<compiler::ScalarExpr> projections;
      for (const auto& p : q.projections) {
        projections.push_back(compiler::ScalarExpr::compile(*p.expr, resolver));
      }

      ResultTable out(q.output);
      for (const auto& rrow : right->rows()) {
        std::vector<double> key;
        for (const auto i : rkey) key.push_back(rrow[i]);
        const auto it = left_index.find(key);
        if (it == left_index.end()) continue;
        // Joined row in joined_schema order: keys, left non-keys, right
        // non-keys (matching sema's construction).
        std::vector<double> joined = key;
        for (const auto i : lval) joined.push_back((*it->second)[i]);
        for (const auto i : rval) joined.push_back(rrow[i]);
        const compiler::RowSource source({joined.data(), joined.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> row = key;
        for (const auto& p : projections) row.push_back(p.eval(source));
        out.add_row(std::move(row));
      }
      tables.emplace(index, std::move(out));
      return;
    }
  }
}

}  // namespace perfq::runtime
