#include "runtime/engine.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "common/error.hpp"
#include "runtime/collection.hpp"

namespace perfq::runtime {

QueryEngine::QueryEngine(compiler::CompiledProgram program, EngineConfig config)
    : program_(std::move(program)),
      config_(std::move(config)),
      stream_(program_, config_) {
  wire_verify_checksums_ = config_.verify_checksums;
  // Key-value store per on-switch GROUPBY.
  for (const auto& plan : program_.switch_plans) {
    kv::CacheGeometry geometry = config_.geometry;
    if (const auto it = config_.per_query_geometry.find(plan.name);
        it != config_.per_query_geometry.end()) {
      geometry = it->second;
    }
    auto store = std::make_unique<kv::KeyValueStore>(
        geometry, plan.kernel, config_.hash_seed, config_.eviction_policy);
    auto core = std::make_unique<SwitchFoldCore>(plan, store->cache());
    switches_.push_back(
        SwitchInstance{&plan, std::move(store), std::move(core), nullptr, 0});
  }
}

void QueryEngine::throw_if_faulted() const {
  if (fault_.faulted()) fault_.raise();
}

void QueryEngine::process_batch(std::span<const PacketRecord> records) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: process after finish");
  ++batches_;
  const bool timed =
      obs::kTelemetryEnabled &&
      (records.size() >= obs::kAlwaysTimeBatch ||
       (batch_tick_++ & obs::kSmallBatchSampleMask) == 0);
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  // An exception escaping mid-batch (stream-sink callback, injected
  // failpoint, allocation) leaves some records folded and others not:
  // guarded() poisons the engine so the partial state can never be read.
  guarded([&] { process_batch_impl(records); });
  if (timed) batch_ns_.record(obs::now_ns() - t0);
}

template <typename Rec>
void QueryEngine::process_chunk(std::span<const Rec> chunk) {
  const std::size_t n = chunk.size();
  const bool streams = !stream_.empty();

  // Pass 1: evaluate prefilters and extract every key (computing its
  // cached hash once), prefetching the owning cache bucket so its tag row
  // and slots are resident by the time pass 2 folds the record.
  for (auto& sw : switches_) {
    for (std::size_t i = 0; i < n; ++i) sw.core->prepare(i, chunk[i]);
  }

  // Pass 2: fold records in time order (refresh boundaries included;
  // prefetches above have no side effects, so ordering is preserved).
  for (std::size_t i = 0; i < n; ++i) {
    const Rec& rec = chunk[i];
    if (config_.refresh_interval > Nanos{0}) {
      if (next_refresh_ == Nanos{0}) {
        next_refresh_ = rec.tin + config_.refresh_interval;
      }
      if (rec.tin >= next_refresh_) {
        // Periodic backing-store refresh (§3.2): exact for linear folds,
        // and non-linear folds record one more segment (accounted in
        // accuracy).
        for (auto& sw : switches_) sw.store->flush(rec.tin);
        ++refreshes_;
        next_refresh_ = rec.tin + config_.refresh_interval;
      }
    }
    for (auto& sw : switches_) sw.core->fold(i, rec);
    if (streams) stream_.observe(rec);
  }
}

void QueryEngine::process_batch_impl(std::span<const PacketRecord> records) {
  records_ += records.size();
  for (std::size_t base = 0; base < records.size(); base += kBatchChunk) {
    const std::size_t n = std::min(kBatchChunk, records.size() - base);
    process_chunk(records.subspan(base, n));
  }
  // Stream rows buffered above leave the engine here: one delivery per
  // process_batch call (the sink batch-boundary contract).
  if (!stream_.empty()) stream_.deliver();
}

trace::IngestStats QueryEngine::process_wire_batch(
    std::span<const FrameObservation> frames) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: process after finish");
  ++batches_;
  const bool timed =
      obs::kTelemetryEnabled &&
      (frames.size() >= obs::kAlwaysTimeBatch ||
       (batch_tick_++ & obs::kSmallBatchSampleMask) == 0);
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  trace::IngestStats stats;
  guarded([&] { process_wire_batch_impl(frames, stats); });
  record_ingest(stats);
  if (timed) batch_ns_.record(obs::now_ns() - t0);
  return stats;
}

void QueryEngine::process_wire_batch_impl(
    std::span<const FrameObservation> frames, trace::IngestStats& stats) {
  // Fused validate + dispatch: fill a chunk of lazy views (damaged frames
  // skip-and-count, preserving time order across the survivors), run the
  // same two-pass pipeline process_batch uses, repeat. Frame bytes are only
  // read twice per record: the header validation and the lazy field loads
  // the program actually performs.
  std::array<WireRecordView, kBatchChunk> views;
  std::size_t n = 0;
  for (const FrameObservation& frame : frames) {
    wire::ParseError err{};
    if (wire::check_frame(frame.bytes, &err, wire_verify_checksums_) == 0) {
      trace::count_parse_error(stats, err);
      continue;
    }
    ++stats.parsed;
    views[n++] = wire_record_view(frame);
    if (n == kBatchChunk) {
      process_chunk(std::span<const WireRecordView>{views.data(), n});
      n = 0;
    }
  }
  if (n > 0) process_chunk(std::span<const WireRecordView>{views.data(), n});
  records_ += stats.parsed;
  if (!stream_.empty()) stream_.deliver();
}

void QueryEngine::finish(Nanos now) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: finish called twice");
  finished_ = true;
  guarded([&] {
    for (auto& sw : switches_) sw.store->flush(now);
    materialize_switch_tables();
    stream_.finish(tables_, attached_tables_);
    for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
      if (tables_.count(static_cast<int>(i)) > 0) continue;
      run_collection_query(program_, static_cast<int>(i), tables_);
    }
  });
}

void QueryEngine::attach_query(compiler::CompiledProgram program,
                               const AttachOptions& options) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: attach after finish");
  // Validation throws (ConfigError) before ANY state change: a rejected
  // attach leaves the engine exactly as it was.
  const AttachKind kind = attachable_kind(program);
  if (options.name.empty()) {
    throw ConfigError{"attach: query name must not be empty"};
  }
  for (const auto& sw : switches_) {
    if (sw.plan->name == options.name) {
      throw ConfigError{"attach: query '" + options.name + "' already exists"};
    }
  }
  if (stream_.has(options.name) ||
      program_.analysis.query_index(options.name) >= 0) {
    throw ConfigError{"attach: query '" + options.name + "' already exists"};
  }
  // The tenant owns its program; rename its result to the resident name.
  auto owned = std::make_shared<compiler::CompiledProgram>(std::move(program));
  owned->analysis.queries.back().def.result_name = options.name;
  if (kind == AttachKind::kStreamSelect) {
    std::lock_guard<std::mutex> lock(topology_mu_);
    stream_.attach(std::move(owned), options.name, options.sink, config_,
                   records_);
    return;
  }
  compiler::SwitchQueryPlan& plan = owned->switch_plans.front();
  plan.name = options.name;
  kv::CacheGeometry geometry = config_.geometry;
  if (const auto it = config_.per_query_geometry.find(options.name);
      it != config_.per_query_geometry.end()) {
    geometry = it->second;
  }
  if (options.geometry.has_value()) geometry = *options.geometry;
  auto store = std::make_unique<kv::KeyValueStore>(
      geometry, plan.kernel, config_.hash_seed, config_.eviction_policy);
  auto core = std::make_unique<SwitchFoldCore>(plan, store->cache());
  std::lock_guard<std::mutex> lock(topology_mu_);
  switches_.push_back(SwitchInstance{&plan, std::move(store), std::move(core),
                                     std::move(owned), records_});
}

ResultTable QueryEngine::detach_query(std::string_view name, Nanos now) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: detach after finish");
  for (auto it = switches_.begin(); it != switches_.end(); ++it) {
    if (it->plan->name != name) continue;
    if (it->attached == nullptr) {
      throw ConfigError{"detach: '" + std::string{name} +
                        "' is a base-program query and cannot be detached"};
    }
    // End this one query's window: flush its cache slice, materialize the
    // final table, then free everything the attach allocated. Resident
    // queries' stores are untouched.
    ResultTable table = guarded([&] {
      it->store->flush(now);
      return materialize_switch_table(*it->attached, *it->plan,
                                      it->store->backing());
    });
    std::lock_guard<std::mutex> lock(topology_mu_);
    switches_.erase(it);
    return table;
  }
  if (stream_.has(name)) {
    if (!stream_.has_attached(name)) {
      throw ConfigError{"detach: '" + std::string{name} +
                        "' is a base-program query and cannot be detached"};
    }
    std::lock_guard<std::mutex> lock(topology_mu_);
    return guarded([&] { return stream_.detach(name); });
  }
  throw QueryError{"result",
                   "detach: unknown query '" + std::string{name} + "'"};
}

EngineSnapshot QueryEngine::snapshot(std::string_view query_name, Nanos now) {
  throw_if_faulted();
  check(!finished_, "QueryEngine: snapshot after finish");
  // Name resolution stays outside the fault machinery: an unknown query is a
  // usage error, not an engine fault, and must not poison the engine.
  for (auto& sw : switches_) {
    if (sw.plan->name != query_name) continue;
    // The application pull (§3.2): overlay the live cache on a copy of the
    // backing store through the ordinary exact-merge absorb — bit-for-bit
    // what finish(now) would materialize for this query, without disturbing
    // either structure.
    ++snapshots_;
    const std::uint64_t t0 = obs::kTelemetryEnabled ? obs::now_ns() : 0;
    return guarded([&] {
      kv::BackingStore merged = sw.store->backing();
      sw.store->cache().snapshot_into(
          now, [&merged](kv::EvictedValue&& ev) { merged.absorb(ev); });
      const compiler::CompiledProgram& prog =
          sw.attached != nullptr ? *sw.attached : program_;
      EngineSnapshot snap{materialize_switch_table(prog, *sw.plan, merged),
                          records_, now};
      if (obs::kTelemetryEnabled) snapshot_ns_.record(obs::now_ns() - t0);
      return snap;
    });
  }
  throw QueryError{"result", "snapshot: no on-switch GROUPBY named '" +
                                 std::string{query_name} + "'"};
}

kv::StoreExport QueryEngine::export_store(std::string_view query_name,
                                          Nanos now) {
  throw_if_faulted();
  // Name resolution stays outside the fault machinery, like snapshot().
  for (auto& sw : switches_) {
    if (sw.plan->name != query_name) continue;
    return guarded([&] {
      kv::StoreExport out;
      out.query = std::string{query_name};
      out.records = records_;
      out.time = now;
      if (finished_) {
        // Caches already flushed by finish(); the backing store IS the result.
        out.entries = sw.store->backing().export_entries();
      } else {
        // Mid-run: same record-boundary merge snapshot() performs.
        kv::BackingStore merged = sw.store->backing();
        sw.store->cache().snapshot_into(
            now, [&merged](kv::EvictedValue&& ev) { merged.absorb(ev); });
        out.entries = merged.export_entries();
      }
      return out;
    });
  }
  throw QueryError{"result", "export_store: no on-switch GROUPBY named '" +
                                 std::string{query_name} + "'"};
}

void QueryEngine::materialize_switch_tables() {
  for (auto& sw : switches_) {
    if (sw.attached != nullptr) {
      // Attached queries end with the window; their query indices belong to
      // their own programs, so their tables file by name.
      attached_tables_.emplace(
          sw.plan->name,
          materialize_switch_table(*sw.attached, *sw.plan, sw.store->backing()));
    } else {
      tables_.emplace(
          sw.plan->query_index,
          materialize_switch_table(program_, *sw.plan, sw.store->backing()));
    }
  }
}

const ResultTable* QueryEngine::find_table(int index) const {
  return find_collection_table(tables_, index);
}

const ResultTable& QueryEngine::result() const {
  throw_if_faulted();
  check(finished_, "QueryEngine: result before finish");
  const int last = static_cast<int>(program_.analysis.queries.size()) - 1;
  const ResultTable* t = find_table(last);
  check(t != nullptr, "QueryEngine: program result not materialized");
  return *t;
}

const ResultTable& QueryEngine::table(std::string_view name) const {
  throw_if_faulted();
  check(finished_, "QueryEngine: table before finish");
  if (const auto it = attached_tables_.find(name);
      it != attached_tables_.end()) {
    return it->second;
  }
  const int idx = program_.analysis.query_index(name);
  if (idx < 0) {
    throw QueryError{"result", "unknown table '" + std::string{name} + "'"};
  }
  const ResultTable* t = find_table(idx);
  if (t == nullptr) {
    throw QueryError{"result", "table '" + std::string{name} +
                                   "' is a stream intermediate and was not "
                                   "materialized"};
  }
  return *t;
}

std::vector<StoreStats> QueryEngine::store_stats() const {
  throw_if_faulted();
  std::lock_guard<std::mutex> lock(topology_mu_);
  return collect_store_stats();
}

std::vector<StoreStats> QueryEngine::collect_store_stats() const {
  std::vector<StoreStats> out;
  for (const auto& sw : switches_) {
    StoreStats s;
    s.name = sw.plan->name;
    s.linearity = sw.plan->linearity;
    s.cache = sw.store->cache().stats();
    s.accuracy = sw.store->backing().accuracy();
    s.backing_writes = sw.store->backing().writes();
    s.backing_capacity_writes = sw.store->backing().capacity_writes();
    s.keys = sw.store->backing().key_count();
    s.attached = sw.attached != nullptr;
    s.attach_records = sw.attach_records;
    out.push_back(std::move(s));
  }
  return out;
}

EngineMetrics QueryEngine::metrics() const {
  EngineMetrics m;
  m.engine = "serial";
  m.records = records_;
  m.batches = batches_;
  m.refreshes = refreshes_;
  m.snapshots = snapshots_;
  m.faulted = fault_.faulted();
  {
    // Topology lock: attach/detach mutate switches_/stream_ entries on the
    // caller thread; the element internals stay lock-free relaxed slots.
    std::lock_guard<std::mutex> lock(topology_mu_);
    m.queries = collect_store_stats();
    stream_.collect(m.streams);
  }
  m.batch_ns = batch_ns_.snapshot();
  m.snapshot_ns = snapshot_ns_.snapshot();
  fill_driver_metrics(m);
  return m;
}

const kv::KeyValueStore& QueryEngine::store(std::string_view query_name) const {
  for (const auto& sw : switches_) {
    if (sw.plan->name == query_name) return *sw.store;
  }
  throw QueryError{"result",
                   "no switch query named '" + std::string{query_name} + "'"};
}

}  // namespace perfq::runtime
