#include "runtime/engine.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "compiler/fold_compiler.hpp"

namespace perfq::runtime {

QueryEngine::QueryEngine(compiler::CompiledProgram program, EngineConfig config)
    : program_(std::move(program)), config_(std::move(config)) {
  // Key-value store per on-switch GROUPBY.
  for (const auto& plan : program_.switch_plans) {
    kv::CacheGeometry geometry = config_.geometry;
    if (const auto it = config_.per_query_geometry.find(plan.name);
        it != config_.per_query_geometry.end()) {
      geometry = it->second;
    }
    switches_.push_back(SwitchInstance{
        &plan,
        std::make_unique<kv::KeyValueStore>(geometry, plan.kernel,
                                            config_.hash_seed,
                                            config_.eviction_policy),
        {},
        {}});
  }

  // Stream SELECT sinks: stream selects no other query consumes.
  std::set<int> consumed;
  for (const auto& q : program_.analysis.queries) {
    consumed.insert(q.input);
    consumed.insert(q.left);
    consumed.insert(q.right);
  }
  for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
    const auto& q = program_.analysis.queries[i];
    if (q.def.kind == lang::QueryDef::Kind::kSelect &&
        q.output.stream_over_base && consumed.count(static_cast<int>(i)) == 0) {
      StreamSink sink{compiler::compile_stream_select(program_.analysis,
                                                      static_cast<int>(i)),
                      ResultTable(q.output), false};
      sinks_.push_back(std::move(sink));
    }
  }
}

void QueryEngine::process_batch(std::span<const PacketRecord> records) {
  check(!finished_, "QueryEngine: process after finish");
  for (std::size_t base = 0; base < records.size(); base += kBatchChunk) {
    const std::size_t n = std::min(kBatchChunk, records.size() - base);
    const std::span<const PacketRecord> chunk = records.subspan(base, n);

    // Pass 1: evaluate prefilters and extract every key (computing its
    // cached hash once), prefetching the owning cache bucket so its tag row
    // and slots are resident by the time pass 2 folds the record.
    for (auto& sw : switches_) {
      for (std::size_t i = 0; i < n; ++i) {
        const compiler::RecordSource source({&chunk[i], 1});
        sw.pass[i] = !sw.plan->prefilter.has_value() ||
                     sw.plan->prefilter->eval_bool(source);
        if (sw.pass[i]) {
          sw.keys[i] = compiler::extract_key(*sw.plan, chunk[i]);
          sw.store->prefetch(sw.keys[i]);
        }
      }
    }

    // Pass 2: fold records in time order (refresh boundaries included;
    // prefetches above have no side effects, so ordering is preserved).
    for (std::size_t i = 0; i < n; ++i) {
      const PacketRecord& rec = chunk[i];
      ++records_;
      if (config_.refresh_interval > Nanos{0}) {
        if (next_refresh_ == Nanos{0}) {
          next_refresh_ = rec.tin + config_.refresh_interval;
        }
        if (rec.tin >= next_refresh_) {
          // Periodic backing-store refresh (§3.2): exact for linear folds,
          // and non-linear folds record one more segment (accounted in
          // accuracy).
          for (auto& sw : switches_) sw.store->flush(rec.tin);
          ++refreshes_;
          next_refresh_ = rec.tin + config_.refresh_interval;
        }
      }
      for (auto& sw : switches_) {
        if (sw.pass[i]) sw.store->process(sw.keys[i], rec);
      }
      const compiler::RecordSource source({&rec, 1});
      for (auto& sink : sinks_) {
        if (sink.compiled.filter.has_value() &&
            !sink.compiled.filter->eval_bool(source)) {
          continue;
        }
        if (sink.table.row_count() >= config_.max_stream_rows) {
          sink.overflowed = true;
          continue;
        }
        std::vector<double> row;
        row.reserve(sink.compiled.projections.size());
        for (const auto& [name, expr] : sink.compiled.projections) {
          row.push_back(expr.eval(source));
        }
        sink.table.add_row(std::move(row));
      }
    }
  }
}

void QueryEngine::finish(Nanos now) {
  check(!finished_, "QueryEngine: finish called twice");
  finished_ = true;
  for (auto& sw : switches_) sw.store->flush(now);
  materialize_switch_tables();
  for (auto& sink : sinks_) {
    tables_.emplace(sink.compiled.query_index, std::move(sink.table));
  }
  sinks_.clear();
  for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
    if (tables_.count(static_cast<int>(i)) > 0) continue;
    run_collection_query(static_cast<int>(i));
  }
}

void QueryEngine::materialize_switch_tables() {
  for (auto& sw : switches_) {
    const auto& q = program_.analysis.queries[static_cast<std::size_t>(
        sw.plan->query_index)];
    ResultTable table(q.output);
    sw.store->backing().for_each([&](const kv::Key& key,
                                     const kv::StateVector& value,
                                     bool /*valid*/) {
      std::vector<double> row = compiler::unpack_key(*sw.plan, key);
      for (std::size_t d = 0; d < value.dims(); ++d) row.push_back(value[d]);
      table.add_row(std::move(row));
    });
    tables_.emplace(sw.plan->query_index, std::move(table));
  }
}

namespace {

/// Name resolver over a schema for row-based evaluation.
compiler::Resolver schema_resolver(const lang::Schema& schema) {
  return [&schema](const std::string& name) -> std::optional<compiler::Slot> {
    const int idx = schema.index_of(name);
    if (idx < 0) {
      // Query-level value constants (TCP/UDP) still resolve in row context
      // through sema's constant folding; anything left unknown is an error.
      return std::nullopt;
    }
    return compiler::Slot{0, idx};
  };
}

}  // namespace

void QueryEngine::run_collection_query(int index) {
  const auto& q = program_.analysis.queries[static_cast<std::size_t>(index)];

  switch (q.def.kind) {
    case lang::QueryDef::Kind::kSelect: {
      if (q.output.stream_over_base) return;  // intermediate stream: no table
      const ResultTable* in = find_table(q.input);
      check(in != nullptr, "collection: input table missing");
      const lang::Schema& in_schema = in->schema();
      const auto resolver = schema_resolver(in_schema);
      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<compiler::ScalarExpr> projections;
      projections.reserve(q.projections.size());
      for (const auto& p : q.projections) {
        projections.push_back(compiler::ScalarExpr::compile(*p.expr, resolver));
      }
      ResultTable out(q.output);
      for (const auto& row : in->rows()) {
        const compiler::RowSource source({row.data(), row.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> projected;
        projected.reserve(projections.size());
        for (const auto& p : projections) projected.push_back(p.eval(source));
        out.add_row(std::move(projected));
      }
      tables_.emplace(index, std::move(out));
      return;
    }

    case lang::QueryDef::Kind::kGroupBy: {
      check(!q.on_switch, "collection: on-switch groupby reached soft path");
      const ResultTable* in = find_table(q.input);
      check(in != nullptr, "collection: input table missing");
      const lang::Schema& in_schema = in->schema();
      const auto resolver = schema_resolver(in_schema);

      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<std::size_t> key_idx;
      for (const auto& k : q.key_columns) {
        key_idx.push_back(static_cast<std::size_t>(in_schema.index_of(k)));
      }

      // Aggregation executors over rows.
      struct SoftAgg {
        lang::AggregationSpec::Kind kind;
        std::optional<compiler::ScalarExpr> sum_expr;
        std::optional<compiler::FoldBody> fold;
        std::size_t dims = 1;
      };
      std::vector<SoftAgg> aggs;
      std::size_t value_dims = 0;
      for (const auto& spec : q.aggregations) {
        SoftAgg agg;
        agg.kind = spec.kind;
        if (spec.kind == lang::AggregationSpec::Kind::kSum) {
          agg.sum_expr = compiler::ScalarExpr::compile(*spec.sum_expr, resolver);
        } else if (spec.kind == lang::AggregationSpec::Kind::kFold) {
          const int fi = program_.analysis.fold_index(spec.fold_name);
          check(fi >= 0, "collection: unknown fold");
          const auto& fold = program_.analysis.folds[static_cast<std::size_t>(fi)];
          agg.fold = compiler::FoldBody::compile(fold.def, resolver);
          agg.dims = fold.def.state_vars.size();
        }
        value_dims += agg.dims;
        aggs.push_back(std::move(agg));
      }

      std::map<std::vector<double>, std::vector<double>> groups;
      for (const auto& row : in->rows()) {
        const compiler::RowSource source({row.data(), row.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> key;
        key.reserve(key_idx.size());
        for (const auto i : key_idx) key.push_back(row[i]);
        auto [it, inserted] = groups.try_emplace(std::move(key));
        if (inserted) it->second.assign(value_dims, 0.0);
        std::size_t off = 0;
        for (const auto& agg : aggs) {
          switch (agg.kind) {
            case lang::AggregationSpec::Kind::kCount:
              it->second[off] += 1.0;
              break;
            case lang::AggregationSpec::Kind::kSum:
              it->second[off] += agg.sum_expr->eval(source);
              break;
            case lang::AggregationSpec::Kind::kFold:
              agg.fold->execute(
                  {it->second.data() + off, agg.dims}, source);
              break;
          }
          off += agg.dims;
        }
      }

      ResultTable out(q.output);
      for (const auto& [key, values] : groups) {
        std::vector<double> row = key;
        row.insert(row.end(), values.begin(), values.end());
        out.add_row(std::move(row));
      }
      tables_.emplace(index, std::move(out));
      return;
    }

    case lang::QueryDef::Kind::kJoin: {
      const ResultTable* left = find_table(q.left);
      const ResultTable* right = find_table(q.right);
      check(left != nullptr && right != nullptr, "collection: join input missing");
      const lang::Schema& ls = left->schema();
      const lang::Schema& rs = right->schema();

      std::vector<std::size_t> lkey;
      std::vector<std::size_t> rkey;
      for (const auto& k : q.key_columns) {
        lkey.push_back(static_cast<std::size_t>(ls.index_of(k)));
        rkey.push_back(static_cast<std::size_t>(rs.index_of(k)));
      }
      std::vector<std::size_t> lval;
      std::vector<std::size_t> rval;
      for (std::size_t c = 0; c < ls.size(); ++c) {
        if (std::find(lkey.begin(), lkey.end(), c) == lkey.end()) {
          lval.push_back(c);
        }
      }
      for (std::size_t c = 0; c < rs.size(); ++c) {
        if (std::find(rkey.begin(), rkey.end(), c) == rkey.end()) {
          rval.push_back(c);
        }
      }

      // Hash join (keys are unique on both sides by construction).
      std::map<std::vector<double>, const std::vector<double>*> left_index;
      for (const auto& row : left->rows()) {
        std::vector<double> key;
        for (const auto i : lkey) key.push_back(row[i]);
        left_index.emplace(std::move(key), &row);
      }

      const auto resolver = schema_resolver(q.joined_schema);
      std::optional<compiler::ScalarExpr> where;
      if (q.def.where) {
        where = compiler::ScalarExpr::compile(*q.def.where, resolver);
      }
      std::vector<compiler::ScalarExpr> projections;
      for (const auto& p : q.projections) {
        projections.push_back(compiler::ScalarExpr::compile(*p.expr, resolver));
      }

      ResultTable out(q.output);
      for (const auto& rrow : right->rows()) {
        std::vector<double> key;
        for (const auto i : rkey) key.push_back(rrow[i]);
        const auto it = left_index.find(key);
        if (it == left_index.end()) continue;
        // Joined row in joined_schema order: keys, left non-keys, right
        // non-keys (matching sema's construction).
        std::vector<double> joined = key;
        for (const auto i : lval) joined.push_back((*it->second)[i]);
        for (const auto i : rval) joined.push_back(rrow[i]);
        const compiler::RowSource source({joined.data(), joined.size()});
        if (where.has_value() && !where->eval_bool(source)) continue;
        std::vector<double> row = key;
        for (const auto& p : projections) row.push_back(p.eval(source));
        out.add_row(std::move(row));
      }
      tables_.emplace(index, std::move(out));
      return;
    }
  }
}

ResultTable& QueryEngine::table_for(int index) {
  const auto it = tables_.find(index);
  check(it != tables_.end(), "QueryEngine: table not materialized");
  return it->second;
}

const ResultTable* QueryEngine::find_table(int index) const {
  const auto it = tables_.find(index);
  return it == tables_.end() ? nullptr : &it->second;
}

const ResultTable& QueryEngine::result() const {
  check(finished_, "QueryEngine: result before finish");
  const int last = static_cast<int>(program_.analysis.queries.size()) - 1;
  const ResultTable* t = find_table(last);
  check(t != nullptr, "QueryEngine: program result not materialized");
  return *t;
}

const ResultTable& QueryEngine::table(std::string_view name) const {
  check(finished_, "QueryEngine: table before finish");
  const int idx = program_.analysis.query_index(name);
  if (idx < 0) {
    throw QueryError{"result", "unknown table '" + std::string{name} + "'"};
  }
  const ResultTable* t = find_table(idx);
  if (t == nullptr) {
    throw QueryError{"result", "table '" + std::string{name} +
                                   "' is a stream intermediate and was not "
                                   "materialized"};
  }
  return *t;
}

std::vector<StoreStats> QueryEngine::store_stats() const {
  std::vector<StoreStats> out;
  for (const auto& sw : switches_) {
    StoreStats s;
    s.name = sw.plan->name;
    s.linearity = sw.plan->linearity;
    s.cache = sw.store->cache().stats();
    s.accuracy = sw.store->backing().accuracy();
    s.backing_writes = sw.store->backing().writes();
    s.backing_capacity_writes = sw.store->backing().capacity_writes();
    s.keys = sw.store->backing().key_count();
    out.push_back(std::move(s));
  }
  return out;
}

const kv::KeyValueStore& QueryEngine::store(std::string_view query_name) const {
  for (const auto& sw : switches_) {
    if (sw.plan->name == query_name) return *sw.store;
  }
  throw QueryError{"result",
                   "no switch query named '" + std::string{query_name} + "'"};
}

}  // namespace perfq::runtime
