// Structured engine faults: the failure-domain contract of the runtime.
//
// Both engines convert ANY exception escaping their processing machinery —
// a worker/dispatcher/merge thread body in the sharded engine, the fold or
// stream-sink path in the serial one, or a drain-watchdog expiry — into one
// permanent poisoned state: the first exception wins the engine's FaultSlot,
// every sibling thread unwinds cleanly (no std::terminate, no wedged peer),
// and every subsequent engine call (process_batch / finish / snapshot /
// result / table / store_stats) throws an EngineFaultError carrying the
// originating thread role, shard id and cause, instead of hanging or
// corrupting results. See the "Failure semantics" section of engine_api.hpp
// for the full contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace perfq::runtime {

/// Which engine thread the first fault originated on.
enum class ThreadRole : std::uint8_t {
  kCaller,      ///< the application thread, inside an engine call
  kDispatcher,  ///< a helper dispatcher thread (sharded, D > 1)
  kWorker,      ///< a shard worker thread
  kMerge,       ///< the eviction merge thread
  kWatchdog,    ///< a drain deadline expired on the caller thread
};

[[nodiscard]] constexpr const char* to_string(ThreadRole role) {
  switch (role) {
    case ThreadRole::kCaller: return "caller";
    case ThreadRole::kDispatcher: return "dispatcher";
    case ThreadRole::kWorker: return "worker";
    case ThreadRole::kMerge: return "merge";
    case ThreadRole::kWatchdog: return "watchdog";
  }
  return "?";
}

/// Shard id meaning "not shard-specific" (caller/merge/watchdog faults).
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// The structured error a poisoned engine throws from every call. `cause` is
/// the what() of the original exception; `diagnostic` is the watchdog's
/// pipeline dump (ring occupancy, eviction counters, thread states) when the
/// fault is a drain-deadline expiry, empty otherwise.
class EngineFaultError : public Error {
 public:
  EngineFaultError(ThreadRole role, std::size_t shard, std::string cause,
                   std::string diagnostic = {})
      : Error(format(role, shard, cause, diagnostic)),
        role_(role),
        shard_(shard),
        cause_(std::move(cause)),
        diagnostic_(std::move(diagnostic)) {}

  [[nodiscard]] ThreadRole role() const { return role_; }
  /// Originating shard, or kNoShard when the fault is not shard-specific.
  [[nodiscard]] std::size_t shard() const { return shard_; }
  [[nodiscard]] const std::string& cause() const { return cause_; }
  [[nodiscard]] const std::string& diagnostic() const { return diagnostic_; }

 private:
  static std::string format(ThreadRole role, std::size_t shard,
                            const std::string& cause,
                            const std::string& diagnostic) {
    std::string out = "engine fault [";
    out += to_string(role);
    if (shard != kNoShard) out += " shard " + std::to_string(shard);
    out += "]: " + cause;
    if (!diagnostic.empty()) out += "\n" + diagnostic;
    return out;
  }

  ThreadRole role_;
  std::size_t shard_;
  std::string cause_;
  std::string diagnostic_;
};

/// First-exception-wins slot shared by every engine thread. record() is safe
/// from any thread (one CAS decides the winner; losers are dropped — the
/// first fault is the root cause, later ones are its fallout). faulted() is
/// an acquire load, so once it returns true the winner's fields are visible
/// and raise()/describe() may read them. The engine guarantees only the
/// caller thread reads the slot (its own API calls), so no lock is needed.
class FaultSlot {
 public:
  /// Record a fault; returns true if this call won the slot.
  bool record(ThreadRole role, std::size_t shard, std::string cause,
              std::string diagnostic = {}) noexcept {
    int expected = kClear;
    if (!state_.compare_exchange_strong(expected, kWriting,
                                        std::memory_order_acquire)) {
      return false;
    }
    // The winner: fill the fields, then publish with a release store that
    // pairs with faulted()'s acquire.
    try {
      role_ = role;
      shard_ = shard;
      cause_ = std::move(cause);
      diagnostic_ = std::move(diagnostic);
    } catch (...) {
      cause_ = "fault (detail lost: out of memory)";
    }
    state_.store(kSet, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool faulted() const noexcept {
    return state_.load(std::memory_order_acquire) == kSet;
  }

  /// Throw the recorded fault. Only call after faulted() returned true.
  [[noreturn]] void raise() const {
    throw EngineFaultError{role_, shard_, cause_, diagnostic_};
  }

  [[nodiscard]] ThreadRole role() const { return role_; }
  [[nodiscard]] std::size_t shard() const { return shard_; }

 private:
  enum : int { kClear, kWriting, kSet };
  std::atomic<int> state_{kClear};
  ThreadRole role_ = ThreadRole::kCaller;
  std::size_t shard_ = kNoShard;
  std::string cause_;
  std::string diagnostic_;
};

}  // namespace perfq::runtime
