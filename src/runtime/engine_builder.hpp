// Fluent construction of any Engine — the single entry point of the runtime.
//
//   auto engine = runtime::EngineBuilder(compiler::compile_source(src))
//                     .geometry(kv::CacheGeometry::set_associative(4096, 8))
//                     .refresh(1_s)
//                     .sharded(8).dispatchers(2)
//                     .build();   // std::unique_ptr<Engine>
//
// Without sharded(N) the builder produces the serial QueryEngine; with it,
// the multi-core ShardedEngine — same results either way (the sharded
// runtime is bit-identical for linear kernels), so the choice is purely a
// deployment knob. Sharded-only tuning knobs (dispatchers, ring_capacity,
// dispatch_batch, backing_shards, eviction_batch, drain_timeout) are
// rejected at build() when no sharding was requested, so a config can't
// silently misapply.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "runtime/engine_api.hpp"

namespace perfq::runtime {

class EngineBuilder {
 public:
  explicit EngineBuilder(compiler::CompiledProgram program)
      : program_(std::move(program)) {}

  /// Cache geometry for every on-switch GROUPBY (total budget; the sharded
  /// engine slices it across shards).
  EngineBuilder& geometry(const kv::CacheGeometry& g) {
    config_.geometry = g;
    return *this;
  }
  /// Per-query geometry override.
  EngineBuilder& query_geometry(const std::string& query,
                                const kv::CacheGeometry& g) {
    config_.per_query_geometry[query] = g;
    return *this;
  }
  EngineBuilder& hash_seed(std::uint64_t seed) {
    config_.hash_seed = seed;
    return *this;
  }
  EngineBuilder& eviction_policy(kv::EvictionPolicy policy) {
    config_.eviction_policy = policy;
    return *this;
  }
  /// Row cap of default (table) stream sinks; see EngineConfig.
  EngineBuilder& max_stream_rows(std::size_t rows) {
    config_.max_stream_rows = rows;
    return *this;
  }
  /// Periodic cache→backing refresh interval (§3.2); zero disables.
  EngineBuilder& refresh(Nanos interval) {
    config_.refresh_interval = interval;
    return *this;
  }
  /// Attach a user sink to the named stream SELECT query (stream_sink.hpp).
  EngineBuilder& stream_sink(const std::string& query,
                             std::shared_ptr<StreamSink> sink) {
    config_.stream_sinks[query] = std::move(sink);
    return *this;
  }
  /// Verify IPv4 header checksums on the wire ingest path
  /// (Engine::process_wire_batch); failures skip-and-count as bad_checksum.
  /// Off by default — software captures rarely carry valid checksums.
  EngineBuilder& verify_checksums(bool on = true) {
    config_.verify_checksums = on;
    return *this;
  }

  /// Scale the store across `num_shards` worker cores (0 = serial engine,
  /// the default). Requires num_buckets % num_shards == 0 per geometry.
  EngineBuilder& sharded(std::size_t num_shards) {
    shards_ = num_shards;
    return *this;
  }
  /// Dispatcher thread count D (sharded only; default 1 = the caller thread
  /// dispatches alone). D > 1 routes batch slices concurrently.
  EngineBuilder& dispatchers(std::size_t num_dispatchers) {
    dispatchers_ = num_dispatchers;
    return *this;
  }
  /// Capacity of each (dispatcher, shard) record ring, in messages.
  EngineBuilder& ring_capacity(std::size_t messages) {
    ring_capacity_ = messages;
    return *this;
  }
  /// Records a dispatcher stages per shard before publishing.
  EngineBuilder& dispatch_batch(std::size_t records) {
    dispatch_batch_ = records;
    return *this;
  }
  /// Sub-stores per query in the concurrent backing store (0 = num_shards).
  EngineBuilder& backing_shards(std::size_t stores) {
    backing_shards_ = stores;
    return *this;
  }
  /// Evictions a shard worker buffers before handing them to the merger.
  EngineBuilder& eviction_batch(std::size_t evictions) {
    eviction_batch_ = evictions;
    return *this;
  }
  /// Drain watchdog deadline for every caller-side wait on the sharded
  /// pipeline (full-ring pushes, batch completion, snapshot barriers, the
  /// finish() joins). On expiry the blocked call throws EngineFaultError
  /// with a pipeline diagnostic instead of hanging. Zero disables.
  EngineBuilder& drain_timeout(std::chrono::milliseconds deadline) {
    drain_timeout_ = deadline;
    return *this;
  }
  /// Background metrics sampling (either engine): a sampler thread polls
  /// Engine::metrics() every `interval` into a bounded ring of `capacity`
  /// samples (oldest dropped), readable via Engine::metrics_series(). The
  /// live metrics() surface is always on regardless — this knob only adds
  /// the time-series view.
  EngineBuilder& metrics_sampler(std::chrono::milliseconds interval,
                                 std::size_t capacity = 256) {
    sampler_interval_ = interval;
    sampler_capacity_ = capacity;
    return *this;
  }

  /// Construct the engine. Consumes the builder's program: call once.
  [[nodiscard]] std::unique_ptr<Engine> build();

 private:
  compiler::CompiledProgram program_;
  EngineConfig config_;
  std::size_t shards_ = 0;  ///< 0 = serial QueryEngine
  std::optional<std::size_t> dispatchers_;
  std::optional<std::size_t> ring_capacity_;
  std::optional<std::size_t> dispatch_batch_;
  std::optional<std::size_t> backing_shards_;
  std::optional<std::size_t> eviction_batch_;
  std::optional<std::chrono::milliseconds> drain_timeout_;
  std::optional<std::chrono::milliseconds> sampler_interval_;
  std::size_t sampler_capacity_ = 256;
  bool built_ = false;
};

}  // namespace perfq::runtime
