// The engine-internal driver of stream SELECT sinks, shared by QueryEngine
// and ShardedEngine: finds the program's unconsumed stream SELECTs, wires
// each to its StreamSink (user-provided via EngineConfig::stream_sinks, or a
// default TableStreamSink), evaluates filters/projections per record on the
// caller thread (row appends are order-sensitive and must match the serial
// engine exactly), and delivers the buffered rows once per engine-level
// process_batch() call.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/program.hpp"
#include "runtime/engine_api.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

class StreamStage {
 public:
  /// Compiles the program's stream sinks and validates
  /// `config.stream_sinks` (unknown or non-stream names throw ConfigError).
  /// `program` must outlive the stage.
  StreamStage(const compiler::CompiledProgram& program,
              const EngineConfig& config);

  /// No stream sinks in the program: observe() calls can be skipped.
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Evaluate every sink's filter/projections on one record (record order).
  /// Generic over the record representation; the wire ingest path evaluates
  /// straight off frame bytes. Instantiated in stream_stage.cpp.
  template <typename Rec>
  void observe(const Rec& rec);

  /// Flush the rows buffered since the last deliver() to the sinks — one
  /// on_batch() per sink per process_batch() call with matching rows.
  void deliver();

  /// deliver() any tail rows, signal on_finish(), and materialize the table
  /// of every sink that exposes one (default table sinks are moved,
  /// user-provided ones copied): base-program entries into `tables` by query
  /// index, dynamically attached ones into `attached_tables` by name (their
  /// query indices belong to their own programs and would collide).
  void finish(std::map<int, ResultTable>& tables,
              std::map<std::string, ResultTable, std::less<>>& attached_tables);

  /// Dynamically attach one stream-SELECT tenant. `program` must classify as
  /// AttachKind::kStreamSelect (the engine validates before calling) and is
  /// kept alive by the entry. `epoch` is the attach record boundary reported
  /// via StreamSinkMetrics::attach_records. Caller-thread only, serialized
  /// with observe()/deliver() by the engine's lifecycle contract.
  void attach(std::shared_ptr<const compiler::CompiledProgram> program,
              const std::string& name, std::shared_ptr<StreamSink> sink,
              const EngineConfig& config, std::uint64_t epoch);

  /// Detach a dynamically attached tenant: deliver its buffered rows, signal
  /// on_finish(), return its table (empty-by-schema if the sink exposes
  /// none), drop the entry. Throws QueryError if `name` is unknown or names
  /// a base-program stream.
  ResultTable detach(std::string_view name);

  /// Whether any live entry (base or attached) has this result name.
  [[nodiscard]] bool has(std::string_view name) const;

  /// Whether a DYNAMICALLY ATTACHED entry has this name (engines use this to
  /// reject base-program detaches cleanly, before any side effects).
  [[nodiscard]] bool has_attached(std::string_view name) const;

  /// Append one StreamSinkMetrics per stream query (delivery counts come
  /// from single-writer slots; drop counts from the sinks). Safe from a
  /// metrics thread while the caller thread delivers, PROVIDED the engine
  /// guards attach()/detach() against collect() (topology mutex).
  void collect(std::vector<StreamSinkMetrics>& out) const;

 private:
  struct Entry {
    compiler::CompiledStreamSelect compiled;
    std::string name;          ///< result name ("" if unnamed)
    lang::Schema schema;
    std::shared_ptr<StreamSink> sink;
    TableStreamSink* default_sink = nullptr;  ///< set iff engine-owned
    std::vector<std::vector<double>> batch;   ///< rows since last deliver()
    obs::RelaxedU64 delivered;  ///< rows offered via on_batch (caller thread)
    /// Attached tenants own their compiled program (base entries borrow the
    /// engine's); doubles as the is-attached flag.
    std::shared_ptr<const compiler::CompiledProgram> attached_program;
    std::uint64_t attach_records = 0;  ///< attach epoch
  };

  void deliver_entry(Entry& entry);

  std::vector<Entry> entries_;
};

}  // namespace perfq::runtime
