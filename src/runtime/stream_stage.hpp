// The engine-internal driver of stream SELECT sinks, shared by QueryEngine
// and ShardedEngine: finds the program's unconsumed stream SELECTs, wires
// each to its StreamSink (user-provided via EngineConfig::stream_sinks, or a
// default TableStreamSink), evaluates filters/projections per record on the
// caller thread (row appends are order-sensitive and must match the serial
// engine exactly), and delivers the buffered rows once per engine-level
// process_batch() call.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/program.hpp"
#include "runtime/engine_api.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

class StreamStage {
 public:
  /// Compiles the program's stream sinks and validates
  /// `config.stream_sinks` (unknown or non-stream names throw ConfigError).
  /// `program` must outlive the stage.
  StreamStage(const compiler::CompiledProgram& program,
              const EngineConfig& config);

  /// No stream sinks in the program: observe() calls can be skipped.
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Evaluate every sink's filter/projections on one record (record order).
  /// Generic over the record representation; the wire ingest path evaluates
  /// straight off frame bytes. Instantiated in stream_stage.cpp.
  template <typename Rec>
  void observe(const Rec& rec);

  /// Flush the rows buffered since the last deliver() to the sinks — one
  /// on_batch() per sink per process_batch() call with matching rows.
  void deliver();

  /// deliver() any tail rows, signal on_finish(), and materialize the table
  /// of every sink that exposes one (default table sinks are moved,
  /// user-provided ones copied) into `tables` by query index.
  void finish(std::map<int, ResultTable>& tables);

  /// Append one StreamSinkMetrics per stream query (delivery counts come
  /// from single-writer slots; drop counts from the sinks). Safe from a
  /// metrics thread while the caller thread delivers.
  void collect(std::vector<StreamSinkMetrics>& out) const;

 private:
  struct Entry {
    compiler::CompiledStreamSelect compiled;
    std::string name;          ///< result name ("" if unnamed)
    lang::Schema schema;
    std::shared_ptr<StreamSink> sink;
    TableStreamSink* default_sink = nullptr;  ///< set iff engine-owned
    std::vector<std::vector<double>> batch;   ///< rows since last deliver()
    obs::RelaxedU64 delivered;  ///< rows offered via on_batch (caller thread)
  };

  std::vector<Entry> entries_;
};

}  // namespace perfq::runtime
