// The sharded multi-core runtime: ShardedEngine.
//
// Topology (dispatchers → D×N ring matrix → shard workers → eviction queues
// → merge thread → concurrent backing store):
//
//   D dispatcher threads (the caller thread is dispatcher 0; D-1 helpers)
//     - each owns a disjoint contiguous slice of every input batch: it
//       evaluates each switch query's prefilter, computes the key's hash
//       straight from the record (record-direct routing — for plain-field
//       keys the compiler::KeyRouter packs and hashes on the stack, no
//       kv::Key materialized) and routes the record to shard = high bits of
//       the cache-placement hash (RSS-style);
//     - publishes batched messages into its own per-shard SPSC ring — ring
//       (d, s) has exactly one producer (dispatcher d) and one consumer
//       (worker s), so the D×N matrix needs no locks anywhere;
//     - stamps every message with a global sequence number (the record's
//       position in the stream), and ends every batch slice with a watermark
//       so consumers know the ring has gone quiet up to a bound.
//   N shard workers
//     - each merges its D input rings in sequence order (smallest seq whose
//       safety bound proves no other ring can still deliver an earlier one),
//       re-packs the key on its own core (reusing the dispatcher's hash via
//       Key::pack_prehashed — the byte-level hash is still computed once per
//       record), and folds through the same SwitchFoldCore hot path
//       QueryEngine uses against its private bucket-slice cache;
//     - cache evictions are buffered and enqueued onto the shard's MPSC
//       eviction queue instead of synchronously touching the backing store.
//   1 merge thread
//     - drains the eviction queues into the per-query ShardedBackingStore
//       (sharded by key, one mutex per sub-store), so the paper's periodic
//       refresh keeps the backing store fresh while workers keep folding.
//
// Determinism: the sequence-ordered merge means every worker folds exactly
// the record subsequence — in exactly the global order — that the serial
// dispatcher of PR 2 would have fed it, so the PR 2 guarantee carries over
// unchanged for every D: shard s's cache is exactly the bucket slice
// [s·n/N, (s+1)·n/N) of the single engine's n-bucket cache — same bucket
// contents, same LRU order, same capacity evictions, same flush times — and
// results are bit-identical to QueryEngine's for every linear-kernel query
// (identical value-segment sets and AccuracyStats for non-linear kernels).
// Refresh boundaries are detected once, in global record order, by the
// caller's pre-scan and shipped in-band with the sequence number of the
// record they precede. Requires num_buckets % num_shards == 0 per query
// geometry (and LRU/FIFO eviction; kRandom draws per-shard RNG streams and
// is only statistically equivalent).
//
// Failure domains: every worker/dispatcher/merge thread body is wrapped so
// the first escaping exception is captured into a shared FaultSlot, a stop
// flag converts every inter-thread spin (ring push/pop, lane merge, job
// completion, snapshot rendezvous) into a stop-aware bounded wait, sibling
// threads unwind cleanly, and the engine enters a permanent poisoned state:
// process_batch/finish/snapshot throw a structured EngineFaultError (role,
// shard, cause) — never a hang, never std::terminate. Caller-side drains are
// additionally guarded by a configurable watchdog (drain_timeout) that
// converts a wedged pipeline into an EngineFaultError carrying a diagnostic
// dump. See engine_fault.hpp and engine_api.hpp ("Failure semantics").
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "compiler/key_router.hpp"
#include "compiler/program.hpp"
#include "kvstore/sharded_backing_store.hpp"
#include "runtime/engine_api.hpp"
#include "runtime/engine_fault.hpp"
#include "runtime/fold_core.hpp"
#include "runtime/stream_stage.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

struct ShardedEngineConfig {
  /// Geometry/seed/policy/refresh/stream settings, shared with QueryEngine.
  /// The geometry is the *total* cache budget: each shard gets a
  /// 1/num_shards bucket slice of it.
  EngineConfig engine;
  /// Worker thread count (each owns one cache slice per query and one ring
  /// per dispatcher).
  std::size_t num_shards = 4;
  /// Dispatcher thread count D. 1 (default) = the caller thread dispatches
  /// alone, exactly PR 2's topology. D > 1 splits every batch into D
  /// contiguous slices dispatched concurrently (the caller takes slice 0,
  /// D-1 helper threads the rest) through a D×num_shards ring matrix; the
  /// workers' sequence-ordered merge keeps results bit-identical.
  std::size_t num_dispatchers = 1;
  /// Capacity of each (dispatcher, shard) SPSC record ring, in messages
  /// (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
  /// Records a dispatcher stages per shard before publishing to the ring.
  std::size_t dispatch_batch = 256;
  /// Sub-stores per query in the concurrent backing store (0 = num_shards).
  std::size_t backing_shards = 0;
  /// Evictions a worker buffers before pushing to its MPSC eviction queue.
  std::size_t eviction_batch = 128;
  /// Drain watchdog deadline for every caller-side wait on the pipeline's
  /// threads (full-ring pushes, the co-dispatcher batch completion, the
  /// snapshot rendezvous + eviction drain barrier, and the finish() thread
  /// exits). On expiry the engine records a watchdog fault with a pipeline
  /// diagnostic dump (ring occupancy, eviction counters, thread states) and
  /// the blocked call throws EngineFaultError instead of waiting forever.
  /// Zero disables the watchdog (waits become unbounded but stay stop-aware).
  std::chrono::milliseconds drain_timeout{10'000};
};

/// Drop-in multi-core implementation of the Engine interface (see the file
/// comment for the equivalence guarantee). Construct through
/// runtime::EngineBuilder::sharded(N) unless you need the concrete type.
class ShardedEngine final : public Engine {
 public:
  explicit ShardedEngine(compiler::CompiledProgram program,
                         ShardedEngineConfig config = {});
  ~ShardedEngine() override;

  /// Dispatch a batch of time-ordered records to the shard pipeline. Returns
  /// once every record is staged or published; folding proceeds async.
  void process_batch(std::span<const PacketRecord> records) override;

  /// Wire-burst front end: validate every frame (damaged frames skip-and-
  /// count), decode survivors once into a reusable caller-owned buffer, then
  /// run the ordinary dispatch pipeline. The sharded topology ships records
  /// BY VALUE through its ring matrix (workers outlive the caller's frame
  /// buffers), so — unlike QueryEngine's fully lazy override — the decode is
  /// not skipped, only fused: one pass, no per-burst allocation in steady
  /// state, identical skip/count semantics. Results are bit-identical to
  /// parse-then-process_batch.
  trace::IngestStats process_wire_batch(
      std::span<const FrameObservation> frames) override;

  /// Drain rings and eviction queues, join all threads, then materialize
  /// results (cross-shard union is exact; see file comment). Call once.
  void finish(Nanos now) override;

  [[nodiscard]] const ResultTable& result() const override;
  [[nodiscard]] const ResultTable& table(std::string_view name) const override;

  /// Mid-run pull without stopping the pipeline: an in-band snapshot marker
  /// is broadcast at the current record boundary (seq 2·records); each shard
  /// worker, on merging past it, hands its pending evictions to the merge
  /// thread and writes a non-destructive epoch-stamped copy of its live
  /// cache slices; the caller waits for those copies and for the merge
  /// thread to drain every pre-boundary eviction, then overlays them on a
  /// clone of the concurrent backing store with the exact-merge machinery.
  /// No thread is joined or stopped — folding resumes the moment the worker
  /// has written its copy. Bit-for-bit equal to QueryEngine::snapshot at the
  /// same boundary for linear kernels (see engine_api.hpp).
  using Engine::snapshot;
  [[nodiscard]] EngineSnapshot snapshot(std::string_view query_name,
                                        Nanos now) override;

  /// Federation export (contract in engine_api.hpp): mid-run it reaches the
  /// record boundary with the same in-band snapshot rendezvous as snapshot()
  /// and exports the merged clone; after finish() it reads the final
  /// concurrent backing store directly.
  [[nodiscard]] kv::StoreExport export_store(std::string_view query_name,
                                             Nanos now) override;

  /// Dynamic attach/detach without stopping the pipeline's threads
  /// (lifecycle contract in engine_api.hpp). Both quiesce the pipeline at
  /// the current record boundary with an in-band barrier (the snapshot
  /// rendezvous machinery, minus the cache copy), so the per-shard topology
  /// vectors can grow (attach) or a slot's structures can be freed (detach)
  /// with nothing in flight; folding resumes on the next batch. The tenant
  /// gets a bucket slice per shard (geometry.num_buckets must divide by
  /// num_shards) and its own ShardedBackingStore. Detach flushes the
  /// tenant's slices from the caller, drains the eviction queues, and frees
  /// the slot in place (indices of resident queries never move).
  void attach_query(compiler::CompiledProgram program,
                    const AttachOptions& options) override;
  ResultTable detach_query(std::string_view name, Nanos now) override;

  /// Aggregated per-query stats (cache counters summed across shards).
  /// Valid mid-run (per-counter coherence; see the metrics contract in
  /// engine_api.hpp) and after finish() (exact).
  [[nodiscard]] std::vector<StoreStats> store_stats() const override;

  /// Self-telemetry: driver counters, per-query store stats, the full
  /// pipeline state (per-shard eviction flow, per-dispatcher job progress,
  /// per-ring occupancy/stalls) and the latency histograms. Any thread, any
  /// time — including mid-run and on a poisoned engine; never blocks the
  /// pipeline (see the metrics coherence contract in engine_api.hpp).
  [[nodiscard]] EngineMetrics metrics() const override;

  /// The concurrent backing store of a switch query. Safe to read mid-run
  /// (locked per sub-store) — the paper's "monitoring applications can pull
  /// results" while folding continues. Unlike snapshot(), this view lags by
  /// whatever is cache-resident or still in flight to the merge thread.
  [[nodiscard]] const kv::ShardedBackingStore& backing(
      std::string_view query_name) const;

  [[nodiscard]] std::uint64_t records_processed() const override {
    return records_;
  }
  [[nodiscard]] std::uint64_t refresh_count() const override {
    return refreshes_;
  }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t num_dispatchers() const {
    return dispatchers_.size();
  }
  [[nodiscard]] const compiler::CompiledProgram& program() const override {
    return program_;
  }

 private:
  /// Idle backoff for the worker/merge/co-dispatcher poll loops: yield for
  /// this many empty polls (bursty traffic), then park in short sleeps
  /// (truly idle).
  static constexpr std::uint32_t kIdlePollsBeforeSleep = 256;
  static constexpr std::chrono::microseconds kIdleSleep{100};
  /// Messages a worker pops from one ring per refill pass.
  static constexpr std::size_t kPopChunk = 64;

  // Sequence numbering (the merge order): the record at global stream index
  // g carries seq 2g+1; a refresh flush firing *before* record g carries
  // seq 2g; a watermark bounding a batch that ends at index g carries 2g; a
  // snapshot marker at the record boundary after g records carries 2g too
  // (it can never collide with a flush: flushes always precede a record, so
  // their seq stays below the boundary's). Every processable message seq is
  // unique across a worker's D rings (one dispatcher owns each record and
  // each flush; snapshots come only from the caller's ring), so a candidate
  // is safe as soon as every other ring's next-possible seq is >= it.
  struct ShardMsg {
    enum class Kind : std::uint8_t {
      kRecord,
      kFlush,
      kSnapshot,
      /// Attach/detach quiesce marker: the worker pushes its pending
      /// evictions and acks through `snapshot_ready` (same rendezvous as
      /// kSnapshot, no cache copy). raw_hash carries the generation.
      kBarrier,
      kWatermark,
      kStop
    };
    Kind kind = Kind::kRecord;
    std::uint16_t query = 0;     ///< switch-instance index (kRecord/kSnapshot)
    std::uint64_t seq = 0;       ///< global merge order (see above)
    std::uint64_t raw_hash = 0;  ///< key's seed-0 byte hash (kRecord); the
                                 ///< snapshot generation (kSnapshot)
    PacketRecord rec;  ///< the record; rec.tin carries flush/snapshot time
  };

  struct TaggedEviction {
    std::uint16_t query = 0;
    kv::EvictedValue ev;
  };

  struct Shard {
    /// rings[d]: the SPSC conduit from dispatcher d (sole producer) to this
    /// shard's worker (sole consumer).
    std::vector<std::unique_ptr<SpscRing<ShardMsg>>> rings;
    MpscQueue<TaggedEviction> evictions;
    /// Per switch query. Slots of detached queries are null (indices of
    /// resident queries stay stable; the message `query` field indexes
    /// these directly).
    std::vector<std::unique_ptr<kv::Cache>> caches;
    std::vector<std::unique_ptr<SwitchFoldCore>> cores;  ///< parallel to caches
    std::vector<TaggedEviction> evict_buf;  ///< worker-local staging
    /// Snapshot rendezvous: the worker writes a non-destructive copy of the
    /// requested query's resident entries here, then publishes the
    /// generation through
    /// `snapshot_ready` (release); the caller spins on it (acquire). Only
    /// ever touched between those two fences, so no lock is needed.
    std::vector<TaggedEviction> snapshot_out;
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> snapshot_ready{0};
    /// Eviction flow accounting for the snapshot's drain barrier: the worker
    /// counts evictions handed to the MPSC queue, the merge thread counts
    /// absorptions; pushed == absorbed means the backing store has caught
    /// up with everything this worker produced.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> evictions_pushed{0};
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> evictions_absorbed{0};
    std::size_t index = 0;  ///< shard id, for fault attribution
    /// Set by the worker thread on its way out (normal exit, fault unwind,
    /// or stop-flag abandon). The watchdog-guarded joins wait on this so a
    /// wedged thread can be reported instead of hanging finish().
    std::atomic<bool> exited{false};
    std::thread thread;
  };

  /// A refresh boundary detected by the caller's serial pre-scan: the flush
  /// fires before the record at global stream index `pos`.
  struct FlushEvent {
    std::uint64_t pos = 0;
    Nanos time;
  };

  struct Dispatcher {
    /// Per-shard staging buffers (published to rings[this dispatcher]).
    std::vector<std::vector<ShardMsg>> staging;
    // Job slot for helper dispatchers (d >= 1): the caller writes the job
    // fields, then publishes them with a release store to `posted`; the
    // helper acknowledges through `completed`.
    std::span<const PacketRecord> job_slice;
    std::uint64_t job_base = 0;
    std::span<const FlushEvent> job_flushes;
    std::uint64_t job_watermark = 0;
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> posted{0};
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> exit{false};
    std::atomic<bool> exited{false};  ///< thread body finished (see Shard)
    /// Per-shard ring telemetry for this dispatcher's rings (single writer:
    /// this dispatcher — only thread d publishes to rings[d]). Stalls count
    /// publish() calls that blocked on a full ring at least once; the
    /// high-water mark samples ring occupancy after each publish.
    std::vector<obs::RelaxedU64> ring_stalls;
    std::vector<obs::RelaxedU64> ring_hwm;
    std::thread thread;  ///< helpers only; dispatcher 0 is the caller
  };

  /// One worker-side view of one input ring: messages drained FIFO into an
  /// unbounded local buffer (the worker always drains even when the merge
  /// is blocked on another ring — that keeps dispatchers from wedging on a
  /// full ring) plus the ring's proven lower bound on future seqs.
  struct Lane {
    std::vector<ShardMsg> buf;
    std::size_t head = 0;
    std::uint64_t bound = 0;  ///< future msgs from this ring have seq >= bound
    bool stopped = false;
  };

  /// Caller-side spin bookkeeping: bounded backoff plus the lazily armed
  /// drain-watchdog deadline (armed on the first blocked poll, so unblocked
  /// paths never read the clock).
  struct SpinState {
    std::uint32_t idle_polls = 0;
    std::chrono::steady_clock::time_point deadline{};
    bool armed = false;
  };

  void worker_loop(Shard& shard);
  /// D = 1 fast path: one ring, already in global sequence order — pop
  /// straight into the fold chunk with no lane buffering or merge.
  void worker_loop_single_lane(Shard& shard);
  /// Pass 1 of a gathered chunk slot: re-pack the record's key on this core
  /// and prefetch its cache bucket. Pass 2 (prepare/fold split shared by
  /// both worker loops).
  void worker_prepare(Shard& shard, std::size_t i, const ShardMsg& msg);
  void worker_process(Shard& shard, std::size_t i, ShardMsg& msg);
  void merge_loop();
  void co_dispatcher_loop(std::size_t d);
  /// Thread entry wrappers: run the loop, convert any escaping exception
  /// into the shared fault slot (first exception wins) + engine-wide stop,
  /// and flag exit — an engine thread can never reach std::terminate or die
  /// silently while its peers spin on it.
  void worker_main(Shard& shard);
  void merge_main();
  void co_dispatcher_main(std::size_t d);
  void on_thread_fault(ThreadRole role, std::size_t shard,
                       std::string cause) noexcept;
  /// Raise the stop flag: every ring push/pop loop, lane merge, idle poll
  /// and caller-side wait observes it and unwinds instead of spinning on a
  /// dead peer. Set on first fault (and never cleared — the engine is
  /// poisoned). Idempotent.
  void begin_stop() noexcept;
  /// Poisoned-state gate at every mutating entry point.
  void throw_if_faulted();
  /// One backoff step of a caller-side drain spin. When `what` is non-null
  /// the spin is watchdog-guarded: past the drain deadline it records a
  /// kWatchdog fault carrying pipeline_diagnostic() and raises stop (it does
  /// NOT throw — callers that must keep waiting for span safety check the
  /// fault themselves).
  void spin_backoff(SpinState& spin, const char* what);
  /// The watchdog's dump: per-ring occupancy, per-shard eviction
  /// pushed/absorbed counters, and thread exit states.
  [[nodiscard]] std::string pipeline_diagnostic(const char* what) const;
  /// Watchdog-guarded wait for a thread's exit flag (finish() path). Returns
  /// true when the thread exited (safe to join instantly); false when the
  /// deadline plus one grace period expired with the thread still wedged —
  /// the join is then deferred to the destructor.
  bool wait_exited(const std::atomic<bool>& exited, bool watchdog,
                   const char* what);
  /// Dispatch one contiguous slice as dispatcher d: route records, emit
  /// in-slice flushes, publish staging, and (for D > 1) end with a
  /// watermark carrying `watermark_seq`.
  void dispatch_slice(std::size_t d, std::span<const PacketRecord> slice,
                      std::uint64_t base, std::span<const FlushEvent> flushes,
                      std::uint64_t watermark_seq);
  void run_stream_sinks(std::span<const PacketRecord> records);
  /// Hand the worker's staged evictions to the merge thread, maintaining
  /// the pushed counter the snapshot drain barrier reads.
  static void push_evictions(Shard& sh);
  void stage(std::size_t d, std::size_t shard, ShardMsg&& msg);
  void publish(std::size_t d, std::size_t shard);
  /// Push one message to a ring, backing off while it is full. Stop-aware
  /// (the message is dropped once the engine is poisoned); `what` non-null
  /// adds the caller-side watchdog guard.
  void push_message(SpscRing<ShardMsg>& ring, ShardMsg&& msg,
                    const char* what);
  /// The batch-dispatch body of process_batch (which wraps it in the
  /// poisoned-state machinery).
  void process_batch_impl(std::span<const PacketRecord> records);
  [[nodiscard]] EngineSnapshot snapshot_impl(std::size_t query, Nanos now);
  /// Steps 1-4 of the mid-run snapshot: rendezvous at the record boundary,
  /// drain evictions, overlay every shard's cache copy on a clone of the
  /// concurrent store. Shared by snapshot_impl and export_store.
  [[nodiscard]] std::unique_ptr<kv::ShardedBackingStore> snapshot_merged_store(
      std::size_t query, Nanos now);
  /// Name → resident query index, or throws QueryError (shared by
  /// snapshot/export_store name resolution).
  [[nodiscard]] std::size_t resolve_switch_query(std::string_view query_name,
                                                 const char* what) const;
  /// Quiesce at the current record boundary: broadcast a kBarrier through
  /// the caller's rings, wait for every worker's ack, then run the eviction
  /// drain barrier — on return nothing is in flight and the backing stores
  /// are boundary-exact. Folding resumes with the next dispatched message.
  /// May record a watchdog fault (callers re-check with throw_if_faulted).
  void quiesce_pipeline(const char* what);
  /// The eviction drain barrier alone (pushed == absorbed per shard).
  void drain_eviction_barrier(const char* what);
  /// Send final kFlush (optionally) + kStop through every ring (helpers
  /// push their own on exit) and join all threads. `watchdog` guards the
  /// joins with the drain deadline (finish() path); the destructor passes
  /// false and joins unboundedly.
  void stop_pipeline(bool flush, Nanos now, bool watchdog);
  /// The cache-placement hash from a key's raw (seed-0) hash; identical to
  /// kv::placement_hash(key, hash_seed) without needing the key.
  [[nodiscard]] std::uint64_t placement_of_raw(std::uint64_t raw) const;
  [[nodiscard]] const ResultTable* find_table(int index) const;
  /// store_stats() minus the fault gate (metrics() must work poisoned).
  [[nodiscard]] std::vector<StoreStats> collect_store_stats() const;
  /// Fill the pipeline-state part of an EngineMetrics (shards, dispatchers,
  /// rings, merge state). Lock-free — also safe from the watchdog's
  /// diagnostic path while threads are wedged.
  void collect_pipeline(EngineMetrics& m) const;

  compiler::CompiledProgram program_;
  ShardedEngineConfig config_;
  std::uint64_t seed_mix_ = 0;  ///< mix64(hash_seed), precomputed
  /// Per switch query; a DETACHED query's slot is nulled in place (never
  /// erased — message `query` fields and eviction-sink closures index these
  /// vectors, so resident indices must stay stable).
  std::vector<const compiler::SwitchQueryPlan*> plans_;
  /// Record-direct router per plan; nullopt = computed key, expression path.
  std::vector<std::optional<compiler::KeyRouter>> routers_;
  std::vector<std::unique_ptr<kv::ShardedBackingStore>> backings_;
  /// Parallel to plans_: the owned program of a dynamically attached query
  /// (its plan pointer points into it); null for base-program queries.
  std::vector<std::shared_ptr<const compiler::CompiledProgram>>
      attached_programs_;
  std::vector<std::uint64_t> attach_records_;  ///< attach epoch per query
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  StreamStage stream_;
  std::vector<FlushEvent> flush_events_;  ///< per-batch scratch (caller only)
  std::vector<PacketRecord> wire_pending_;  ///< wire-burst scratch (caller only)
  std::thread merge_thread_;
  std::atomic<bool> merge_stop_{false};
  std::atomic<bool> merge_exited_{false};
  /// Failure-domain state: the first exception from any engine thread (or a
  /// watchdog expiry) wins fault_, raises stop_, and poisons the engine —
  /// see engine_fault.hpp and the "Failure semantics" notes in
  /// engine_api.hpp.
  FaultSlot fault_;
  std::atomic<bool> stop_{false};
  std::map<int, ResultTable> tables_;
  /// Final tables of queries still attached at finish(), by name.
  std::map<std::string, ResultTable, std::less<>> attached_tables_;
  /// Guards the query TOPOLOGY (plans_/routers_/backings_/shard cache+core
  /// vectors, stream entries) against metrics()/store_stats() readers. The
  /// pipeline threads never take it: attach/detach mutate only after the
  /// quiesce barrier proves nothing is in flight, and they are serialized
  /// with process_batch()/snapshot() by the caller (engine_api.hpp).
  mutable std::mutex topology_mu_;
  /// Telemetry slots (single writer: the caller thread, except absorb_ns_
  /// whose writer is the merge thread; metrics() reads from anywhere).
  obs::RelaxedU64 records_;
  obs::RelaxedU64 refreshes_;
  obs::RelaxedU64 batches_;
  obs::RelaxedU64 snapshots_;
  std::uint32_t batch_tick_ = 0;  ///< sampling phase for small-batch timing
  obs::LatencyHistogram batch_ns_;
  obs::LatencyHistogram snapshot_ns_;
  obs::LatencyHistogram absorb_ns_;  ///< merge-thread absorb sweep latency
  std::uint64_t snapshot_gen_ = 0;  ///< caller-side snapshot generation
  Nanos next_refresh_{0};
  bool finished_ = false;
  bool threads_stopped_ = false;
};

}  // namespace perfq::runtime
