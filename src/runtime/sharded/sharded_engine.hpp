// The sharded multi-core runtime: ShardedEngine.
//
// Topology (dispatcher → rings → shard workers → eviction queues → merge
// thread → concurrent backing store):
//
//   caller thread (dispatcher)
//     - evaluates each switch query's prefilter, extracts the aggregation
//       key (one hash per record per query) and routes the record to
//       shard = high bits of the cache-placement hash (RSS-style);
//     - batches messages per shard and publishes them into that shard's
//       fixed-capacity SPSC ring;
//     - runs stream SELECT sinks inline (they are order-sensitive appends);
//     - turns refresh boundaries into in-band flush messages, so every shard
//       flushes at exactly the same trace times as the single-threaded
//       engine.
//   N shard workers
//     - each owns a private per-shard cache per switch query (its *bucket
//       slice* of the configured geometry — see Cache's bucket_scale) and
//       folds records through the same SwitchFoldCore hot path QueryEngine
//       uses; zero cross-shard locking on the fold path;
//     - cache evictions are buffered and enqueued onto the shard's MPSC
//       eviction queue instead of synchronously touching the backing store.
//   1 merge thread
//     - drains the eviction queues into the per-query ShardedBackingStore
//       (sharded by key, one mutex per sub-store), so the paper's periodic
//       refresh keeps the backing store fresh while workers keep folding.
//
// Determinism: because shard s's cache is exactly the bucket slice
// [s·n/N, (s+1)·n/N) of the single engine's n-bucket cache — same bucket
// contents, same LRU order, same capacity evictions, same flush times — the
// sharded engine's results are bit-identical to QueryEngine's for every
// linear-kernel query (the exact merge applies the same epoch sequence per
// key), and non-linear kernels produce the identical value-segment sets and
// AccuracyStats. This is the paper's linear-in-state merge doing double duty:
// the operation that reconciles SRAM with DRAM also makes multi-core scale-
// out lossless. Requires num_buckets % num_shards == 0 per query geometry
// (and LRU/FIFO eviction; kRandom draws per-shard RNG streams and is only
// statistically equivalent).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "compiler/program.hpp"
#include "kvstore/sharded_backing_store.hpp"
#include "runtime/engine.hpp"
#include "runtime/fold_core.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

struct ShardedEngineConfig {
  /// Geometry/seed/policy/refresh/stream settings, shared with QueryEngine.
  /// The geometry is the *total* cache budget: each shard gets a
  /// 1/num_shards bucket slice of it.
  EngineConfig engine;
  /// Worker thread count (each owns one ring + one cache slice per query).
  std::size_t num_shards = 4;
  /// Capacity of each shard's SPSC record ring, in messages (rounded up to a
  /// power of two).
  std::size_t ring_capacity = 4096;
  /// Records the dispatcher stages per shard before publishing to the ring.
  std::size_t dispatch_batch = 256;
  /// Sub-stores per query in the concurrent backing store (0 = num_shards).
  std::size_t backing_shards = 0;
  /// Evictions a worker buffers before pushing to its MPSC eviction queue.
  std::size_t eviction_batch = 128;
};

/// Drop-in multi-core counterpart of QueryEngine (same process/finish/result
/// surface; see the file comment for the equivalence guarantee).
class ShardedEngine {
 public:
  explicit ShardedEngine(compiler::CompiledProgram program,
                         ShardedEngineConfig config = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  void process(const PacketRecord& rec) { process_batch({&rec, 1}); }

  /// Dispatch a batch of time-ordered records to the shard pipeline. Returns
  /// once every record is staged or published; folding proceeds async.
  void process_batch(std::span<const PacketRecord> records);

  /// Drain rings and eviction queues, join all threads, then materialize
  /// results (cross-shard union is exact; see file comment). Call once.
  void finish(Nanos now);

  [[nodiscard]] const ResultTable& result() const;
  [[nodiscard]] const ResultTable& table(std::string_view name) const;

  /// Aggregated per-query stats (cache counters summed across shards).
  /// Only valid after finish().
  [[nodiscard]] std::vector<StoreStats> store_stats() const;

  /// The concurrent backing store of a switch query. Safe to read mid-run
  /// (locked per sub-store) — the paper's "monitoring applications can pull
  /// results" while folding continues.
  [[nodiscard]] const kv::ShardedBackingStore& backing(
      std::string_view query_name) const;

  [[nodiscard]] std::uint64_t records_processed() const { return records_; }
  [[nodiscard]] std::uint64_t refresh_count() const { return refreshes_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const compiler::CompiledProgram& program() const {
    return program_;
  }

 private:
  /// Idle backoff for the worker/merge poll loops: yield for this many empty
  /// polls (bursty traffic), then park in short sleeps (truly idle).
  static constexpr std::uint32_t kIdlePollsBeforeSleep = 256;
  static constexpr std::chrono::microseconds kIdleSleep{100};

  struct ShardMsg {
    enum class Kind : std::uint8_t { kRecord, kFlush, kStop };
    Kind kind = Kind::kRecord;
    std::uint16_t query = 0;  ///< switch-instance index (kRecord)
    kv::Key key;              ///< extracted aggregation key (kRecord)
    PacketRecord rec;         ///< the record; rec.tin carries flush time
  };

  struct TaggedEviction {
    std::uint16_t query = 0;
    kv::EvictedValue ev;
  };

  struct Shard {
    explicit Shard(std::size_t ring_capacity) : ring(ring_capacity) {}
    SpscRing<ShardMsg> ring;
    MpscQueue<TaggedEviction> evictions;
    std::vector<std::unique_ptr<kv::Cache>> caches;  ///< per switch query
    std::vector<SwitchFoldCore> cores;               ///< parallel to caches
    std::vector<TaggedEviction> evict_buf;  ///< worker-local staging
    std::vector<ShardMsg> staging;          ///< dispatcher-local staging
    std::thread thread;
  };

  struct StreamSink {
    compiler::CompiledStreamSelect compiled;
    ResultTable table;
    bool overflowed = false;
  };

  void worker_loop(Shard& shard);
  void merge_loop();
  void stage(Shard& shard, ShardMsg&& msg);
  void publish(Shard& shard);
  /// Send kFlush (optionally) + kStop to every shard and join all threads.
  void stop_pipeline(bool flush, Nanos now);
  [[nodiscard]] const ResultTable* find_table(int index) const;

  compiler::CompiledProgram program_;
  ShardedEngineConfig config_;
  std::vector<const compiler::SwitchQueryPlan*> plans_;
  std::vector<std::unique_ptr<kv::ShardedBackingStore>> backings_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<StreamSink> sinks_;
  std::thread merge_thread_;
  std::atomic<bool> merge_stop_{false};
  std::map<int, ResultTable> tables_;
  std::uint64_t records_ = 0;
  std::uint64_t refreshes_ = 0;
  Nanos next_refresh_{0};
  bool finished_ = false;
  bool threads_stopped_ = false;
};

}  // namespace perfq::runtime
