// The sharded multi-core runtime: ShardedEngine.
//
// Topology (dispatchers → D×N ring matrix → shard workers → eviction queues
// → merge thread → concurrent backing store):
//
//   D dispatcher threads (the caller thread is dispatcher 0; D-1 helpers)
//     - each owns a disjoint contiguous slice of every input batch: it
//       evaluates each switch query's prefilter, computes the key's hash
//       straight from the record (record-direct routing — for plain-field
//       keys the compiler::KeyRouter packs and hashes on the stack, no
//       kv::Key materialized) and routes the record to shard = high bits of
//       the cache-placement hash (RSS-style);
//     - publishes batched messages into its own per-shard SPSC ring — ring
//       (d, s) has exactly one producer (dispatcher d) and one consumer
//       (worker s), so the D×N matrix needs no locks anywhere;
//     - stamps every message with a global sequence number (the record's
//       position in the stream), and ends every batch slice with a watermark
//       so consumers know the ring has gone quiet up to a bound.
//   N shard workers
//     - each merges its D input rings in sequence order (smallest seq whose
//       safety bound proves no other ring can still deliver an earlier one),
//       re-packs the key on its own core (reusing the dispatcher's hash via
//       Key::pack_prehashed — the byte-level hash is still computed once per
//       record), and folds through the same SwitchFoldCore hot path
//       QueryEngine uses against its private bucket-slice cache;
//     - cache evictions are buffered and enqueued onto the shard's MPSC
//       eviction queue instead of synchronously touching the backing store.
//   1 merge thread
//     - drains the eviction queues into the per-query ShardedBackingStore
//       (sharded by key, one mutex per sub-store), so the paper's periodic
//       refresh keeps the backing store fresh while workers keep folding.
//
// Determinism: the sequence-ordered merge means every worker folds exactly
// the record subsequence — in exactly the global order — that the serial
// dispatcher of PR 2 would have fed it, so the PR 2 guarantee carries over
// unchanged for every D: shard s's cache is exactly the bucket slice
// [s·n/N, (s+1)·n/N) of the single engine's n-bucket cache — same bucket
// contents, same LRU order, same capacity evictions, same flush times — and
// results are bit-identical to QueryEngine's for every linear-kernel query
// (identical value-segment sets and AccuracyStats for non-linear kernels).
// Refresh boundaries are detected once, in global record order, by the
// caller's pre-scan and shipped in-band with the sequence number of the
// record they precede. Requires num_buckets % num_shards == 0 per query
// geometry (and LRU/FIFO eviction; kRandom draws per-shard RNG streams and
// is only statistically equivalent).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"
#include "compiler/key_router.hpp"
#include "compiler/program.hpp"
#include "kvstore/sharded_backing_store.hpp"
#include "runtime/engine_api.hpp"
#include "runtime/fold_core.hpp"
#include "runtime/stream_stage.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

struct ShardedEngineConfig {
  /// Geometry/seed/policy/refresh/stream settings, shared with QueryEngine.
  /// The geometry is the *total* cache budget: each shard gets a
  /// 1/num_shards bucket slice of it.
  EngineConfig engine;
  /// Worker thread count (each owns one cache slice per query and one ring
  /// per dispatcher).
  std::size_t num_shards = 4;
  /// Dispatcher thread count D. 1 (default) = the caller thread dispatches
  /// alone, exactly PR 2's topology. D > 1 splits every batch into D
  /// contiguous slices dispatched concurrently (the caller takes slice 0,
  /// D-1 helper threads the rest) through a D×num_shards ring matrix; the
  /// workers' sequence-ordered merge keeps results bit-identical.
  std::size_t num_dispatchers = 1;
  /// Capacity of each (dispatcher, shard) SPSC record ring, in messages
  /// (rounded up to a power of two).
  std::size_t ring_capacity = 4096;
  /// Records a dispatcher stages per shard before publishing to the ring.
  std::size_t dispatch_batch = 256;
  /// Sub-stores per query in the concurrent backing store (0 = num_shards).
  std::size_t backing_shards = 0;
  /// Evictions a worker buffers before pushing to its MPSC eviction queue.
  std::size_t eviction_batch = 128;
};

/// Drop-in multi-core implementation of the Engine interface (see the file
/// comment for the equivalence guarantee). Construct through
/// runtime::EngineBuilder::sharded(N) unless you need the concrete type.
class ShardedEngine final : public Engine {
 public:
  explicit ShardedEngine(compiler::CompiledProgram program,
                         ShardedEngineConfig config = {});
  ~ShardedEngine() override;

  /// Dispatch a batch of time-ordered records to the shard pipeline. Returns
  /// once every record is staged or published; folding proceeds async.
  void process_batch(std::span<const PacketRecord> records) override;

  /// Drain rings and eviction queues, join all threads, then materialize
  /// results (cross-shard union is exact; see file comment). Call once.
  void finish(Nanos now) override;

  [[nodiscard]] const ResultTable& result() const override;
  [[nodiscard]] const ResultTable& table(std::string_view name) const override;

  /// Mid-run pull without stopping the pipeline: an in-band snapshot marker
  /// is broadcast at the current record boundary (seq 2·records); each shard
  /// worker, on merging past it, hands its pending evictions to the merge
  /// thread and writes a non-destructive epoch-stamped copy of its live
  /// cache slices; the caller waits for those copies and for the merge
  /// thread to drain every pre-boundary eviction, then overlays them on a
  /// clone of the concurrent backing store with the exact-merge machinery.
  /// No thread is joined or stopped — folding resumes the moment the worker
  /// has written its copy. Bit-for-bit equal to QueryEngine::snapshot at the
  /// same boundary for linear kernels (see engine_api.hpp).
  using Engine::snapshot;
  [[nodiscard]] EngineSnapshot snapshot(std::string_view query_name,
                                        Nanos now) override;

  /// Aggregated per-query stats (cache counters summed across shards).
  /// Only valid after finish().
  [[nodiscard]] std::vector<StoreStats> store_stats() const override;

  /// The concurrent backing store of a switch query. Safe to read mid-run
  /// (locked per sub-store) — the paper's "monitoring applications can pull
  /// results" while folding continues. Unlike snapshot(), this view lags by
  /// whatever is cache-resident or still in flight to the merge thread.
  [[nodiscard]] const kv::ShardedBackingStore& backing(
      std::string_view query_name) const;

  [[nodiscard]] std::uint64_t records_processed() const override {
    return records_;
  }
  [[nodiscard]] std::uint64_t refresh_count() const override {
    return refreshes_;
  }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t num_dispatchers() const {
    return dispatchers_.size();
  }
  [[nodiscard]] const compiler::CompiledProgram& program() const override {
    return program_;
  }

 private:
  /// Idle backoff for the worker/merge/co-dispatcher poll loops: yield for
  /// this many empty polls (bursty traffic), then park in short sleeps
  /// (truly idle).
  static constexpr std::uint32_t kIdlePollsBeforeSleep = 256;
  static constexpr std::chrono::microseconds kIdleSleep{100};
  /// Messages a worker pops from one ring per refill pass.
  static constexpr std::size_t kPopChunk = 64;

  // Sequence numbering (the merge order): the record at global stream index
  // g carries seq 2g+1; a refresh flush firing *before* record g carries
  // seq 2g; a watermark bounding a batch that ends at index g carries 2g; a
  // snapshot marker at the record boundary after g records carries 2g too
  // (it can never collide with a flush: flushes always precede a record, so
  // their seq stays below the boundary's). Every processable message seq is
  // unique across a worker's D rings (one dispatcher owns each record and
  // each flush; snapshots come only from the caller's ring), so a candidate
  // is safe as soon as every other ring's next-possible seq is >= it.
  struct ShardMsg {
    enum class Kind : std::uint8_t {
      kRecord,
      kFlush,
      kSnapshot,
      kWatermark,
      kStop
    };
    Kind kind = Kind::kRecord;
    std::uint16_t query = 0;     ///< switch-instance index (kRecord/kSnapshot)
    std::uint64_t seq = 0;       ///< global merge order (see above)
    std::uint64_t raw_hash = 0;  ///< key's seed-0 byte hash (kRecord); the
                                 ///< snapshot generation (kSnapshot)
    PacketRecord rec;  ///< the record; rec.tin carries flush/snapshot time
  };

  struct TaggedEviction {
    std::uint16_t query = 0;
    kv::EvictedValue ev;
  };

  struct Shard {
    /// rings[d]: the SPSC conduit from dispatcher d (sole producer) to this
    /// shard's worker (sole consumer).
    std::vector<std::unique_ptr<SpscRing<ShardMsg>>> rings;
    MpscQueue<TaggedEviction> evictions;
    std::vector<std::unique_ptr<kv::Cache>> caches;  ///< per switch query
    std::vector<SwitchFoldCore> cores;               ///< parallel to caches
    std::vector<TaggedEviction> evict_buf;  ///< worker-local staging
    /// Snapshot rendezvous: the worker writes a non-destructive copy of the
    /// requested query's resident entries here, then publishes the
    /// generation through
    /// `snapshot_ready` (release); the caller spins on it (acquire). Only
    /// ever touched between those two fences, so no lock is needed.
    std::vector<TaggedEviction> snapshot_out;
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> snapshot_ready{0};
    /// Eviction flow accounting for the snapshot's drain barrier: the worker
    /// counts evictions handed to the MPSC queue, the merge thread counts
    /// absorptions; pushed == absorbed means the backing store has caught
    /// up with everything this worker produced.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> evictions_pushed{0};
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> evictions_absorbed{0};
    std::thread thread;
  };

  /// A refresh boundary detected by the caller's serial pre-scan: the flush
  /// fires before the record at global stream index `pos`.
  struct FlushEvent {
    std::uint64_t pos = 0;
    Nanos time;
  };

  struct Dispatcher {
    /// Per-shard staging buffers (published to rings[this dispatcher]).
    std::vector<std::vector<ShardMsg>> staging;
    // Job slot for helper dispatchers (d >= 1): the caller writes the job
    // fields, then publishes them with a release store to `posted`; the
    // helper acknowledges through `completed`.
    std::span<const PacketRecord> job_slice;
    std::uint64_t job_base = 0;
    std::span<const FlushEvent> job_flushes;
    std::uint64_t job_watermark = 0;
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> posted{0};
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> completed{0};
    std::atomic<bool> exit{false};
    std::thread thread;  ///< helpers only; dispatcher 0 is the caller
  };

  /// One worker-side view of one input ring: messages drained FIFO into an
  /// unbounded local buffer (the worker always drains even when the merge
  /// is blocked on another ring — that keeps dispatchers from wedging on a
  /// full ring) plus the ring's proven lower bound on future seqs.
  struct Lane {
    std::vector<ShardMsg> buf;
    std::size_t head = 0;
    std::uint64_t bound = 0;  ///< future msgs from this ring have seq >= bound
    bool stopped = false;
  };

  void worker_loop(Shard& shard);
  /// D = 1 fast path: one ring, already in global sequence order — pop
  /// straight into the fold chunk with no lane buffering or merge.
  void worker_loop_single_lane(Shard& shard);
  /// Pass 1 of a gathered chunk slot: re-pack the record's key on this core
  /// and prefetch its cache bucket. Pass 2 (prepare/fold split shared by
  /// both worker loops).
  void worker_prepare(Shard& shard, std::size_t i, const ShardMsg& msg);
  void worker_process(Shard& shard, std::size_t i, ShardMsg& msg);
  void merge_loop();
  void co_dispatcher_loop(std::size_t d);
  /// Dispatch one contiguous slice as dispatcher d: route records, emit
  /// in-slice flushes, publish staging, and (for D > 1) end with a
  /// watermark carrying `watermark_seq`.
  void dispatch_slice(std::size_t d, std::span<const PacketRecord> slice,
                      std::uint64_t base, std::span<const FlushEvent> flushes,
                      std::uint64_t watermark_seq);
  void run_stream_sinks(std::span<const PacketRecord> records);
  /// Hand the worker's staged evictions to the merge thread, maintaining
  /// the pushed counter the snapshot drain barrier reads.
  static void push_evictions(Shard& sh);
  void stage(std::size_t d, std::size_t shard, ShardMsg&& msg);
  void publish(std::size_t d, std::size_t shard);
  /// Push one message to a ring, yielding while it is full.
  static void push_message(SpscRing<ShardMsg>& ring, ShardMsg&& msg);
  /// Send final kFlush (optionally) + kStop through every ring (helpers
  /// push their own on exit) and join all threads.
  void stop_pipeline(bool flush, Nanos now);
  /// The cache-placement hash from a key's raw (seed-0) hash; identical to
  /// kv::placement_hash(key, hash_seed) without needing the key.
  [[nodiscard]] std::uint64_t placement_of_raw(std::uint64_t raw) const;
  [[nodiscard]] const ResultTable* find_table(int index) const;

  compiler::CompiledProgram program_;
  ShardedEngineConfig config_;
  std::uint64_t seed_mix_ = 0;  ///< mix64(hash_seed), precomputed
  std::vector<const compiler::SwitchQueryPlan*> plans_;
  /// Record-direct router per plan; nullopt = computed key, expression path.
  std::vector<std::optional<compiler::KeyRouter>> routers_;
  std::vector<std::unique_ptr<kv::ShardedBackingStore>> backings_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<Dispatcher>> dispatchers_;
  StreamStage stream_;
  std::vector<FlushEvent> flush_events_;  ///< per-batch scratch (caller only)
  std::thread merge_thread_;
  std::atomic<bool> merge_stop_{false};
  std::map<int, ResultTable> tables_;
  std::uint64_t records_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t snapshot_gen_ = 0;  ///< caller-side snapshot generation
  Nanos next_refresh_{0};
  bool finished_ = false;
  bool threads_stopped_ = false;
};

}  // namespace perfq::runtime
