#include "runtime/sharded/sharded_engine.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/hash.hpp"
#include "obs/metrics_export.hpp"
#include "runtime/collection.hpp"

namespace perfq::runtime {

namespace {

/// kStop's sequence value: orders after every record and flush.
constexpr std::uint64_t kStopSeq = std::numeric_limits<std::uint64_t>::max();

}  // namespace

ShardedEngine::ShardedEngine(compiler::CompiledProgram program,
                             ShardedEngineConfig config)
    : program_(std::move(program)),
      config_(std::move(config)),
      stream_(program_, config_.engine) {
  wire_verify_checksums_ = config_.engine.verify_checksums;
  const std::size_t n_shards = config_.num_shards;
  const std::size_t n_dispatchers = config_.num_dispatchers;
  if (n_shards == 0) {
    throw ConfigError{"ShardedEngine: num_shards must be at least 1"};
  }
  if (n_dispatchers == 0) {
    throw ConfigError{"ShardedEngine: num_dispatchers must be at least 1"};
  }
  if (config_.dispatch_batch == 0) {
    throw ConfigError{"ShardedEngine: zero dispatch batch"};
  }
  if (config_.eviction_batch == 0) {
    throw ConfigError{"ShardedEngine: zero eviction batch"};
  }
  const std::size_t backing_shards =
      config_.backing_shards == 0 ? n_shards : config_.backing_shards;
  if (program_.switch_plans.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max())) {
    throw ConfigError{"ShardedEngine: too many switch queries"};
  }
  seed_mix_ = mix64(config_.engine.hash_seed);

  // Resolve each switch query's geometry and its per-shard bucket slice.
  std::vector<kv::CacheGeometry> shard_geometry;
  for (const auto& plan : program_.switch_plans) {
    plans_.push_back(&plan);
    routers_.push_back(compiler::KeyRouter::make(plan));
    kv::CacheGeometry geometry = config_.engine.geometry;
    if (const auto it = config_.engine.per_query_geometry.find(plan.name);
        it != config_.engine.per_query_geometry.end()) {
      geometry = it->second;
    }
    if (geometry.num_buckets % n_shards != 0) {
      throw ConfigError{
          "ShardedEngine: geometry '" + geometry.to_string() + "' for query '" +
          plan.name + "' needs num_buckets divisible by num_shards (" +
          std::to_string(n_shards) + ") for exact shard/bucket alignment"};
    }
    kv::CacheGeometry slice = geometry;
    slice.num_buckets = geometry.num_buckets / n_shards;
    shard_geometry.push_back(slice);
    backings_.push_back(std::make_unique<kv::ShardedBackingStore>(
        plan.kernel, backing_shards));
    attached_programs_.push_back(nullptr);
    attach_records_.push_back(0);
  }

  // (Stream SELECT sinks live in stream_ — caller-side, identical to
  // QueryEngine's, constructed in the member initializer list.)

  // Shards: per query a cache slice whose evictions feed the shard's MPSC
  // queue (batched) instead of a synchronous backing-store absorb; one input
  // ring per dispatcher.
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    Shard& sh = *shard;
    sh.index = s;
    for (std::size_t d = 0; d < n_dispatchers; ++d) {
      sh.rings.push_back(
          std::make_unique<SpscRing<ShardMsg>>(config_.ring_capacity));
    }
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      sh.caches.push_back(std::make_unique<kv::Cache>(
          shard_geometry[q], plans_[q]->kernel, config_.engine.hash_seed,
          config_.engine.eviction_policy, /*bucket_scale=*/n_shards));
      sh.caches.back()->set_eviction_sink(
          [this, &sh, q](kv::EvictedValue&& ev) {
            sh.evict_buf.push_back(
                TaggedEviction{static_cast<std::uint16_t>(q), std::move(ev)});
            if (sh.evict_buf.size() >= config_.eviction_batch) {
              push_evictions(sh);
            }
          });
    }
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      sh.cores.push_back(
          std::make_unique<SwitchFoldCore>(*plans_[q], *sh.caches[q]));
    }
    shards_.push_back(std::move(shard));
  }

  // Dispatchers: index 0 is the caller thread; the rest are helper threads
  // parked on their job slots.
  dispatchers_.reserve(n_dispatchers);
  for (std::size_t d = 0; d < n_dispatchers; ++d) {
    auto dispatcher = std::make_unique<Dispatcher>();
    dispatcher->staging.resize(n_shards);
    dispatcher->ring_stalls.resize(n_shards);
    dispatcher->ring_hwm.resize(n_shards);
    dispatchers_.push_back(std::move(dispatcher));
  }

  merge_thread_ = std::thread([this] { merge_main(); });
  for (auto& shard : shards_) {
    Shard& sh = *shard;
    sh.thread = std::thread([this, &sh] { worker_main(sh); });
  }
  for (std::size_t d = 1; d < n_dispatchers; ++d) {
    dispatchers_[d]->thread = std::thread([this, d] { co_dispatcher_main(d); });
  }
}

ShardedEngine::~ShardedEngine() {
  // Bench/abort/poisoned path: tear the pipeline down without the final
  // flush. Joins are unbounded here — threads are stop-aware, so they exit
  // as soon as their current blocking operation returns.
  if (!threads_stopped_) stop_pipeline(/*flush=*/false, Nanos{0},
                                       /*watchdog=*/false);
}

// ---- failure-domain machinery ----------------------------------------------

void ShardedEngine::begin_stop() noexcept {
  stop_.store(true, std::memory_order_release);
  for (std::size_t d = 1; d < dispatchers_.size(); ++d) {
    dispatchers_[d]->exit.store(true, std::memory_order_release);
  }
}

void ShardedEngine::on_thread_fault(ThreadRole role, std::size_t shard,
                                    std::string cause) noexcept {
  fault_.record(role, shard, std::move(cause));
  begin_stop();
}

void ShardedEngine::throw_if_faulted() {
  if (fault_.faulted()) {
    begin_stop();
    fault_.raise();
  }
}

std::string ShardedEngine::pipeline_diagnostic(const char* what) const {
  // The dump is the telemetry layer's pipeline view (same enumeration
  // metrics() exports), rendered by the shared formatter. Lock-free — safe
  // while threads are wedged, which is exactly when the watchdog needs it.
  EngineMetrics m;
  collect_pipeline(m);
  std::string out = "pipeline state at watchdog expiry (waiting for ";
  out += what;
  out += ", drain_timeout " + std::to_string(config_.drain_timeout.count()) +
         " ms):";
  out += obs::format_pipeline(m);
  return out;
}

void ShardedEngine::collect_pipeline(EngineMetrics& m) const {
  m.merge_exited = merge_exited_.load(std::memory_order_acquire);
  for (const auto& shard : shards_) {
    ShardMetrics sm;
    sm.shard = shard->index;
    sm.evictions_pushed =
        shard->evictions_pushed.load(std::memory_order_acquire);
    sm.evictions_absorbed =
        shard->evictions_absorbed.load(std::memory_order_acquire);
    sm.worker_exited = shard->exited.load(std::memory_order_acquire);
    m.shards.push_back(sm);
  }
  for (std::size_t d = 1; d < dispatchers_.size(); ++d) {
    const Dispatcher& dp = *dispatchers_[d];
    DispatcherMetrics dm;
    dm.dispatcher = d;
    dm.batches_posted = dp.posted.load(std::memory_order_acquire);
    dm.batches_completed = dp.completed.load(std::memory_order_acquire);
    dm.exited = dp.exited.load(std::memory_order_acquire);
    m.dispatchers.push_back(dm);
  }
  for (std::size_t d = 0; d < dispatchers_.size(); ++d) {
    const Dispatcher& dp = *dispatchers_[d];
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      RingMetrics rm;
      rm.dispatcher = d;
      rm.shard = s;
      rm.occupancy = shards_[s]->rings[d]->size_approx();
      rm.occupancy_hwm = dp.ring_hwm[s];
      rm.capacity = shards_[s]->rings[d]->capacity();
      rm.push_stalls = dp.ring_stalls[s];
      m.rings.push_back(rm);
    }
  }
}

void ShardedEngine::spin_backoff(SpinState& spin, const char* what) {
  if (what != nullptr && config_.drain_timeout.count() > 0 &&
      !fault_.faulted()) {
    if (!spin.armed) {
      spin.deadline = std::chrono::steady_clock::now() + config_.drain_timeout;
      spin.armed = true;
    } else if (std::chrono::steady_clock::now() > spin.deadline) {
      fault_.record(ThreadRole::kWatchdog, kNoShard,
                    std::string{"drain deadline exceeded waiting for "} + what,
                    pipeline_diagnostic(what));
      begin_stop();
      return;  // the caller's next stop_/fault check unwinds the wait
    }
  }
  if (++spin.idle_polls < kIdlePollsBeforeSleep) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(kIdleSleep);
  }
}

bool ShardedEngine::wait_exited(const std::atomic<bool>& exited, bool watchdog,
                                const char* what) {
  SpinState spin;
  bool grace = false;
  for (;;) {
    if (exited.load(std::memory_order_acquire)) return true;
    if (watchdog && config_.drain_timeout.count() > 0) {
      if (!spin.armed) {
        spin.deadline =
            std::chrono::steady_clock::now() + config_.drain_timeout;
        spin.armed = true;
      } else if (std::chrono::steady_clock::now() > spin.deadline) {
        if (!grace) {
          // Deadline expired: record the wedge (with the dump), release
          // every stop-aware loop, and grant one more deadline of grace for
          // the thread to unwind before deferring its join to the
          // destructor.
          fault_.record(ThreadRole::kWatchdog, kNoShard,
                        std::string{"drain deadline exceeded waiting for "} +
                            what,
                        pipeline_diagnostic(what));
          begin_stop();
          spin.deadline =
              std::chrono::steady_clock::now() + config_.drain_timeout;
          grace = true;
        } else {
          return false;
        }
      }
    }
    if (++spin.idle_polls < kIdlePollsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

void ShardedEngine::worker_main(Shard& sh) {
  try {
    worker_loop(sh);
  } catch (const std::exception& e) {
    on_thread_fault(ThreadRole::kWorker, sh.index, e.what());
  } catch (...) {
    on_thread_fault(ThreadRole::kWorker, sh.index, "unknown exception");
  }
  sh.exited.store(true, std::memory_order_release);
}

void ShardedEngine::merge_main() {
  try {
    merge_loop();
  } catch (const std::exception& e) {
    on_thread_fault(ThreadRole::kMerge, kNoShard, e.what());
  } catch (...) {
    on_thread_fault(ThreadRole::kMerge, kNoShard, "unknown exception");
  }
  merge_exited_.store(true, std::memory_order_release);
}

void ShardedEngine::co_dispatcher_main(std::size_t d) {
  try {
    co_dispatcher_loop(d);
  } catch (const std::exception& e) {
    on_thread_fault(ThreadRole::kDispatcher, kNoShard,
                    "dispatcher " + std::to_string(d) + ": " + e.what());
  } catch (...) {
    on_thread_fault(ThreadRole::kDispatcher, kNoShard,
                    "dispatcher " + std::to_string(d) + ": unknown exception");
  }
  dispatchers_[d]->exited.store(true, std::memory_order_release);
}

// ---- dispatch ---------------------------------------------------------------

std::uint64_t ShardedEngine::placement_of_raw(std::uint64_t raw) const {
  return config_.engine.hash_seed == 0 ? raw : mix64(raw ^ seed_mix_);
}

void ShardedEngine::stage(std::size_t d, std::size_t shard, ShardMsg&& msg) {
  std::vector<ShardMsg>& staging = dispatchers_[d]->staging[shard];
  staging.push_back(std::move(msg));
  if (staging.size() >= config_.dispatch_batch) publish(d, shard);
}

void ShardedEngine::publish(std::size_t d, std::size_t shard) {
  std::vector<ShardMsg>& staging = dispatchers_[d]->staging[shard];
  if (staging.empty()) return;
  PERFQ_FAILPOINT("sharded.ring_push");
  SpscRing<ShardMsg>& ring = *shards_[shard]->rings[d];
  std::span<ShardMsg> pending(staging);
  SpinState spin;
  bool stalled = false;
  while (!pending.empty()) {
    const std::size_t pushed = ring.push_bulk(pending);
    pending = pending.subspan(pushed);
    if (pushed == 0) {
      stalled = true;
      // Ring full: the worker is behind; let it run (essential on machines
      // with fewer cores than threads). Workers drain their rings even while
      // their merge is blocked, so this makes progress — unless the worker
      // is dead or wedged: the stop flag unwinds the former, the caller-side
      // watchdog converts the latter into a recorded fault. Once the engine
      // is poisoned the rest of the batch is abandoned (results are
      // forfeit; the caller throws at the batch boundary).
      if (stop_.load(std::memory_order_acquire)) break;
      spin_backoff(spin, d == 0 ? "a full shard ring (push)" : nullptr);
    }
  }
  // Ring telemetry: the occupancy high-water is sampled here, right after
  // the push (the ring's fullest observable moment from the producer side).
  Dispatcher& dp = *dispatchers_[d];
  if (stalled) ++dp.ring_stalls[shard];
  dp.ring_hwm[shard].set_max(ring.size_approx());
  staging.clear();
}

void ShardedEngine::push_message(SpscRing<ShardMsg>& ring, ShardMsg&& msg,
                                 const char* what) {
  SpinState spin;
  while (!ring.try_push(std::move(msg))) {
    if (stop_.load(std::memory_order_acquire)) return;  // poisoned: drop
    spin_backoff(spin, what);
  }
}

void ShardedEngine::dispatch_slice(std::size_t d,
                                   std::span<const PacketRecord> slice,
                                   std::uint64_t base,
                                   std::span<const FlushEvent> flushes,
                                   std::uint64_t watermark_seq) {
  const std::uint64_t n_shards = shards_.size();
  const FlushEvent* flush = flushes.data();
  const FlushEvent* flush_end = flushes.data() + flushes.size();
  for (std::size_t i = 0; i < slice.size(); ++i) {
    // Poisoned mid-slice: stop routing (publishes are being abandoned
    // anyway). Checked every 64 records to keep the dispatch hot path free
    // of per-record synchronization.
    if ((i & 63u) == 0 && stop_.load(std::memory_order_relaxed)) break;
    const PacketRecord& rec = slice[i];
    const std::uint64_t g = base + i;

    // Refresh boundaries firing before this record (detected by the
    // caller's global pre-scan): broadcast in-band through this
    // dispatcher's rings; the workers' merge executes them at exactly
    // sequence position 2g, i.e. the single-threaded trace times.
    while (flush != flush_end && flush->pos == g) {
      for (std::uint64_t s = 0; s < n_shards; ++s) {
        ShardMsg msg;
        msg.kind = ShardMsg::Kind::kFlush;
        msg.seq = 2 * g;
        msg.rec.tin = flush->time;
        stage(d, s, std::move(msg));
      }
      ++flush;
    }

    // Route: one message per switch query that admits the record. Only the
    // key's hash is computed here — record-direct for plain-field keys (no
    // kv::Key materialized); the worker re-packs the key on its own core.
    const compiler::RecordSource source({&rec, 1});
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      if (plans_[q] == nullptr) continue;  // detached slot
      const compiler::SwitchQueryPlan& plan = *plans_[q];
      if (plan.prefilter.has_value() && !plan.prefilter->eval_bool(source)) {
        continue;
      }
      const std::uint64_t raw =
          routers_[q].has_value()
              ? routers_[q]->raw_hash(rec)
              : compiler::extract_key(plan, rec).raw_hash();
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kRecord;
      msg.query = static_cast<std::uint16_t>(q);
      msg.seq = 2 * g + 1;
      msg.raw_hash = raw;
      msg.rec = rec;
      const std::uint64_t s = reduce_range(placement_of_raw(raw), n_shards);
      stage(d, s, std::move(msg));
    }
  }
  for (std::uint64_t s = 0; s < n_shards; ++s) publish(d, s);
  // Watermark: with co-dispatchers a worker may only act on a message once
  // every other ring provably cannot deliver an earlier one; the watermark
  // is that proof for rings this slice left sparse. Pointless at D = 1.
  if (dispatchers_.size() > 1) {
    for (std::uint64_t s = 0; s < n_shards; ++s) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kWatermark;
      msg.seq = watermark_seq;
      push_message(*shards_[s]->rings[d], std::move(msg),
                   d == 0 ? "a full shard ring (watermark)" : nullptr);
    }
  }
}

void ShardedEngine::run_stream_sinks(std::span<const PacketRecord> records) {
  // Stream sinks stay on the caller: their row streams are order-sensitive
  // and must match the single-threaded engine exactly. One delivery per
  // process_batch call, same as QueryEngine (the sink batch contract).
  for (const PacketRecord& rec : records) stream_.observe(rec);
  stream_.deliver();
}

void ShardedEngine::push_evictions(Shard& sh) {
  const std::uint64_t n = sh.evict_buf.size();
  if (n == 0) return;
  PERFQ_FAILPOINT("sharded.evict_push");
  sh.evictions.push_batch(sh.evict_buf);
  sh.evictions_pushed.fetch_add(n, std::memory_order_release);
}

void ShardedEngine::process_batch(std::span<const PacketRecord> records) {
  throw_if_faulted();
  check(!finished_, "ShardedEngine: process after finish");
  ++batches_;
  const bool timed =
      obs::kTelemetryEnabled &&
      (records.size() >= obs::kAlwaysTimeBatch ||
       (batch_tick_++ & obs::kSmallBatchSampleMask) == 0);
  const std::uint64_t t0 = timed ? obs::now_ns() : 0;
  try {
    process_batch_impl(records);
    if (timed) batch_ns_.record(obs::now_ns() - t0);
  } catch (const EngineFaultError&) {
    begin_stop();
    throw;
  } catch (const std::exception& e) {
    // Caller-side failure (stream sink callback, routing, allocation):
    // poison the engine and throw the structured error.
    fault_.record(ThreadRole::kCaller, kNoShard, e.what());
    begin_stop();
    fault_.raise();
  } catch (...) {
    fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
    begin_stop();
    fault_.raise();
  }
  // A fault on another thread during this batch (worker/merge/dispatcher
  // death, watchdog expiry): dispatch may have been silently abandoned —
  // surface it at the batch boundary rather than on the next call.
  throw_if_faulted();
}

trace::IngestStats ShardedEngine::process_wire_batch(
    std::span<const FrameObservation> frames) {
  // Fused validate + decode into the reusable caller-owned scratch, then the
  // ordinary dispatch pipeline (which owns the poisoned-state machinery and
  // batch telemetry). Steady-state: zero allocations once the scratch has
  // grown to the burst size.
  trace::IngestStats stats;
  wire_pending_.clear();
  wire_pending_.reserve(frames.size());
  for (const FrameObservation& frame : frames) {
    wire::ParseError err{};
    const auto parsed =
        wire::try_parse(frame.bytes, &err, wire_verify_checksums_);
    if (!parsed) {
      trace::count_parse_error(stats, err);
      continue;
    }
    PacketRecord& rec = wire_pending_.emplace_back();
    rec.pkt = parsed->pkt;
    rec.qid = frame.qid;
    rec.tin = frame.tin;
    rec.tout = frame.tout;
    rec.qsize = frame.qsize;
    ++stats.parsed;
  }
  process_batch(wire_pending_);
  record_ingest(stats);
  return stats;
}

void ShardedEngine::process_batch_impl(std::span<const PacketRecord> records) {
  const std::size_t n = records.size();
  if (n == 0) return;
  const std::uint64_t base = records_;
  records_ += n;

  // Periodic refresh (§3.2): the boundary depends on every preceding
  // record's tin, so it is detected here — serially, in global record order
  // — and handed to whichever dispatcher owns the slice it falls in. One
  // compare per record, a sliver of the ~hash-sized routing cost.
  flush_events_.clear();
  if (config_.engine.refresh_interval > Nanos{0}) {
    for (std::size_t i = 0; i < n; ++i) {
      const Nanos tin = records[i].tin;
      if (next_refresh_ == Nanos{0}) {
        next_refresh_ = tin + config_.engine.refresh_interval;
      }
      if (tin >= next_refresh_) {
        flush_events_.push_back(FlushEvent{base + i, tin});
        ++refreshes_;
        next_refresh_ = tin + config_.engine.refresh_interval;
      }
    }
  }

  const std::size_t n_dispatchers = dispatchers_.size();
  const std::uint64_t watermark = 2 * (base + n);
  if (n_dispatchers == 1) {
    dispatch_slice(0, records, base, flush_events_, watermark);
    if (!stream_.empty()) run_stream_sinks(records);
    return;
  }

  // Slice the batch into D contiguous runs and fan the tail slices out to
  // the helper dispatchers; the caller takes slice 0 and the (serial,
  // order-sensitive) stream sinks while the helpers work.
  const std::size_t chunk = (n + n_dispatchers - 1) / n_dispatchers;
  const auto slice_of = [&](std::size_t d) {
    const std::size_t lo = std::min(n, d * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    return std::pair<std::size_t, std::size_t>{lo, hi};
  };
  const auto flushes_in = [&](std::uint64_t lo, std::uint64_t hi) {
    // flush_events_ is sorted by pos; slice [base+lo, base+hi).
    const std::span<const FlushEvent> all(flush_events_);
    const auto begin = static_cast<std::size_t>(
        std::partition_point(all.begin(), all.end(),
                             [&](const FlushEvent& e) {
                               return e.pos < base + lo;
                             }) -
        all.begin());
    const auto end = static_cast<std::size_t>(
        std::partition_point(all.begin() + begin, all.end(),
                             [&](const FlushEvent& e) {
                               return e.pos < base + hi;
                             }) -
        all.begin());
    return all.subspan(begin, end - begin);
  };
  for (std::size_t d = 1; d < n_dispatchers; ++d) {
    Dispatcher& dp = *dispatchers_[d];
    const auto [lo, hi] = slice_of(d);
    dp.job_slice = records.subspan(lo, hi - lo);
    dp.job_base = base + lo;
    dp.job_flushes = flushes_in(lo, hi);
    dp.job_watermark = watermark;
    dp.posted.store(dp.posted.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }
  const auto [lo0, hi0] = slice_of(0);
  dispatch_slice(0, records.subspan(lo0, hi0 - lo0), base,
                 flushes_in(lo0, hi0), watermark);
  if (!stream_.empty()) run_stream_sinks(records);
  // The records span is borrowed from the caller: do not return until every
  // helper has finished reading (and staging) its slice — or has exited (a
  // dead helper reads nothing more). This wait must never bail early on a
  // fault: a live helper could still be touching the span. The watchdog
  // inside spin_backoff records the wedge and raises stop, which releases
  // the helper's own spins, so the wait then terminates.
  for (std::size_t d = 1; d < n_dispatchers; ++d) {
    Dispatcher& dp = *dispatchers_[d];
    const std::uint64_t target = dp.posted.load(std::memory_order_relaxed);
    SpinState spin;
    while (dp.completed.load(std::memory_order_acquire) != target &&
           !dp.exited.load(std::memory_order_acquire)) {
      spin_backoff(spin, "co-dispatcher batch completion");
    }
  }
}

void ShardedEngine::co_dispatcher_loop(std::size_t d) {
  Dispatcher& dp = *dispatchers_[d];
  std::uint64_t done = 0;
  std::uint32_t idle_polls = 0;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;  // poisoned: unwind
    const std::uint64_t posted = dp.posted.load(std::memory_order_acquire);
    if (posted == done) {
      if (dp.exit.load(std::memory_order_acquire)) {
        // Drain-free exit: push this dispatcher's kStop down every ring so
        // each worker knows lane d is done.
        for (auto& shard : shards_) {
          ShardMsg stop;
          stop.kind = ShardMsg::Kind::kStop;
          stop.seq = kStopSeq;
          push_message(*shard->rings[d], std::move(stop), nullptr);
        }
        return;
      }
      if (++idle_polls < kIdlePollsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
      continue;
    }
    idle_polls = 0;
    dispatch_slice(d, dp.job_slice, dp.job_base, dp.job_flushes,
                   dp.job_watermark);
    done = posted;
    dp.completed.store(done, std::memory_order_release);
  }
}

// ---- workers ----------------------------------------------------------------

void ShardedEngine::worker_prepare(Shard& sh, std::size_t i,
                                   const ShardMsg& msg) {
  // Re-pack the record's key on this core — installing the dispatcher's
  // hash (no rehash) via the plan's KeyRouter; computed keys re-walk the
  // expression tree here, off the serial dispatcher — and prefetch its
  // cache bucket.
  const std::size_t q = msg.query;
  sh.cores[q]->prepare_extracted(
      i, routers_[q].has_value()
             ? routers_[q]->make_key(msg.rec, msg.raw_hash)
             : compiler::extract_key_prehashed(*plans_[q], msg.rec,
                                               msg.raw_hash));
}

void ShardedEngine::worker_process(Shard& sh, std::size_t i, ShardMsg& msg) {
  switch (msg.kind) {
    case ShardMsg::Kind::kRecord:
      sh.cores[msg.query]->fold(i, msg.rec);
      break;
    case ShardMsg::Kind::kFlush:
      // Null slots are detached queries (their slices are gone).
      for (auto& cache : sh.caches) {
        if (cache != nullptr) cache->flush(msg.rec.tin);
      }
      // Refresh wants the backing store fresh soon: hand the flush's
      // evictions to the merge thread immediately.
      push_evictions(sh);
      break;
    case ShardMsg::Kind::kBarrier:
      // Attach/detach quiesce: everything before the barrier is folded (the
      // merge delivered it in order); push pending evictions so the caller's
      // drain barrier can prove the backing stores boundary-exact, then ack.
      push_evictions(sh);
      sh.snapshot_ready.store(msg.raw_hash, std::memory_order_release);
      break;
    case ShardMsg::Kind::kSnapshot:
      // Mid-run snapshot rendezvous, executed at exactly the requested
      // record boundary (the merge delivered every earlier record first):
      // flush pending evictions to the merge thread, copy the one requested
      // query's live cache slice (msg.query) non-destructively, and publish
      // the generation — the caller is spinning on it. Folding resumes with
      // the next message.
      PERFQ_FAILPOINT("sharded.snapshot_worker");
      push_evictions(sh);
      sh.snapshot_out.clear();
      sh.caches[msg.query]->snapshot_into(
          msg.rec.tin, [&sh, &msg](kv::EvictedValue&& ev) {
            sh.snapshot_out.push_back(TaggedEviction{msg.query, std::move(ev)});
          });
      sh.snapshot_ready.store(msg.raw_hash, std::memory_order_release);
      break;
    case ShardMsg::Kind::kWatermark:
    case ShardMsg::Kind::kStop:
      break;  // control messages carry no work
  }
}

void ShardedEngine::worker_loop_single_lane(Shard& sh) {
  // One dispatcher: its ring is already in global sequence order, so the
  // whole lane-merge machinery reduces to the direct two-pass pop loop (no
  // per-message buffering copies).
  SpscRing<ShardMsg>& ring = *sh.rings[0];
  std::array<ShardMsg, SwitchFoldCore::kChunk> buf;
  bool running = true;
  std::uint32_t idle_polls = 0;
  while (running) {
    // A poisoned engine stops feeding this ring (and may never send kStop):
    // unwind instead of spinning on a dead dispatcher.
    if (stop_.load(std::memory_order_acquire)) break;
    PERFQ_FAILPOINT("sharded.ring_pop");
    const std::size_t n = ring.pop_bulk({buf.data(), buf.size()});
    if (n == 0) {
      // Bounded backoff: yield while traffic is merely bursty, park briefly
      // once the ring looks genuinely idle so an unfed engine does not pin
      // a core (latency cost on wake: one sleep quantum).
      if (++idle_polls < kIdlePollsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
      continue;
    }
    idle_polls = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i].kind == ShardMsg::Kind::kRecord) {
        worker_prepare(sh, i, buf[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i].kind == ShardMsg::Kind::kStop) {
        running = false;  // nothing follows a stop message
        break;
      }
      worker_process(sh, i, buf[i]);
    }
  }
  push_evictions(sh);
}

void ShardedEngine::worker_loop(Shard& sh) {
  const std::size_t n_lanes = sh.rings.size();
  if (n_lanes == 1) {
    worker_loop_single_lane(sh);
    return;
  }
  std::vector<Lane> lanes(n_lanes);
  std::array<ShardMsg, kPopChunk> scratch;
  std::array<ShardMsg, SwitchFoldCore::kChunk> chunk;
  std::uint32_t idle_polls = 0;

  // Drain a lane's ring into its local buffer and consume any control
  // messages at the head. Returns true if anything arrived.
  const auto poll_lane = [&](std::size_t d) {
    Lane& lane = lanes[d];
    bool progressed = false;
    if (!lane.stopped) {
      const std::size_t got =
          sh.rings[d]->pop_bulk({scratch.data(), scratch.size()});
      if (got > 0) {
        progressed = true;
        if (lane.head == lane.buf.size()) {
          lane.buf.clear();
          lane.head = 0;
        } else if (lane.head >= 4 * kPopChunk) {
          // Reclaim the consumed prefix: in steady state the merge is often
          // gated on another lane while this one keeps filling, so head may
          // never reach size() — without compaction the dead prefix grows
          // for the life of the run. Amortized O(live) moves.
          lane.buf.erase(lane.buf.begin(),
                         lane.buf.begin() +
                             static_cast<std::ptrdiff_t>(lane.head));
          lane.head = 0;
        }
        for (std::size_t i = 0; i < got; ++i) {
          lane.buf.push_back(std::move(scratch[i]));
        }
      }
    }
    while (lane.head < lane.buf.size()) {
      const ShardMsg& front = lane.buf[lane.head];
      if (front.kind == ShardMsg::Kind::kWatermark) {
        lane.bound = std::max(lane.bound, front.seq);
        ++lane.head;
      } else if (front.kind == ShardMsg::Kind::kStop) {
        lane.stopped = true;
        lane.bound = kStopSeq;
        ++lane.head;
      } else {
        break;
      }
    }
    return progressed;
  };

  for (;;) {
    // A dead dispatcher never sends its watermark/kStop, which would gate
    // this merge forever: the stop flag is the way out.
    if (stop_.load(std::memory_order_acquire)) break;
    PERFQ_FAILPOINT("sharded.ring_pop");
    bool progressed = false;
    for (std::size_t d = 0; d < n_lanes; ++d) {
      progressed |= poll_lane(d);
    }

    // Gather a chunk of safely ordered messages: repeatedly take the
    // smallest buffered seq, provided every other lane either has a later
    // message buffered or a bound proving it cannot deliver an earlier one
    // (seq uniqueness makes bound == seq safe; see the header comment).
    std::size_t n = 0;
    while (n < chunk.size()) {
      std::size_t best = n_lanes;
      std::uint64_t best_seq = kStopSeq;
      for (std::size_t d = 0; d < n_lanes; ++d) {
        const Lane& lane = lanes[d];
        if (lane.head < lane.buf.size() && lane.buf[lane.head].seq < best_seq) {
          best = d;
          best_seq = lane.buf[lane.head].seq;
        }
      }
      if (best == n_lanes) break;
      bool safe = true;
      for (std::size_t d = 0; d < n_lanes && safe; ++d) {
        const Lane& lane = lanes[d];
        if (d != best && lane.head == lane.buf.size() &&
            lane.bound < best_seq) {
          safe = false;
        }
      }
      if (!safe) break;
      Lane& lane = lanes[best];
      chunk[n++] = std::move(lane.buf[lane.head++]);
      // FIFO per producer: nothing earlier can follow from this lane.
      lane.bound = std::max(lane.bound, best_seq);
      while (lane.head < lane.buf.size()) {
        const ShardMsg& front = lane.buf[lane.head];
        if (front.kind == ShardMsg::Kind::kWatermark) {
          lane.bound = std::max(lane.bound, front.seq);
          ++lane.head;
        } else if (front.kind == ShardMsg::Kind::kStop) {
          lane.stopped = true;
          lane.bound = kStopSeq;
          ++lane.head;
        } else {
          break;
        }
      }
    }

    if (n == 0) {
      bool done = true;
      for (const Lane& lane : lanes) {
        if (!lane.stopped || lane.head < lane.buf.size()) done = false;
      }
      if (done) break;
      if (progressed) continue;
      // Bounded backoff: yield while traffic is merely bursty, park briefly
      // once the rings look genuinely idle so an unfed engine does not pin
      // a core (latency cost on wake: one sleep quantum).
      if (++idle_polls < kIdlePollsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
      continue;
    }
    idle_polls = 0;

    // Pass 1: key re-pack + bucket prefetch; pass 2: fold in sequence
    // order, flush boundaries in-band (kWatermark/kStop never reach the
    // chunk — they are consumed during lane normalization).
    for (std::size_t i = 0; i < n; ++i) {
      if (chunk[i].kind == ShardMsg::Kind::kRecord) {
        worker_prepare(sh, i, chunk[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      worker_process(sh, i, chunk[i]);
    }
  }
  push_evictions(sh);
}

void ShardedEngine::merge_loop() {
  std::vector<TaggedEviction> drained;
  std::uint32_t idle_polls = 0;
  for (;;) {
    bool any = false;
    for (auto& shard : shards_) {
      if (shard->evictions.drain(drained)) {
        any = true;
        PERFQ_FAILPOINT("sharded.merge_absorb");
        // Absorb-sweep latency tap: on the merge thread, off every caller
        // path, so it is always-on (no sampling needed).
        const std::uint64_t t0 = obs::kTelemetryEnabled ? obs::now_ns() : 0;
        for (TaggedEviction& t : drained) backings_[t.query]->absorb(t.ev);
        if (obs::kTelemetryEnabled) absorb_ns_.record(obs::now_ns() - t0);
        // Count only after the absorbs landed: the snapshot drain barrier
        // reads this to prove the backing store caught up.
        shard->evictions_absorbed.fetch_add(drained.size(),
                                            std::memory_order_release);
      }
    }
    // Poisoned: exit without the final sweep — results are forfeit, and a
    // dead worker may never stop producing counters we'd wait on.
    if (stop_.load(std::memory_order_acquire)) return;
    if (any) {
      idle_polls = 0;
      continue;
    }
    if (merge_stop_.load(std::memory_order_acquire)) {
      // Producers are joined before merge_stop_ is set, so nothing new can
      // arrive — but a worker may have pushed to a queue after this sweep
      // already passed it. One final sweep picks those up.
      for (auto& shard : shards_) {
        if (shard->evictions.drain(drained)) {
          const std::uint64_t t0 = obs::kTelemetryEnabled ? obs::now_ns() : 0;
          for (TaggedEviction& t : drained) backings_[t.query]->absorb(t.ev);
          if (obs::kTelemetryEnabled) absorb_ns_.record(obs::now_ns() - t0);
          shard->evictions_absorbed.fetch_add(drained.size(),
                                              std::memory_order_release);
        }
      }
      return;
    }
    if (++idle_polls < kIdlePollsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

// ---- teardown / results -----------------------------------------------------

void ShardedEngine::stop_pipeline(bool flush, Nanos now, bool watchdog) {
  // Helper dispatchers first: each pushes its own kStop down its rings on
  // exit (rings are single-producer; only thread d may write rings[d]).
  bool all_joined = true;
  for (std::size_t d = 1; d < dispatchers_.size(); ++d) {
    dispatchers_[d]->exit.store(true, std::memory_order_release);
  }
  for (std::size_t d = 1; d < dispatchers_.size(); ++d) {
    Dispatcher& dp = *dispatchers_[d];
    if (!dp.thread.joinable()) continue;
    if (!watchdog || wait_exited(dp.exited, watchdog, "co-dispatcher exit")) {
      dp.thread.join();
    } else {
      all_joined = false;
    }
  }
  // Caller-owned rings: final flush (ordered after every record) + kStop.
  // On the poisoned path the flush is pointless (results are forfeit) and
  // the pushes are best-effort — workers exit on the stop flag regardless.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (flush && !stop_.load(std::memory_order_acquire)) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kFlush;
      msg.seq = 2 * records_;
      msg.rec.tin = now;
      stage(0, s, std::move(msg));
    }
    ShardMsg stop;
    stop.kind = ShardMsg::Kind::kStop;
    stop.seq = kStopSeq;
    stage(0, s, std::move(stop));
    publish(0, s);
  }
  for (auto& shard : shards_) {
    if (!shard->thread.joinable()) continue;
    if (!watchdog || wait_exited(shard->exited, watchdog, "worker exit")) {
      shard->thread.join();
    } else {
      all_joined = false;
    }
  }
  merge_stop_.store(true, std::memory_order_release);
  if (merge_thread_.joinable()) {
    if (!watchdog || wait_exited(merge_exited_, watchdog, "merge exit")) {
      merge_thread_.join();
    } else {
      all_joined = false;
    }
  }
  // A thread the watchdog gave up on is joined by the destructor (its flag
  // wait is unbounded there); until then the engine stays poisoned.
  threads_stopped_ = all_joined;
}

void ShardedEngine::finish(Nanos now) {
  throw_if_faulted();
  check(!finished_, "ShardedEngine: finish called twice");
  finished_ = true;
  try {
    stop_pipeline(/*flush=*/true, now, /*watchdog=*/true);
    // A fault recorded during the drain (thread death discovered on join,
    // watchdog expiry) forfeits the results: surface it instead of
    // materializing partial tables.
    throw_if_faulted();
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      if (plans_[q] == nullptr) continue;  // detached slot
      if (attached_programs_[q] != nullptr) {
        // Attached queries end with the window; their query indices belong
        // to their own programs, so their tables file by name.
        attached_tables_.emplace(
            plans_[q]->name, materialize_switch_table(*attached_programs_[q],
                                                      *plans_[q],
                                                      *backings_[q]));
      } else {
        tables_.emplace(
            plans_[q]->query_index,
            materialize_switch_table(program_, *plans_[q], *backings_[q]));
      }
    }
    stream_.finish(tables_, attached_tables_);
    for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
      if (tables_.count(static_cast<int>(i)) > 0) continue;
      run_collection_query(program_, static_cast<int>(i), tables_);
    }
  } catch (const EngineFaultError&) {
    begin_stop();
    throw;
  } catch (const std::exception& e) {
    fault_.record(ThreadRole::kCaller, kNoShard, e.what());
    begin_stop();
    fault_.raise();
  } catch (...) {
    fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
    begin_stop();
    fault_.raise();
  }
}

std::size_t ShardedEngine::resolve_switch_query(std::string_view query_name,
                                                const char* what) const {
  // Name resolution happens before the fault machinery: an unknown query is
  // a usage error, not an engine fault, and must not poison the pipeline.
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    if (plans_[q] != nullptr && plans_[q]->name == query_name) return q;
  }
  throw QueryError{"result", std::string{what} +
                                 ": no on-switch GROUPBY named '" +
                                 std::string{query_name} + "'"};
}

EngineSnapshot ShardedEngine::snapshot(std::string_view query_name, Nanos now) {
  throw_if_faulted();
  check(!finished_, "ShardedEngine: snapshot after finish");
  const std::size_t query = resolve_switch_query(query_name, "snapshot");
  try {
    return snapshot_impl(query, now);
  } catch (const EngineFaultError&) {
    begin_stop();
    throw;
  } catch (const std::exception& e) {
    fault_.record(ThreadRole::kCaller, kNoShard, e.what());
    begin_stop();
    fault_.raise();
  } catch (...) {
    fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
    begin_stop();
    fault_.raise();
  }
}

kv::StoreExport ShardedEngine::export_store(std::string_view query_name,
                                            Nanos now) {
  throw_if_faulted();
  const std::size_t query = resolve_switch_query(query_name, "export_store");
  try {
    kv::StoreExport out;
    out.query = std::string{query_name};
    out.records = records_;
    out.time = now;
    if (finished_) {
      // Pipeline joined and flushed; the concurrent store IS the result.
      out.entries = backings_[query]->export_entries();
    } else {
      out.entries = snapshot_merged_store(query, now)->export_entries();
    }
    return out;
  } catch (const EngineFaultError&) {
    begin_stop();
    throw;
  } catch (const std::exception& e) {
    fault_.record(ThreadRole::kCaller, kNoShard, e.what());
    begin_stop();
    fault_.raise();
  } catch (...) {
    fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
    begin_stop();
    fault_.raise();
  }
}

std::unique_ptr<kv::ShardedBackingStore> ShardedEngine::snapshot_merged_store(
    std::size_t query, Nanos now) {
  ++snapshots_;
  // Rendezvous latency tap: steps 1-3 (marker broadcast → every worker at
  // the boundary → eviction drain barrier) are the cost of *reaching* the
  // coherent point; the overlay in step 4 is ordinary copying.
  const std::uint64_t t0 = obs::kTelemetryEnabled ? obs::now_ns() : 0;
  // 1. Broadcast the snapshot marker through the caller's rings at the
  // current record boundary. Its seq (2·records_) orders after every
  // dispatched record; the co-dispatcher watermarks of the last batch carry
  // the same bound, so every worker's merge can prove it safe without any
  // new traffic.
  const std::uint64_t gen = ++snapshot_gen_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kSnapshot;
    msg.query = static_cast<std::uint16_t>(query);
    msg.seq = 2 * records_;
    msg.raw_hash = gen;
    msg.rec.tin = now;
    stage(0, s, std::move(msg));
    publish(0, s);
  }

  // 2. Wait for every worker to reach the boundary and publish its copy
  // (acquire pairs with the worker's release store). Stop-aware: a worker
  // that died before the boundary can never publish, and the watchdog
  // converts a wedged one into a recorded fault.
  for (auto& shard : shards_) {
    SpinState spin;
    while (shard->snapshot_ready.load(std::memory_order_acquire) != gen) {
      if (fault_.faulted()) fault_.raise();
      spin_backoff(spin, "the snapshot rendezvous");
    }
  }

  // 3. Drain barrier: every eviction produced before the boundary is now in
  // the MPSC queues (workers push before acking); wait until the merge
  // thread has absorbed them all, so the backing store is boundary-exact.
  drain_eviction_barrier("the snapshot eviction drain barrier");
  if (obs::kTelemetryEnabled) snapshot_ns_.record(obs::now_ns() - t0);

  // 4. Overlay the cache copies (all for `query` — the marker carried it)
  // on a clone of the concurrent store with the ordinary exact-merge absorb.
  // Keys are disjoint across shards (each key folds on exactly one worker),
  // so shard order cannot matter.
  std::unique_ptr<kv::ShardedBackingStore> merged = backings_[query]->clone();
  for (auto& shard : shards_) {
    for (TaggedEviction& t : shard->snapshot_out) merged->absorb(t.ev);
  }
  return merged;
}

EngineSnapshot ShardedEngine::snapshot_impl(std::size_t query, Nanos now) {
  const std::unique_ptr<kv::ShardedBackingStore> merged =
      snapshot_merged_store(query, now);
  const compiler::CompiledProgram& prog = attached_programs_[query] != nullptr
                                              ? *attached_programs_[query]
                                              : program_;
  return EngineSnapshot{
      materialize_switch_table(prog, *plans_[query], *merged), records_, now};
}

void ShardedEngine::drain_eviction_barrier(const char* what) {
  for (auto& shard : shards_) {
    const std::uint64_t target =
        shard->evictions_pushed.load(std::memory_order_acquire);
    SpinState spin;
    while (shard->evictions_absorbed.load(std::memory_order_acquire) <
           target) {
      if (fault_.faulted()) fault_.raise();
      spin_backoff(spin, what);
    }
  }
}

void ShardedEngine::quiesce_pipeline(const char* what) {
  // The snapshot rendezvous without the cache copy: broadcast a kBarrier at
  // the current record boundary through the caller's rings (seq 2·records_
  // orders after every dispatched record), wait for each worker's ack, then
  // prove the backing stores caught up. On return nothing is in flight:
  // every ring is drained past the boundary, every eviction absorbed, and
  // the workers are between messages — safe to grow or free per-shard
  // topology the next messages will see (ring publish/pop is the
  // release/acquire pair ordering the caller's mutations for the workers).
  const std::uint64_t gen = ++snapshot_gen_;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kBarrier;
    msg.seq = 2 * records_;
    msg.raw_hash = gen;
    stage(0, s, std::move(msg));
    publish(0, s);
  }
  for (auto& shard : shards_) {
    SpinState spin;
    while (shard->snapshot_ready.load(std::memory_order_acquire) != gen) {
      if (fault_.faulted()) fault_.raise();
      spin_backoff(spin, what);
    }
  }
  drain_eviction_barrier(what);
}

void ShardedEngine::attach_query(compiler::CompiledProgram program,
                                 const AttachOptions& options) {
  throw_if_faulted();
  check(!finished_, "ShardedEngine: attach after finish");
  // Validation throws (ConfigError) before ANY state change.
  const AttachKind kind = attachable_kind(program);
  if (options.name.empty()) {
    throw ConfigError{"attach: query name must not be empty"};
  }
  for (const auto* plan : plans_) {
    if (plan != nullptr && plan->name == options.name) {
      throw ConfigError{"attach: query '" + options.name + "' already exists"};
    }
  }
  if (stream_.has(options.name) ||
      program_.analysis.query_index(options.name) >= 0) {
    throw ConfigError{"attach: query '" + options.name + "' already exists"};
  }
  auto owned = std::make_shared<compiler::CompiledProgram>(std::move(program));
  owned->analysis.queries.back().def.result_name = options.name;
  if (kind == AttachKind::kStreamSelect) {
    // Stream tenants live on the caller thread only: no pipeline quiesce
    // needed, just the topology lock against metrics readers.
    std::lock_guard<std::mutex> lock(topology_mu_);
    stream_.attach(std::move(owned), options.name, options.sink,
                   config_.engine, records_);
    return;
  }
  const std::size_t n_shards = shards_.size();
  if (plans_.size() >=
      static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max())) {
    throw ConfigError{"attach: too many switch queries"};
  }
  compiler::SwitchQueryPlan& plan = owned->switch_plans.front();
  plan.name = options.name;
  kv::CacheGeometry geometry = config_.engine.geometry;
  if (const auto it = config_.engine.per_query_geometry.find(options.name);
      it != config_.engine.per_query_geometry.end()) {
    geometry = it->second;
  }
  if (options.geometry.has_value()) geometry = *options.geometry;
  if (geometry.num_buckets % n_shards != 0) {
    throw ConfigError{
        "attach: geometry '" + geometry.to_string() + "' for query '" +
        options.name + "' needs num_buckets divisible by num_shards (" +
        std::to_string(n_shards) + ") for exact shard/bucket alignment"};
  }
  // Build every new structure BEFORE touching shared state: an allocation
  // failure here leaves the engine exactly as it was.
  const std::size_t backing_shards =
      config_.backing_shards == 0 ? n_shards : config_.backing_shards;
  kv::CacheGeometry slice = geometry;
  slice.num_buckets = geometry.num_buckets / n_shards;
  auto backing =
      std::make_unique<kv::ShardedBackingStore>(plan.kernel, backing_shards);
  const std::size_t q = plans_.size();  // the new slot's stable index
  std::vector<std::unique_ptr<kv::Cache>> caches;
  std::vector<std::unique_ptr<SwitchFoldCore>> cores;
  for (std::size_t s = 0; s < n_shards; ++s) {
    Shard& sh = *shards_[s];
    caches.push_back(std::make_unique<kv::Cache>(
        slice, plan.kernel, config_.engine.hash_seed,
        config_.engine.eviction_policy, /*bucket_scale=*/n_shards));
    caches.back()->set_eviction_sink([this, &sh, q](kv::EvictedValue&& ev) {
      sh.evict_buf.push_back(
          TaggedEviction{static_cast<std::uint16_t>(q), std::move(ev)});
      if (sh.evict_buf.size() >= config_.eviction_batch) {
        push_evictions(sh);
      }
    });
    cores.push_back(std::make_unique<SwitchFoldCore>(plan, *caches.back()));
  }
  // Quiesce so the per-shard vectors can grow with nothing in flight, then
  // install the slot. The workers see the new entries through the next ring
  // publish/pop pair; metrics readers through the topology lock.
  quiesce_pipeline("the attach quiesce barrier");
  throw_if_faulted();
  std::lock_guard<std::mutex> lock(topology_mu_);
  plans_.push_back(&plan);
  routers_.push_back(compiler::KeyRouter::make(plan));
  backings_.push_back(std::move(backing));
  attached_programs_.push_back(std::move(owned));
  attach_records_.push_back(records_);
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards_[s]->caches.push_back(std::move(caches[s]));
    shards_[s]->cores.push_back(std::move(cores[s]));
  }
}

ResultTable ShardedEngine::detach_query(std::string_view name, Nanos now) {
  throw_if_faulted();
  check(!finished_, "ShardedEngine: detach after finish");
  std::size_t query = plans_.size();
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    if (plans_[q] != nullptr && plans_[q]->name == name) query = q;
  }
  if (query == plans_.size()) {
    if (stream_.has(name)) {
      if (!stream_.has_attached(name)) {
        throw ConfigError{"detach: '" + std::string{name} +
                          "' is a base-program query and cannot be detached"};
      }
      std::lock_guard<std::mutex> lock(topology_mu_);
      try {
        return stream_.detach(name);
      } catch (const std::exception& e) {
        fault_.record(ThreadRole::kCaller, kNoShard, e.what());
        begin_stop();
        fault_.raise();
      }
    }
    throw QueryError{"result",
                     "detach: unknown query '" + std::string{name} + "'"};
  }
  if (attached_programs_[query] == nullptr) {
    throw ConfigError{"detach: '" + std::string{name} +
                      "' is a base-program query and cannot be detached"};
  }
  try {
    // 1. Quiesce: nothing in flight, backing stores boundary-exact.
    quiesce_pipeline("the detach quiesce barrier");
    throw_if_faulted();
    // 2. End this query's window: flush its slices from the caller (the
    // workers are idle between messages; evictions route through the
    // per-shard sink closures into evict_buf exactly as a worker flush
    // would), hand them to the merge thread, and drain again.
    for (auto& shard : shards_) {
      shard->caches[query]->flush(now);
      push_evictions(*shard);
    }
    drain_eviction_barrier("the detach eviction drain");
    throw_if_faulted();
    // 3. The final table, from the now-complete backing store.
    ResultTable table = materialize_switch_table(
        *attached_programs_[query], *plans_[query], *backings_[query]);
    // 4. Free the slot in place (indices of resident queries never move; no
    // message for this query can exist anymore). Resident queries' caches
    // are untouched — their tables are byte-identical either way.
    std::lock_guard<std::mutex> lock(topology_mu_);
    for (auto& shard : shards_) {
      shard->caches[query].reset();
      shard->cores[query].reset();
    }
    backings_[query].reset();
    routers_[query].reset();
    attached_programs_[query].reset();
    plans_[query] = nullptr;
    return table;
  } catch (const EngineFaultError&) {
    begin_stop();
    throw;
  } catch (const std::exception& e) {
    fault_.record(ThreadRole::kCaller, kNoShard, e.what());
    begin_stop();
    fault_.raise();
  } catch (...) {
    fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
    begin_stop();
    fault_.raise();
  }
}

const ResultTable* ShardedEngine::find_table(int index) const {
  return find_collection_table(tables_, index);
}

const ResultTable& ShardedEngine::result() const {
  if (fault_.faulted()) fault_.raise();
  check(finished_, "ShardedEngine: result before finish");
  const int last = static_cast<int>(program_.analysis.queries.size()) - 1;
  const ResultTable* t = find_table(last);
  check(t != nullptr, "ShardedEngine: program result not materialized");
  return *t;
}

const ResultTable& ShardedEngine::table(std::string_view name) const {
  if (fault_.faulted()) fault_.raise();
  check(finished_, "ShardedEngine: table before finish");
  if (const auto it = attached_tables_.find(name);
      it != attached_tables_.end()) {
    return it->second;
  }
  const int idx = program_.analysis.query_index(name);
  if (idx < 0) {
    throw QueryError{"result", "unknown table '" + std::string{name} + "'"};
  }
  const ResultTable* t = find_table(idx);
  if (t == nullptr) {
    throw QueryError{"result", "table '" + std::string{name} +
                                   "' is a stream intermediate and was not "
                                   "materialized"};
  }
  return *t;
}

std::vector<StoreStats> ShardedEngine::store_stats() const {
  if (fault_.faulted()) fault_.raise();
  // Mid-run reads are allowed (the pre-observability engine required
  // finish()): every summed counter is a single-writer relaxed slot and the
  // backing-store reads lock per sub-store, so this never perturbs the
  // pipeline. Mid-run coherence is per-counter (engine_api.hpp).
  std::lock_guard<std::mutex> lock(topology_mu_);
  return collect_store_stats();
}

std::vector<StoreStats> ShardedEngine::collect_store_stats() const {
  std::vector<StoreStats> out;
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    if (plans_[q] == nullptr) continue;  // detached slot
    StoreStats s;
    s.name = plans_[q]->name;
    s.linearity = plans_[q]->linearity;
    for (const auto& shard : shards_) {
      const kv::CacheStats& cs = shard->caches[q]->stats();
      s.cache.packets += cs.packets;
      s.cache.hits += cs.hits;
      s.cache.initializations += cs.initializations;
      s.cache.evictions += cs.evictions;
      s.cache.flushes += cs.flushes;
    }
    s.accuracy = backings_[q]->accuracy();
    s.backing_writes = backings_[q]->writes();
    s.backing_capacity_writes = backings_[q]->capacity_writes();
    s.keys = backings_[q]->key_count();
    s.attached = attached_programs_[q] != nullptr;
    s.attach_records = attach_records_[q];
    out.push_back(std::move(s));
  }
  return out;
}

EngineMetrics ShardedEngine::metrics() const {
  EngineMetrics m;
  m.engine = "sharded";
  m.records = records_;
  m.batches = batches_;
  m.refreshes = refreshes_;
  m.snapshots = snapshots_;
  m.faulted = fault_.faulted();
  {
    // Topology lock: attach/detach mutate the per-query vectors on the
    // caller thread; the element internals stay lock-free relaxed slots.
    std::lock_guard<std::mutex> lock(topology_mu_);
    m.queries = collect_store_stats();
    stream_.collect(m.streams);
  }
  collect_pipeline(m);
  m.batch_ns = batch_ns_.snapshot();
  m.snapshot_ns = snapshot_ns_.snapshot();
  m.absorb_ns = absorb_ns_.snapshot();
  fill_driver_metrics(m);
  return m;
}

const kv::ShardedBackingStore& ShardedEngine::backing(
    std::string_view query_name) const {
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    if (plans_[q] != nullptr && plans_[q]->name == query_name) {
      return *backings_[q];
    }
  }
  throw QueryError{"result",
                   "no switch query named '" + std::string{query_name} + "'"};
}

}  // namespace perfq::runtime
