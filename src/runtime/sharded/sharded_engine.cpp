#include "runtime/sharded/sharded_engine.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "runtime/collection.hpp"

namespace perfq::runtime {

namespace {

/// Which shard owns `key`: the high bits of the cache-placement hash. With
/// num_buckets % num_shards == 0 this is exactly "which bucket-slice of the
/// full cache the key's bucket falls in" (see Cache's bucket_scale comment).
std::uint64_t shard_of(const kv::Key& key, std::uint64_t hash_seed,
                       std::uint64_t num_shards) {
  return reduce_range(kv::placement_hash(key, hash_seed), num_shards);
}

}  // namespace

ShardedEngine::ShardedEngine(compiler::CompiledProgram program,
                             ShardedEngineConfig config)
    : program_(std::move(program)), config_(std::move(config)) {
  const std::size_t n_shards = config_.num_shards;
  if (n_shards == 0) throw ConfigError{"ShardedEngine: zero shards"};
  if (config_.dispatch_batch == 0) {
    throw ConfigError{"ShardedEngine: zero dispatch batch"};
  }
  if (config_.eviction_batch == 0) {
    throw ConfigError{"ShardedEngine: zero eviction batch"};
  }
  const std::size_t backing_shards =
      config_.backing_shards == 0 ? n_shards : config_.backing_shards;
  if (program_.switch_plans.size() >
      static_cast<std::size_t>(std::numeric_limits<std::uint16_t>::max())) {
    throw ConfigError{"ShardedEngine: too many switch queries"};
  }

  // Resolve each switch query's geometry and its per-shard bucket slice.
  std::vector<kv::CacheGeometry> shard_geometry;
  for (const auto& plan : program_.switch_plans) {
    plans_.push_back(&plan);
    kv::CacheGeometry geometry = config_.engine.geometry;
    if (const auto it = config_.engine.per_query_geometry.find(plan.name);
        it != config_.engine.per_query_geometry.end()) {
      geometry = it->second;
    }
    if (geometry.num_buckets % n_shards != 0) {
      throw ConfigError{
          "ShardedEngine: geometry '" + geometry.to_string() + "' for query '" +
          plan.name + "' needs num_buckets divisible by num_shards (" +
          std::to_string(n_shards) + ") for exact shard/bucket alignment"};
    }
    kv::CacheGeometry slice = geometry;
    slice.num_buckets = geometry.num_buckets / n_shards;
    shard_geometry.push_back(slice);
    backings_.push_back(std::make_unique<kv::ShardedBackingStore>(
        plan.kernel, backing_shards));
  }

  // Stream SELECT sinks (dispatcher-side, identical to QueryEngine's).
  std::set<int> consumed;
  for (const auto& q : program_.analysis.queries) {
    consumed.insert(q.input);
    consumed.insert(q.left);
    consumed.insert(q.right);
  }
  for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
    const auto& q = program_.analysis.queries[i];
    if (q.def.kind == lang::QueryDef::Kind::kSelect &&
        q.output.stream_over_base && consumed.count(static_cast<int>(i)) == 0) {
      sinks_.push_back(StreamSink{
          compiler::compile_stream_select(program_.analysis,
                                          static_cast<int>(i)),
          ResultTable(q.output), false});
    }
  }

  // Shards: per query a cache slice whose evictions feed the shard's MPSC
  // queue (batched) instead of a synchronous backing-store absorb.
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<Shard>(config_.ring_capacity);
    Shard& sh = *shard;
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      sh.caches.push_back(std::make_unique<kv::Cache>(
          shard_geometry[q], plans_[q]->kernel, config_.engine.hash_seed,
          config_.engine.eviction_policy, /*bucket_scale=*/n_shards));
      sh.caches.back()->set_eviction_sink(
          [this, &sh, q](kv::EvictedValue&& ev) {
            sh.evict_buf.push_back(
                TaggedEviction{static_cast<std::uint16_t>(q), std::move(ev)});
            if (sh.evict_buf.size() >= config_.eviction_batch) {
              sh.evictions.push_batch(sh.evict_buf);
            }
          });
    }
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      sh.cores.emplace_back(*plans_[q], *sh.caches[q]);
    }
    shards_.push_back(std::move(shard));
  }

  merge_thread_ = std::thread([this] { merge_loop(); });
  for (auto& shard : shards_) {
    Shard& sh = *shard;
    sh.thread = std::thread([this, &sh] { worker_loop(sh); });
  }
}

ShardedEngine::~ShardedEngine() {
  // Bench/abort path: tear the pipeline down without the final flush.
  if (!threads_stopped_) stop_pipeline(/*flush=*/false, Nanos{0});
}

void ShardedEngine::stage(Shard& shard, ShardMsg&& msg) {
  shard.staging.push_back(std::move(msg));
  if (shard.staging.size() >= config_.dispatch_batch) publish(shard);
}

void ShardedEngine::publish(Shard& shard) {
  std::span<ShardMsg> pending(shard.staging);
  while (!pending.empty()) {
    const std::size_t pushed = shard.ring.push_bulk(pending);
    pending = pending.subspan(pushed);
    // Ring full: the worker is behind; let it run (essential on machines
    // with fewer cores than threads).
    if (pushed == 0) std::this_thread::yield();
  }
  shard.staging.clear();
}

void ShardedEngine::process_batch(std::span<const PacketRecord> records) {
  check(!finished_, "ShardedEngine: process after finish");
  const std::uint64_t n_shards = shards_.size();
  for (const PacketRecord& rec : records) {
    ++records_;

    // Periodic refresh (§3.2), mirrored from QueryEngine: the boundary is
    // detected here — in global record order — and broadcast in-band, so
    // every shard flushes at exactly the single-threaded trace times.
    if (config_.engine.refresh_interval > Nanos{0}) {
      if (next_refresh_ == Nanos{0}) {
        next_refresh_ = rec.tin + config_.engine.refresh_interval;
      }
      if (rec.tin >= next_refresh_) {
        for (auto& shard : shards_) {
          ShardMsg flush;
          flush.kind = ShardMsg::Kind::kFlush;
          flush.rec.tin = rec.tin;
          stage(*shard, std::move(flush));
        }
        ++refreshes_;
        next_refresh_ = rec.tin + config_.engine.refresh_interval;
      }
    }

    // Route: one message per switch query that admits the record. The key
    // is extracted here (the dispatcher needs its hash to pick the shard)
    // and shipped with the record so workers skip straight to the fold.
    const compiler::RecordSource source({&rec, 1});
    for (std::size_t q = 0; q < plans_.size(); ++q) {
      const compiler::SwitchQueryPlan& plan = *plans_[q];
      if (plan.prefilter.has_value() && !plan.prefilter->eval_bool(source)) {
        continue;
      }
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kRecord;
      msg.query = static_cast<std::uint16_t>(q);
      msg.key = compiler::extract_key(plan, rec);
      msg.rec = rec;
      const std::uint64_t s =
          shard_of(msg.key, config_.engine.hash_seed, n_shards);
      stage(*shards_[s], std::move(msg));
    }

    // Stream sinks stay on the dispatcher: their tables are order-sensitive
    // row appends and must match the single-threaded engine exactly.
    for (auto& sink : sinks_) {
      if (sink.compiled.filter.has_value() &&
          !sink.compiled.filter->eval_bool(source)) {
        continue;
      }
      if (sink.table.row_count() >= config_.engine.max_stream_rows) {
        sink.overflowed = true;
        continue;
      }
      std::vector<double> row;
      row.reserve(sink.compiled.projections.size());
      for (const auto& [name, expr] : sink.compiled.projections) {
        row.push_back(expr.eval(source));
      }
      sink.table.add_row(std::move(row));
    }
  }
  // Publish the tail so nothing lingers in dispatcher staging between
  // batches (keeps worker pipelines busy and the backing store fresh).
  for (auto& shard : shards_) publish(*shard);
}

void ShardedEngine::worker_loop(Shard& sh) {
  std::array<ShardMsg, SwitchFoldCore::kChunk> buf;
  bool running = true;
  std::uint32_t idle_polls = 0;
  while (running) {
    const std::size_t n = sh.ring.pop_bulk({buf.data(), buf.size()});
    if (n == 0) {
      // Bounded backoff: yield while traffic is merely bursty, park briefly
      // once the ring looks genuinely idle so an unfed engine does not pin
      // a core (latency cost on wake: one sleep quantum).
      if (++idle_polls < kIdlePollsBeforeSleep) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(kIdleSleep);
      }
      continue;
    }
    idle_polls = 0;
    // Pass 1: prefetch every record's cache bucket (no side effects).
    for (std::size_t i = 0; i < n; ++i) {
      if (buf[i].kind == ShardMsg::Kind::kRecord) {
        sh.cores[buf[i].query].prepare_extracted(i, buf[i].key);
      }
    }
    // Pass 2: fold in arrival order; flush boundaries are in-band.
    for (std::size_t i = 0; i < n; ++i) {
      ShardMsg& msg = buf[i];
      switch (msg.kind) {
        case ShardMsg::Kind::kRecord:
          sh.cores[msg.query].fold(i, msg.rec);
          break;
        case ShardMsg::Kind::kFlush:
          for (auto& cache : sh.caches) cache->flush(msg.rec.tin);
          // Refresh wants the backing store fresh soon: hand the flush's
          // evictions to the merge thread immediately.
          sh.evictions.push_batch(sh.evict_buf);
          break;
        case ShardMsg::Kind::kStop:
          running = false;  // nothing follows a stop message
          break;
      }
    }
  }
  sh.evictions.push_batch(sh.evict_buf);
}

void ShardedEngine::merge_loop() {
  std::vector<TaggedEviction> drained;
  std::uint32_t idle_polls = 0;
  for (;;) {
    bool any = false;
    for (auto& shard : shards_) {
      if (shard->evictions.drain(drained)) {
        any = true;
        for (TaggedEviction& t : drained) backings_[t.query]->absorb(t.ev);
      }
    }
    if (any) {
      idle_polls = 0;
      continue;
    }
    if (merge_stop_.load(std::memory_order_acquire)) {
      // Producers are joined before merge_stop_ is set, so nothing new can
      // arrive — but a worker may have pushed to a queue after this sweep
      // already passed it. One final sweep picks those up.
      for (auto& shard : shards_) {
        if (shard->evictions.drain(drained)) {
          for (TaggedEviction& t : drained) backings_[t.query]->absorb(t.ev);
        }
      }
      return;
    }
    if (++idle_polls < kIdlePollsBeforeSleep) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(kIdleSleep);
    }
  }
}

void ShardedEngine::stop_pipeline(bool flush, Nanos now) {
  for (auto& shard : shards_) {
    if (flush) {
      ShardMsg msg;
      msg.kind = ShardMsg::Kind::kFlush;
      msg.rec.tin = now;
      stage(*shard, std::move(msg));
    }
    ShardMsg stop;
    stop.kind = ShardMsg::Kind::kStop;
    stage(*shard, std::move(stop));
    publish(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  merge_stop_.store(true, std::memory_order_release);
  if (merge_thread_.joinable()) merge_thread_.join();
  threads_stopped_ = true;
}

void ShardedEngine::finish(Nanos now) {
  check(!finished_, "ShardedEngine: finish called twice");
  finished_ = true;
  stop_pipeline(/*flush=*/true, now);

  for (std::size_t q = 0; q < plans_.size(); ++q) {
    tables_.emplace(
        plans_[q]->query_index,
        materialize_switch_table(program_, *plans_[q], *backings_[q]));
  }
  for (auto& sink : sinks_) {
    tables_.emplace(sink.compiled.query_index, std::move(sink.table));
  }
  sinks_.clear();
  for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
    if (tables_.count(static_cast<int>(i)) > 0) continue;
    run_collection_query(program_, static_cast<int>(i), tables_);
  }
}

const ResultTable* ShardedEngine::find_table(int index) const {
  return find_collection_table(tables_, index);
}

const ResultTable& ShardedEngine::result() const {
  check(finished_, "ShardedEngine: result before finish");
  const int last = static_cast<int>(program_.analysis.queries.size()) - 1;
  const ResultTable* t = find_table(last);
  check(t != nullptr, "ShardedEngine: program result not materialized");
  return *t;
}

const ResultTable& ShardedEngine::table(std::string_view name) const {
  check(finished_, "ShardedEngine: table before finish");
  const int idx = program_.analysis.query_index(name);
  if (idx < 0) {
    throw QueryError{"result", "unknown table '" + std::string{name} + "'"};
  }
  const ResultTable* t = find_table(idx);
  if (t == nullptr) {
    throw QueryError{"result", "table '" + std::string{name} +
                                   "' is a stream intermediate and was not "
                                   "materialized"};
  }
  return *t;
}

std::vector<StoreStats> ShardedEngine::store_stats() const {
  check(finished_, "ShardedEngine: store_stats before finish");
  std::vector<StoreStats> out;
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    StoreStats s;
    s.name = plans_[q]->name;
    s.linearity = plans_[q]->linearity;
    for (const auto& shard : shards_) {
      const kv::CacheStats& cs = shard->caches[q]->stats();
      s.cache.packets += cs.packets;
      s.cache.hits += cs.hits;
      s.cache.initializations += cs.initializations;
      s.cache.evictions += cs.evictions;
      s.cache.flushes += cs.flushes;
    }
    s.accuracy = backings_[q]->accuracy();
    s.backing_writes = backings_[q]->writes();
    s.backing_capacity_writes = backings_[q]->capacity_writes();
    s.keys = backings_[q]->key_count();
    out.push_back(std::move(s));
  }
  return out;
}

const kv::ShardedBackingStore& ShardedEngine::backing(
    std::string_view query_name) const {
  for (std::size_t q = 0; q < plans_.size(); ++q) {
    if (plans_[q]->name == query_name) return *backings_[q];
  }
  throw QueryError{"result",
                   "no switch query named '" + std::string{query_name} + "'"};
}

}  // namespace perfq::runtime
