// Materialized result tables produced by the collection layer.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "lang/schema.hpp"

namespace perfq::runtime {

/// A finite table of rows (doubles) under a schema. Aggregate results and
/// sink-SELECT outputs are both delivered this way.
class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(lang::Schema schema) : schema_(std::move(schema)) {}

  [[nodiscard]] const lang::Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<double>>& rows() const {
    return rows_;
  }

  void add_row(std::vector<double> row);

  /// Column index by (canonical or alias) name; throws if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;

  /// Value accessor.
  [[nodiscard]] double at(std::size_t row, std::string_view name) const {
    return rows_[row][column(name)];
  }

  /// Sort rows descending by a column (reporting convenience).
  void sort_desc(std::string_view name);

  /// Render the top `limit` rows (0 = all) as an aligned text table.
  [[nodiscard]] std::string to_text(const std::string& title,
                                    std::size_t limit = 0) const;

 private:
  lang::Schema schema_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace perfq::runtime
