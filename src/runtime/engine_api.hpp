// The one engine surface.
//
// Everything that runs a compiled program over packet records — the serial
// QueryEngine and the sharded multi-core ShardedEngine — implements this
// interface, and every driver (trace replay, the network simulator's
// telemetry sink, the REPL, the benches) targets it. The serial/sharded
// choice is a construction-time config knob (EngineBuilder::sharded), not a
// type decision: callers hold a std::unique_ptr<Engine> and never name the
// concrete engine.
//
// Lifecycle:  build (EngineBuilder) → process_batch()* → finish(now) →
// result()/table(). Two reads work MID-RUN, before finish():
//   - snapshot(query[, now]): the paper's §3.2 application pull (below);
//   - a RingStreamSink (stream_sink.hpp) drained from another thread.
//
// ---- snapshot() consistency contract ---------------------------------------
//
// snapshot(query, now) returns the result table of one on-switch GROUPBY as
// of the current *record boundary* — the point after every record already
// passed to process_batch() and before any record of a later call. It is the
// paper's "monitoring applications can pull results" made exact:
//
//   - The snapshot reflects ALL records processed so far and NOTHING else:
//     live cache contents are merged over the backing store with the same
//     exact-merge machinery finish() uses, so for linear-in-state kernels the
//     returned table is bit-for-bit the table a fresh engine fed the same
//     record prefix would produce from finish(now). This holds for the serial
//     AND the sharded engine (which reaches the boundary by draining its
//     in-flight rings and eviction queues for the snapshot — no thread is
//     stopped, folding resumes immediately after).
//   - Kernels that are NOT linear in state have no merge function (§3.2):
//     a key resident in the cache at snapshot time contributes one extra
//     value segment covering [its epoch start, now), exactly as a flush at
//     `now` would. Per-segment values are correct over their own intervals;
//     whole-window validity is the same Fig. 6 semantics finish() reports.
//   - The engine is not perturbed: caches, stats, refresh schedule and final
//     results are identical whether or not snapshots were taken.
//   - Cost: proportional to cache occupancy plus the backing store size of
//     the one query (it is copied). A monitoring-rate read, not a hot path.
//   - snapshot() must be called from the processing (caller) thread, between
//     process_batch() calls; only stream-SELECT queries are excluded (their
//     rows stream through StreamSinks instead).
//
// ---- Failure semantics -----------------------------------------------------
//
// An exception escaping the engine's own machinery mid-run — a throwing user
// StreamSink, a fault injected through common/failpoint.hpp, a crashed shard
// worker or merge thread — leaves the state at an arbitrary point inside a
// batch. There is no way to resume without silently corrupting results, so
// both engines implement the same poisoned-state protocol (engine_fault.hpp):
//
//   - The FIRST failure wins: its description is captured in a FaultSlot
//     (role + shard + cause); later failures during the unwind are dropped.
//     On the sharded engine the recording thread also raises the pipeline
//     stop flag, so dispatchers, workers and the merge thread unwind promptly
//     instead of spinning on rings that will never drain.
//   - The call that observes the fault throws EngineFaultError (an Error
//     subclass) carrying the faulting role ("worker", "merge", ...), the
//     shard index if any, and the original cause. Watchdog faults append a
//     pipeline diagnostic (ring occupancy, per-thread state) to what().
//   - The engine is then POISONED: every subsequent process_batch(),
//     finish(), snapshot(), result(), table() and store_stats() call throws
//     the SAME EngineFaultError. No call ever hangs, returns partial
//     results, or std::terminate()s. Destruction is always safe.
//   - Argument errors thrown BEFORE any state changes (unknown snapshot
//     name, double finish, process after finish) stay ordinary
//     QueryError/ConfigError and do NOT poison the engine.
//   - The sharded engine bounds every internal wait by the builder's
//     drain_timeout (default 10 s, sharded-only knob): if the pipeline
//     cannot make progress within the deadline — a wedged ring, a stuck
//     snapshot rendezvous — a watchdog records a fault with a diagnostic
//     dump instead of blocking the caller forever.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/program.hpp"
#include "kvstore/kvstore.hpp"
#include "runtime/stream_sink.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

/// Construction-time settings shared by both engines (EngineBuilder fills
/// one; the sharded engine wraps it with its topology knobs).
struct EngineConfig {
  /// Cache geometry for every on-switch GROUPBY (overridable per query).
  kv::CacheGeometry geometry = kv::CacheGeometry::set_associative(1u << 16, 8);
  std::map<std::string, kv::CacheGeometry> per_query_geometry;
  std::uint64_t hash_seed = 0x5eedcafe;
  /// In-bucket replacement policy (the paper uses LRU).
  kv::EvictionPolicy eviction_policy = kv::EvictionPolicy::kLru;
  /// Cap on rows buffered by a *default* (table) stream sink. User-provided
  /// sinks implement their own bounds.
  std::size_t max_stream_rows = 1'000'000;
  /// Periodically flush caches to the backing store while processing (§3.2:
  /// "keys can be periodically evicted to ensure the backing store is
  /// fresh, and monitoring applications can pull results"). Zero disables.
  /// Thanks to the exact merge this is free of correctness cost for linear
  /// queries; refresh_count() reports how many refreshes happened.
  Nanos refresh_interval{0};
  /// User stream sinks by query result name; stream SELECTs not named here
  /// get a default TableStreamSink(max_stream_rows). Unknown names (or names
  /// of non-stream queries) are a ConfigError at engine construction.
  std::map<std::string, std::shared_ptr<StreamSink>> stream_sinks;
};

/// Per-switch-query statistics surfaced to the evaluation harnesses.
struct StoreStats {
  std::string name;
  kv::Linearity linearity = kv::Linearity::kNotLinear;
  kv::CacheStats cache;
  kv::AccuracyStats accuracy;
  std::uint64_t backing_writes = 0;
  std::uint64_t backing_capacity_writes = 0;
  std::size_t keys = 0;
};

/// A mid-run result pull, stamped with the record boundary it is exact at.
struct EngineSnapshot {
  ResultTable table;
  std::uint64_t records = 0;  ///< records processed when the snapshot ran
  Nanos time;                 ///< caller-supplied timestamp (epoch end stamp)
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  virtual ~Engine() = default;

  /// Feed one packet observation (call once per record, in time order).
  /// Thin wrapper over process_batch for a single record.
  void process(const PacketRecord& rec) { process_batch({&rec, 1}); }

  /// Feed a batch of packet observations (time-ordered). Results are
  /// identical to calling process() per record; batches only enable the
  /// engines' prefetch/dispatch pipelining. Stream sinks receive matching
  /// rows in one delivery per call (stream_sink.hpp).
  virtual void process_batch(std::span<const PacketRecord> records) = 0;

  /// End the query window: flush caches, close stream sinks, run the
  /// collection layer. Must be called exactly once before result()/table().
  virtual void finish(Nanos now) = 0;

  /// The program's primary result (its last query). Only after finish().
  [[nodiscard]] virtual const ResultTable& result() const = 0;

  /// A named intermediate/final table ("R1"). Throws if unknown or a stream
  /// intermediate that was not materialized. Only after finish().
  [[nodiscard]] virtual const ResultTable& table(std::string_view name) const = 0;

  /// Mid-run result pull for one on-switch GROUPBY (see the consistency
  /// contract in the file comment). `now` stamps the open epoch's end (it
  /// only affects non-linear kernels' segment intervals).
  [[nodiscard]] virtual EngineSnapshot snapshot(std::string_view query_name,
                                                Nanos now) = 0;
  [[nodiscard]] EngineSnapshot snapshot(std::string_view query_name) {
    return snapshot(query_name, Nanos{0});
  }

  [[nodiscard]] virtual std::vector<StoreStats> store_stats() const = 0;
  [[nodiscard]] virtual std::uint64_t records_processed() const = 0;
  [[nodiscard]] virtual std::uint64_t refresh_count() const = 0;
  [[nodiscard]] virtual const compiler::CompiledProgram& program() const = 0;
};

}  // namespace perfq::runtime
