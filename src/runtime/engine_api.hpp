// The one engine surface.
//
// Everything that runs a compiled program over packet records — the serial
// QueryEngine and the sharded multi-core ShardedEngine — implements this
// interface, and every driver (trace replay, the network simulator's
// telemetry sink, the REPL, the benches) targets it. The serial/sharded
// choice is a construction-time config knob (EngineBuilder::sharded), not a
// type decision: callers hold a std::unique_ptr<Engine> and never name the
// concrete engine.
//
// Lifecycle:  build (EngineBuilder) → process_batch()* → finish(now) →
// result()/table(). Two reads work MID-RUN, before finish():
//   - snapshot(query[, now]): the paper's §3.2 application pull (below);
//   - a RingStreamSink (stream_sink.hpp) drained from another thread.
//
// ---- snapshot() consistency contract ---------------------------------------
//
// snapshot(query, now) returns the result table of one on-switch GROUPBY as
// of the current *record boundary* — the point after every record already
// passed to process_batch() and before any record of a later call. It is the
// paper's "monitoring applications can pull results" made exact:
//
//   - The snapshot reflects ALL records processed so far and NOTHING else:
//     live cache contents are merged over the backing store with the same
//     exact-merge machinery finish() uses, so for linear-in-state kernels the
//     returned table is bit-for-bit the table a fresh engine fed the same
//     record prefix would produce from finish(now). This holds for the serial
//     AND the sharded engine (which reaches the boundary by draining its
//     in-flight rings and eviction queues for the snapshot — no thread is
//     stopped, folding resumes immediately after).
//   - Kernels that are NOT linear in state have no merge function (§3.2):
//     a key resident in the cache at snapshot time contributes one extra
//     value segment covering [its epoch start, now), exactly as a flush at
//     `now` would. Per-segment values are correct over their own intervals;
//     whole-window validity is the same Fig. 6 semantics finish() reports.
//   - The engine is not perturbed: caches, stats, refresh schedule and final
//     results are identical whether or not snapshots were taken.
//   - Cost: proportional to cache occupancy plus the backing store size of
//     the one query (it is copied). A monitoring-rate read, not a hot path.
//   - snapshot() must be called from the processing (caller) thread, between
//     process_batch() calls; only stream-SELECT queries are excluded (their
//     rows stream through StreamSinks instead).
//
// ---- Failure semantics -----------------------------------------------------
//
// An exception escaping the engine's own machinery mid-run — a throwing user
// StreamSink, a fault injected through common/failpoint.hpp, a crashed shard
// worker or merge thread — leaves the state at an arbitrary point inside a
// batch. There is no way to resume without silently corrupting results, so
// both engines implement the same poisoned-state protocol (engine_fault.hpp):
//
//   - The FIRST failure wins: its description is captured in a FaultSlot
//     (role + shard + cause); later failures during the unwind are dropped.
//     On the sharded engine the recording thread also raises the pipeline
//     stop flag, so dispatchers, workers and the merge thread unwind promptly
//     instead of spinning on rings that will never drain.
//   - The call that observes the fault throws EngineFaultError (an Error
//     subclass) carrying the faulting role ("worker", "merge", ...), the
//     shard index if any, and the original cause. Watchdog faults append a
//     pipeline diagnostic (ring occupancy, per-thread state) to what().
//   - The engine is then POISONED: every subsequent process_batch(),
//     finish(), snapshot(), result(), table() and store_stats() call throws
//     the SAME EngineFaultError. No call ever hangs, returns partial
//     results, or std::terminate()s. Destruction is always safe.
//   - Argument errors thrown BEFORE any state changes (unknown snapshot
//     name, double finish, process after finish) stay ordinary
//     QueryError/ConfigError and do NOT poison the engine.
//   - The sharded engine bounds every internal wait by the builder's
//     drain_timeout (default 10 s, sharded-only knob): if the pipeline
//     cannot make progress within the deadline — a wedged ring, a stuck
//     snapshot rendezvous — a watchdog records a fault with a diagnostic
//     dump instead of blocking the caller forever.
//
// ---- Metrics coherence contract (obs/) -------------------------------------
//
// metrics() returns an EngineMetrics — the engine's own telemetry: what the
// pipeline is doing, as opposed to what the queries computed. It is always on
// (the slots cost <= 2% of throughput; CI's telemetry-overhead job enforces
// that bound) and readable from ANY thread at ANY time, including while
// process_batch() runs on another thread — it never blocks, perturbs, or
// synchronizes with the pipeline, and it is TSan-clean. The price of that is
// a relaxed coherence guarantee, which is the right one for a live monitor:
//
//   - Every counter is individually torn-free and monotone (single-writer
//     relaxed slots, obs/metrics.hpp); gauges (ring occupancy) are
//     instantaneous approximations.
//   - CROSS-counter invariants (cache hits + initializations == packets;
//     shard evictions pushed == absorbed) hold exactly at quiescent points —
//     between process_batch() calls on the serial engine, and after finish()
//     (or a snapshot drain barrier) on the sharded one. Mid-run they hold up
//     to the records currently in flight.
//   - metrics() on a POISONED engine does NOT throw: a monitor must be able
//     to observe a wedged or crashed pipeline. `faulted` is set and the
//     per-thread exit flags show which role died.
//
// metrics_to_json() / metrics_to_prometheus() (obs/metrics_export.hpp) render
// the same enumeration of metrics — anything metrics() carries appears in
// both, by construction. EngineBuilder::metrics_sampler(interval) wraps the
// engine so a background thread appends EngineMetrics samples to a bounded
// ring, readable via metrics_series().
//
// ---- Query lifecycle contract (dynamic attach/detach) ----------------------
//
// The engines host a RESIDENT program: queries can be attached and detached
// mid-stream (the paper's §3.2 operating model — operators submit queries
// while traffic flows), without stopping ingest and without perturbing the
// queries already running. src/service/query_service.hpp is the intended
// front end; the raw engine contract is:
//
//   - attach_query(program, options) accepts a SINGLE-query compiled program:
//     either one on-switch GROUPBY chain (exactly one switch plan, no
//     collection layer) or one unconsumed stream SELECT. The query is renamed
//     to options.name (which must be unique across every resident query and
//     base-program table; collisions are a ConfigError). Anything else —
//     multi-query programs, collection-layer queries, invalid geometry (the
//     sharded engine still requires num_buckets % num_shards == 0) — is a
//     clean ConfigError thrown BEFORE any state changes: a rejected attach
//     leaves the engine exactly as it was, never with degraded results.
//   - The ATTACH EPOCH is the record boundary at which attach_query returns:
//     records processed before it are out of scope for the new query by
//     contract; every record after it folds into the new query in exact
//     global order. For linear-in-state kernels the query's results are
//     therefore bit-identical to a fresh engine fed only the post-attach
//     suffix (the final table of a linear fold is independent of eviction
//     and flush timing). One float-rounding caveat: the periodic refresh
//     clock anchors at an engine's FIRST record, so the resident engine and
//     the suffix oracle flush at different absolute times — exact for folds
//     whose merge is FP-exact (integer counters/sums) and for any linear
//     fold with refresh off, ULP-level otherwise (ewma under refresh).
//     StoreStats::attach_records records the epoch.
//   - detach_query(name, now) ends the query's window at the current record
//     boundary: its cache slice is flushed at `now`, the final table is
//     materialized and returned, and every resource the attach allocated
//     (cache slice, fold-core scratch, backing store, plan storage) is
//     freed. Only dynamically attached queries can be detached — detaching a
//     base-program query would orphan the collection layer and is a
//     ConfigError. Resident queries are NOT perturbed: their caches are not
//     flushed and their final tables are byte-identical whether or not a
//     neighbor detached. Queries still attached at finish(now) end with the
//     window; their tables remain readable via table(name).
//   - Threading: attach_query/detach_query belong to the PROCESSING domain —
//     the caller must serialize them with process_batch()/finish()/snapshot()
//     exactly as it serializes those with each other (QueryService does this
//     with one mutex; thread identity does not matter, only serialization at
//     batch boundaries). metrics()/store_stats() stay safe from ANY thread
//     concurrently with an attach/detach — topology mutations are guarded
//     against the metrics readers, never against the hot path.
//   - Poisoned-engine interaction: attach/detach on a poisoned engine throw
//     the recorded EngineFaultError like every other mutating call.
//     Validation failures (bad program shape, name collision, over-budget
//     admission in the service layer) are argument errors — ConfigError /
//     QueryError — and do NOT poison the engine.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/program.hpp"
#include "kvstore/federated.hpp"
#include "kvstore/kvstore.hpp"
#include "obs/metrics.hpp"
#include "packet/wire_view.hpp"
#include "runtime/stream_sink.hpp"
#include "runtime/table.hpp"
#include "trace/ingest_stats.hpp"

namespace perfq::runtime {

/// Construction-time settings shared by both engines (EngineBuilder fills
/// one; the sharded engine wraps it with its topology knobs).
struct EngineConfig {
  /// Cache geometry for every on-switch GROUPBY (overridable per query).
  kv::CacheGeometry geometry = kv::CacheGeometry::set_associative(1u << 16, 8);
  std::map<std::string, kv::CacheGeometry> per_query_geometry;
  std::uint64_t hash_seed = 0x5eedcafe;
  /// In-bucket replacement policy (the paper uses LRU).
  kv::EvictionPolicy eviction_policy = kv::EvictionPolicy::kLru;
  /// Cap on rows buffered by a *default* (table) stream sink. User-provided
  /// sinks implement their own bounds.
  std::size_t max_stream_rows = 1'000'000;
  /// Periodically flush caches to the backing store while processing (§3.2:
  /// "keys can be periodically evicted to ensure the backing store is
  /// fresh, and monitoring applications can pull results"). Zero disables.
  /// Thanks to the exact merge this is free of correctness cost for linear
  /// queries; refresh_count() reports how many refreshes happened.
  Nanos refresh_interval{0};
  /// User stream sinks by query result name; stream SELECTs not named here
  /// get a default TableStreamSink(max_stream_rows). Unknown names (or names
  /// of non-stream queries) are a ConfigError at engine construction.
  std::map<std::string, std::shared_ptr<StreamSink>> stream_sinks;
  /// Opt-in IPv4 header checksum verification on the wire ingest path
  /// (process_wire_batch). Off by default: software captures rarely carry
  /// valid checksums (offload). Failures skip-and-count as bad_checksum.
  bool verify_checksums = false;
};

/// Options for one dynamic attach (see the query lifecycle contract above).
struct AttachOptions {
  /// The resident name of the query — result table name, metrics label, and
  /// the handle detach_query() takes. Must be unique among live queries.
  std::string name;
  /// Cache slice geometry for an on-switch GROUPBY tenant; falls back to the
  /// engine's EngineConfig::geometry (then per_query_geometry by name).
  std::optional<kv::CacheGeometry> geometry;
  /// Sink for a stream-SELECT tenant; a default TableStreamSink if empty.
  std::shared_ptr<StreamSink> sink;
};

/// How an attachable program folds: one on-switch GROUPBY with its own cache
/// slice, or one stream SELECT delivered through a StreamSink.
enum class AttachKind : std::uint8_t { kSwitchQuery, kStreamSelect };

/// Classify a program for attach_query(). Attachable programs are single-
/// result: either one on-switch GROUPBY chain (exactly one switch plan that
/// IS the program's last query — upstream SELECTs are composed into the
/// plan, nothing runs in the collection layer) or one unconsumed stream
/// SELECT chain. Throws ConfigError for everything else — multi-result
/// programs, collection-layer queries (joins, soft GROUPBYs, SELECTs over
/// aggregate results) have no per-record resident form.
[[nodiscard]] inline AttachKind attachable_kind(
    const compiler::CompiledProgram& program) {
  const auto& queries = program.analysis.queries;
  if (queries.empty()) {
    throw ConfigError{"attach: program has no queries"};
  }
  // Unconsumed stream SELECTs, by the same rule StreamStage applies.
  std::vector<char> consumed(queries.size(), 0);
  const auto mark = [&](int i) {
    if (i >= 0 && static_cast<std::size_t>(i) < queries.size()) consumed[i] = 1;
  };
  for (const auto& q : queries) {
    mark(q.input);
    mark(q.left);
    mark(q.right);
  }
  std::size_t stream_selects = 0;
  int last_stream = -1;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    if (q.def.kind == lang::QueryDef::Kind::kSelect &&
        q.output.stream_over_base && consumed[i] == 0) {
      ++stream_selects;
      last_stream = static_cast<int>(i);
    }
  }
  const int last = static_cast<int>(queries.size()) - 1;
  if (program.switch_plans.size() == 1) {
    if (program.switch_plans.front().query_index != last) {
      throw ConfigError{
          "attach: program runs a collection layer downstream of its GROUPBY; "
          "attachable programs end at the on-switch aggregate"};
    }
    if (stream_selects != 0) {
      throw ConfigError{
          "attach: program mixes an on-switch GROUPBY with a stream SELECT; "
          "attach them as separate queries"};
    }
    return AttachKind::kSwitchQuery;
  }
  if (program.switch_plans.empty() && stream_selects == 1 &&
      last_stream == last) {
    return AttachKind::kStreamSelect;
  }
  throw ConfigError{
      "attach: program must be exactly one on-switch GROUPBY chain or one "
      "stream SELECT"};
}

/// Per-switch-query statistics surfaced to the evaluation harnesses.
struct StoreStats {
  std::string name;
  kv::Linearity linearity = kv::Linearity::kNotLinear;
  kv::CacheStats cache;
  kv::AccuracyStats accuracy;
  std::uint64_t backing_writes = 0;
  std::uint64_t backing_capacity_writes = 0;
  std::size_t keys = 0;
  bool attached = false;              ///< dynamically attached (vs base program)
  std::uint64_t attach_records = 0;   ///< attach epoch (records seen before it)
};

/// A mid-run result pull, stamped with the record boundary it is exact at.
struct EngineSnapshot {
  ResultTable table;
  std::uint64_t records = 0;  ///< records processed when the snapshot ran
  Nanos time;                 ///< caller-supplied timestamp (epoch end stamp)
};

/// Per-stream-query delivery accounting (one per stream SELECT).
struct StreamSinkMetrics {
  std::string query;
  std::uint64_t rows_delivered = 0;  ///< rows offered to the sink
  std::uint64_t rows_dropped = 0;    ///< rows the sink discarded (bounded sinks)
  bool saturated = false;            ///< sink hit its bound at least once
  bool attached = false;             ///< dynamically attached (vs base program)
  std::uint64_t attach_records = 0;  ///< attach epoch (records seen before it)
};

/// Per-shard pipeline accounting (sharded engine only).
struct ShardMetrics {
  std::size_t shard = 0;
  std::uint64_t evictions_pushed = 0;    ///< evictions enqueued by the worker
  std::uint64_t evictions_absorbed = 0;  ///< evictions merged by the merge thread
  bool worker_exited = false;
};

/// Per-dispatcher accounting (sharded engine, dispatchers >= 2 only — with a
/// single dispatcher the caller thread dispatches inline).
struct DispatcherMetrics {
  std::size_t dispatcher = 0;
  std::uint64_t batches_posted = 0;
  std::uint64_t batches_completed = 0;
  bool exited = false;
};

/// One (dispatcher, shard) SPSC ring of the dispatch matrix.
struct RingMetrics {
  std::size_t dispatcher = 0;
  std::size_t shard = 0;
  std::uint64_t occupancy = 0;      ///< records queued right now (approximate)
  std::uint64_t occupancy_hwm = 0;  ///< high-water mark of occupancy
  std::uint64_t capacity = 0;
  std::uint64_t push_stalls = 0;  ///< publishes that blocked on a full ring
};

/// The engine's self-telemetry: everything Engine::metrics() surfaces, as
/// plain values (safe to ship across threads, serialize, diff). See the
/// metrics coherence contract in the file comment.
struct EngineMetrics {
  std::string engine;  ///< "serial" or "sharded"

  // Driver-level counters.
  std::uint64_t records = 0;    ///< records accepted by process_batch()
  std::uint64_t batches = 0;    ///< process_batch() calls
  std::uint64_t refreshes = 0;  ///< periodic cache refreshes performed
  std::uint64_t snapshots = 0;  ///< mid-run snapshot() pulls served
  bool faulted = false;         ///< poisoned-state protocol engaged

  // Per-query store stats (same shape store_stats() returns; valid mid-run).
  std::vector<StoreStats> queries;
  std::vector<StreamSinkMetrics> streams;

  // Sharded pipeline state (empty on the serial engine).
  std::vector<ShardMetrics> shards;
  std::vector<DispatcherMetrics> dispatchers;
  std::vector<RingMetrics> rings;
  bool merge_exited = false;

  // Latency histograms (log2-ns buckets; see obs::HistogramSnapshot).
  obs::HistogramSnapshot batch_ns;     ///< process_batch() wall time (sampled)
  obs::HistogramSnapshot snapshot_ns;  ///< snapshot() rendezvous+drain latency
  obs::HistogramSnapshot absorb_ns;    ///< merge-thread absorb sweep latency

  // Ingest/replay accounting recorded by the trace layer (record_ingest /
  // record_replay) — zero if no driver reported any.
  trace::IngestStats ingest;
  std::uint64_t replay_records = 0;
  std::uint64_t replay_nanos = 0;
};

/// One timestamped EngineMetrics from the background sampler
/// (EngineBuilder::metrics_sampler; read back via Engine::metrics_series()).
struct MetricsSample {
  std::uint64_t elapsed_ns = 0;  ///< since the sampler started
  EngineMetrics metrics;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  virtual ~Engine() = default;

  /// Feed one packet observation (call once per record, in time order).
  /// Thin wrapper over process_batch for a single record.
  void process(const PacketRecord& rec) { process_batch({&rec, 1}); }

  /// Feed a batch of packet observations (time-ordered). Results are
  /// identical to calling process() per record; batches only enable the
  /// engines' prefetch/dispatch pipelining. Stream sinks receive matching
  /// rows in one delivery per call (stream_sink.hpp).
  virtual void process_batch(std::span<const PacketRecord> records) = 0;

  /// Feed a burst of raw captured frames (time-ordered), fused with
  /// dispatch: validation, field decode and fold happen in one pass per
  /// frame. Damaged frames are SKIPPED AND COUNTED (never thrown on) into
  /// the returned stats, which also accumulate into metrics().ingest.
  /// Results over the surviving frames are bit-identical to parsing each
  /// frame into a PacketRecord and calling process_batch() — the engines'
  /// lazy overrides decode only the fields the compiled program reads
  /// (CompiledProgram::field_usage), straight off the frame bytes. The base
  /// implementation is the eager reference path.
  virtual trace::IngestStats process_wire_batch(
      std::span<const FrameObservation> frames) {
    trace::IngestStats stats;
    std::vector<PacketRecord> pending;
    pending.reserve(frames.size());
    for (const FrameObservation& frame : frames) {
      wire::ParseError err{};
      const auto parsed =
          wire::try_parse(frame.bytes, &err, wire_verify_checksums_);
      if (!parsed) {
        trace::count_parse_error(stats, err);
        continue;
      }
      PacketRecord& rec = pending.emplace_back();
      rec.pkt = parsed->pkt;
      rec.qid = frame.qid;
      rec.tin = frame.tin;
      rec.tout = frame.tout;
      rec.qsize = frame.qsize;
      ++stats.parsed;
    }
    process_batch(pending);
    record_ingest(stats);
    return stats;
  }

  /// End the query window: flush caches, close stream sinks, run the
  /// collection layer. Must be called exactly once before result()/table().
  virtual void finish(Nanos now) = 0;

  /// The program's primary result (its last query). Only after finish().
  [[nodiscard]] virtual const ResultTable& result() const = 0;

  /// A named intermediate/final table ("R1"). Throws if unknown or a stream
  /// intermediate that was not materialized. Only after finish().
  [[nodiscard]] virtual const ResultTable& table(std::string_view name) const = 0;

  /// Mid-run result pull for one on-switch GROUPBY (see the consistency
  /// contract in the file comment). `now` stamps the open epoch's end (it
  /// only affects non-linear kernels' segment intervals).
  [[nodiscard]] virtual EngineSnapshot snapshot(std::string_view query_name,
                                                Nanos now) = 0;
  [[nodiscard]] EngineSnapshot snapshot(std::string_view query_name) {
    return snapshot(query_name, Nanos{0});
  }

  /// Lift one on-switch GROUPBY's merged store out of the engine as the
  /// cross-engine federation unit (kvstore/federated.hpp): every key's
  /// merged value/segments, stamped with the engine's record count and
  /// `now`. Mid-run it observes the same record boundary as snapshot() —
  /// live cache contents merged over a copy of the backing store, engine
  /// unperturbed; after finish() it reads the final backing store directly
  /// (the one read that works both mid-run and post-finish). Same
  /// serialization and poisoned-engine rules as snapshot(). The default
  /// throws ConfigError: engines without a federated surface opt out.
  [[nodiscard]] virtual kv::StoreExport export_store(std::string_view query_name,
                                                     Nanos now) {
    (void)query_name;
    (void)now;
    throw ConfigError{"export_store: engine does not support federated export"};
  }

  /// Attach one dynamically compiled query mid-stream (see the query
  /// lifecycle contract in the file comment). The program must be attachable
  /// — attachable_kind() below — and options.name unique among live queries;
  /// violations are ConfigError with no state change. Folding starts at the
  /// current record boundary (the attach epoch). Must be serialized with
  /// process_batch()/finish()/snapshot() by the caller.
  virtual void attach_query(compiler::CompiledProgram program,
                            const AttachOptions& options) = 0;

  /// Detach a dynamically attached query: flush its cache slice at `now`,
  /// return its final table, free every resource the attach allocated.
  /// Unknown or base-program names are a QueryError/ConfigError with no
  /// state change. Must be serialized like attach_query().
  virtual ResultTable detach_query(std::string_view name, Nanos now) = 0;

  /// Per-query store stats. Valid mid-run on both engines (mid-run values
  /// obey the metrics coherence contract); throws EngineFaultError if the
  /// engine is poisoned.
  [[nodiscard]] virtual std::vector<StoreStats> store_stats() const = 0;
  [[nodiscard]] virtual std::uint64_t records_processed() const = 0;
  [[nodiscard]] virtual std::uint64_t refresh_count() const = 0;
  [[nodiscard]] virtual const compiler::CompiledProgram& program() const = 0;

  /// The engine's self-telemetry. Callable from any thread at any time,
  /// including on a poisoned engine (see the metrics coherence contract).
  [[nodiscard]] virtual EngineMetrics metrics() const = 0;

  /// Samples collected by the background metrics sampler; empty unless the
  /// engine was built with EngineBuilder::metrics_sampler().
  [[nodiscard]] virtual std::vector<MetricsSample> metrics_series() const {
    return {};
  }

  /// Fold one feed's ingest accounting into metrics().ingest. Drivers that
  /// parse wire-format input (trace::replay_frames, TraceReader loops) call
  /// this when the feed ends; callable multiple times (stats accumulate).
  virtual void record_ingest(const trace::IngestStats& stats) {
    ingest_telemetry_.parsed += stats.parsed;
    ingest_telemetry_.truncated += stats.truncated;
    ingest_telemetry_.unsupported += stats.unsupported;
    ingest_telemetry_.bad_length += stats.bad_length;
    ingest_telemetry_.bad_checksum += stats.bad_checksum;
  }

  /// Record one replay pass (trace::replay) for metrics().replay_*.
  virtual void record_replay(std::uint64_t records, std::uint64_t nanos) {
    ingest_telemetry_.replay_records += records;
    ingest_telemetry_.replay_nanos += nanos;
  }

 protected:
  /// Ingest/replay slots shared by both engines. Written by the driver
  /// (caller) thread, read by metrics() — single-writer relaxed, like every
  /// other slot.
  struct IngestTelemetry {
    obs::RelaxedU64 parsed, truncated, unsupported, bad_length, bad_checksum;
    obs::RelaxedU64 replay_records, replay_nanos;
  };
  IngestTelemetry ingest_telemetry_;

  /// Whether the wire ingest path verifies IPv4 header checksums. Concrete
  /// engines set this from EngineConfig::verify_checksums at construction.
  bool wire_verify_checksums_ = false;

  /// Copy the driver-side slots into a metrics result (concrete engines call
  /// this from their metrics()).
  void fill_driver_metrics(EngineMetrics& m) const {
    m.ingest.parsed = ingest_telemetry_.parsed;
    m.ingest.truncated = ingest_telemetry_.truncated;
    m.ingest.unsupported = ingest_telemetry_.unsupported;
    m.ingest.bad_length = ingest_telemetry_.bad_length;
    m.ingest.bad_checksum = ingest_telemetry_.bad_checksum;
    m.replay_records = ingest_telemetry_.replay_records;
    m.replay_nanos = ingest_telemetry_.replay_nanos;
  }
};

}  // namespace perfq::runtime
