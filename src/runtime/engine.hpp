// The serial query engine — the single-threaded implementation of the
// unified Engine interface (runtime/engine_api.hpp).
//
// One QueryEngine hosts a compiled program: every on-switch GROUPBY gets a
// programmable key-value store instance (src/kvstore) configured with the
// chosen cache geometry; stream SELECT rows are delivered through the
// pluggable StreamSink stage; finish() flushes all caches to the backing
// stores and runs the collection-layer DAG (soft SELECTs, soft GROUPBYs over
// aggregates, JOINs), producing the result tables the paper's applications
// would pull — and snapshot() produces the same table for one query mid-run,
// by merging the live cache contents over a copy of its backing store.
//
// Construct through runtime::EngineBuilder unless you specifically need the
// concrete type (engine-internals tests, the switch-pipeline comparison).
//
// Failure domains: an exception escaping the fold/stream machinery mid-batch
// (a stream-sink callback throw, an injected failpoint, allocation failure)
// leaves the stores partially updated, so the engine poisons itself — the
// fault is recorded in a FaultSlot and every subsequent call throws a
// structured EngineFaultError instead of serving corrupt results. Same
// contract as ShardedEngine (see engine_fault.hpp and engine_api.hpp).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/engine_api.hpp"
#include "runtime/engine_fault.hpp"
#include "runtime/fold_core.hpp"
#include "runtime/stream_stage.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

class QueryEngine final : public Engine {
 public:
  explicit QueryEngine(compiler::CompiledProgram program, EngineConfig config = {});

  /// Feed a batch of packet observations (time-ordered). The hot path:
  /// per chunk, every switch query's keys (with their cached hashes) are
  /// extracted and their cache buckets software-prefetched up front, then the
  /// records fold — the bucket fetch of record i+k overlaps the fold of
  /// record i, mirroring dataplane burst processing. Results are identical
  /// to calling process() per record.
  void process_batch(std::span<const PacketRecord> records) override;

  /// Fused lazy wire ingest: validate each frame (skip-and-count damage),
  /// then run the SAME two-pass chunk pipeline over WireRecordViews — fields
  /// decode lazily at their wire offsets, so only what the compiled program
  /// reads (program().field_usage) is ever touched. No PacketRecord is
  /// materialized for const-A/h=0 kernels. Bit-identical to parsing the
  /// frames and calling process_batch().
  trace::IngestStats process_wire_batch(
      std::span<const FrameObservation> frames) override;

  /// End the query window: flush caches, run the collection layer. Must be
  /// called exactly once before reading results.
  void finish(Nanos now) override;

  /// The program's primary result (its last query).
  [[nodiscard]] const ResultTable& result() const override;

  /// A named intermediate/final table ("R1"). Throws if unknown or stream-
  /// only intermediate.
  [[nodiscard]] const ResultTable& table(std::string_view name) const override;

  /// Mid-run pull: live cache merged over a copy of the query's backing
  /// store (exact for linear kernels; see the contract in engine_api.hpp).
  using Engine::snapshot;
  [[nodiscard]] EngineSnapshot snapshot(std::string_view query_name,
                                        Nanos now) override;

  /// Federation export (contract in engine_api.hpp): mid-run, the same
  /// cache-over-backing-copy merge snapshot() performs; after finish(), the
  /// final backing store read directly.
  [[nodiscard]] kv::StoreExport export_store(std::string_view query_name,
                                             Nanos now) override;

  /// Dynamic attach/detach (lifecycle contract in engine_api.hpp): the new
  /// query gets its own key-value store (or stream sink) and starts folding
  /// at the current record boundary; detach flushes, materializes and frees.
  void attach_query(compiler::CompiledProgram program,
                    const AttachOptions& options) override;
  ResultTable detach_query(std::string_view name, Nanos now) override;

  [[nodiscard]] std::vector<StoreStats> store_stats() const override;

  /// Self-telemetry; any thread, any time, never throws (engine_api.hpp
  /// metrics coherence contract).
  [[nodiscard]] EngineMetrics metrics() const override;

  [[nodiscard]] const compiler::CompiledProgram& program() const override {
    return program_;
  }
  [[nodiscard]] std::uint64_t records_processed() const override {
    return records_;
  }
  [[nodiscard]] std::uint64_t refresh_count() const override {
    return refreshes_;
  }

  /// Direct access to a switch query's key-value store (tests, benches).
  [[nodiscard]] const kv::KeyValueStore& store(std::string_view query_name) const;

 private:
  /// Records per prefetch chunk (the fold core's two-pass scratch size).
  static constexpr std::size_t kBatchChunk = SwitchFoldCore::kChunk;

  struct SwitchInstance {
    const compiler::SwitchQueryPlan* plan;
    std::unique_ptr<kv::KeyValueStore> store;
    /// The reusable hot path (prefilter/extract/prefetch/fold) over the
    /// store's cache; shard workers run the same core (runtime/fold_core).
    /// Heap-owned so detach frees the core's scratch with the instance.
    std::unique_ptr<SwitchFoldCore> core;
    /// Attached tenants own their compiled program (the plan pointer points
    /// into it); null for base-program instances. Doubles as the attached
    /// flag.
    std::shared_ptr<const compiler::CompiledProgram> attached;
    std::uint64_t attach_records = 0;  ///< attach epoch
  };

  void materialize_switch_tables();
  void process_batch_impl(std::span<const PacketRecord> records);
  void process_wire_batch_impl(std::span<const FrameObservation> frames,
                               trace::IngestStats& stats);
  /// The two-pass prepare/fold pipeline over one chunk (<= kBatchChunk
  /// records), shared verbatim by the eager and lazy wire paths: record
  /// semantics differ only in where field_value() reads from.
  template <typename Rec>
  void process_chunk(std::span<const Rec> chunk);
  /// store_stats() minus the fault gate — metrics() must work when poisoned.
  [[nodiscard]] std::vector<StoreStats> collect_store_stats() const;
  [[nodiscard]] const ResultTable* find_table(int index) const;
  /// Poisoned-state gate (see the file comment's failure-domain notes).
  void throw_if_faulted() const;
  /// Run `body` under the poisoned-state machinery: any escaping exception
  /// other than an EngineFaultError is recorded as a kCaller fault and
  /// rethrown structured.
  template <typename Fn>
  decltype(auto) guarded(Fn&& body) {
    try {
      return body();
    } catch (const EngineFaultError&) {
      throw;
    } catch (const std::exception& e) {
      fault_.record(ThreadRole::kCaller, kNoShard, e.what());
      fault_.raise();
    } catch (...) {
      fault_.record(ThreadRole::kCaller, kNoShard, "unknown exception");
      fault_.raise();
    }
  }

  compiler::CompiledProgram program_;
  EngineConfig config_;
  std::vector<SwitchInstance> switches_;
  StreamStage stream_;
  std::map<int, ResultTable> tables_;  ///< by query index
  /// Final tables of queries still attached at finish(), by name (their
  /// query indices belong to their own programs).
  std::map<std::string, ResultTable, std::less<>> attached_tables_;
  /// Guards the switches_/stream_ TOPOLOGY (attach/detach push_back/erase)
  /// against metrics()/store_stats() readers on other threads. The hot path
  /// never takes it: attach/detach are serialized with process_batch() by
  /// the caller (engine_api.hpp lifecycle contract).
  mutable std::mutex topology_mu_;
  /// Telemetry slots (single writer: the caller thread; metrics() reads).
  obs::RelaxedU64 records_;
  obs::RelaxedU64 refreshes_;
  obs::RelaxedU64 batches_;
  obs::RelaxedU64 snapshots_;
  std::uint32_t batch_tick_ = 0;  ///< sampling phase for small-batch timing
  obs::LatencyHistogram batch_ns_;
  obs::LatencyHistogram snapshot_ns_;
  Nanos next_refresh_{0};
  bool finished_ = false;
  /// First-exception-wins poisoned state (single-threaded here, but the
  /// same slot type the sharded engine shares across its threads).
  FaultSlot fault_;
};

}  // namespace perfq::runtime
