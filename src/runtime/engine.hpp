// The end-to-end query engine.
//
// One QueryEngine hosts a compiled program: every on-switch GROUPBY gets a
// programmable key-value store instance (src/kvstore) configured with the
// chosen cache geometry; stream SELECT sinks collect matching records during
// processing; finish() flushes all caches to the backing stores and runs the
// collection-layer DAG (soft SELECTs, soft GROUPBYs over aggregates, JOINs),
// producing the result tables the paper's applications would pull.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "compiler/program.hpp"
#include "kvstore/kvstore.hpp"
#include "runtime/fold_core.hpp"
#include "runtime/table.hpp"

namespace perfq::runtime {

struct EngineConfig {
  /// Cache geometry for every on-switch GROUPBY (overridable per query).
  kv::CacheGeometry geometry = kv::CacheGeometry::set_associative(1u << 16, 8);
  std::map<std::string, kv::CacheGeometry> per_query_geometry;
  std::uint64_t hash_seed = 0x5eedcafe;
  /// In-bucket replacement policy (the paper uses LRU).
  kv::EvictionPolicy eviction_policy = kv::EvictionPolicy::kLru;
  /// Cap on rows collected per streaming SELECT sink.
  std::size_t max_stream_rows = 1'000'000;
  /// Periodically flush caches to the backing store while processing (§3.2:
  /// "keys can be periodically evicted to ensure the backing store is
  /// fresh, and monitoring applications can pull results"). Zero disables.
  /// Thanks to the exact merge this is free of correctness cost for linear
  /// queries; refresh_count() reports how many refreshes happened.
  Nanos refresh_interval{0};
};

/// Per-switch-query statistics surfaced to the evaluation harnesses.
struct StoreStats {
  std::string name;
  kv::Linearity linearity = kv::Linearity::kNotLinear;
  kv::CacheStats cache;
  kv::AccuracyStats accuracy;
  std::uint64_t backing_writes = 0;
  std::uint64_t backing_capacity_writes = 0;
  std::size_t keys = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(compiler::CompiledProgram program, EngineConfig config = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Feed one packet observation (call once per record, in time order).
  /// Thin wrapper over process_batch for a single record.
  void process(const PacketRecord& rec) { process_batch({&rec, 1}); }

  /// Feed a batch of packet observations (time-ordered). The hot path:
  /// per chunk, every switch query's keys (with their cached hashes) are
  /// extracted and their cache buckets software-prefetched up front, then the
  /// records fold — the bucket fetch of record i+k overlaps the fold of
  /// record i, mirroring dataplane burst processing. Results are identical
  /// to calling process() per record.
  void process_batch(std::span<const PacketRecord> records);

  /// End the query window: flush caches, run the collection layer. Must be
  /// called exactly once before reading results.
  void finish(Nanos now);

  /// The program's primary result (its last query).
  [[nodiscard]] const ResultTable& result() const;

  /// A named intermediate/final table ("R1"). Throws if unknown or stream-
  /// only intermediate.
  [[nodiscard]] const ResultTable& table(std::string_view name) const;

  [[nodiscard]] std::vector<StoreStats> store_stats() const;
  [[nodiscard]] const compiler::CompiledProgram& program() const { return program_; }
  [[nodiscard]] std::uint64_t records_processed() const { return records_; }
  [[nodiscard]] std::uint64_t refresh_count() const { return refreshes_; }

  /// Direct access to a switch query's key-value store (tests, benches).
  [[nodiscard]] const kv::KeyValueStore& store(std::string_view query_name) const;

 private:
  /// Records per prefetch chunk (the fold core's two-pass scratch size).
  static constexpr std::size_t kBatchChunk = SwitchFoldCore::kChunk;

  struct SwitchInstance {
    const compiler::SwitchQueryPlan* plan;
    std::unique_ptr<kv::KeyValueStore> store;
    /// The reusable hot path (prefilter/extract/prefetch/fold) over the
    /// store's cache; shard workers run the same core (runtime/fold_core).
    SwitchFoldCore core;
  };
  struct StreamSink {
    compiler::CompiledStreamSelect compiled;
    ResultTable table;
    bool overflowed = false;
  };

  void materialize_switch_tables();
  [[nodiscard]] const ResultTable* find_table(int index) const;

  compiler::CompiledProgram program_;
  EngineConfig config_;
  std::vector<SwitchInstance> switches_;
  std::vector<StreamSink> sinks_;
  std::map<int, ResultTable> tables_;  ///< by query index
  std::uint64_t records_ = 0;
  std::uint64_t refreshes_ = 0;
  Nanos next_refresh_{0};
  bool finished_ = false;
};

}  // namespace perfq::runtime
