// Network-wide queries: one query engine PER SWITCH, federated exactly.
//
// The paper's deployment model (§3.1) runs the on-switch half of a query in
// every switch of the fabric and merges at a central collector. FabricEngine
// is that model over the simulator: it attaches one runtime::Engine (serial
// or sharded — a per-switch deployment knob) to every switch of a
// netsim::Network via per-node telemetry taps, so each engine folds exactly
// the records of its own switch's queues, and federates their stores through
// federation::Collector into network-wide result tables.
//
//   net::Network net;  ... build topology, add flows ...
//   FabricEngine fabric(net, compiler::compile_source(src), options);
//   net.run_until(t);                       // taps feed the engines
//   auto mid = fabric.snapshot("loss", t);  // network-wide mid-run pull
//   net.run_all();
//   fabric.finish(net.now());
//   const runtime::ResultTable& result = fabric.result();
//
// Exactness is the collector's contract (collector.hpp): additive and
// associative kernels federate bit-for-bit against an all-packets oracle;
// order-sensitive kernels are exact per single-source key with §3.2's
// segment escape hatch for keys that crossed switches.
//
// Stream SELECTs stay per-switch: their rows are delivered through each
// switch engine's own sinks (engine(label) reaches them) and have no exact
// cross-switch order to merge under. Fabric-level result()/table() serve the
// GROUPBY + collection-layer queries.
//
// Threading: the Network drives the taps from its event loop, so every
// FabricEngine call must come from that same (single) driver thread between
// run_until() steps — the same serialization contract as Engine itself. The
// Network must outlive the FabricEngine (the destructor clears its taps).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "compiler/program.hpp"
#include "federation/collector.hpp"
#include "netsim/network.hpp"
#include "obs/metrics_export.hpp"
#include "runtime/engine_api.hpp"

namespace perfq::federation {

struct FabricOptions {
  /// Switches to instrument; empty = every non-host node of the network.
  std::vector<net::NodeId> switches;
  /// Per-switch engine sharding (0 = serial QueryEngine on every switch).
  std::size_t shards = 0;
  /// Per-switch cache geometry; engine default when unset.
  std::optional<kv::CacheGeometry> geometry;
  /// Per-switch periodic refresh (§3.2); zero disables. NOTE the FP caveat
  /// in collector.hpp: each engine's refresh clock anchors at ITS first
  /// record, so refresh changes flush instants per switch — free for
  /// additive/associative kernels, ULP-level for other linear folds.
  Nanos refresh_interval{0};
  std::uint64_t hash_seed = 0x5eedcafe;
  /// Records a tap buffers before handing the switch engine one batch.
  std::size_t tap_batch = 256;
};

/// Per-switch engine metrics plus the fabric-wide rollup, rendered through
/// the same obs:: exporters as a single engine (per-switch samples carry a
/// {"switch": label} base label).
struct FabricMetrics {
  std::vector<std::pair<std::string, runtime::EngineMetrics>> switches;
  runtime::EngineMetrics rollup;  ///< engine = "fabric"; counters summed
};

class FabricEngine {
 public:
  /// Builds one engine per instrumented switch (each gets its own copy of
  /// `program`) and installs the per-node taps. Throws ConfigError if the
  /// program has no on-switch GROUPBY, a selected node is a host, or a
  /// selected node repeats.
  FabricEngine(net::Network& network, compiler::CompiledProgram program,
               FabricOptions options = {});
  ~FabricEngine();
  FabricEngine(const FabricEngine&) = delete;
  FabricEngine& operator=(const FabricEngine&) = delete;

  /// Push every tap's buffered records into its engine. Called internally by
  /// snapshot()/finish()/attach/detach to reach a record boundary; call it
  /// directly before reading per-switch engines mid-run.
  void flush_taps();

  /// End the network-wide window: flush taps, finish every switch engine,
  /// federate each on-switch GROUPBY, run the collection layer over the
  /// federated tables. Call exactly once, after the network run.
  void finish(Nanos now);

  /// The program's primary result, network-wide. Only after finish().
  [[nodiscard]] const runtime::ResultTable& result() const;
  /// A named federated table. Only after finish(). Stream intermediates are
  /// not materialized at fabric level (see the file comment).
  [[nodiscard]] const runtime::ResultTable& table(std::string_view name) const;

  /// Network-wide result pull of one on-switch GROUPBY (base program or
  /// attached): flush taps, export every switch engine's store at the
  /// current record boundary, federate. Works mid-run AND after finish().
  [[nodiscard]] FederatedResult snapshot(std::string_view query_name,
                                         Nanos now);

  /// Accuracy/capability of one federated GROUPBY as of the last finish().
  [[nodiscard]] const FederatedResult& federated(std::string_view name) const;

  /// Attach one single-GROUPBY program to EVERY switch engine under
  /// options.name (stream tenants are per-switch state and are rejected at
  /// fabric level). All-or-nothing: a failed per-switch attach rolls back
  /// the switches already attached, leaving the fabric unchanged.
  void attach_query(const compiler::CompiledProgram& program,
                    const runtime::AttachOptions& options);

  /// Detach a fabric-attached query: export every switch's final store at
  /// `now`, detach it everywhere, return the federated result.
  FederatedResult detach_query(std::string_view name, Nanos now);

  /// Per-switch engine metrics + fabric rollup (see FabricMetrics).
  [[nodiscard]] FabricMetrics metrics() const;

  // ---- introspection -------------------------------------------------------
  [[nodiscard]] std::size_t switch_count() const { return slots_.size(); }
  [[nodiscard]] const std::string& switch_label(std::size_t i) const {
    return slots_[i].label;
  }
  /// The per-switch engine, by slot index or by label (tests, stream sinks).
  [[nodiscard]] runtime::Engine& engine(std::size_t i) { return *slots_[i].engine; }
  [[nodiscard]] runtime::Engine& engine(std::string_view label);
  /// Sum of records accepted across switch engines (flushed taps only).
  [[nodiscard]] std::uint64_t records() const;
  /// Latest record time observed by any tap (Nanos{0} before traffic).
  [[nodiscard]] Nanos end_time() const { return end_; }
  [[nodiscard]] const compiler::CompiledProgram& program() const {
    return program_;
  }

 private:
  struct SwitchSlot {
    net::NodeId node = 0;
    std::string label;
    std::unique_ptr<runtime::Engine> engine;
    std::vector<PacketRecord> buf;  ///< tap buffer, flushed at tap_batch
  };

  /// Resolve a GROUPBY by resident name to its (program, plan) pair — base
  /// program or fabric-attached copy. Throws QueryError if unknown.
  [[nodiscard]] std::pair<const compiler::CompiledProgram*,
                          const compiler::SwitchQueryPlan*>
  resolve(std::string_view query_name) const;

  /// Export every switch engine's store for `plan` into a collector.
  [[nodiscard]] FederatedResult federate(const compiler::CompiledProgram& program,
                                         const compiler::SwitchQueryPlan& plan,
                                         Nanos now);

  net::Network* net_;
  compiler::CompiledProgram program_;
  FabricOptions options_;
  std::vector<SwitchSlot> slots_;
  /// Fabric-attached programs by resident name (the renamed copies whose
  /// plans the collectors read).
  std::map<std::string, std::shared_ptr<const compiler::CompiledProgram>,
           std::less<>>
      attached_;
  std::map<int, runtime::ResultTable> tables_;  ///< by query index, post-finish
  std::map<std::string, FederatedResult, std::less<>> finals_;  ///< by name
  Nanos end_{0};
  bool finished_ = false;
};

/// Render a fabric's metrics through the shared exporters: the rollup's
/// samples unlabeled plus every switch engine's samples under a
/// {"switch": label} base label — one scrape surface for the whole fabric.
[[nodiscard]] std::string fabric_metrics_to_json(const FabricMetrics& m);
[[nodiscard]] std::string fabric_metrics_to_prometheus(const FabricMetrics& m);

}  // namespace perfq::federation
