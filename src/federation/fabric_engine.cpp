#include "federation/fabric_engine.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "runtime/collection.hpp"
#include "runtime/engine_builder.hpp"

namespace perfq::federation {

FabricEngine::FabricEngine(net::Network& network,
                           compiler::CompiledProgram program,
                           FabricOptions options)
    : net_(&network), program_(std::move(program)), options_(std::move(options)) {
  if (program_.switch_plans.empty()) {
    throw ConfigError{"fabric: program has no on-switch GROUPBY to federate"};
  }
  if (options_.tap_batch == 0) options_.tap_batch = 1;

  std::vector<net::NodeId> nodes = options_.switches;
  if (nodes.empty()) {
    for (net::NodeId n = 0; n < net_->node_count(); ++n) {
      if (!net_->node_is_host(n)) nodes.push_back(n);
    }
  }
  if (nodes.empty()) {
    throw ConfigError{"fabric: network has no switches to instrument"};
  }
  std::set<net::NodeId> seen;
  for (const net::NodeId n : nodes) {
    if (n >= net_->node_count()) {
      throw ConfigError{"fabric: no node " + std::to_string(n)};
    }
    if (net_->node_is_host(n)) {
      throw ConfigError{"fabric: node '" + net_->node_name(n) +
                        "' is a host, not a switch"};
    }
    if (!seen.insert(n).second) {
      throw ConfigError{"fabric: node '" + net_->node_name(n) +
                        "' selected twice"};
    }
  }

  // Build every slot before installing any tap: the tap lambdas index into
  // slots_, which must not reallocate under them.
  slots_.reserve(nodes.size());
  for (const net::NodeId n : nodes) {
    SwitchSlot slot;
    slot.node = n;
    slot.label =
        net_->node_name(n).empty() ? "sw" + std::to_string(n) : net_->node_name(n);
    runtime::EngineBuilder builder{program_.clone()};
    builder.hash_seed(options_.hash_seed).refresh(options_.refresh_interval);
    if (options_.geometry.has_value()) builder.geometry(*options_.geometry);
    if (options_.shards > 0) builder.sharded(options_.shards);
    slot.engine = builder.build();
    slot.buf.reserve(options_.tap_batch);
    slots_.push_back(std::move(slot));
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    net_->set_node_telemetry_sink(
        slots_[i].node, [this, i](const PacketRecord& rec) {
          SwitchSlot& s = slots_[i];
          s.buf.push_back(rec);
          if (rec.tin > end_) end_ = rec.tin;
          if (s.buf.size() >= options_.tap_batch) {
            s.engine->process_batch(s.buf);
            s.buf.clear();
          }
        });
  }
}

FabricEngine::~FabricEngine() {
  for (const SwitchSlot& slot : slots_) {
    net_->set_node_telemetry_sink(slot.node, {});
  }
}

void FabricEngine::flush_taps() {
  for (SwitchSlot& slot : slots_) {
    if (slot.buf.empty()) continue;
    slot.engine->process_batch(slot.buf);
    slot.buf.clear();
  }
}

FederatedResult FabricEngine::federate(const compiler::CompiledProgram& program,
                                       const compiler::SwitchQueryPlan& plan,
                                       Nanos now) {
  Collector collector(program, plan);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    collector.add(static_cast<std::uint32_t>(i),
                  slots_[i].engine->export_store(plan.name, now));
  }
  return collector.materialize();
}

void FabricEngine::finish(Nanos now) {
  check(!finished_, "fabric: finish called twice");
  flush_taps();
  // Stop listening: records emitted after the window closed must not reach
  // finished engines.
  for (const SwitchSlot& slot : slots_) {
    net_->set_node_telemetry_sink(slot.node, {});
  }
  for (SwitchSlot& slot : slots_) slot.engine->finish(now);
  finished_ = true;

  // Federate every on-switch GROUPBY, then run the collection layer over the
  // network-wide tables exactly as a single engine runs it over its own.
  for (const auto& plan : program_.switch_plans) {
    FederatedResult merged = federate(program_, plan, now);
    tables_.emplace(plan.query_index, merged.table);
    finals_.emplace(plan.name, std::move(merged));
  }
  for (const auto& [name, owned] : attached_) {
    finals_.emplace(name,
                    federate(*owned, owned->switch_plans.front(), now));
  }
  for (std::size_t i = 0; i < program_.analysis.queries.size(); ++i) {
    if (tables_.count(static_cast<int>(i)) > 0) continue;
    runtime::run_collection_query(program_, static_cast<int>(i), tables_);
  }
}

const runtime::ResultTable& FabricEngine::result() const {
  check(finished_, "fabric: result before finish");
  const int last = static_cast<int>(program_.analysis.queries.size()) - 1;
  const runtime::ResultTable* t = runtime::find_collection_table(tables_, last);
  check(t != nullptr, "fabric: program result not materialized");
  return *t;
}

const runtime::ResultTable& FabricEngine::table(std::string_view name) const {
  check(finished_, "fabric: table before finish");
  const int idx = program_.analysis.query_index(name);
  if (idx >= 0) {
    const runtime::ResultTable* t = runtime::find_collection_table(tables_, idx);
    if (t == nullptr) {
      throw QueryError{"result",
                       "fabric: table '" + std::string{name} +
                           "' is a stream intermediate and is per-switch"};
    }
    return *t;
  }
  if (const auto it = finals_.find(name); it != finals_.end()) {
    return it->second.table;
  }
  throw QueryError{"result", "fabric: unknown table '" + std::string{name} + "'"};
}

FederatedResult FabricEngine::snapshot(std::string_view query_name, Nanos now) {
  const auto [program, plan] = resolve(query_name);
  flush_taps();
  return federate(*program, *plan, now);
}

const FederatedResult& FabricEngine::federated(std::string_view name) const {
  check(finished_, "fabric: federated() before finish");
  const auto it = finals_.find(name);
  if (it == finals_.end()) {
    throw QueryError{"result",
                     "fabric: no federated GROUPBY named '" + std::string{name} +
                         "'"};
  }
  return it->second;
}

std::pair<const compiler::CompiledProgram*, const compiler::SwitchQueryPlan*>
FabricEngine::resolve(std::string_view query_name) const {
  for (const auto& plan : program_.switch_plans) {
    if (plan.name == query_name) return {&program_, &plan};
  }
  if (const auto it = attached_.find(query_name); it != attached_.end()) {
    return {it->second.get(), &it->second->switch_plans.front()};
  }
  throw QueryError{"result", "fabric: no on-switch GROUPBY named '" +
                                 std::string{query_name} + "'"};
}

void FabricEngine::attach_query(const compiler::CompiledProgram& program,
                                const runtime::AttachOptions& options) {
  check(!finished_, "fabric: attach after finish");
  // Validation first, no state change on failure — same rule as the engines.
  const runtime::AttachKind kind = runtime::attachable_kind(program);
  if (kind != runtime::AttachKind::kSwitchQuery) {
    throw ConfigError{
        "fabric attach: stream SELECT tenants are per-switch state; attach "
        "them on engine(label) directly"};
  }
  if (options.name.empty()) {
    throw ConfigError{"fabric attach: query name must not be empty"};
  }
  if (attached_.count(options.name) > 0 ||
      program_.analysis.query_index(options.name) >= 0) {
    throw ConfigError{"fabric attach: query '" + options.name +
                      "' already exists"};
  }
  // Reach one fabric-wide record boundary so every switch shares the same
  // attach epoch relative to its tap stream.
  flush_taps();

  // The fabric keeps its own renamed copy — the plan the collectors read.
  auto owned = std::make_shared<compiler::CompiledProgram>(program.clone());
  owned->analysis.queries.back().def.result_name = options.name;
  owned->switch_plans.front().name = options.name;

  // All-or-nothing across switches: roll back on any per-engine failure.
  std::size_t attached_count = 0;
  try {
    for (SwitchSlot& slot : slots_) {
      slot.engine->attach_query(program.clone(), options);
      ++attached_count;
    }
  } catch (...) {
    for (std::size_t i = 0; i < attached_count; ++i) {
      (void)slots_[i].engine->detach_query(options.name, Nanos{0});
    }
    throw;
  }
  attached_.emplace(options.name, std::move(owned));
}

FederatedResult FabricEngine::detach_query(std::string_view name, Nanos now) {
  check(!finished_, "fabric: detach after finish");
  const auto it = attached_.find(name);
  if (it == attached_.end()) {
    for (const auto& plan : program_.switch_plans) {
      if (plan.name == name) {
        throw ConfigError{"fabric detach: '" + std::string{name} +
                          "' is a base-program query and cannot be detached"};
      }
    }
    throw QueryError{"result",
                     "fabric detach: unknown query '" + std::string{name} + "'"};
  }
  flush_taps();
  // Export-then-detach: federate the final per-switch stores, then free them.
  FederatedResult merged =
      federate(*it->second, it->second->switch_plans.front(), now);
  for (SwitchSlot& slot : slots_) {
    (void)slot.engine->detach_query(name, now);
  }
  attached_.erase(it);
  return merged;
}

runtime::Engine& FabricEngine::engine(std::string_view label) {
  for (SwitchSlot& slot : slots_) {
    if (slot.label == label) return *slot.engine;
  }
  throw ConfigError{"fabric: no switch labeled '" + std::string{label} + "'"};
}

std::uint64_t FabricEngine::records() const {
  std::uint64_t total = 0;
  for (const SwitchSlot& slot : slots_) total += slot.engine->records_processed();
  return total;
}

namespace {

void merge_histogram(obs::HistogramSnapshot& dst,
                     const obs::HistogramSnapshot& src) {
  for (std::size_t b = 0; b < dst.buckets.size(); ++b) {
    dst.buckets[b] += src.buckets[b];
  }
  dst.count += src.count;
  dst.sum_ns += src.sum_ns;
}

void merge_store_stats(runtime::StoreStats& dst,
                       const runtime::StoreStats& src) {
  dst.cache.packets += src.cache.packets;
  dst.cache.hits += src.cache.hits;
  dst.cache.initializations += src.cache.initializations;
  dst.cache.evictions += src.cache.evictions;
  dst.cache.flushes += src.cache.flushes;
  dst.accuracy.valid_keys += src.accuracy.valid_keys;
  dst.accuracy.total_keys += src.accuracy.total_keys;
  dst.backing_writes += src.backing_writes;
  dst.backing_capacity_writes += src.backing_capacity_writes;
  dst.keys += src.keys;
  dst.attached = dst.attached || src.attached;
  dst.attach_records = std::max(dst.attach_records, src.attach_records);
}

}  // namespace

FabricMetrics FabricEngine::metrics() const {
  FabricMetrics fm;
  fm.rollup.engine = "fabric";
  for (const SwitchSlot& slot : slots_) {
    runtime::EngineMetrics m = slot.engine->metrics();
    runtime::EngineMetrics& r = fm.rollup;
    r.records += m.records;
    r.batches += m.batches;
    r.refreshes += m.refreshes;
    r.snapshots += m.snapshots;
    r.faulted = r.faulted || m.faulted;
    for (const runtime::StoreStats& q : m.queries) {
      const auto found =
          std::find_if(r.queries.begin(), r.queries.end(),
                       [&](const runtime::StoreStats& s) { return s.name == q.name; });
      if (found == r.queries.end()) {
        r.queries.push_back(q);
      } else {
        merge_store_stats(*found, q);
      }
    }
    for (const runtime::StreamSinkMetrics& s : m.streams) {
      const auto found = std::find_if(
          r.streams.begin(), r.streams.end(),
          [&](const runtime::StreamSinkMetrics& t) { return t.query == s.query; });
      if (found == r.streams.end()) {
        r.streams.push_back(s);
      } else {
        found->rows_delivered += s.rows_delivered;
        found->rows_dropped += s.rows_dropped;
        found->saturated = found->saturated || s.saturated;
        found->attached = found->attached || s.attached;
        found->attach_records = std::max(found->attach_records, s.attach_records);
      }
    }
    // Per-thread pipeline state (shards/dispatchers/rings) stays per-switch:
    // summing thread ids across engines would be meaningless.
    merge_histogram(r.batch_ns, m.batch_ns);
    merge_histogram(r.snapshot_ns, m.snapshot_ns);
    merge_histogram(r.absorb_ns, m.absorb_ns);
    r.ingest.parsed += m.ingest.parsed;
    r.ingest.truncated += m.ingest.truncated;
    r.ingest.unsupported += m.ingest.unsupported;
    r.ingest.bad_length += m.ingest.bad_length;
    r.ingest.bad_checksum += m.ingest.bad_checksum;
    r.replay_records += m.replay_records;
    r.replay_nanos += m.replay_nanos;
    fm.switches.emplace_back(slot.label, std::move(m));
  }
  return fm;
}

std::string fabric_metrics_to_json(const FabricMetrics& m) {
  return obs::samples_to_json("fabric", [&](const obs::MetricFn& fn) {
    obs::visit_metrics(m.rollup, fn);
    for (const auto& [label, em] : m.switches) {
      obs::visit_metrics(em, fn, {{"switch", label}});
    }
  });
}

std::string fabric_metrics_to_prometheus(const FabricMetrics& m) {
  return obs::samples_to_prometheus([&](const obs::MetricFn& fn) {
    obs::visit_metrics(m.rollup, fn);
    for (const auto& [label, em] : m.switches) {
      obs::visit_metrics(em, fn, {{"switch", label}});
    }
  });
}

}  // namespace perfq::federation
