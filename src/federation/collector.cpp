#include "federation/collector.hpp"

#include "common/error.hpp"
#include "runtime/collection.hpp"

namespace perfq::federation {

Collector::Collector(const compiler::CompiledProgram& program,
                     const compiler::SwitchQueryPlan& plan)
    : program_(&program), plan_(&plan), store_(plan.kernel) {}

void Collector::add(std::uint32_t source, const kv::StoreExport& exported) {
  if (exported.query != plan_->name) {
    throw ConfigError{"Collector for '" + plan_->name +
                      "' fed an export of '" + exported.query + "'"};
  }
  store_.absorb(source, exported);
}

FederatedResult Collector::materialize() const {
  FederatedResult out;
  out.table = runtime::materialize_switch_table(*program_, *plan_, store_);
  out.accuracy = store_.accuracy();
  out.capability = store_.capability();
  out.records = store_.records();
  out.time = store_.time();
  return out;
}

}  // namespace perfq::federation
