// The network-wide collector: merges per-switch store exports into one
// exact federated result (§3.1's "everything downstream of the switch runs
// at the collector", grown from one switch to a fabric).
//
// ---- Exactness / merge-order contract ---------------------------------------
//
// The collector's merge is the cross-store reduction of
// kvstore/federated.hpp, so its guarantees are exactly MergeCapability's:
//
//   - ADDITIVE kernels (COUNT, SUM over integer-valued fields, and their
//     CombinedKernel compositions): the federated table is BIT-FOR-BIT the
//     table a single oracle engine fed every switch's records in global
//     emission order would produce — under any cache geometry, serial or
//     sharded per-switch engines, refresh on or off, because additive totals
//     are independent of stream interleaving and eviction timing. FP caveat
//     (mirroring the attach/detach contract note in runtime/engine_api.hpp):
//     this bit-exactness rests on the additions being FP-exact, which holds
//     for integer counters/sums up to 2^53; fractional addends merge at
//     ULP-level accuracy instead.
//   - ASSOCIATIVE kernels (extremum folds with merge_values()): bit-exact,
//     same conditions.
//   - Everything else is SINGLE-SOURCE exact: keys whose whole record stream
//     lived on one switch (e.g. queue-keyed EWMA — a qid belongs to exactly
//     one switch) are exact under the per-switch engine's own contract; keys
//     seen at several switches are reported invalid with one value segment
//     per switch, and AccuracyStats counts them — §3.2's non-mergeable
//     escape hatch lifted to fabric scope. A further FP caveat for order-
//     sensitive linear folds: the per-switch refresh clock anchors at each
//     engine's FIRST record, so refresh-on runs reproduce a global oracle
//     only to ULP level even for single-source keys (refresh-off runs are
//     bit-exact).
//
//   - MERGE ORDER CANNOT MATTER, byte-for-byte: add() only records each
//     source's contribution; the reduction runs at materialize() time in
//     ascending source id, and materialize_switch_table() sorts rows into
//     canonical key order. Shuffled source orders, incremental one-switch-
//     at-a-time merges (with reads in between) and batched merges all
//     produce identical bytes. Re-adding a source replaces its contribution
//     (exports are monotone supersets).
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/program.hpp"
#include "kvstore/federated.hpp"
#include "runtime/table.hpp"

namespace perfq::federation {

/// One materialized network-wide result.
struct FederatedResult {
  runtime::ResultTable table;
  kv::AccuracyStats accuracy;    ///< federated validity (multi-source keys)
  kv::MergeCapability capability = kv::MergeCapability::kSingleSource;
  std::uint64_t records = 0;     ///< sum of source engines' record counts
  Nanos time;                    ///< max source export stamp
};

class Collector {
 public:
  /// `program` and `plan` must outlive the collector (the plan belongs to
  /// the program; for attached queries, to the attach-renamed copy).
  Collector(const compiler::CompiledProgram& program,
            const compiler::SwitchQueryPlan& plan);

  /// Merge one switch's export under source id `source` (any order; see the
  /// merge-order contract above).
  void add(std::uint32_t source, const kv::StoreExport& exported);

  /// Render the network-wide table + accuracy at the current merge state.
  /// Callable between add()s (incremental reads) — the result only ever
  /// depends on WHICH sources were added, never on the order.
  [[nodiscard]] FederatedResult materialize() const;

  /// The underlying federated store (segment-level reads for invalid keys).
  [[nodiscard]] const kv::FederatedStore& store() const { return store_; }

 private:
  const compiler::CompiledProgram* program_;
  const compiler::SwitchQueryPlan* plan_;
  kv::FederatedStore store_;
};

}  // namespace perfq::federation
