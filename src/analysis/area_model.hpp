// Back-of-the-envelope hardware models from §3.3 and §4.
//
// The paper's arithmetic, reproduced as code so the benches can regenerate
// its headline claims:
//   - SRAM density ~7000 Kb/mm^2 [13], smallest switching chips ~200 mm^2
//     [20]  =>  a 32-Mbit cache costs < 2.5% additional die area;
//   - storing all 3.8 M CAIDA flows on-chip would need ~486 Mbit => ~38%;
//   - a 1 GHz pipeline moving 64 B packets at 30% utilization with 850 B
//     average packets processes ~22.6 M packets/s, so an eviction fraction
//     of 3.55% is ~802 K backing-store writes/s — within the few hundred
//     thousand ops/s/core of memcached/Redis-class stores [1, 5, 10, 24].
#pragma once

#include <cstdint>

namespace perfq::analysis {

struct AreaModel {
  double sram_kbit_per_mm2 = 7000.0;  ///< [13] ARM SRAM density
  double die_mm2 = 200.0;             ///< [20] smallest switching chips

  [[nodiscard]] double sram_mm2(double mbits) const {
    return mbits * 1024.0 / sram_kbit_per_mm2;
  }
  /// Fraction of the die one cache of `mbits` occupies.
  [[nodiscard]] double area_fraction(double mbits) const {
    return sram_mm2(mbits) / die_mm2;
  }
  /// Mbits needed to hold `flows` pairs at `bits_per_pair`.
  [[nodiscard]] static double required_mbits(std::uint64_t flows,
                                             int bits_per_pair) {
    return static_cast<double>(flows) * static_cast<double>(bits_per_pair) /
           (1024.0 * 1024.0);
  }
};

struct DatacenterWorkloadModel {
  double clock_ghz = 1.0;             ///< pipeline: one packet per ns [17]
  std::uint32_t min_pkt_bytes = 64;   ///< line-rate definition
  std::uint32_t avg_pkt_bytes = 850;  ///< Benson et al. [16]
  double utilization = 0.30;          ///< ditto

  /// Average packets per second the switch actually processes: the paper's
  /// "22.6M average-sized packets per second".
  [[nodiscard]] double avg_pkts_per_sec() const {
    const double line_bytes_per_sec =
        clock_ghz * 1e9 * static_cast<double>(min_pkt_bytes);
    return line_bytes_per_sec * utilization /
           static_cast<double>(avg_pkt_bytes);
  }

  /// Backing-store write rate for a given eviction fraction (Fig. 5 right
  /// panel's y-axis).
  [[nodiscard]] double evictions_per_sec(double eviction_fraction) const {
    return avg_pkts_per_sec() * eviction_fraction;
  }
};

/// Admission pricing for a multi-tenant query service: each attached query's
/// cache geometry is priced as a fraction of switch die area via AreaModel,
/// and attach is admitted only while the running total stays within
/// `max_die_fraction` — the paper's "< 2.5% additional die area" budget
/// applied per box instead of per query. Pure arithmetic; the service layer
/// owns when to charge()/release().
struct AdmissionBudget {
  AreaModel area;
  double max_die_fraction = 0.025;  ///< §3.3: one 32-Mbit cache's budget
  double used_die_fraction = 0.0;

  /// On-chip cost of one cache slot: key bits plus one 64-bit word per
  /// aggregation state dimension (matches the bench's kBitsPerPair=128 for
  /// 8-byte keys with one 64-bit value).
  [[nodiscard]] static double bits_per_pair(int key_bytes,
                                            std::size_t state_dims) {
    return static_cast<double>(key_bytes) * 8.0 +
           64.0 * static_cast<double>(state_dims);
  }
  /// Die fraction a cache of `slots` entries at `bits_per_pair` costs.
  [[nodiscard]] double price(std::uint64_t slots, double bpp) const {
    return area.area_fraction(static_cast<double>(slots) * bpp /
                              (1024.0 * 1024.0));
  }
  /// Whether charging `fraction` more would stay within budget. Exact-at-
  /// budget admits; the epsilon absorbs float noise from summed prices.
  [[nodiscard]] bool would_admit(double fraction) const {
    return used_die_fraction + fraction <= max_die_fraction + 1e-12;
  }
  void charge(double fraction) { used_die_fraction += fraction; }
  void release(double fraction) {
    used_die_fraction -= fraction;
    if (used_die_fraction < 0.0) used_die_fraction = 0.0;
  }
};

/// Published single-core op rates for scale-out stores (paper's refs [1, 5,
/// 10, 24]); the backing-store feasibility argument compares against these.
struct BackingStoreCapacity {
  double memcached_ops_per_core = 300'000.0;
  double redis_ops_per_core = 150'000.0;

  [[nodiscard]] double cores_needed(double writes_per_sec) const {
    return writes_per_sec / redis_ops_per_core;  // conservative choice
  }
};

}  // namespace perfq::analysis
