// Telemetry primitives: the always-on self-monitoring layer's building
// blocks (the monitor monitors itself — the paper's continuous-monitoring
// premise applied to the engine's own pipeline).
//
// Design (the per-lcore counter pattern of high-rate dataplanes): every
// counter slot has exactly ONE writer thread, which updates it with relaxed
// atomics — on mainstream hardware a relaxed load+store compiles to the same
// plain read-modify-write a bare uint64 would, with no lock prefix and no
// cache-line contention (slots that share a writer share its cache lines;
// slots with different writers live in structures that are already
// writer-partitioned, e.g. per-shard caches). Aggregation happens on READ:
// whoever calls Engine::metrics() sums the slots with relaxed loads. That
// makes the surface TSan-clean and coherent in the only sense a live
// monitor needs — every counter is monotone and individually torn-free;
// cross-counter invariants (hits + initializations == packets) hold exactly
// at quiescent points (batch boundaries, after finish()) and approximately
// (within the in-flight window) mid-run.
//
// Compile-time kill switch: -DPERFQ_TELEMETRY=OFF (CMake) defines
// PERFQ_TELEMETRY_OFF and swaps the slots for bare uint64s and the clock
// reads for nothing. That build loses the mid-run coherence guarantee and
// the latency histograms; it exists ONLY as the baseline ("B") side of the
// CI overhead check that proves the always-on default ("A") costs <= 2%.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>

#if !defined(PERFQ_TELEMETRY_OFF)
#include <atomic>
#endif

namespace perfq::obs {

/// True in the default build; false only under -DPERFQ_TELEMETRY=OFF.
#if defined(PERFQ_TELEMETRY_OFF)
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// A single-writer counter slot readable from any thread.
///
/// The OWNER thread (exactly one per slot) mutates it; mutations are relaxed
/// load+store pairs, NOT fetch_add — no lock prefix, no RMW stall, because
/// single-writer means there is nothing to be atomic against. Any thread may
/// read it with a relaxed load. Copying reads the source and stores the
/// destination (used when a stats struct is snapshotted into a plain value).
class RelaxedU64 {
 public:
  RelaxedU64() = default;
  RelaxedU64(std::uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedU64(const RelaxedU64& other) : v_(other.load()) {}
  RelaxedU64& operator=(const RelaxedU64& other) {
    store(other.load());
    return *this;
  }
  RelaxedU64& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator std::uint64_t() const { return load(); }

  RelaxedU64& operator++() {
    add(1);
    return *this;
  }
  RelaxedU64& operator+=(std::uint64_t d) {
    add(d);
    return *this;
  }

  /// Owner-thread increment (single writer: plain read-modify-write).
  void add(std::uint64_t d) {
#if defined(PERFQ_TELEMETRY_OFF)
    v_ += d;
#else
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
#endif
  }
  void sub(std::uint64_t d) { add(~d + 1); }

  /// Owner-thread high-water update.
  void set_max(std::uint64_t x) {
    if (x > load()) store(x);
  }

  [[nodiscard]] std::uint64_t load() const {
#if defined(PERFQ_TELEMETRY_OFF)
    return v_;
#else
    return v_.load(std::memory_order_relaxed);
#endif
  }
  void store(std::uint64_t v) {
#if defined(PERFQ_TELEMETRY_OFF)
    v_ = v;
#else
    v_.store(v, std::memory_order_relaxed);
#endif
  }

 private:
#if defined(PERFQ_TELEMETRY_OFF)
  std::uint64_t v_ = 0;
#else
  std::atomic<std::uint64_t> v_{0};
#endif
};

/// Monotonic nanosecond clock for latency taps (0 when telemetry is off —
/// call sites gate on kTelemetryEnabled so the read folds away entirely).
[[nodiscard]] inline std::uint64_t now_ns() {
#if defined(PERFQ_TELEMETRY_OFF)
  return 0;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Timing every call would put ~2 clock reads on paths that process a single
/// record (process() loops); sampling keeps the tap honest AND cheap: batches
/// of >= kAlwaysTimeBatch records are always timed (the clock cost amortizes
/// below noise), smaller ones 1 in kSmallBatchSampleMask+1.
inline constexpr std::size_t kAlwaysTimeBatch = 64;
inline constexpr std::uint32_t kSmallBatchSampleMask = 15;  // 1 in 16

struct HistogramSnapshot;

/// Fixed-bucket latency histogram over log2(ns): bucket b counts durations
/// with bit_width(ns) == b, i.e. ns in [2^(b-1), 2^b). 48 buckets span 0 ns
/// to ~3.2 days. Single-writer like RelaxedU64 (one thread records; anyone
/// snapshots). A record() is two slot updates — no allocation, no locks.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  /// Owner-thread record of one duration.
  void record(std::uint64_t ns) {
    const auto b = static_cast<std::size_t>(
        ns == 0 ? 0 : std::bit_width(ns));
    buckets_[b < kBuckets ? b : kBuckets - 1].add(1);
    sum_ns_.add(ns);
  }

  /// Coherent-enough copy for exporters: each bucket is torn-free and
  /// monotone; a concurrent record() may straddle the copy by one count.
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::array<RelaxedU64, kBuckets> buckets_;
  RelaxedU64 sum_ns_;
};

/// Plain-value copy of a LatencyHistogram, safe to ship across threads and
/// serialize. Quantiles are bucket-interpolated in log2 space by rebuilding a
/// perfq::Histogram (common/stats.hpp) over the counts.
struct HistogramSnapshot {
  std::array<std::uint64_t, LatencyHistogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  [[nodiscard]] double mean_ns() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }
  /// Bucket-interpolated quantile in nanoseconds; q in [0, 1]. 0 when empty.
  [[nodiscard]] double quantile_ns(double q) const;
};

}  // namespace perfq::obs
