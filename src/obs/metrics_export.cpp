#include "obs/metrics_export.hpp"

#include <cmath>
#include <cstdio>
#include <map>

namespace perfq::obs {

namespace {

/// Integers render without a fraction; everything else with %.6g.
std::string num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void visit_histogram(std::string_view prefix, const HistogramSnapshot& h,
                     const MetricFn& fn) {
  const MetricLabels none;
  const std::string p{prefix};
  fn(p + "_count", none, static_cast<double>(h.count));
  fn(p + "_sum_ns", none, static_cast<double>(h.sum_ns));
  fn(p + "_p50_ns", none, h.quantile_ns(0.50));
  fn(p + "_p99_ns", none, h.quantile_ns(0.99));
}

}  // namespace

void visit_metrics(const runtime::EngineMetrics& m, const MetricFn& fn) {
  const MetricLabels none;
  fn("engine_records", none, static_cast<double>(m.records));
  fn("engine_batches", none, static_cast<double>(m.batches));
  fn("engine_refreshes", none, static_cast<double>(m.refreshes));
  fn("engine_snapshots", none, static_cast<double>(m.snapshots));
  fn("engine_faulted", none, m.faulted ? 1.0 : 0.0);

  for (const runtime::StoreStats& q : m.queries) {
    const MetricLabels labels{{"query", q.name}};
    fn("store_packets", labels, static_cast<double>(q.cache.packets));
    fn("store_hits", labels, static_cast<double>(q.cache.hits));
    fn("store_initializations", labels,
       static_cast<double>(q.cache.initializations));
    fn("store_evictions", labels, static_cast<double>(q.cache.evictions));
    fn("store_flushes", labels, static_cast<double>(q.cache.flushes));
    fn("store_backing_writes", labels, static_cast<double>(q.backing_writes));
    fn("store_backing_capacity_writes", labels,
       static_cast<double>(q.backing_capacity_writes));
    fn("store_keys", labels, static_cast<double>(q.keys));
    fn("store_valid_keys", labels,
       static_cast<double>(q.accuracy.valid_keys));
    fn("store_total_keys", labels,
       static_cast<double>(q.accuracy.total_keys));
    fn("store_accuracy", labels, q.accuracy.accuracy());
    fn("store_attached", labels, q.attached ? 1.0 : 0.0);
    fn("store_attach_records", labels, static_cast<double>(q.attach_records));
  }

  for (const runtime::StreamSinkMetrics& s : m.streams) {
    const MetricLabels labels{{"query", s.query}};
    fn("stream_rows_delivered", labels,
       static_cast<double>(s.rows_delivered));
    fn("stream_rows_dropped", labels, static_cast<double>(s.rows_dropped));
    fn("stream_saturated", labels, s.saturated ? 1.0 : 0.0);
    fn("stream_attached", labels, s.attached ? 1.0 : 0.0);
    fn("stream_attach_records", labels, static_cast<double>(s.attach_records));
  }

  for (const runtime::ShardMetrics& s : m.shards) {
    const MetricLabels labels{{"shard", std::to_string(s.shard)}};
    fn("shard_evictions_pushed", labels,
       static_cast<double>(s.evictions_pushed));
    fn("shard_evictions_absorbed", labels,
       static_cast<double>(s.evictions_absorbed));
    fn("shard_worker_exited", labels, s.worker_exited ? 1.0 : 0.0);
  }
  for (const runtime::DispatcherMetrics& d : m.dispatchers) {
    const MetricLabels labels{{"dispatcher", std::to_string(d.dispatcher)}};
    fn("dispatcher_batches_posted", labels,
       static_cast<double>(d.batches_posted));
    fn("dispatcher_batches_completed", labels,
       static_cast<double>(d.batches_completed));
    fn("dispatcher_exited", labels, d.exited ? 1.0 : 0.0);
  }
  for (const runtime::RingMetrics& r : m.rings) {
    const MetricLabels labels{{"dispatcher", std::to_string(r.dispatcher)},
                              {"shard", std::to_string(r.shard)}};
    fn("ring_occupancy", labels, static_cast<double>(r.occupancy));
    fn("ring_occupancy_hwm", labels, static_cast<double>(r.occupancy_hwm));
    fn("ring_capacity", labels, static_cast<double>(r.capacity));
    fn("ring_push_stalls", labels, static_cast<double>(r.push_stalls));
  }
  if (m.engine == "sharded") {
    fn("engine_merge_exited", none, m.merge_exited ? 1.0 : 0.0);
  }

  visit_histogram("batch_ns", m.batch_ns, fn);
  visit_histogram("snapshot_ns", m.snapshot_ns, fn);
  if (m.engine == "sharded") visit_histogram("absorb_ns", m.absorb_ns, fn);

  fn("ingest_parsed", none, static_cast<double>(m.ingest.parsed));
  fn("ingest_truncated", none, static_cast<double>(m.ingest.truncated));
  fn("ingest_unsupported", none, static_cast<double>(m.ingest.unsupported));
  fn("ingest_bad_length", none, static_cast<double>(m.ingest.bad_length));
  fn("ingest_bad_checksum", none, static_cast<double>(m.ingest.bad_checksum));
  fn("replay_records", none, static_cast<double>(m.replay_records));
  fn("replay_nanos", none, static_cast<double>(m.replay_nanos));
}

void visit_metrics(const runtime::EngineMetrics& m, const MetricFn& fn,
                   const MetricLabels& base) {
  if (base.empty()) {
    visit_metrics(m, fn);
    return;
  }
  visit_metrics(m, [&](std::string_view name, const MetricLabels& labels,
                       double value) {
    MetricLabels scoped = base;
    scoped.insert(scoped.end(), labels.begin(), labels.end());
    fn(name, scoped, value);
  });
}

std::string samples_to_json(std::string_view engine,
                            const MetricEmitter& emit) {
  std::string out = "{\"engine\": \"" + escape(engine) + "\", \"metrics\": [";
  bool first = true;
  emit([&](std::string_view name, const MetricLabels& labels, double value) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    out += name;
    out += "\", \"labels\": {";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + escape(labels[i].first) + "\": \"" +
             escape(labels[i].second) + "\"";
    }
    out += "}, \"value\": " + num(value) + "}";
  });
  out += "]}";
  return out;
}

std::string samples_to_prometheus(const MetricEmitter& emit) {
  std::string out;
  std::map<std::string, bool, std::less<>> typed;
  emit([&](std::string_view name, const MetricLabels& labels, double value) {
    const std::string full = "perfq_" + std::string{name};
    if (!typed.count(full)) {
      // Gauge is the honest universal type here: counters are monotone but
      // a scraper restarting mid-run must not assume resets.
      out += "# TYPE " + full + " gauge\n";
      typed.emplace(full, true);
    }
    out += full;
    if (!labels.empty()) {
      out += "{";
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0) out += ",";
        out += labels[i].first + "=\"" + escape(labels[i].second) + "\"";
      }
      out += "}";
    }
    out += " " + num(value) + "\n";
  });
  return out;
}

std::string metrics_to_json(const runtime::EngineMetrics& m) {
  return samples_to_json(m.engine,
                         [&](const MetricFn& fn) { visit_metrics(m, fn); });
}

std::string metrics_to_prometheus(const runtime::EngineMetrics& m) {
  return samples_to_prometheus(
      [&](const MetricFn& fn) { visit_metrics(m, fn); });
}

std::string format_metrics(const runtime::EngineMetrics& m) {
  std::string out = "engine: " + m.engine + "\n";
  out += "records=" + num(static_cast<double>(m.records)) +
         " batches=" + num(static_cast<double>(m.batches)) +
         " refreshes=" + num(static_cast<double>(m.refreshes)) +
         " snapshots=" + num(static_cast<double>(m.snapshots)) +
         (m.faulted ? " FAULTED" : "") + "\n";
  for (const runtime::StoreStats& q : m.queries) {
    const std::uint64_t packets = q.cache.packets;
    const std::uint64_t hits = q.cache.hits;
    const double hit_rate =
        packets == 0 ? 0.0
                     : 100.0 * static_cast<double>(hits) /
                           static_cast<double>(packets);
    out += "query '" + q.name +
           "': packets=" + num(static_cast<double>(packets)) +
           " hits=" + num(static_cast<double>(hits)) + " (" + num(hit_rate) +
           "%) evictions=" + num(static_cast<double>(q.cache.evictions)) +
           " keys=" + num(static_cast<double>(q.keys)) +
           " accuracy=" + num(q.accuracy.accuracy()) +
           (q.attached ? " attached@" +
                             num(static_cast<double>(q.attach_records))
                       : "") +
           "\n";
  }
  for (const runtime::StreamSinkMetrics& s : m.streams) {
    out += "stream '" + s.query +
           "': delivered=" + num(static_cast<double>(s.rows_delivered)) +
           " dropped=" + num(static_cast<double>(s.rows_dropped)) +
           (s.saturated ? " saturated" : "") +
           (s.attached ? " attached@" +
                             num(static_cast<double>(s.attach_records))
                       : "") +
           "\n";
  }
  const auto hist_line = [&](const char* label,
                             const obs::HistogramSnapshot& h) {
    if (h.count == 0) return;
    out += std::string{label} + ": count=" +
           num(static_cast<double>(h.count)) +
           " mean_ns=" + num(h.mean_ns()) +
           " p50_ns=" + num(h.quantile_ns(0.50)) +
           " p99_ns=" + num(h.quantile_ns(0.99)) + "\n";
  };
  hist_line("batch latency", m.batch_ns);
  hist_line("snapshot latency", m.snapshot_ns);
  hist_line("absorb latency", m.absorb_ns);
  if (!m.shards.empty()) out += "pipeline:" + format_pipeline(m) + "\n";
  if (m.ingest.total() > 0) out += m.ingest.to_string() + "\n";
  if (m.replay_records > 0) {
    const double secs = static_cast<double>(m.replay_nanos) * 1e-9;
    out += "replay: records=" + num(static_cast<double>(m.replay_records)) +
           " seconds=" + num(secs) + "\n";
  }
  return out;
}

std::string format_pipeline(const runtime::EngineMetrics& m) {
  std::string out = "\n  merge thread: ";
  out += m.merge_exited ? "exited" : "running";
  for (const runtime::DispatcherMetrics& d : m.dispatchers) {
    out += "\n  dispatcher " + std::to_string(d.dispatcher) + ": ";
    out += d.exited ? "exited" : "running";
    out += " (jobs posted=" + std::to_string(d.batches_posted) +
           " completed=" + std::to_string(d.batches_completed) + ")";
  }
  for (const runtime::ShardMetrics& s : m.shards) {
    out += "\n  shard " + std::to_string(s.shard) + ": worker ";
    out += s.worker_exited ? "exited" : "running";
    out += ", evictions pushed=" + std::to_string(s.evictions_pushed) +
           " absorbed=" + std::to_string(s.evictions_absorbed);
    out += ", ring occupancy";
    for (const runtime::RingMetrics& r : m.rings) {
      if (r.shard != s.shard) continue;
      out += " [" + std::to_string(r.dispatcher) + "]=" +
             std::to_string(r.occupancy) + "/" + std::to_string(r.capacity);
    }
  }
  return out;
}

}  // namespace perfq::obs
