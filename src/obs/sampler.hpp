// Background metrics sampling: a decorating Engine that polls the wrapped
// engine's metrics() on its own thread at a fixed interval and keeps a
// bounded time series — the "metrics over the run" view a monitoring UI or
// a post-hoc analysis wants, without the caller having to thread a poller
// through its processing loop.
//
// Enabled by EngineBuilder::metrics_sampler(interval[, capacity]); the
// builder wraps whichever engine it built. Everything else forwards, so the
// wrapper is invisible to drivers: process_batch/finish/snapshot/metrics hit
// the inner engine directly (metrics() itself is NOT sampled — it stays the
// live view). The sampler thread only ever calls metrics(), which the
// coherence contract (engine_api.hpp) makes safe from any thread, including
// while the caller processes and even after a fault poisons the engine.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/engine_api.hpp"

namespace perfq::obs {

class SampledEngine final : public runtime::Engine {
 public:
  /// Wraps `inner`; samples inner->metrics() every `interval` into a ring of
  /// at most `capacity` samples (oldest dropped).
  SampledEngine(std::unique_ptr<runtime::Engine> inner,
                std::chrono::milliseconds interval, std::size_t capacity);
  ~SampledEngine() override;

  void process_batch(std::span<const PacketRecord> records) override {
    inner_->process_batch(records);
  }
  trace::IngestStats process_wire_batch(
      std::span<const FrameObservation> frames) override {
    return inner_->process_wire_batch(frames);
  }
  void finish(Nanos now) override { inner_->finish(now); }
  [[nodiscard]] const runtime::ResultTable& result() const override {
    return inner_->result();
  }
  [[nodiscard]] const runtime::ResultTable& table(
      std::string_view name) const override {
    return inner_->table(name);
  }
  using runtime::Engine::snapshot;
  [[nodiscard]] runtime::EngineSnapshot snapshot(std::string_view query_name,
                                                 Nanos now) override {
    return inner_->snapshot(query_name, now);
  }
  [[nodiscard]] kv::StoreExport export_store(std::string_view query_name,
                                             Nanos now) override {
    return inner_->export_store(query_name, now);
  }
  void attach_query(compiler::CompiledProgram program,
                    const runtime::AttachOptions& options) override {
    inner_->attach_query(std::move(program), options);
  }
  runtime::ResultTable detach_query(std::string_view name, Nanos now) override {
    return inner_->detach_query(name, now);
  }
  [[nodiscard]] std::vector<runtime::StoreStats> store_stats() const override {
    return inner_->store_stats();
  }
  [[nodiscard]] std::uint64_t records_processed() const override {
    return inner_->records_processed();
  }
  [[nodiscard]] std::uint64_t refresh_count() const override {
    return inner_->refresh_count();
  }
  [[nodiscard]] const compiler::CompiledProgram& program() const override {
    return inner_->program();
  }
  [[nodiscard]] runtime::EngineMetrics metrics() const override {
    return inner_->metrics();
  }
  void record_ingest(const trace::IngestStats& stats) override {
    inner_->record_ingest(stats);
  }
  void record_replay(std::uint64_t records, std::uint64_t nanos) override {
    inner_->record_replay(records, nanos);
  }

  /// The collected time series so far (oldest first). Thread-safe; the
  /// sampler keeps running until destruction, so finish() does not end it.
  [[nodiscard]] std::vector<runtime::MetricsSample> metrics_series()
      const override;

 private:
  void sampler_loop();

  std::unique_ptr<runtime::Engine> inner_;
  std::chrono::milliseconds interval_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<runtime::MetricsSample> series_;
  std::thread thread_;  ///< last member: starts after everything is ready
};

}  // namespace perfq::obs
