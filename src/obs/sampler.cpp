#include "obs/sampler.hpp"

#include "common/error.hpp"

namespace perfq::obs {

SampledEngine::SampledEngine(std::unique_ptr<runtime::Engine> inner,
                             std::chrono::milliseconds interval,
                             std::size_t capacity)
    : inner_(std::move(inner)),
      interval_(interval),
      capacity_(capacity),
      start_(std::chrono::steady_clock::now()) {
  if (inner_ == nullptr) throw ConfigError{"SampledEngine: null engine"};
  if (interval_.count() <= 0) {
    throw ConfigError{"SampledEngine: sampling interval must be positive"};
  }
  if (capacity_ == 0) {
    throw ConfigError{"SampledEngine: zero sample capacity"};
  }
  thread_ = std::thread([this] { sampler_loop(); });
}

SampledEngine::~SampledEngine() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // inner_ destructs after the sampler is gone — no metrics() call can race
  // the wrapped engine's teardown.
}

void SampledEngine::sampler_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) return;
    lock.unlock();
    runtime::MetricsSample sample;
    sample.elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    bool ok = true;
    try {
      sample.metrics = inner_->metrics();
    } catch (...) {
      // metrics() is contractually non-throwing on engine faults; anything
      // escaping anyway (allocation failure under pressure) just skips the
      // sample — the sampler must never take the process down.
      ok = false;
    }
    lock.lock();
    if (ok && !stop_) {
      series_.push_back(std::move(sample));
      while (series_.size() > capacity_) series_.pop_front();
    }
  }
}

std::vector<runtime::MetricsSample> SampledEngine::metrics_series() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {series_.begin(), series_.end()};
}

}  // namespace perfq::obs
