#include "obs/metrics.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace perfq::obs {

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] = buckets_[b].load();
    out.count += out.buckets[b];
  }
  out.sum_ns = sum_ns_.load();
  return out;
}

double HistogramSnapshot::quantile_ns(double q) const {
  if (count == 0) return 0.0;
  // Rebuild the counts into the shared fixed-bucket histogram in log2 space
  // (bucket b's durations have bit_width b, i.e. log2(ns) in [b-1, b)), so
  // its bucket-interpolated quantile() is reused rather than re-derived.
  Histogram h(0.0, static_cast<double>(buckets.size()),
              buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    h.add_count(static_cast<double>(b) + 0.5, buckets[b]);
  }
  const double log2_ns = h.quantile(q);
  // Bucket 0 is exactly 0 ns (no sub-nanosecond durations exist).
  return log2_ns <= 1.0 ? 0.0 : std::exp2(log2_ns - 1.0);
}

}  // namespace perfq::obs
