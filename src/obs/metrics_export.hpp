// Rendering the live metrics surface (runtime::EngineMetrics) for humans
// and scrapers.
//
// Everything is built on ONE enumeration — visit_metrics() — which walks
// every scalar the metrics struct carries as (name, labels, value) triples.
// The JSON and Prometheus exporters are both thin renderers over that walk,
// so the round-trip property ("every registered metric appears in every
// exporter") holds by construction: adding a metric to visit_metrics() adds
// it to both formats; adding it anywhere else is a compile-time dead end.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/engine_api.hpp"

namespace perfq::obs {

/// Label set of one metric sample, e.g. {{"query", "loss"}, {"shard", "3"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Called once per (name, labels, value) sample.
using MetricFn =
    std::function<void(std::string_view name, const MetricLabels& labels,
                       double value)>;

/// THE metric enumeration: every scalar EngineMetrics carries, flattened.
/// Counter values are exact up to 2^53 (they ride in a double).
void visit_metrics(const runtime::EngineMetrics& m, const MetricFn& fn);

/// Same enumeration with `base` labels prepended to every sample — how a
/// multi-engine surface (the federation layer's per-switch metrics) scopes
/// one engine's metrics, e.g. base = {{"switch", "leaf0"}}.
void visit_metrics(const runtime::EngineMetrics& m, const MetricFn& fn,
                   const MetricLabels& base);

/// A producer of metric samples: called with the sink, it may invoke
/// visit_metrics() any number of times — e.g. once per switch engine with a
/// distinguishing base label. Lets multi-engine surfaces (federation) render
/// through the same JSON/Prometheus serializers as a single engine.
using MetricEmitter = std::function<void(const MetricFn&)>;

/// {"engine": ..., "metrics": [{"name", "labels", "value"}, ...]} over
/// whatever samples `emit` produces.
[[nodiscard]] std::string samples_to_json(std::string_view engine,
                                          const MetricEmitter& emit);

/// Prometheus text exposition of whatever samples `emit` produces:
/// perfq_<name>{label="value"} value, one # TYPE line per metric family.
[[nodiscard]] std::string samples_to_prometheus(const MetricEmitter& emit);

/// {"engine": ..., "metrics": [{"name", "labels", "value"}, ...]}
[[nodiscard]] std::string metrics_to_json(const runtime::EngineMetrics& m);

/// Prometheus text exposition: perfq_<name>{label="value"} value, with one
/// # TYPE line per metric family.
[[nodiscard]] std::string metrics_to_prometheus(const runtime::EngineMetrics& m);

/// Human-readable multi-line summary (the REPL's .stats view).
[[nodiscard]] std::string format_metrics(const runtime::EngineMetrics& m);

/// The per-thread pipeline state dump (merge/dispatcher/worker liveness,
/// eviction flow, ring occupancy) — the body of the sharded engine's
/// watchdog diagnostic. Uses only the lock-free pipeline fields.
[[nodiscard]] std::string format_pipeline(const runtime::EngineMetrics& m);

}  // namespace perfq::obs
