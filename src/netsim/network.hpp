// Packet-level network simulator.
//
// Hosts and output-queued switches connected by rate/delay links. Every
// queue traversal emits one PacketRecord into the telemetry sink — this is
// the network-wide abstract table T the query language is defined over (§2):
// a packet crossing three queues contributes three records, and a drop
// contributes a record with tout = infinity at the dropping queue.
//
// Two application models generate traffic:
//   - open-loop UDP senders (constant or Poisson pacing), and
//   - window-limited TCP-like flows with per-packet ACKs and timeout
//     retransmission, which reproduce incast collapse and the
//     retransmission/reordering patterns Fig. 2's TCP queries measure.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "netsim/event_queue.hpp"
#include "packet/record.hpp"

namespace perfq::net {

using NodeId = std::uint32_t;

struct LinkConfig {
  double gbps = 10.0;          ///< line rate
  Nanos propagation = 1000_ns; ///< one-way propagation delay
  std::uint32_t queue_capacity_pkts = 128;  ///< drop-tail threshold
};

/// Per-queue counters for ground-truth checks against query results.
struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint32_t max_depth = 0;
};

struct FlowStats {
  std::uint64_t sent = 0;       ///< first transmissions
  std::uint64_t retransmits = 0;
  std::uint64_t delivered = 0;  ///< data packets that reached the receiver
  bool completed = false;
  Nanos completion_time;
};

class Network {
 public:
  using TelemetrySink = std::function<void(const PacketRecord&)>;

  explicit Network(std::uint64_t seed = 1);

  // ---- topology -----------------------------------------------------------
  NodeId add_host(std::uint32_t ip, std::string name = "");
  NodeId add_switch(std::string name = "");
  /// Bidirectional link (two independent queues/ports).
  void connect(NodeId a, NodeId b, const LinkConfig& config);
  /// Seed of the ECMP flow hash (set before traffic for reproducibility).
  void set_ecmp_seed(std::uint64_t seed) { ecmp_seed_ = seed; }
  /// Compute shortest-path next-hop tables; call after topology is built and
  /// before traffic starts. Idempotent.
  void finalize_routes();

  // ---- telemetry ----------------------------------------------------------
  void set_telemetry_sink(TelemetrySink sink) { sink_ = std::move(sink); }

  /// Per-node tap: receives exactly the records whose queue is OWNED by
  /// `node` (its egress ports) — a switch's local share of the network-wide
  /// table T. Independent of the global sink; when both are set each record
  /// goes to the global sink first, then to the owner's tap, so a global
  /// observer sees the union of all taps in emission order (the federation
  /// oracle's feed). Pass an empty function to clear.
  void set_node_telemetry_sink(NodeId node, TelemetrySink sink);

  // ---- introspection ------------------------------------------------------

  // ---- applications -------------------------------------------------------
  /// Open-loop UDP: `pkts` packets of `pkt_len` bytes at `rate_pps`
  /// (exponential gaps if `poisson`).
  void add_udp_flow(const FiveTuple& flow, Nanos start, std::uint64_t pkts,
                    std::uint32_t pkt_len, double rate_pps, bool poisson = true);

  /// Window-limited reliable flow: keeps up to `window` packets in flight,
  /// per-packet ACKs, timeout retransmission after `rto`.
  void add_window_flow(const FiveTuple& flow, Nanos start, std::uint64_t pkts,
                       std::uint32_t pkt_len, std::uint32_t window, Nanos rto);

  // ---- execution ----------------------------------------------------------
  void run_until(Nanos horizon) { events_.run_until(horizon); }
  void run_all() { events_.run_all(); }
  [[nodiscard]] Nanos now() const { return events_.now(); }

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] std::uint32_t queue_id(NodeId node, NodeId neighbor) const;
  [[nodiscard]] const QueueStats& queue_stats(std::uint32_t qid) const;
  [[nodiscard]] std::size_t queue_count() const { return ports_.size(); }
  [[nodiscard]] const FlowStats& flow_stats(const FiveTuple& flow) const;
  [[nodiscard]] NodeId node_of_ip(std::uint32_t ip) const;
  [[nodiscard]] std::string queue_name(std::uint32_t qid) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] bool node_is_host(NodeId node) const;
  /// The node whose egress queue `qid` is (records with this qid hit that
  /// node's tap).
  [[nodiscard]] NodeId queue_owner(std::uint32_t qid) const;

 private:
  struct Queued {  ///< a packet waiting in a queue, with its telemetry
    Packet pkt;
    Nanos tin;
    std::uint32_t qsize_at_enqueue = 0;
  };

  struct Port {  ///< one directed link endpoint with its output queue
    NodeId from;
    NodeId to;
    LinkConfig config;
    std::deque<Queued> queue;
    bool transmitting = false;
    QueueStats stats;
  };

  struct Node {
    bool is_host = false;
    std::uint32_t ip = 0;  ///< hosts only
    std::string name;
    std::vector<std::uint32_t> ports;  ///< outgoing port ids
    /// Per destination node: every shortest-path next-hop port. Flows are
    /// spread across them by 5-tuple hash (ECMP), like real fabrics.
    std::vector<std::vector<std::uint32_t>> next_hops;
  };

  struct UdpFlow {  ///< open-loop sender state, owned by the Network
    FiveTuple flow;
    std::uint32_t pkt_len;
    double rate_pps;
    bool poisson;
    std::uint64_t remaining;
    NodeId src;
  };

  struct WindowFlow {
    FiveTuple flow;
    std::uint64_t total_pkts;
    std::uint32_t pkt_len;
    std::uint32_t window;
    Nanos rto;
    std::uint64_t next_index = 0;    ///< next new packet index to send
    std::set<std::uint64_t> in_flight;  ///< unacked packet indices
    std::set<std::uint64_t> delivered;  ///< receiver-side dedup
    std::uint32_t isn = 1000;
    FlowStats stats;
  };

  void enqueue(std::uint32_t port_id, Packet pkt);
  void start_transmission(std::uint32_t port_id);
  /// Build the PacketRecord for one queue traversal (or drop) and fire the
  /// global sink then the owning node's tap. Does nothing when neither is
  /// listening — the record is never materialized.
  void emit_telemetry(std::uint32_t port_id, const Packet& pkt, Nanos tin,
                      Nanos tout, std::uint32_t qsize);
  void udp_send_one(std::size_t flow_index);
  void deliver(NodeId node, Packet pkt);
  void forward(NodeId node, Packet pkt);
  void host_receive(NodeId host, const Packet& pkt);
  void window_send_more(std::size_t flow_index);
  void window_send_packet(std::size_t flow_index, std::uint64_t pkt_index,
                          bool retransmit);
  void window_on_ack(std::size_t flow_index, std::uint64_t pkt_index);
  void window_on_data(std::size_t flow_index, const Packet& pkt);
  [[nodiscard]] Nanos transmission_time(const Port& port,
                                        std::uint32_t bytes) const;
  [[nodiscard]] std::uint64_t next_uniq() { return ++uniq_; }

  EventQueue events_;
  Rng rng_;
  std::uint64_t ecmp_seed_ = 0xEC3F;
  std::vector<Node> nodes_;
  std::vector<Port> ports_;
  std::vector<UdpFlow> udp_flows_;
  std::vector<WindowFlow> window_flows_;
  TelemetrySink sink_;
  std::vector<TelemetrySink> node_taps_;  ///< by node id; lazily sized
  std::uint64_t uniq_ = 0;
  bool routed_ = false;
};

// ---- topology presets ------------------------------------------------------

/// Leaf-spine fabric: `leaves` ToR switches x `spines` spines, `hosts_per
/// _leaf` hosts each. Host IPs are 10.L.0.H. Returns the host node ids.
struct LeafSpine {
  Network* net;
  std::vector<NodeId> hosts;
  std::vector<NodeId> leaves;
  std::vector<NodeId> spines;
};
[[nodiscard]] LeafSpine build_leaf_spine(Network& net, std::uint32_t leaves,
                                         std::uint32_t spines,
                                         std::uint32_t hosts_per_leaf,
                                         const LinkConfig& edge,
                                         const LinkConfig& fabric);

/// The IP of host h under leaf l in build_leaf_spine's addressing plan.
[[nodiscard]] std::uint32_t leaf_spine_ip(std::uint32_t leaf, std::uint32_t host);

}  // namespace perfq::net
