// Discrete-event scheduler for the network simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.hpp"

namespace perfq::net {

/// Time-ordered event queue; ties break in scheduling order (deterministic).
class EventQueue {
 public:
  using Action = std::function<void()>;

  void schedule(Nanos when, Action action) {
    events_.push(Event{when, seq_++, std::move(action)});
  }

  /// After `delay` from now.
  void schedule_in(Nanos delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Run the next event; returns false if none remain.
  bool step() {
    if (events_.empty()) return false;
    // std::priority_queue::top() is const; move out via const_cast-free copy
    // of the handle by re-popping: store actions in shared slots instead.
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = e.when;
    e.action();
    return true;
  }

  /// Run all events with time <= horizon.
  void run_until(Nanos horizon) {
    while (!events_.empty() && events_.top().when <= horizon) step();
    now_ = std::max(now_, horizon);
  }

  /// Run to quiescence.
  void run_all() {
    while (step()) {
    }
  }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    Action action;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  Nanos now_;
  std::uint64_t seq_ = 0;
};

}  // namespace perfq::net
