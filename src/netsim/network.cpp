#include "netsim/network.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace perfq::net {
namespace {

constexpr std::uint32_t kNoPort = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kAckLen = 64;
constexpr std::uint32_t kDataHeader = 54;  // Eth + IPv4 + TCP

}  // namespace

Network::Network(std::uint64_t seed) : rng_(seed) {}

NodeId Network::add_host(std::uint32_t ip, std::string name) {
  Node node;
  node.is_host = true;
  node.ip = ip;
  node.name = name.empty() ? ("host-" + ipv4_to_string(ip)) : std::move(name);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_switch(std::string name) {
  Node node;
  node.is_host = false;
  node.name = name.empty() ? ("sw" + std::to_string(nodes_.size())) : std::move(name);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::connect(NodeId a, NodeId b, const LinkConfig& config) {
  check(a < nodes_.size() && b < nodes_.size(), "Network::connect: bad node id");
  check(!routed_, "Network::connect: topology frozen after finalize_routes");
  Port ab;
  ab.from = a;
  ab.to = b;
  ab.config = config;
  ports_.push_back(std::move(ab));
  nodes_[a].ports.push_back(static_cast<std::uint32_t>(ports_.size() - 1));
  Port ba;
  ba.from = b;
  ba.to = a;
  ba.config = config;
  ports_.push_back(std::move(ba));
  nodes_[b].ports.push_back(static_cast<std::uint32_t>(ports_.size() - 1));
}

void Network::finalize_routes() {
  if (routed_) return;
  routed_ = true;
  const std::size_t n = nodes_.size();
  for (auto& node : nodes_) node.next_hops.assign(n, {});
  // BFS from every destination over reversed edges; then every edge v->u
  // with dist[v] == dist[u] + 1 lies on SOME shortest path, so all such
  // ports become ECMP next hops.
  for (std::size_t dst = 0; dst < n; ++dst) {
    std::vector<int> dist(n, -1);
    std::vector<NodeId> frontier{static_cast<NodeId>(dst)};
    dist[dst] = 0;
    while (!frontier.empty()) {
      std::vector<NodeId> next;
      for (const NodeId u : frontier) {
        for (std::uint32_t pid = 0; pid < ports_.size(); ++pid) {
          const Port& p = ports_[pid];
          if (p.to != u) continue;
          const NodeId v = p.from;
          if (dist[v] != -1) continue;
          dist[v] = dist[u] + 1;
          next.push_back(v);
        }
      }
      frontier = std::move(next);
    }
    for (std::uint32_t pid = 0; pid < ports_.size(); ++pid) {
      const Port& p = ports_[pid];
      if (dist[p.from] == dist[p.to] + 1) {
        nodes_[p.from].next_hops[dst].push_back(pid);
      }
    }
  }
}

std::uint32_t Network::queue_id(NodeId node, NodeId neighbor) const {
  for (const std::uint32_t pid : nodes_[node].ports) {
    if (ports_[pid].to == neighbor) return pid;
  }
  throw ConfigError{"Network::queue_id: no link between nodes"};
}

const QueueStats& Network::queue_stats(std::uint32_t qid) const {
  return ports_.at(qid).stats;
}

std::string Network::queue_name(std::uint32_t qid) const {
  const Port& p = ports_.at(qid);
  return nodes_[p.from].name + "->" + nodes_[p.to].name;
}

const std::string& Network::node_name(NodeId node) const {
  return nodes_.at(node).name;
}

bool Network::node_is_host(NodeId node) const {
  return nodes_.at(node).is_host;
}

NodeId Network::queue_owner(std::uint32_t qid) const {
  return ports_.at(qid).from;
}

void Network::set_node_telemetry_sink(NodeId node, TelemetrySink sink) {
  if (node >= nodes_.size()) {
    throw ConfigError{"Network: no node " + std::to_string(node)};
  }
  if (node_taps_.size() < nodes_.size()) node_taps_.resize(nodes_.size());
  node_taps_[node] = std::move(sink);
}

void Network::emit_telemetry(std::uint32_t port_id, const Packet& pkt,
                             Nanos tin, Nanos tout, std::uint32_t qsize) {
  const NodeId owner = ports_[port_id].from;
  const TelemetrySink* tap =
      owner < node_taps_.size() && node_taps_[owner] ? &node_taps_[owner]
                                                     : nullptr;
  if (!sink_ && tap == nullptr) return;
  PacketRecord rec;
  rec.pkt = pkt;
  rec.qid = port_id;
  rec.tin = tin;
  rec.tout = tout;
  rec.qsize = qsize;
  if (sink_) sink_(rec);
  if (tap != nullptr) (*tap)(rec);
}

NodeId Network::node_of_ip(std::uint32_t ip) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].is_host && nodes_[i].ip == ip) return static_cast<NodeId>(i);
  }
  throw ConfigError{"Network: no host with ip " + ipv4_to_string(ip)};
}

Nanos Network::transmission_time(const Port& port, std::uint32_t bytes) const {
  const double ns = static_cast<double>(bytes) * 8.0 / port.config.gbps;
  return Nanos{static_cast<std::int64_t>(ns) + 1};
}

void Network::enqueue(std::uint32_t port_id, Packet pkt) {
  Port& port = ports_[port_id];
  ++port.stats.enqueued;
  // Queue depth as a packet would observe it: waiting packets plus the one
  // currently being transmitted (standard occupancy accounting).
  const auto depth = static_cast<std::uint32_t>(port.queue.size()) +
                     (port.transmitting ? 1u : 0u);
  port.stats.max_depth = std::max(port.stats.max_depth, depth);
  if (depth >= port.config.queue_capacity_pkts) {
    ++port.stats.dropped;
    emit_telemetry(port_id, pkt, events_.now(), Nanos::infinity(), depth);
    return;
  }
  pkt.pkt_path = port_id;  // opaque path tag: last queue the packet entered
  port.queue.push_back(Queued{pkt, events_.now(), depth});
  start_transmission(port_id);
}

void Network::start_transmission(std::uint32_t port_id) {
  Port& port = ports_[port_id];
  if (port.transmitting || port.queue.empty()) return;
  port.transmitting = true;

  const Queued queued = port.queue.front();
  port.queue.pop_front();
  const Packet pkt = queued.pkt;

  // tout is the dequeue instant.
  emit_telemetry(port_id, pkt, queued.tin, events_.now(),
                 queued.qsize_at_enqueue);

  const Nanos tx = transmission_time(port, pkt.pkt_len);
  events_.schedule_in(tx, [this, port_id] {
    ports_[port_id].transmitting = false;
    start_transmission(port_id);
  });
  const NodeId to = port.to;
  events_.schedule_in(tx + port.config.propagation,
                      [this, to, pkt] { deliver(to, pkt); });
}

void Network::deliver(NodeId node, Packet pkt) {
  if (nodes_[node].is_host) {
    host_receive(node, pkt);
  } else {
    forward(node, pkt);
  }
}

void Network::forward(NodeId node, Packet pkt) {
  check(routed_, "Network: traffic before finalize_routes");
  const NodeId dst = node_of_ip(pkt.flow.dst_ip);
  const auto& hops = nodes_[node].next_hops[dst];
  if (hops.empty()) return;  // unreachable: drop silently
  // ECMP: pick the shortest-path port by 5-tuple hash so one flow stays on
  // one path (no intra-flow reordering) while flows spread across spines.
  const std::uint32_t pid =
      hops[reduce_range(pkt.flow.hash(ecmp_seed_), hops.size())];
  enqueue(pid, pkt);
}

// ---- applications -----------------------------------------------------------

void Network::add_udp_flow(const FiveTuple& flow, Nanos start, std::uint64_t pkts,
                           std::uint32_t pkt_len, double rate_pps, bool poisson) {
  check(flow.proto == static_cast<std::uint8_t>(IpProto::kUdp),
        "add_udp_flow: tuple must be UDP");
  finalize_routes();
  // Sender state lives in udp_flows_ and the timer chain captures only
  // {this, index}: the previous shared_ptr<std::function> self-capture was a
  // reference cycle that leaked every flow's closure (the PR 3 ASan
  // finding).
  udp_flows_.push_back(UdpFlow{flow, pkt_len, rate_pps, poisson, pkts,
                               node_of_ip(flow.src_ip)});
  const std::size_t index = udp_flows_.size() - 1;
  events_.schedule(start, [this, index] { udp_send_one(index); });
}

void Network::udp_send_one(std::size_t flow_index) {
  // Copy the sender state first: forward() runs the telemetry sink, which
  // may add flows and reallocate udp_flows_ under a reference.
  UdpFlow uf = udp_flows_[flow_index];
  if (uf.remaining == 0) return;
  udp_flows_[flow_index].remaining = uf.remaining - 1;
  Packet pkt;
  pkt.flow = uf.flow;
  pkt.pkt_len = uf.pkt_len;
  pkt.payload_len = uf.pkt_len > 42 ? uf.pkt_len - 42 : 0;
  pkt.pkt_uniq = next_uniq();
  forward(uf.src, pkt);
  const double gap_ns =
      uf.poisson ? rng_.exponential(uf.rate_pps) * 1e9 : 1e9 / uf.rate_pps;
  events_.schedule_in(Nanos{static_cast<std::int64_t>(gap_ns) + 1},
                      [this, flow_index] { udp_send_one(flow_index); });
}

void Network::add_window_flow(const FiveTuple& flow, Nanos start,
                              std::uint64_t pkts, std::uint32_t pkt_len,
                              std::uint32_t window, Nanos rto) {
  check(flow.proto == static_cast<std::uint8_t>(IpProto::kTcp),
        "add_window_flow: tuple must be TCP");
  check(pkt_len > kDataHeader, "add_window_flow: pkt_len too small");
  finalize_routes();
  WindowFlow wf;
  wf.flow = flow;
  wf.total_pkts = pkts;
  wf.pkt_len = pkt_len;
  wf.window = std::max(1u, window);
  wf.rto = rto;
  wf.isn = static_cast<std::uint32_t>(rng_.between(1000, 1u << 28));
  window_flows_.push_back(std::move(wf));
  const std::size_t index = window_flows_.size() - 1;
  events_.schedule(start, [this, index] { window_send_more(index); });
}

void Network::window_send_more(std::size_t flow_index) {
  WindowFlow& wf = window_flows_[flow_index];
  while (wf.in_flight.size() < wf.window && wf.next_index < wf.total_pkts) {
    const std::uint64_t idx = wf.next_index++;
    wf.in_flight.insert(idx);
    ++wf.stats.sent;
    window_send_packet(flow_index, idx, /*retransmit=*/false);
  }
}

void Network::window_send_packet(std::size_t flow_index, std::uint64_t pkt_index,
                                 bool retransmit) {
  WindowFlow& wf = window_flows_[flow_index];
  Packet pkt;
  pkt.flow = wf.flow;
  pkt.pkt_len = wf.pkt_len;
  pkt.payload_len = wf.pkt_len - kDataHeader;
  pkt.tcp_seq =
      wf.isn + static_cast<std::uint32_t>(pkt_index) * pkt.payload_len;
  pkt.tcp_flags = retransmit ? TcpFlags::kPsh : 0;
  pkt.pkt_uniq = next_uniq();
  forward(node_of_ip(wf.flow.src_ip), pkt);

  // Timeout: if still unacked after rto, retransmit (and re-arm).
  events_.schedule_in(wf.rto, [this, flow_index, pkt_index] {
    WindowFlow& flow = window_flows_[flow_index];
    if (flow.in_flight.count(pkt_index) == 0) return;
    ++flow.stats.retransmits;
    window_send_packet(flow_index, pkt_index, /*retransmit=*/true);
  });
}

void Network::host_receive(NodeId host, const Packet& pkt) {
  // Window-flow data packet addressed to this host?
  for (std::size_t i = 0; i < window_flows_.size(); ++i) {
    WindowFlow& wf = window_flows_[i];
    if (pkt.flow == wf.flow && nodes_[host].ip == wf.flow.dst_ip &&
        pkt.tcp_flags != TcpFlags::kAck) {
      window_on_data(i, pkt);
      return;
    }
    if (pkt.flow == wf.flow.reversed() && nodes_[host].ip == wf.flow.src_ip &&
        pkt.tcp_flags == TcpFlags::kAck) {
      const std::uint32_t payload = wf.pkt_len - kDataHeader;
      const std::uint64_t idx = (pkt.tcp_seq - wf.isn) / payload;
      window_on_ack(i, idx);
      return;
    }
  }
  // UDP / unmatched traffic is simply absorbed.
}

void Network::window_on_data(std::size_t flow_index, const Packet& pkt) {
  WindowFlow& wf = window_flows_[flow_index];
  const std::uint32_t payload = wf.pkt_len - kDataHeader;
  const std::uint64_t idx = (pkt.tcp_seq - wf.isn) / payload;
  if (wf.delivered.insert(idx).second) ++wf.stats.delivered;

  // Per-packet ACK carrying the data sequence number back to the sender.
  Packet ack;
  ack.flow = wf.flow.reversed();
  ack.pkt_len = kAckLen;
  ack.payload_len = 0;
  ack.tcp_seq = pkt.tcp_seq;
  ack.tcp_flags = TcpFlags::kAck;
  ack.pkt_uniq = next_uniq();
  forward(node_of_ip(ack.flow.src_ip), ack);
}

void Network::window_on_ack(std::size_t flow_index, std::uint64_t pkt_index) {
  WindowFlow& wf = window_flows_[flow_index];
  if (wf.in_flight.erase(pkt_index) == 0) return;  // duplicate ACK
  if (wf.next_index >= wf.total_pkts && wf.in_flight.empty() &&
      !wf.stats.completed) {
    wf.stats.completed = true;
    wf.stats.completion_time = events_.now();
    return;
  }
  window_send_more(flow_index);
}

const FlowStats& Network::flow_stats(const FiveTuple& flow) const {
  for (const auto& wf : window_flows_) {
    if (wf.flow == flow) return wf.stats;
  }
  throw ConfigError{"Network::flow_stats: unknown flow"};
}

// ---- topology presets -------------------------------------------------------

std::uint32_t leaf_spine_ip(std::uint32_t leaf, std::uint32_t host) {
  return (10u << 24) | (leaf << 16) | (host + 1);
}

LeafSpine build_leaf_spine(Network& net, std::uint32_t leaves,
                           std::uint32_t spines, std::uint32_t hosts_per_leaf,
                           const LinkConfig& edge, const LinkConfig& fabric) {
  LeafSpine out;
  out.net = &net;
  for (std::uint32_t s = 0; s < spines; ++s) {
    out.spines.push_back(net.add_switch("spine" + std::to_string(s)));
  }
  for (std::uint32_t l = 0; l < leaves; ++l) {
    const NodeId leaf = net.add_switch("leaf" + std::to_string(l));
    out.leaves.push_back(leaf);
    for (const NodeId spine : out.spines) net.connect(leaf, spine, fabric);
    for (std::uint32_t h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = net.add_host(leaf_spine_ip(l, h));
      out.hosts.push_back(host);
      net.connect(host, leaf, edge);
    }
  }
  net.finalize_routes();
  return out;
}

}  // namespace perfq::net
