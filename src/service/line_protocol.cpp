#include "service/line_protocol.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics_export.hpp"

namespace perfq::service {

namespace {

/// Split a rendered multi-line string into payload lines (no trailing blank).
void push_lines(std::vector<std::string>& out, const std::string& text) {
  std::istringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) out.push_back(line);
}

std::string format_fraction(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f%%", f * 100.0);
  return buf;
}

Response run_command(QueryService& service, std::string_view line) {
  std::istringstream ss{std::string(line)};
  std::string cmd;
  ss >> cmd;
  Response r;
  if (cmd.empty()) {
    r.ok = false;
    r.error = "empty command";
    return r;
  }
  if (cmd == "PING") {
    return r;
  }
  if (cmd == "ATTACH") {
    std::string name;
    ss >> name;
    if (name.empty()) throw ConfigError{"ATTACH needs a tenant name"};
    std::string rest;
    std::getline(ss, rest);
    // The query language is indentation-sensitive (def blocks): the program
    // must start at column 1, so drop the separator spaces, not just one.
    rest.erase(0, rest.find_first_not_of(" \t"));
    if (rest.empty()) throw ConfigError{"ATTACH needs query text"};
    const TenantInfo info = service.attach(name, unescape_source(rest));
    r.lines.push_back(
        "attached '" + info.name + "' kind=" +
        (info.kind == runtime::AttachKind::kSwitchQuery ? "switch" : "stream") +
        " die=" + format_fraction(info.die_fraction) +
        " epoch=" + std::to_string(info.attach_records));
    return r;
  }
  if (cmd == "DETACH") {
    std::string name;
    ss >> name;
    if (name.empty()) throw ConfigError{"DETACH needs a tenant name"};
    const runtime::ResultTable table = service.detach(name);
    push_lines(r.lines, table.to_text("final '" + name + "'", 20));
    return r;
  }
  if (cmd == "SNAPSHOT") {
    std::string name;
    ss >> name;
    if (name.empty()) throw ConfigError{"SNAPSHOT needs a query name"};
    const runtime::EngineSnapshot snap = service.snapshot(name);
    push_lines(r.lines,
               snap.table.to_text("snapshot '" + name + "' @ record " +
                                      std::to_string(snap.records),
                                  20));
    return r;
  }
  if (cmd == "DRAIN") {
    std::string name;
    ss >> name;
    if (name.empty()) throw ConfigError{"DRAIN needs a tenant name"};
    std::vector<std::vector<double>> rows;
    service.drain(name, rows);
    for (const auto& row : rows) {
      std::string out;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ' ';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", row[i]);
        out += buf;
      }
      r.lines.push_back(std::move(out));
    }
    return r;
  }
  if (cmd == "LIST") {
    for (const TenantInfo& t : service.tenants()) {
      r.lines.push_back(
          "tenant '" + t.name + "' kind=" +
          (t.kind == runtime::AttachKind::kSwitchQuery ? "switch" : "stream") +
          " die=" + format_fraction(t.die_fraction) +
          " epoch=" + std::to_string(t.attach_records));
    }
    r.lines.push_back(
        "budget used=" + format_fraction(service.used_die_fraction()) + " of " +
        format_fraction(service.config().budget.max_die_fraction) +
        " records=" + std::to_string(service.records_processed()));
    return r;
  }
  if (cmd == "STATS") {
    push_lines(r.lines, obs::format_metrics(service.metrics()));
    return r;
  }
  if (cmd == "JSON") {
    r.lines.push_back(obs::metrics_to_json(service.metrics()));
    return r;
  }
  if (cmd == "PROM") {
    push_lines(r.lines, obs::metrics_to_prometheus(service.metrics()));
    return r;
  }
  if (cmd == "SHUTDOWN") {
    r.shutdown = true;
    return r;
  }
  r.ok = false;
  r.error = "unknown command '" + cmd + "'";
  return r;
}

}  // namespace

std::string Response::to_wire() const {
  if (!ok) return "ERR " + error + "\n";
  std::string out = "OK " + std::to_string(lines.size()) + "\n";
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

Response execute_line(QueryService& service, std::string_view line) {
  try {
    return run_command(service, line);
  } catch (const Error& e) {
    Response r;
    r.ok = false;
    r.error = e.what();
    // Payload lines are newline-delimited: an embedded newline in an error
    // message would desynchronize the framing.
    for (char& c : r.error) {
      if (c == '\n') c = ' ';
    }
    return r;
  }
}

std::string unescape_source(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      if (s[i + 1] == 'n') {
        out += '\n';
        ++i;
        continue;
      }
      if (s[i + 1] == '\\') {
        out += '\\';
        ++i;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string escape_source(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace perfq::service
