// Loopback TCP front end for the query service: accepts line-protocol
// clients (line_protocol.hpp) and executes their commands against one shared
// QueryService while the host process keeps ingesting on its own thread —
// the deployment shape of the paper's §3.2 model: a resident monitor whose
// operators connect, submit queries, pull results, and leave.
//
// Deliberately minimal plumbing: plain POSIX sockets bound to 127.0.0.1
// only (an operator console, not an exposed service), one thread per client
// (command rates are human-scale), blocking I/O with the listener closed to
// unblock accept() on stop(). All concurrency control lives in the service.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/query_service.hpp"

namespace perfq::service {

class QueryServer {
 public:
  /// Binds 127.0.0.1:`port` and starts accepting (port 0 = ephemeral; read
  /// the bound port back with port()). Throws ConfigError on bind failure.
  /// `service` must outlive the server.
  QueryServer(QueryService& service, std::uint16_t port);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// True once a client issued SHUTDOWN (the host's cue to stop ingest,
  /// stop() the server, and exit).
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Stop accepting, close every client connection, join all threads.
  /// Idempotent; also runs from the destructor.
  void stop();

 private:
  void accept_loop();
  void serve_client(int fd);
  void session_loop(int fd);

  QueryService& service_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_{false};
  std::mutex clients_mu_;  ///< guards client_fds_/client_threads_
  std::vector<int> client_fds_;
  std::vector<std::thread> client_threads_;
  std::thread accept_thread_;
};

}  // namespace perfq::service
