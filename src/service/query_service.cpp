#include "service/query_service.hpp"

#include <utility>

#include "common/error.hpp"
#include "compiler/program.hpp"

namespace perfq::service {

QueryService::QueryService(std::unique_ptr<runtime::Engine> engine,
                           ServiceConfig config)
    : config_(std::move(config)), engine_(std::move(engine)) {
  if (engine_ == nullptr) throw ConfigError{"QueryService: null engine"};
}

void QueryService::process_batch(std::span<const PacketRecord> records) {
  const std::scoped_lock lock(mu_);
  check(!finished_, "QueryService: ingest after finish");
  engine_->process_batch(records);
  // Records are time-ordered per the engine contract: the batch tail carries
  // the latest timestamp, which stamps later snapshots/detaches/finish.
  if (!records.empty() && records.back().tin > end_) end_ = records.back().tin;
}

trace::IngestStats QueryService::process_wire_batch(
    std::span<const FrameObservation> frames) {
  const std::scoped_lock lock(mu_);
  check(!finished_, "QueryService: ingest after finish");
  auto stats = engine_->process_wire_batch(frames);
  if (!frames.empty() && frames.back().tin > end_) end_ = frames.back().tin;
  return stats;
}

void QueryService::finish() {
  const std::scoped_lock lock(mu_);
  check(!finished_, "QueryService: finish called twice");
  engine_->finish(end_);
  finished_ = true;
}

bool QueryService::finished() const {
  const std::scoped_lock lock(mu_);
  return finished_;
}

TenantInfo QueryService::attach(const std::string& name,
                                const std::string& source,
                                std::optional<kv::CacheGeometry> geometry,
                                std::shared_ptr<runtime::StreamSink> sink) {
  // Compile outside any engine interaction: a malformed query is the
  // compiler's QueryError and leaves service + engine untouched.
  compiler::CompiledProgram program =
      compiler::compile_source(source, config_.params);
  const runtime::AttachKind kind = runtime::attachable_kind(program);

  const std::scoped_lock lock(mu_);
  check(!finished_, "QueryService: attach after finish");
  if (tenants_.count(name) > 0) {
    throw ConfigError{"attach: tenant '" + name + "' already exists"};
  }
  if (tenants_.size() >= config_.max_tenants) {
    throw ConfigError{"attach: tenant limit (" +
                      std::to_string(config_.max_tenants) + ") reached"};
  }

  Tenant tenant;
  tenant.kind = kind;
  runtime::AttachOptions options;
  options.name = name;
  if (kind == runtime::AttachKind::kSwitchQuery) {
    // Price the cache slice in die area BEFORE the engine allocates it. The
    // service always resolves the geometry itself (caller override or the
    // configured tenant default) and passes it down explicitly, so the
    // admission price and the engine's allocation can never disagree.
    const kv::CacheGeometry g = geometry.value_or(config_.tenant_geometry);
    const auto& plan = program.switch_plans.front();
    const double bpp = analysis::AdmissionBudget::bits_per_pair(
        plan.key_bytes(), plan.kernel->state_dims());
    tenant.die_fraction = config_.budget.price(g.total_slots(), bpp);
    if (!config_.budget.would_admit(tenant.die_fraction)) {
      char frac[64];
      std::snprintf(frac, sizeof(frac), "%.4f%% + %.4f%% > %.4f%%",
                    config_.budget.used_die_fraction * 100.0,
                    tenant.die_fraction * 100.0,
                    config_.budget.max_die_fraction * 100.0);
      throw ConfigError{"attach: '" + name +
                        "' exceeds the die-area budget (" + frac + ")"};
    }
    options.geometry = g;
  } else {
    // Stream tenants hold no switch state: free. If the caller gave no
    // sink, wire a ring the DRAIN surface can pull from another thread.
    if (sink == nullptr) {
      tenant.ring = std::make_shared<runtime::RingStreamSink>(
          config_.stream_ring_capacity);
      sink = tenant.ring;
    }
    options.sink = std::move(sink);
  }

  engine_->attach_query(std::move(program), options);
  // Past this point the attach is committed: charge and record the tenant.
  tenant.attach_records = engine_->records_processed();
  config_.budget.charge(tenant.die_fraction);
  TenantInfo info{name, tenant.kind, tenant.die_fraction,
                  tenant.attach_records};
  tenants_.emplace(name, std::move(tenant));
  return info;
}

runtime::ResultTable QueryService::detach(const std::string& name) {
  const std::scoped_lock lock(mu_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    throw ConfigError{"detach: unknown tenant '" + name + "'"};
  }
  check(!finished_, "QueryService: detach after finish");
  runtime::ResultTable table = engine_->detach_query(name, end_);
  config_.budget.release(it->second.die_fraction);
  tenants_.erase(it);
  return table;
}

runtime::EngineSnapshot QueryService::snapshot(std::string_view name) {
  const std::scoped_lock lock(mu_);
  check(!finished_, "QueryService: snapshot after finish");
  return engine_->snapshot(name, end_);
}

std::size_t QueryService::drain(std::string_view name,
                                std::vector<std::vector<double>>& out) {
  std::shared_ptr<runtime::RingStreamSink> ring;
  {
    const std::scoped_lock lock(mu_);
    const auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      throw ConfigError{"drain: unknown tenant '" + std::string(name) + "'"};
    }
    if (it->second.ring == nullptr) {
      throw ConfigError{"drain: tenant '" + std::string(name) +
                        "' has no service-owned stream ring"};
    }
    ring = it->second.ring;
  }
  // Drain outside the service lock: RingStreamSink is thread-safe against
  // the delivering engine, so ingest need not stall behind a slow reader.
  return ring->drain(out);
}

const runtime::ResultTable& QueryService::table(std::string_view name) const {
  const std::scoped_lock lock(mu_);
  check(finished_, "QueryService: table() before finish");
  return engine_->table(name);
}

const runtime::ResultTable& QueryService::result() const {
  const std::scoped_lock lock(mu_);
  check(finished_, "QueryService: result() before finish");
  return engine_->result();
}

std::vector<TenantInfo> QueryService::tenants() const {
  const std::scoped_lock lock(mu_);
  std::vector<TenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    out.push_back(TenantInfo{name, t.kind, t.die_fraction, t.attach_records});
  }
  return out;
}

double QueryService::used_die_fraction() const {
  const std::scoped_lock lock(mu_);
  return config_.budget.used_die_fraction;
}

std::uint64_t QueryService::records_processed() const {
  const std::scoped_lock lock(mu_);
  return engine_->records_processed();
}

Nanos QueryService::now() const {
  const std::scoped_lock lock(mu_);
  return end_;
}

}  // namespace perfq::service
