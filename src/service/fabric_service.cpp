#include "service/fabric_service.hpp"

#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "compiler/program.hpp"

namespace perfq::service {

FabricService::FabricService(federation::FabricEngine& fabric,
                             FabricServiceConfig config)
    : config_(std::move(config)), fabric_(&fabric) {}

FabricTenantInfo FabricService::attach(const std::string& name,
                                       const std::string& source,
                                       std::optional<kv::CacheGeometry> geometry) {
  // Compile outside any fabric interaction: a malformed query is the
  // compiler's QueryError and leaves service + fabric untouched.
  compiler::CompiledProgram program =
      compiler::compile_source(source, config_.params);
  const runtime::AttachKind kind = runtime::attachable_kind(program);
  if (kind != runtime::AttachKind::kSwitchQuery) {
    throw ConfigError{"fabric attach: tenant '" + name +
                      "' is not an on-switch GROUPBY; stream SELECTs are "
                      "per-switch state"};
  }

  const std::scoped_lock lock(mu_);
  if (tenants_.count(name) > 0) {
    throw ConfigError{"fabric attach: tenant '" + name + "' already exists"};
  }
  if (tenants_.size() >= config_.max_tenants) {
    throw ConfigError{"fabric attach: tenant limit (" +
                      std::to_string(config_.max_tenants) + ") reached"};
  }

  // Price the per-switch cache slice BEFORE any engine allocates it. All
  // switches carry identical slices, so one per-switch price is charged once
  // against the shared per-die budget (see the file comment).
  const kv::CacheGeometry g = geometry.value_or(config_.tenant_geometry);
  const auto& plan = program.switch_plans.front();
  const double bpp = analysis::AdmissionBudget::bits_per_pair(
      plan.key_bytes(), plan.kernel->state_dims());
  const double fraction = config_.budget.price(g.total_slots(), bpp);
  if (!config_.budget.would_admit(fraction)) {
    char frac[64];
    std::snprintf(frac, sizeof(frac), "%.4f%% + %.4f%% > %.4f%%",
                  config_.budget.used_die_fraction * 100.0, fraction * 100.0,
                  config_.budget.max_die_fraction * 100.0);
    throw ConfigError{"fabric attach: '" + name +
                      "' exceeds the per-switch die-area budget (" + frac + ")"};
  }

  runtime::AttachOptions options;
  options.name = name;
  options.geometry = g;
  fabric_->attach_query(program, options);
  // Past this point the attach is committed on every switch: charge it.
  config_.budget.charge(fraction);
  Tenant tenant{fraction, fabric_->records()};
  FabricTenantInfo info{name, tenant.die_fraction, tenant.attach_records};
  tenants_.emplace(name, tenant);
  return info;
}

federation::FederatedResult FabricService::detach(const std::string& name) {
  const std::scoped_lock lock(mu_);
  const auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    throw ConfigError{"fabric detach: unknown tenant '" + name + "'"};
  }
  federation::FederatedResult result =
      fabric_->detach_query(name, fabric_->end_time());
  config_.budget.release(it->second.die_fraction);
  tenants_.erase(it);
  return result;
}

federation::FederatedResult FabricService::snapshot(std::string_view name) {
  const std::scoped_lock lock(mu_);
  return fabric_->snapshot(name, fabric_->end_time());
}

std::vector<FabricTenantInfo> FabricService::tenants() const {
  const std::scoped_lock lock(mu_);
  std::vector<FabricTenantInfo> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    out.push_back(FabricTenantInfo{name, t.die_fraction, t.attach_records});
  }
  return out;
}

double FabricService::used_die_fraction() const {
  const std::scoped_lock lock(mu_);
  return config_.budget.used_die_fraction;
}

}  // namespace perfq::service
