// The query service's wire protocol: newline-delimited text commands over
// any byte stream (the socket server, a pipe, a test harness). One request
// line in, one status line plus a counted payload out — trivially scriptable
// from nc/bash and parseable without a framing library:
//
//   -> ATTACH heavy SELECT 5tuple, COUNT GROUPBY 5tuple
//   <- OK 1
//   <- attached 'heavy' kind=switch die=0.2100% epoch=123456
//   -> SNAPSHOT heavy
//   <- OK 14
//   <- ... 14 lines of table text ...
//   -> BOGUS
//   <- ERR unknown command 'BOGUS'
//
// Commands (case-sensitive; <source> runs to end of line, with the two-byte
// escape "\n" standing for a newline so multi-line programs fit one line):
//   PING                 liveness probe
//   ATTACH <name> <source>   compile + admit + attach a tenant
//   DETACH <name>        detach; payload is the tenant's final table
//   SNAPSHOT <name>      mid-run result pull (switch queries)
//   DRAIN <name>         pull buffered stream rows (stream tenants)
//   LIST                 one line per tenant + the budget line
//   STATS                human-readable engine telemetry
//   JSON                 telemetry as one JSON line
//   PROM                 telemetry as Prometheus text
//   SHUTDOWN             ask the host process to stop (server closes after)
//
// The executor maps every perfq Error to an ERR line — a bad query or an
// over-budget attach never disturbs the session, matching the engine's
// "validation never poisons" contract.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "service/query_service.hpp"

namespace perfq::service {

/// One executed command: the status line's payload follows in `lines`.
struct Response {
  bool ok = true;
  std::vector<std::string> lines;  ///< payload (status line not included)
  std::string error;               ///< set iff !ok
  bool shutdown = false;           ///< SHUTDOWN was requested

  /// Render as the wire form: "OK <n>\n<lines...>" or "ERR <error>\n".
  [[nodiscard]] std::string to_wire() const;
};

/// Execute one request line against the service. Never throws: every
/// perfq::Error becomes an ERR response.
Response execute_line(QueryService& service, std::string_view line);

/// "\n" (two bytes) → newline; "\\" → backslash. Inverse of escape_source.
[[nodiscard]] std::string unescape_source(std::string_view s);
[[nodiscard]] std::string escape_source(std::string_view s);

}  // namespace perfq::service
