#include "service/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.hpp"
#include "service/line_protocol.hpp"

namespace perfq::service {

namespace {

/// write() the whole buffer, looping over short writes. Returns false on a
/// closed/broken connection (the client went away; not an error).
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(QueryService& service, std::uint16_t port)
    : service_(service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw ConfigError{std::string{"QueryServer: socket(): "} +
                      std::strerror(errno)};
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ConfigError{"QueryServer: cannot listen on 127.0.0.1:" +
                      std::to_string(port) + ": " + why};
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

QueryServer::~QueryServer() { stop(); }

void QueryServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  // Shutting down the listener unblocks accept() (EINVAL) and shutting down
  // client sockets unblocks their blocking reads. The listener is closed —
  // and listen_fd_ written — only AFTER the accept thread is joined, so the
  // accept loop never reads a racing or reused fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const std::scoped_lock lock(clients_mu_);
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> threads;
  {
    const std::scoped_lock lock(clients_mu_);
    threads.swap(client_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void QueryServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    const std::scoped_lock lock(clients_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    client_fds_.push_back(fd);
    client_threads_.emplace_back([this, fd] { serve_client(fd); });
  }
}

void QueryServer::serve_client(int fd) {
  session_loop(fd);
  // Deregister under the same lock stop() shuts sockets down under, so the
  // fd is never closed (and possibly reused) while stop() still holds it.
  const std::scoped_lock lock(clients_mu_);
  client_fds_.erase(std::find(client_fds_.begin(), client_fds_.end(), fd));
  ::close(fd);
}

void QueryServer::session_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Execute every complete line already buffered.
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line{buffer.data() + start, nl - start};
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line == "QUIT") {
        write_all(fd, "OK 0\n");
        return;
      }
      const Response r = execute_line(service_, line);
      if (!write_all(fd, r.to_wire())) return;
      if (r.shutdown) {
        shutdown_.store(true, std::memory_order_release);
        return;
      }
    }
    buffer.erase(0, start);
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;  // disconnect, or stop() shut the socket down
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace perfq::service
