// The resident multi-tenant query service: one live Engine hosting queries
// that operators attach and detach while traffic flows — the paper's §3.2
// operating model ("monitoring applications can pull results"; operators
// submit queries against a switch that never stops forwarding) promoted to a
// first-class subsystem.
//
// The service adds three things on top of the raw engine lifecycle contract
// (engine_api.hpp, "Query lifecycle contract"):
//
//   1. RUNTIME COMPILATION. attach() takes query SOURCE TEXT, compiles it
//      (lexer → sema → fold compiler), classifies it via attachable_kind(),
//      and hands the engine a finished CompiledProgram. Compilation errors
//      surface as the compiler's own QueryError — nothing touches the engine.
//
//   2. ADMISSION CONTROL. Every on-switch GROUPBY tenant is priced in switch
//      die area through analysis::AdmissionBudget (§3.3 arithmetic: slots ×
//      bits-per-pair → Mbit → die fraction); an attach that would exceed the
//      budget is a clean ConfigError BEFORE the engine sees it — never a
//      degraded-accuracy admit. Stream SELECT tenants hold no switch state
//      and are free. detach() releases the tenant's charge.
//
//   3. SERIALIZATION. One mutex serializes attach/detach/snapshot/finish
//      with process_batch()/process_wire_batch(), exactly as the lifecycle
//      contract requires — so a socket front end (service/server.hpp) can
//      run ingest on one thread and client commands on others without any
//      caller-side coordination. Reads that the engine already makes
//      thread-safe (metrics()) pass through without the service mutex.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/area_model.hpp"
#include "runtime/engine_api.hpp"

namespace perfq::service {

struct ServiceConfig {
  /// Admission pricing (die-area budget for dynamically attached tenants).
  /// The default budget is the paper's "< 2.5% additional die area" claim.
  analysis::AdmissionBudget budget;
  /// Hard cap on concurrently attached tenants (socket-facing sanity bound).
  std::size_t max_tenants = 64;
  /// Cache slice geometry for switch tenants that do not override it. Kept
  /// deliberately small: tenants share the die budget.
  kv::CacheGeometry tenant_geometry = kv::CacheGeometry::set_associative(1u << 12, 8);
  /// Ring capacity of the auto-created RingStreamSink per stream tenant.
  std::size_t stream_ring_capacity = 4096;
  /// Named constants available to tenant query text (WHERE qsize > K, ...).
  std::map<std::string, double> params{
      {"alpha", 0.125}, {"K", 32.0}, {"L", 1'000'000.0}};
};

/// What the service knows about one attached tenant (LIST output).
struct TenantInfo {
  std::string name;
  runtime::AttachKind kind = runtime::AttachKind::kSwitchQuery;
  double die_fraction = 0.0;          ///< admission charge (0 for streams)
  std::uint64_t attach_records = 0;   ///< attach epoch
};

class QueryService {
 public:
  /// Takes ownership of a built engine (serial or sharded — the service is
  /// engine-agnostic like every other driver).
  explicit QueryService(std::unique_ptr<runtime::Engine> engine,
                        ServiceConfig config = {});

  // ---- ingest (the processing domain; serialized with everything below) ----

  void process_batch(std::span<const PacketRecord> records);
  trace::IngestStats process_wire_batch(std::span<const FrameObservation> frames);

  /// End the window for every resident query. Idempotence is NOT provided
  /// (matches the engine); callers gate on finished().
  void finish();
  [[nodiscard]] bool finished() const;

  // ---- tenant lifecycle ----------------------------------------------------

  /// Compile `source` and attach it under `name`. Admission: switch tenants
  /// are priced at geometry.total_slots() × bits_per_pair(key, state dims)
  /// against the die budget; over budget → ConfigError, engine untouched.
  /// Returns the tenant's info (kind, charge, attach epoch).
  TenantInfo attach(const std::string& name, const std::string& source,
                    std::optional<kv::CacheGeometry> geometry = std::nullopt,
                    std::shared_ptr<runtime::StreamSink> sink = nullptr);

  /// Detach `name`: returns its final table and releases its budget charge.
  runtime::ResultTable detach(const std::string& name);

  /// Mid-run result pull of one on-switch GROUPBY (tenant or base query),
  /// stamped with the latest record timestamp the service has seen.
  [[nodiscard]] runtime::EngineSnapshot snapshot(std::string_view name);

  /// Drain the buffered rows of a stream tenant whose sink the service
  /// auto-created (a RingStreamSink). Throws ConfigError for switch tenants,
  /// unknown names, or tenants attached with a caller-provided sink.
  std::size_t drain(std::string_view name,
                    std::vector<std::vector<double>>& out);

  /// Final table of a resident query after finish().
  [[nodiscard]] const runtime::ResultTable& table(std::string_view name) const;
  /// The base program's primary result after finish().
  [[nodiscard]] const runtime::ResultTable& result() const;

  // ---- observation ---------------------------------------------------------

  [[nodiscard]] std::vector<TenantInfo> tenants() const;
  /// Die fraction currently charged across all tenants.
  [[nodiscard]] double used_die_fraction() const;
  /// Engine telemetry; thread-safe without the service mutex by the metrics
  /// coherence contract.
  [[nodiscard]] runtime::EngineMetrics metrics() const {
    return engine_->metrics();
  }
  [[nodiscard]] std::uint64_t records_processed() const;
  /// Latest record timestamp fed through the service (snapshot/finish stamp).
  [[nodiscard]] Nanos now() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Tenant {
    runtime::AttachKind kind = runtime::AttachKind::kSwitchQuery;
    double die_fraction = 0.0;
    std::uint64_t attach_records = 0;
    /// Set iff the service auto-created the tenant's stream sink.
    std::shared_ptr<runtime::RingStreamSink> ring;
  };

  ServiceConfig config_;
  std::unique_ptr<runtime::Engine> engine_;
  /// THE service lock: serializes the processing domain (ingest, attach,
  /// detach, snapshot, finish) and guards the tenant map + clock below.
  mutable std::mutex mu_;
  std::map<std::string, Tenant, std::less<>> tenants_;
  Nanos end_{0};
  bool finished_ = false;
};

}  // namespace perfq::service
