// The multi-tenant front end of a FABRIC: QueryService's operating model
// (compile source text, price in die area, attach while traffic flows)
// applied to every switch of a network at once through a
// federation::FabricEngine.
//
// Admission is priced per SWITCH: a fabric tenant allocates one cache slice
// on each instrumented switch, and the §3.3 die-area claim is a per-die
// budget, so the charge is the single-switch price of the tenant's geometry
// — the same fraction of every switch's die, charged once against one
// shared budget (all switches carry identical slices). Over budget is a
// clean ConfigError before any engine sees the program.
//
// Unlike QueryService, the fabric service does not own ingest: the
// Network's taps feed the per-switch engines. All calls must come from the
// network's driver thread between run steps (FabricEngine's threading
// contract); the internal mutex only serializes overlapping front-end
// callers against each other.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/area_model.hpp"
#include "federation/fabric_engine.hpp"

namespace perfq::service {

struct FabricServiceConfig {
  /// Per-switch die-area budget for attached tenants (§3.3 arithmetic).
  analysis::AdmissionBudget budget;
  std::size_t max_tenants = 64;
  /// Per-switch cache slice geometry for tenants that do not override it.
  kv::CacheGeometry tenant_geometry = kv::CacheGeometry::set_associative(1u << 12, 8);
  /// Named constants available to tenant query text.
  std::map<std::string, double> params{
      {"alpha", 0.125}, {"K", 32.0}, {"L", 1'000'000.0}};
};

/// One fabric tenant (LIST output).
struct FabricTenantInfo {
  std::string name;
  double die_fraction = 0.0;        ///< per-switch admission charge
  std::uint64_t attach_records = 0; ///< fabric-wide records at the attach epoch
};

class FabricService {
 public:
  /// Non-owning: `fabric` (and its Network) must outlive the service.
  explicit FabricService(federation::FabricEngine& fabric,
                         FabricServiceConfig config = {});

  /// Compile `source` and attach it network-wide under `name`. Only
  /// on-switch GROUPBY tenants are fabric-attachable (stream SELECTs are
  /// per-switch; FabricEngine rejects them). Over-budget or malformed
  /// queries throw before the fabric is touched.
  FabricTenantInfo attach(const std::string& name, const std::string& source,
                          std::optional<kv::CacheGeometry> geometry = std::nullopt);

  /// Detach `name` everywhere: federated final result, budget released.
  federation::FederatedResult detach(const std::string& name);

  /// Network-wide mid-run pull of a tenant or base GROUPBY, stamped with the
  /// latest record time the taps have seen.
  [[nodiscard]] federation::FederatedResult snapshot(std::string_view name);

  [[nodiscard]] std::vector<FabricTenantInfo> tenants() const;
  [[nodiscard]] double used_die_fraction() const;
  [[nodiscard]] federation::FabricMetrics metrics() const {
    return fabric_->metrics();
  }
  [[nodiscard]] const FabricServiceConfig& config() const { return config_; }

 private:
  struct Tenant {
    double die_fraction = 0.0;
    std::uint64_t attach_records = 0;
  };

  FabricServiceConfig config_;
  federation::FabricEngine* fabric_;
  mutable std::mutex mu_;
  std::map<std::string, Tenant, std::less<>> tenants_;
};

}  // namespace perfq::service
