#!/usr/bin/env python3
"""Assert the always-on telemetry layer costs <= 2% of hot-path throughput.

CI builds the benches twice — the default build (telemetry ON) and a
-DPERFQ_TELEMETRY=OFF baseline — and runs each side's kvstore_micro several
times in an interleaved A/B/A/B order (so machine-load drift hits both sides
equally). This script takes the two groups of google-benchmark JSON files,
reduces each benchmark to its MINIMUM real_time across repetitions (min is
the standard noise filter for microbenchmarks: every measurement is the true
cost plus non-negative noise), and fails if the ON minimum exceeds the OFF
minimum by more than the budget.

Usage:
  check_telemetry_overhead.py --on on_run1.json on_run2.json ... \
                              --off off_run1.json off_run2.json ... \
                              [--budget 0.02]

Exit status 0 iff every benchmark present in both groups is within budget.
Stdlib only.
"""

import argparse
import json
import sys


def min_real_times(paths):
    """name -> min real_time (ns) across all aggregate-free entries."""
    best = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        for bench in doc.get("benchmarks", []):
            # Skip google-benchmark aggregate rows (mean/median/stddev).
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            t = float(bench["real_time"])
            if name not in best or t < best[name]:
                best[name] = t
    return best


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--on", nargs="+", required=True,
                        help="JSON results from the default (telemetry ON) build")
    parser.add_argument("--off", nargs="+", required=True,
                        help="JSON results from the -DPERFQ_TELEMETRY=OFF build")
    parser.add_argument("--budget", type=float, default=0.02,
                        help="max allowed fractional slowdown (default 0.02)")
    args = parser.parse_args()

    on = min_real_times(args.on)
    off = min_real_times(args.off)
    common = sorted(set(on) & set(off))
    if not common:
        print("error: no benchmark appears in both the ON and OFF results",
              file=sys.stderr)
        return 2

    failed = False
    print(f"{'benchmark':40s} {'off(ns)':>12s} {'on(ns)':>12s} {'delta':>8s}")
    for name in common:
        delta = on[name] / off[name] - 1.0
        over = delta > args.budget
        failed |= over
        print(f"{name:40s} {off[name]:12.1f} {on[name]:12.1f} "
              f"{delta:+7.2%} {'FAIL' if over else 'ok'}")
    if failed:
        print(f"\ntelemetry overhead exceeds the {args.budget:.0%} budget",
              file=sys.stderr)
        return 1
    print(f"\nall benchmarks within the {args.budget:.0%} telemetry budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
