// make_wire_trace — generate a PQWF wire-frame trace from the synthetic
// flow-session workload, optionally sprinkling damaged frames in so ingest
// skip-and-count paths have something to skip.
//
//   make_wire_trace OUT.pqwf [--records N] [--flows N] [--seed S]
//                   [--duration-ms MS] [--damage-every K]
//
// Damage cycles through the three classes the parser distinguishes:
// snap-length truncation, a foreign EtherType, and a corrupted IPv4 header
// (which also fails the opt-in checksum check). With --damage-every 0 (the
// default) every frame is clean.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "packet/wire.hpp"
#include "trace/flow_session.hpp"
#include "trace/wire_trace.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s OUT.pqwf [--records N] [--flows N] [--seed S]\n"
               "       [--duration-ms MS] [--damage-every K]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perfq;
  if (argc < 2) return usage(argv[0]);
  const std::string out_path = argv[1];
  std::uint64_t records = 100'000;
  std::uint32_t flows = 2000;
  std::uint64_t seed = 7;
  std::int64_t duration_ms = 10'000;
  std::uint64_t damage_every = 0;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "--records") {
      records = std::strtoull(val, nullptr, 10);
    } else if (flag == "--flows") {
      flows = static_cast<std::uint32_t>(std::strtoul(val, nullptr, 10));
    } else if (flag == "--seed") {
      seed = std::strtoull(val, nullptr, 10);
    } else if (flag == "--duration-ms") {
      duration_ms = std::strtoll(val, nullptr, 10);
    } else if (flag == "--damage-every") {
      damage_every = std::strtoull(val, nullptr, 10);
    } else {
      return usage(argv[0]);
    }
  }

  trace::TraceConfig config;
  config.seed = seed;
  config.num_flows = flows;
  config.duration = Nanos{duration_ms * 1'000'000};
  const std::vector<PacketRecord> generated =
      trace::generate_all(config, records);

  trace::WireTraceWriter writer(out_path);
  std::uint64_t damaged = 0;
  for (std::size_t i = 0; i < generated.size(); ++i) {
    const PacketRecord& rec = generated[i];
    std::vector<std::byte> bytes = wire::serialize(rec.pkt);
    if (damage_every > 0 && i % damage_every == damage_every - 1) {
      switch ((i / damage_every) % 3) {
        case 0: bytes.resize(bytes.size() / 3); break;  // snap truncation
        case 1:  // IPv6 EtherType: a frame we do not speak
          bytes[12] = std::byte{0x86};
          bytes[13] = std::byte{0xDD};
          break;
        case 2:  // bit-flip the TTL: checksum no longer covers the header
          bytes[22] ^= std::byte{0xFF};
          break;
      }
      ++damaged;
    }
    FrameObservation frame;
    frame.bytes = bytes;
    frame.qid = rec.qid;
    frame.tin = rec.tin;
    frame.tout = rec.tout;
    frame.qsize = rec.qsize;
    writer.write(frame);
  }
  writer.close();
  std::printf("%s: %llu frames (%llu damaged), %llu flows requested\n",
              out_path.c_str(),
              static_cast<unsigned long long>(writer.frames_written()),
              static_cast<unsigned long long>(damaged),
              static_cast<unsigned long long>(flows));
  return 0;
}
