// Failure-domain tests: fault injection (failpoints), cross-thread error
// propagation, the poisoned-state contract, and the drain watchdogs.
//
// The hard guarantees under test (engine_api.hpp "Failure semantics"):
//   - the first exception on ANY engine thread poisons the engine: every
//     subsequent call throws a structured EngineFaultError (role, shard,
//     cause) — never a hang, never std::terminate, never silent corruption;
//   - sibling threads unwind cleanly (the destructor joins everything);
//   - a wedged pipeline trips the drain watchdog, which converts the hang
//     into an EngineFaultError carrying a pipeline diagnostic dump.
//
// Failpoint-driven tests skip themselves unless the build compiled the
// sites in (-DPERFQ_FAILPOINTS=ON; the fault-matrix CI job). The sink-throw
// and misuse tests run in every build — the poisoned-state machinery itself
// is always live.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/failpoint.hpp"
#include "compiler/program.hpp"
#include "runtime/engine.hpp"
#include "runtime/engine_builder.hpp"
#include "runtime/sharded/sharded_engine.hpp"
#include "runtime/stream_sink.hpp"
#include "runtime_test_util.hpp"

namespace perfq::runtime {
namespace {

std::vector<PacketRecord> workload() { return test_workload(); }

/// Small cache so evictions flow; 8 buckets divide into 1 and 4 shards.
EngineConfig small_engine_config() {
  EngineConfig config;
  config.geometry = kv::CacheGeometry::set_associative(8, 2);
  return config;
}

ShardedEngineConfig fault_config(std::size_t shards, std::size_t dispatchers) {
  ShardedEngineConfig config;
  config.engine = small_engine_config();
  config.num_shards = shards;
  config.num_dispatchers = dispatchers;
  config.ring_capacity = 256;
  config.dispatch_batch = 32;
  config.eviction_batch = 8;
  return config;
}

/// The engine matrix every fault scenario runs over: serial plus the
/// sharded topologies (D, N) in {1,2} x {1,4}.
struct EngineCase {
  const char* name;
  bool sharded;
  std::size_t shards;
  std::size_t dispatchers;
};
const EngineCase kEngineMatrix[] = {
    {"serial", false, 0, 0},         {"sharded D1 N1", true, 1, 1},
    {"sharded D1 N4", true, 4, 1},   {"sharded D2 N1", true, 1, 2},
    {"sharded D2 N4", true, 4, 2},
};

std::unique_ptr<Engine> build_case(const EngineCase& c,
                                   const std::string& source =
                                       "SELECT COUNT GROUPBY srcip") {
  if (!c.sharded) {
    return std::make_unique<QueryEngine>(compiler::compile_source(source),
                                         small_engine_config());
  }
  return std::make_unique<ShardedEngine>(compiler::compile_source(source),
                                         fault_config(c.shards,
                                                      c.dispatchers));
}

/// Feed batches until the engine throws EngineFaultError (async faults can
/// surface a batch or two after injection). Returns the caught fault.
EngineFaultError drive_to_fault(Engine& engine,
                                std::span<const PacketRecord> records,
                                const std::string& context) {
  constexpr std::size_t kBatch = 64;
  for (int round = 0; round < 200; ++round) {
    for (std::size_t base = 0; base < records.size(); base += kBatch) {
      const std::size_t n = std::min(kBatch, records.size() - base);
      try {
        engine.process_batch(records.subspan(base, n));
      } catch (const EngineFaultError& fault) {
        return fault;
      }
    }
  }
  ADD_FAILURE() << context << ": no EngineFaultError after 200 rounds";
  return EngineFaultError{ThreadRole::kCaller, kNoShard, "unreached"};
}

/// Every post-fault call must throw the structured error — same root cause,
/// no hang, and repeatably (the poison never clears).
void expect_poisoned(Engine& engine, const std::string& context) {
  const auto records = workload();
  for (int repeat = 0; repeat < 2; ++repeat) {
    EXPECT_THROW(engine.process_batch(std::span<const PacketRecord>(records)
                                          .first(10)),
                 EngineFaultError)
        << context;
    EXPECT_THROW(engine.finish(20_s), EngineFaultError) << context;
    EXPECT_THROW((void)engine.snapshot("R1", 20_s), EngineFaultError)
        << context;
    EXPECT_THROW((void)engine.result(), EngineFaultError) << context;
    EXPECT_THROW((void)engine.store_stats(), EngineFaultError) << context;
  }
}

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::disarm_all(); }
};

// ---- the failpoint framework itself (runs in every build) ------------------

TEST_F(FaultTest, FailpointSpecSkipAndCountSemantics) {
  // evaluate() is compiled unconditionally (only the PERFQ_FAILPOINT macro
  // is gated), so the spec machinery is testable in every build.
  failpoint::Spec spec;
  spec.action = failpoint::Action::kThrow;
  spec.skip = 2;
  spec.count = 1;
  failpoint::arm("test.site", spec);
  EXPECT_NO_THROW(failpoint::evaluate("test.site"));  // hit 1 (skipped)
  EXPECT_NO_THROW(failpoint::evaluate("test.site"));  // hit 2 (skipped)
  EXPECT_THROW(failpoint::evaluate("test.site"), FaultInjected);  // fires
  EXPECT_NO_THROW(failpoint::evaluate("test.site"));  // count exhausted
  EXPECT_EQ(failpoint::hit_count("test.site"), 4u);
  EXPECT_EQ(failpoint::fire_count("test.site"), 1u);

  failpoint::disarm("test.site");
  EXPECT_NO_THROW(failpoint::evaluate("test.site"));
  // Unknown sites are free and silent.
  EXPECT_NO_THROW(failpoint::evaluate("test.never_armed"));
  EXPECT_EQ(failpoint::hit_count("test.never_armed"), 0u);
}

TEST_F(FaultTest, FailpointRearmResetsCounters) {
  failpoint::arm("test.rearm", {});
  EXPECT_THROW(failpoint::evaluate("test.rearm"), FaultInjected);
  EXPECT_EQ(failpoint::fire_count("test.rearm"), 1u);
  failpoint::Spec sleeper;
  sleeper.action = failpoint::Action::kSleep;
  sleeper.sleep_ms = 1;
  failpoint::arm("test.rearm", sleeper);
  EXPECT_EQ(failpoint::hit_count("test.rearm"), 0u);
  EXPECT_NO_THROW(failpoint::evaluate("test.rearm"));
  EXPECT_EQ(failpoint::fire_count("test.rearm"), 1u);
}

// ---- fault injection through the engine matrix (failpoint builds) ----------

TEST_F(FaultTest, ThrowInFoldPoisonsEveryEngine) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  const auto records = workload();
  for (const EngineCase& c : kEngineMatrix) {
    failpoint::Spec spec;
    spec.skip = 100;  // let some records fold first
    failpoint::arm("fold_core.fold", spec);
    auto engine = build_case(c, "R1 = SELECT COUNT GROUPBY srcip");
    const EngineFaultError fault = drive_to_fault(*engine, records, c.name);
    EXPECT_NE(fault.cause().find("fold_core.fold"), std::string::npos)
        << c.name << ": " << fault.what();
    if (c.sharded) {
      // The fold runs on a shard worker; the fault must carry that origin.
      EXPECT_EQ(fault.role(), ThreadRole::kWorker) << c.name;
      EXPECT_LT(fault.shard(), c.shards) << c.name;
    } else {
      EXPECT_EQ(fault.role(), ThreadRole::kCaller) << c.name;
      EXPECT_EQ(fault.shard(), kNoShard) << c.name;
    }
    failpoint::disarm_all();
    expect_poisoned(*engine, c.name);
    // Destructor must join every surviving thread cleanly (TSan/ASan and
    // the ctest timeout police this).
  }
}

TEST_F(FaultTest, WorkerDeathUnwindsSiblings) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  const auto records = workload();
  for (const EngineCase& c : kEngineMatrix) {
    if (!c.sharded) continue;
    failpoint::arm("sharded.ring_pop", {});  // every worker dies on entry
    ShardedEngine engine(
        compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"),
        fault_config(c.shards, c.dispatchers));
    const EngineFaultError fault = drive_to_fault(engine, records, c.name);
    EXPECT_EQ(fault.role(), ThreadRole::kWorker) << c.name;
    EXPECT_LT(fault.shard(), c.shards) << c.name;
    failpoint::disarm_all();
    expect_poisoned(engine, c.name);
  }
}

TEST_F(FaultTest, MergeThreadDeathSurfacesBeforeResults) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  const auto records = workload();
  for (const EngineCase& c : kEngineMatrix) {
    if (!c.sharded) continue;
    failpoint::arm("sharded.merge_absorb", {});
    ShardedEngine engine(
        compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"),
        fault_config(c.shards, c.dispatchers));
    // The tiny 8-bucket cache evicts early, so the merge thread dies on its
    // first drained batch. The fault surfaces at a batch boundary or — if
    // the whole trace dispatches first — at finish(), but NEVER as a
    // result() over a half-absorbed backing store.
    bool threw = false;
    try {
      for (std::size_t base = 0; base < records.size(); base += 64) {
        engine.process_batch(std::span<const PacketRecord>(records).subspan(
            base, std::min<std::size_t>(64, records.size() - base)));
      }
      engine.finish(20_s);
      (void)engine.result();
    } catch (const EngineFaultError& fault) {
      threw = true;
      EXPECT_EQ(fault.role(), ThreadRole::kMerge) << c.name;
      EXPECT_EQ(fault.shard(), kNoShard) << c.name;
      EXPECT_NE(fault.cause().find("sharded.merge_absorb"), std::string::npos)
          << c.name << ": " << fault.what();
    }
    EXPECT_TRUE(threw) << c.name;
    failpoint::disarm_all();
  }
}

TEST_F(FaultTest, SnapshotWorkerDeathFailsTheSnapshotCall) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  const auto records = workload();
  failpoint::arm("sharded.snapshot_worker", {});
  ShardedEngine engine(
      compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"),
      fault_config(4, 2));
  engine.process_batch(std::span<const PacketRecord>(records).first(500));
  try {
    (void)engine.snapshot("R1", 15_s);
    FAIL() << "snapshot over a dying worker must throw";
  } catch (const EngineFaultError& fault) {
    EXPECT_EQ(fault.role(), ThreadRole::kWorker);
    EXPECT_LT(fault.shard(), 4u);
  }
  failpoint::disarm_all();
  expect_poisoned(engine, "snapshot worker death");
}

// ---- drain watchdogs (failpoint builds) ------------------------------------

TEST_F(FaultTest, RingStallTripsTheWatchdogWithDiagnostic) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  // Wedge (not kill) the worker: it stalls 200 ms per poll, the ring holds
  // only 2 messages, and the watchdog deadline is 50 ms — the caller's
  // full-ring push must convert the stall into a structured fault carrying
  // the pipeline dump, and the destructor must still join the worker once
  // its stalls run out.
  failpoint::Spec stall;
  stall.action = failpoint::Action::kSleep;
  stall.sleep_ms = 200;
  failpoint::arm("sharded.ring_pop", stall);
  ShardedEngineConfig config = fault_config(1, 1);
  config.ring_capacity = 2;
  config.dispatch_batch = 1;
  config.drain_timeout = std::chrono::milliseconds{50};
  ShardedEngine engine(
      compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"), config);
  const auto records = workload();
  try {
    engine.process_batch(std::span<const PacketRecord>(records).first(500));
    FAIL() << "wedged pipeline must trip the watchdog";
  } catch (const EngineFaultError& fault) {
    EXPECT_EQ(fault.role(), ThreadRole::kWatchdog);
    EXPECT_NE(fault.cause().find("drain deadline exceeded"), std::string::npos)
        << fault.what();
    // The diagnostic dump names the wait and reports pipeline state.
    EXPECT_NE(fault.diagnostic().find("pipeline state at watchdog expiry"),
              std::string::npos)
        << fault.what();
    EXPECT_NE(fault.diagnostic().find("ring occupancy"), std::string::npos)
        << fault.what();
  }
  failpoint::disarm_all();
  expect_poisoned(engine, "ring stall");
}

TEST_F(FaultTest, SnapshotStallTripsTheWatchdog) {
  if (!failpoint::compiled_in()) {
    GTEST_SKIP() << "built without PERFQ_FAILPOINTS";
  }
  // The worker stalls inside the snapshot rendezvous, past the deadline:
  // the caller's rendezvous wait must fault instead of spinning forever.
  failpoint::Spec stall;
  stall.action = failpoint::Action::kSleep;
  stall.sleep_ms = 300;
  stall.count = 1;
  failpoint::arm("sharded.snapshot_worker", stall);
  ShardedEngineConfig config = fault_config(2, 1);
  config.drain_timeout = std::chrono::milliseconds{50};
  ShardedEngine engine(
      compiler::compile_source("R1 = SELECT COUNT GROUPBY srcip"), config);
  const auto records = workload();
  engine.process_batch(std::span<const PacketRecord>(records).first(200));
  try {
    (void)engine.snapshot("R1", 15_s);
    FAIL() << "stalled snapshot rendezvous must trip the watchdog";
  } catch (const EngineFaultError& fault) {
    EXPECT_EQ(fault.role(), ThreadRole::kWatchdog);
    EXPECT_FALSE(fault.diagnostic().empty()) << fault.what();
  }
  failpoint::disarm_all();
  expect_poisoned(engine, "snapshot stall");
}

// ---- always-on poisoned-state coverage (no failpoints needed) --------------

TEST_F(FaultTest, ThrowingStreamSinkPoisonsBothEngines) {
  // A user sink callback that throws is a caller-side fault in both
  // engines (sinks run on the caller thread): the batch call throws the
  // structured error and the engine stays poisoned — it must never serve
  // results computed from a half-delivered stream.
  const char* source = R"(
S = SELECT srcip, pkt_len FROM T WHERE pkt_len > 0
R1 = SELECT COUNT GROUPBY srcip
)";
  const auto records = workload();
  for (const bool sharded : {false, true}) {
    const std::string context = sharded ? "sharded" : "serial";
    auto sink = std::make_shared<CallbackStreamSink>(
        [](const StreamBatch&) { throw std::runtime_error{"sink exploded"}; });
    EngineBuilder builder(compiler::compile_source(source));
    builder.stream_sink("S", sink);
    if (sharded) builder.sharded(2).dispatchers(2);
    auto engine = builder.build();
    try {
      engine->process_batch(std::span<const PacketRecord>(records).first(50));
      FAIL() << context << ": throwing sink must fault the batch";
    } catch (const EngineFaultError& fault) {
      EXPECT_EQ(fault.role(), ThreadRole::kCaller) << context;
      EXPECT_NE(fault.cause().find("sink exploded"), std::string::npos)
          << context << ": " << fault.what();
    }
    expect_poisoned(*engine, context);
  }
}

TEST_F(FaultTest, EngineFaultErrorIsAlsoAPlainError) {
  // Callers that only know the common error hierarchy still catch faults.
  const EngineFaultError fault{ThreadRole::kWorker, 3, "cause text", "dump"};
  EXPECT_EQ(fault.role(), ThreadRole::kWorker);
  EXPECT_EQ(fault.shard(), 3u);
  EXPECT_EQ(fault.cause(), "cause text");
  EXPECT_EQ(fault.diagnostic(), "dump");
  const std::string what = fault.what();
  EXPECT_NE(what.find("worker"), std::string::npos);
  EXPECT_NE(what.find("shard 3"), std::string::npos);
  EXPECT_NE(what.find("cause text"), std::string::npos);
  EXPECT_NE(what.find("dump"), std::string::npos);
  EXPECT_THROW(throw fault, Error);
}

TEST_F(FaultTest, DrainTimeoutIsASharedOnlyBuilderKnob) {
  EngineBuilder builder(
      compiler::compile_source("SELECT COUNT GROUPBY srcip"));
  builder.drain_timeout(std::chrono::milliseconds{100});
  EXPECT_THROW((void)builder.build(), ConfigError);

  EngineBuilder sharded_builder(
      compiler::compile_source("SELECT COUNT GROUPBY srcip"));
  sharded_builder.sharded(2).drain_timeout(std::chrono::milliseconds{100});
  EXPECT_NO_THROW((void)sharded_builder.build());
}

TEST_F(FaultTest, ArmedNothingEnginesStayClean) {
  // Sanity for instrumented builds: with no failpoint armed the matrix
  // produces identical results to the serial engine — the sites are inert.
  const auto records = workload();
  QueryEngine reference(
      compiler::compile_source("SELECT COUNT GROUPBY srcip"),
      small_engine_config());
  reference.process_batch(records);
  reference.finish(20_s);
  for (const EngineCase& c : kEngineMatrix) {
    auto engine = build_case(c);
    engine->process_batch(records);
    engine->finish(20_s);
    expect_tables_bit_identical(reference.result(), engine->result(), c.name);
  }
}

}  // namespace
}  // namespace perfq::runtime
