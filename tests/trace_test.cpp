// Workload generation: flow-session model calibration, determinism, trace
// file round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "packet/wire.hpp"
#include "trace/flow_session.hpp"
#include "trace/replay.hpp"
#include "trace/trace_io.hpp"
#include "trace/wire_replay.hpp"
#include "trace/wire_trace.hpp"

namespace perfq::trace {
namespace {

TraceConfig small_config() {
  TraceConfig c;
  c.seed = 11;
  c.duration = 10_s;
  c.num_flows = 2000;
  c.mean_flow_pkts = 20.0;
  c.median_flow_duration = 1_s;
  return c;
}

TEST(FlowSession, Deterministic) {
  const auto a = generate_all(small_config(), 5000);
  const auto b = generate_all(small_config(), 5000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pkt.flow, b[i].pkt.flow);
    EXPECT_EQ(a[i].tin, b[i].tin);
    EXPECT_EQ(a[i].pkt.tcp_seq, b[i].pkt.tcp_seq);
  }
}

TEST(FlowSession, SeedChangesTheTrace) {
  TraceConfig other = small_config();
  other.seed = 12;
  const auto a = generate_all(small_config(), 1000);
  const auto b = generate_all(other, 1000);
  ASSERT_FALSE(a.empty());
  EXPECT_NE(a[0].pkt.flow, b[0].pkt.flow);
}

TEST(FlowSession, TimestampsAreMonotonic) {
  FlowSessionGenerator gen(small_config());
  Nanos prev{-1};
  while (auto rec = gen.next()) {
    EXPECT_GE(rec->tin, prev);
    prev = rec->tin;
    EXPECT_LE(rec->tin, small_config().duration);
  }
}

TEST(FlowSession, FlowAndPacketCountsNearCalibration) {
  const TraceConfig c = small_config();
  FlowSessionGenerator gen(c);
  std::uint64_t packets = 0;
  std::unordered_set<FiveTuple> flows;
  while (auto rec = gen.next()) {
    ++packets;
    flows.insert(rec->pkt.flow);
  }
  // Arrivals are Poisson(num_flows) over the window; generated flows whose
  // first packet lands inside the window emit. Expect within 25%.
  EXPECT_NEAR(static_cast<double>(flows.size()), static_cast<double>(c.num_flows),
              0.25 * static_cast<double>(c.num_flows));
  // Packets ~= flows x mean size (heavy tail: generous tolerance, and flows
  // truncated by the window end lose packets).
  EXPECT_GT(packets, flows.size());
  const double per_flow =
      static_cast<double>(packets) / static_cast<double>(flows.size());
  EXPECT_GT(per_flow, 3.0);
  EXPECT_LT(per_flow, c.mean_flow_pkts * 3.0);
}

TEST(FlowSession, MixOfProtocolsAndSizes) {
  FlowSessionGenerator gen(small_config());
  std::uint64_t tcp = 0;
  std::uint64_t total = 0;
  RunningStats sizes;
  while (auto rec = gen.next()) {
    ++total;
    if (rec->pkt.flow.proto == static_cast<std::uint8_t>(IpProto::kTcp)) ++tcp;
    sizes.add(static_cast<double>(rec->pkt.pkt_len));
    ASSERT_GE(rec->pkt.pkt_len, 64u);
    ASSERT_LE(rec->pkt.pkt_len, 1500u);
  }
  const double tcp_frac = static_cast<double>(tcp) / static_cast<double>(total);
  EXPECT_NEAR(tcp_frac, 0.9, 0.05);
  EXPECT_NEAR(sizes.mean(), 700.0, 150.0);
}

TEST(FlowSession, SequenceAnomaliesAtConfiguredRate) {
  TraceConfig c = small_config();
  c.reorder_prob = 0.05;
  c.retx_prob = 0.0;
  FlowSessionGenerator gen(c);
  std::unordered_map<FiveTuple, std::uint32_t> expected_next;
  std::uint64_t anomalies = 0;
  std::uint64_t tcp_pkts = 0;
  while (auto rec = gen.next()) {
    if (rec->pkt.flow.proto != static_cast<std::uint8_t>(IpProto::kTcp)) continue;
    ++tcp_pkts;
    const auto it = expected_next.find(rec->pkt.flow);
    if (it != expected_next.end() && rec->pkt.tcp_seq != it->second) ++anomalies;
    expected_next[rec->pkt.flow] = rec->pkt.tcp_seq + rec->pkt.payload_len;
  }
  const double rate =
      static_cast<double>(anomalies) / static_cast<double>(tcp_pkts);
  // One reorder event perturbs the current and the following packet.
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.2);
}

TEST(FlowSession, ScaledConfigShrinksFlows) {
  const TraceConfig base = TraceConfig::caida_like();
  const TraceConfig eighth = base.scaled(0.125);
  EXPECT_EQ(eighth.num_flows, base.num_flows / 8);
  EXPECT_EQ(eighth.duration, base.duration);
  EXPECT_THROW((void)base.scaled(0.0), ConfigError);
  EXPECT_THROW((void)base.scaled(2.0), ConfigError);
}

TEST(FlowSession, ValidatesConfig) {
  TraceConfig c = small_config();
  c.num_flows = 0;
  EXPECT_THROW(FlowSessionGenerator{c}, ConfigError);
  c = small_config();
  c.flow_size_alpha = 0.9;
  EXPECT_THROW(FlowSessionGenerator{c}, ConfigError);
}

TEST(TraceIo, RoundTripsRecords) {
  const auto records = generate_all(small_config(), 2000);
  const auto path = std::filesystem::temp_directory_path() / "perfq_test.pqtr";
  write_trace(path, records);
  const auto back = read_trace(path);
  ASSERT_EQ(back.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back[i].pkt.flow, records[i].pkt.flow);
    EXPECT_EQ(back[i].tin, records[i].tin);
    EXPECT_EQ(back[i].tout, records[i].tout);
    EXPECT_EQ(back[i].qsize, records[i].qsize);
    EXPECT_EQ(back[i].pkt.pkt_uniq, records[i].pkt.pkt_uniq);
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, StreamingReaderReportsCounts) {
  const auto records = generate_all(small_config(), 100);
  const auto path = std::filesystem::temp_directory_path() / "perfq_test2.pqtr";
  write_trace(path, records);
  TraceReader reader(path);
  EXPECT_EQ(reader.record_count(), 100u);
  std::uint64_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(reader.records_read(), 100u);
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsGarbageFiles) {
  const auto path = std::filesystem::temp_directory_path() / "garbage.pqtr";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  EXPECT_THROW(TraceReader{path}, ConfigError);
  std::filesystem::remove(path);
  EXPECT_THROW(TraceReader{path}, ConfigError);  // missing file
}

TEST(TraceIo, TruncatedFileEndsStreamAndCountsTheLoss) {
  // A file cut short of its header's record count (crashed writer, partial
  // copy) must not abort the run: the reader delivers what the bytes hold,
  // ends the stream, and accounts for the promised-but-missing records.
  const auto records = generate_all(small_config(), 100);
  const auto path =
      std::filesystem::temp_directory_path() / "perfq_truncated.pqtr";
  write_trace(path, records);
  const auto full_size = std::filesystem::file_size(path);
  // Cut mid-record: 40 whole records plus half of the 41st.
  const std::uintmax_t header = full_size - 100 * 64;
  std::filesystem::resize_file(path, header + 40 * 64 + 32);

  TraceReader reader(path);
  EXPECT_EQ(reader.record_count(), 100u);  // what the header promises
  std::uint64_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 40u);
  EXPECT_EQ(reader.records_read(), 40u);
  EXPECT_EQ(reader.stats().parsed, 40u);
  EXPECT_EQ(reader.stats().truncated, 60u);
  EXPECT_EQ(reader.stats().dropped(), 60u);
  EXPECT_EQ(reader.stats().total(), 100u);
  // The stream stays ended — no resurrection on further next() calls.
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.stats().truncated, 60u);

  // The delivered prefix is intact.
  TraceReader again(path);
  for (std::size_t i = 0; i < 40; ++i) {
    const auto rec = again.next();
    ASSERT_TRUE(rec.has_value()) << i;
    EXPECT_EQ(rec->pkt.flow, records[i].pkt.flow) << i;
    EXPECT_EQ(rec->tin, records[i].tin) << i;
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, CleanFileReportsZeroDropped) {
  const auto records = generate_all(small_config(), 50);
  const auto path =
      std::filesystem::temp_directory_path() / "perfq_clean.pqtr";
  write_trace(path, records);
  TraceReader reader(path);
  while (reader.next()) {
  }
  EXPECT_EQ(reader.stats().parsed, 50u);
  EXPECT_EQ(reader.stats().dropped(), 0u);
  std::filesystem::remove(path);
}

/// Captures everything replay_into delivers (duck-typed engine surface).
struct RecordingEngine {
  std::vector<PacketRecord> seen;
  void process_batch(std::span<const PacketRecord> records) {
    seen.insert(seen.end(), records.begin(), records.end());
  }
};

TEST(Replay, RepeatedReplayStaysTimeOrdered) {
  // Regression: repeats > 1 used to re-deliver the same timestamps each
  // pass, so refresh-epoch logic saw time go backwards at every repeat
  // boundary. Each repeat must now be shifted by the trace's time span.
  TraceConfig c = small_config();
  c.num_flows = 50;
  const auto records = generate_all(c, 500);
  ASSERT_FALSE(records.empty());

  RecordingEngine engine;
  const auto stats = replay_into(engine, records, /*batch=*/64, /*repeats=*/2);
  ASSERT_EQ(stats.records, 2 * records.size());
  ASSERT_EQ(engine.seen.size(), 2 * records.size());

  // Time-ordered across the whole delivery, including the repeat boundary.
  for (std::size_t i = 1; i < engine.seen.size(); ++i) {
    ASSERT_LE(engine.seen[i - 1].tin, engine.seen[i].tin) << "at " << i;
  }
  EXPECT_LT(engine.seen[records.size() - 1].tin, engine.seen[records.size()].tin)
      << "repeat boundary must move strictly forward";

  // The second pass is the first pass shifted by a constant offset; dropped
  // packets keep the tout = infinity sentinel.
  const Nanos offset = engine.seen[records.size()].tin - engine.seen[0].tin;
  EXPECT_GT(offset, Nanos{0});
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PacketRecord& a = engine.seen[i];
    const PacketRecord& b = engine.seen[records.size() + i];
    EXPECT_EQ(b.tin, a.tin + offset);
    if (a.tout.is_infinite()) {
      EXPECT_TRUE(b.tout.is_infinite());
    } else {
      EXPECT_EQ(b.tout, a.tout + offset);
    }
  }
}

TEST(WireReplay, SkipsAndCountsDamagedFrames) {
  // A capture feed with damage sprinkled in: good frames reach the engine
  // in order, every damaged frame is counted under its reason, and nothing
  // throws — one bad frame must not abort a run.
  TraceConfig c = small_config();
  c.num_flows = 40;
  const auto records = generate_all(c, 200);
  ASSERT_GE(records.size(), 100u);

  std::vector<std::vector<std::byte>> storage;
  std::vector<FrameObservation> frames;
  std::size_t good = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    auto bytes = wire::serialize(records[i].pkt);
    bool damaged = false;
    if (i % 10 == 3) {
      bytes.resize(20);  // snap-length truncation
      damaged = true;
    } else if (i % 10 == 6) {
      bytes[12] = std::byte{0x86};  // IPv6 EtherType
      bytes[13] = std::byte{0xDD};
      damaged = true;
    } else if (i % 10 == 9) {
      bytes[14 + 2] = std::byte{0};  // IPv4 total length < headers
      bytes[14 + 3] = std::byte{1};
      damaged = true;
    }
    storage.push_back(std::move(bytes));
    FrameObservation frame;
    frame.bytes = storage.back();
    frame.qid = records[i].qid;
    frame.tin = records[i].tin;
    frame.tout = records[i].tout;
    frame.qsize = records[i].qsize;
    frames.push_back(frame);
    if (!damaged) ++good;
  }

  RecordingEngine engine;
  const IngestStats stats = replay_frames(engine, frames, /*batch=*/7);
  EXPECT_EQ(stats.parsed, good);
  EXPECT_EQ(stats.truncated, 10u);
  EXPECT_EQ(stats.unsupported, 10u);
  EXPECT_EQ(stats.bad_length, 10u);
  EXPECT_EQ(stats.dropped(), 30u);
  EXPECT_EQ(stats.total(), 100u);
  ASSERT_EQ(engine.seen.size(), good);

  // Survivors arrive in order with the frame's telemetry attached.
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (i % 10 == 3 || i % 10 == 6 || i % 10 == 9) continue;
    const PacketRecord& delivered = engine.seen[cursor++];
    EXPECT_EQ(delivered.pkt.flow, records[i].pkt.flow) << i;
    EXPECT_EQ(delivered.tin, records[i].tin) << i;
    EXPECT_EQ(delivered.qsize, records[i].qsize) << i;
  }
  EXPECT_FALSE(stats.to_string().empty());
}

/// Serialize records into owned frame bytes + FrameObservations (the inner
/// vectors never move their heap buffers, so the spans stay valid).
struct FrameSet {
  std::vector<std::vector<std::byte>> storage;
  std::vector<FrameObservation> frames;
};

FrameSet frames_from(const std::vector<PacketRecord>& records) {
  FrameSet set;
  for (const PacketRecord& rec : records) {
    set.storage.push_back(wire::serialize(rec.pkt));
    FrameObservation frame;
    frame.bytes = set.storage.back();
    frame.qid = rec.qid;
    frame.tin = rec.tin;
    frame.tout = rec.tout;
    frame.qsize = rec.qsize;
    set.frames.push_back(frame);
  }
  return set;
}

TEST(WireTrace, RoundTripsFramesAndTelemetry) {
  TraceConfig c = small_config();
  c.num_flows = 30;
  const auto records = generate_all(c, 200);
  const auto set = frames_from(records);
  const auto path = std::filesystem::temp_directory_path() / "perfq.pqwf";
  write_wire_trace(path, set.frames);

  WireTraceReader reader(path);
  EXPECT_FALSE(reader.is_pcap());
  EXPECT_EQ(reader.frame_count(), records.size());
  std::size_t i = 0;
  while (auto frame = reader.next()) {
    ASSERT_LT(i, set.frames.size());
    const FrameObservation& want = set.frames[i];
    ASSERT_EQ(frame->bytes.size(), want.bytes.size()) << i;
    EXPECT_EQ(std::memcmp(frame->bytes.data(), want.bytes.data(),
                          want.bytes.size()),
              0)
        << i;
    EXPECT_EQ(frame->qid, want.qid) << i;
    EXPECT_EQ(frame->tin, want.tin) << i;
    EXPECT_EQ(frame->tout, want.tout) << i;
    EXPECT_EQ(frame->qsize, want.qsize) << i;
    ++i;
  }
  EXPECT_EQ(i, records.size());
  EXPECT_EQ(reader.frames_read(), records.size());
  EXPECT_EQ(reader.stats().dropped(), 0u);
  std::filesystem::remove(path);
}

TEST(WireTrace, RejectsGarbageAndForeignFiles) {
  const auto path = std::filesystem::temp_directory_path() / "garbage.pqwf";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a wire trace, nor a pcap";
  }
  EXPECT_THROW(WireTraceReader{path}, ConfigError);
  {
    // Byte-swapped pcap magic: a big-endian capture we refuse up front
    // rather than silently misparse.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::uint32_t swapped = 0xd4c3b2a1;
    out.write(reinterpret_cast<const char*>(&swapped), sizeof(swapped));
    std::vector<char> rest(40, 0);
    out.write(rest.data(), static_cast<std::streamsize>(rest.size()));
  }
  EXPECT_THROW(WireTraceReader{path}, ConfigError);
  std::filesystem::remove(path);
  EXPECT_THROW(WireTraceReader{path}, ConfigError);  // missing file
}

TEST(WireTrace, TornTailFuzzAtEveryByteOffset) {
  // The mmap reader's torn-tail contract, exhaustively: cut the file at
  // EVERY byte offset past the file header. The reader must deliver exactly
  // the frames that fit completely, count the rest as truncated, and never
  // throw or hand out a span past the mapping.
  TraceConfig c = small_config();
  c.num_flows = 5;
  const auto records = generate_all(c, 12);
  ASSERT_GE(records.size(), 4u);
  const auto set = frames_from(records);
  const auto path = std::filesystem::temp_directory_path() / "torn.pqwf";
  write_wire_trace(path, set.frames);

  // Frame end offsets in the file: header is 16 bytes, each frame is a
  // 32-byte frame header plus its wire bytes.
  std::vector<std::uintmax_t> frame_end;
  std::uintmax_t off = 16;
  for (const auto& frame : set.frames) {
    off += 32 + frame.bytes.size();
    frame_end.push_back(off);
  }
  const std::uintmax_t full = std::filesystem::file_size(path);
  ASSERT_EQ(full, frame_end.back());

  for (std::uintmax_t cut = full - 1; cut >= 16; --cut) {
    std::filesystem::resize_file(path, cut);
    const std::size_t fit = static_cast<std::size_t>(
        std::count_if(frame_end.begin(), frame_end.end(),
                      [&](std::uintmax_t e) { return e <= cut; }));
    WireTraceReader reader(path);
    EXPECT_EQ(reader.frame_count(), records.size());  // the header's promise
    std::size_t delivered = 0;
    while (auto frame = reader.next()) {
      EXPECT_EQ(frame->bytes.size(), set.frames[delivered].bytes.size());
      ++delivered;
    }
    ASSERT_EQ(delivered, fit) << "cut at " << cut;
    EXPECT_EQ(reader.stats().parsed, fit);
    EXPECT_EQ(reader.stats().truncated, records.size() - fit);
    // Ended means ended: no resurrection.
    EXPECT_FALSE(reader.next().has_value());
  }
  std::filesystem::remove(path);
}

TEST(WireTrace, PcapFrontReadsClassicCaptures) {
  // A hand-written classic pcap (microsecond magic): same reader surface,
  // telemetry synthesized — no queue data on the wire, so tin == tout ==
  // the capture timestamp and qid/qsize read 0.
  Packet pkt;
  pkt.flow = FiveTuple{0x0A000001, 0x0A000002, 1234, 80, 6};
  pkt.pkt_len = 54;
  const auto bytes = wire::serialize(pkt);

  const auto path = std::filesystem::temp_directory_path() / "classic.pcap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const std::uint32_t magic = kPcapMagicMicros;
    const std::uint16_t version[2] = {2, 4};
    const std::uint32_t zeros[3] = {0, 0, 0};  // thiszone, sigfigs reserved
    const std::uint32_t snaplen = 65535;
    const std::uint32_t network = 1;  // LINKTYPE_ETHERNET
    out.write(reinterpret_cast<const char*>(&magic), 4);
    out.write(reinterpret_cast<const char*>(version), 4);
    out.write(reinterpret_cast<const char*>(zeros), 8);
    out.write(reinterpret_cast<const char*>(&snaplen), 4);
    out.write(reinterpret_cast<const char*>(&network), 4);
    for (std::uint32_t i = 0; i < 3; ++i) {
      const std::uint32_t hdr[4] = {
          /*ts_sec=*/10 + i, /*ts_usec=*/500,
          /*incl_len=*/static_cast<std::uint32_t>(bytes.size()),
          /*orig_len=*/static_cast<std::uint32_t>(bytes.size())};
      out.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
  }

  WireTraceReader reader(path);
  EXPECT_TRUE(reader.is_pcap());
  EXPECT_EQ(reader.frame_count(), 0u);  // pcap does not promise a count
  std::size_t n = 0;
  while (auto frame = reader.next()) {
    EXPECT_EQ(frame->bytes.size(), bytes.size());
    EXPECT_EQ(frame->tin, Nanos{(10 + static_cast<std::int64_t>(n)) *
                                    1'000'000'000 +
                                500 * 1'000});
    EXPECT_EQ(frame->tout, frame->tin);
    EXPECT_EQ(frame->qid, 0u);
    EXPECT_EQ(frame->qsize, 0u);
    ++n;
  }
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(reader.stats().truncated, 0u);

  // Torn pcap tail: cut into the last record's body — two clean frames,
  // one counted torn.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 10);
  WireTraceReader torn(path);
  std::size_t delivered = 0;
  while (torn.next()) ++delivered;
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(torn.stats().truncated, 1u);
  std::filesystem::remove(path);
}

TEST(WireReplay, AllCleanFeedDropsNothing) {
  TraceConfig c = small_config();
  c.num_flows = 10;
  const auto records = generate_all(c, 40);
  std::vector<std::vector<std::byte>> storage;
  std::vector<FrameObservation> frames;
  for (const PacketRecord& rec : records) {
    storage.push_back(wire::serialize(rec.pkt));
    FrameObservation frame;
    frame.bytes = storage.back();
    frame.tin = rec.tin;
    frame.tout = rec.tout;
    frames.push_back(frame);
  }
  RecordingEngine engine;
  const IngestStats stats = replay_frames(engine, frames);
  EXPECT_EQ(stats.parsed, records.size());
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(engine.seen.size(), records.size());
}

}  // namespace
}  // namespace perfq::trace
