// Unit tests for the §3.3/§4 hardware arithmetic (analysis/area_model.hpp):
// the paper's headline claims regenerated from the model, and the admission
// pricing the multi-tenant query service gates attaches with.
#include <gtest/gtest.h>

#include "analysis/area_model.hpp"
#include "kvstore/geometry.hpp"

namespace perfq::analysis {
namespace {

// ---- paper checkpoints -----------------------------------------------------

TEST(AreaModel, Paper32MbitCacheIsUnder2p5PercentOfDie) {
  const AreaModel m;
  // 32 Mbit at 7000 Kb/mm^2 on a 200 mm^2 die: the paper's "< 2.5%
  // additional die area" claim.
  EXPECT_LT(m.area_fraction(32.0), 0.025);
  EXPECT_GT(m.area_fraction(32.0), 0.02);  // it is close to the bound
}

TEST(AreaModel, PaperAllCaidaFlowsOnChipIsTensOfPercent) {
  const AreaModel m;
  // 3.8M flows at 128 b/pair needs hundreds of Mbit => ~1/3 of the die;
  // the infeasibility that motivates the cache + backing store split.
  const double mbits = AreaModel::required_mbits(3'800'000, 128);
  EXPECT_GT(mbits, 400.0);
  EXPECT_GT(m.area_fraction(mbits), 0.30);
}

TEST(AreaModel, WorkloadModelMatchesPaperRates) {
  const DatacenterWorkloadModel w;
  // "22.6M average-sized packets per second".
  EXPECT_NEAR(w.avg_pkts_per_sec(), 22.6e6, 0.1e6);
  // Fig. 5's feasibility checkpoint: a 3.55% eviction fraction is ~802K
  // backing-store writes/s — a few Redis/memcached cores.
  const double writes = w.evictions_per_sec(0.0355);
  EXPECT_NEAR(writes, 802e3, 5e3);
  const BackingStoreCapacity capacity;
  EXPECT_LT(capacity.cores_needed(writes), 8.0);
  EXPECT_GT(capacity.cores_needed(writes), 1.0);
}

// ---- admission pricing -----------------------------------------------------

TEST(AdmissionBudget, BitsPerPairMatchesBenchConvention) {
  // The bench's kBitsPerPair = 128: an 8-byte key with one 64-bit state word.
  EXPECT_DOUBLE_EQ(AdmissionBudget::bits_per_pair(8, 1), 128.0);
  // A 13-byte 5-tuple key with a two-dimensional fold state.
  EXPECT_DOUBLE_EQ(AdmissionBudget::bits_per_pair(13, 2), 13 * 8 + 128.0);
}

TEST(AdmissionBudget, PriceAgreesWithAreaModel) {
  const AdmissionBudget b;
  // pairs_for_mbits is the inverse path: a cache sized for 8 Mbit at
  // 128 b/pair must price back to the area fraction of 8 Mbit.
  const std::uint64_t slots = kv::pairs_for_mbits(8.0, 128);
  EXPECT_DOUBLE_EQ(b.price(slots, 128.0), b.area.area_fraction(8.0));
}

TEST(AdmissionBudget, ExactAtBudgetAdmitsEpsilonOverRejects) {
  AdmissionBudget b;
  b.max_die_fraction = 0.01;
  EXPECT_TRUE(b.would_admit(0.01));  // exact at the budget: admitted
  EXPECT_FALSE(b.would_admit(0.0101));
  b.charge(0.004);
  EXPECT_TRUE(b.would_admit(0.006));  // sums exactly to the budget
  EXPECT_FALSE(b.would_admit(0.0061));
}

TEST(AdmissionBudget, ChargeReleaseRoundTrip) {
  AdmissionBudget b;
  b.max_die_fraction = 0.025;
  const double f1 = b.price(1u << 15, 128.0);
  const double f2 = b.price(1u << 14, 168.0);
  b.charge(f1);
  b.charge(f2);
  EXPECT_DOUBLE_EQ(b.used_die_fraction, f1 + f2);
  b.release(f1);
  b.release(f2);
  // release() clamps at zero, so the round trip lands exactly on empty.
  EXPECT_DOUBLE_EQ(b.used_die_fraction, 0.0);
  b.release(f1);  // over-release clamps instead of going negative
  EXPECT_DOUBLE_EQ(b.used_die_fraction, 0.0);
}

TEST(AdmissionBudget, PerQueryGeometryOverridesChangeThePrice) {
  const AdmissionBudget b;
  // The service prices whatever geometry the attach resolves to: a tenant
  // overriding the default slice up or down pays proportionally.
  const double small = b.price(kv::CacheGeometry::set_associative(1u << 12, 8)
                                   .total_slots(),
                               128.0);
  const double big = b.price(kv::CacheGeometry::set_associative(1u << 16, 8)
                                 .total_slots(),
                             128.0);
  EXPECT_DOUBLE_EQ(big, small * 16.0);
  EXPECT_TRUE(b.would_admit(small));
  EXPECT_FALSE(b.would_admit(big * 8.0));  // 2^19 slots blow the 2.5% budget
}

}  // namespace
}  // namespace perfq::analysis
