// Associative-merge extension: exact merging for non-linear semilattice
// folds (per-key max/min), beyond §3.2's linear-in-state condition.
#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "kvstore/builtin_folds.hpp"
#include "kvstore/kvstore.hpp"
#include "trace/simple.hpp"

namespace perfq::kv {
namespace {

Key key_for(const PacketRecord& rec) {
  const auto bytes = rec.pkt.flow.to_bytes();
  return Key{std::span<const std::byte>{bytes.data(), bytes.size()}};
}

std::vector<PacketRecord> workload(std::uint64_t n, std::uint32_t flows,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<PacketRecord> out;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(trace::RecordBuilder{}
                      .flow_index(static_cast<std::uint32_t>(rng.below(flows)))
                      .queue(0, static_cast<std::uint32_t>(rng.below(500)))
                      .seq(static_cast<std::uint32_t>(rng.below(1u << 30)))
                      .times(Nanos{static_cast<std::int64_t>(i)},
                             Nanos{static_cast<std::int64_t>(
                                 i + 1 + rng.below(10000))})
                      .build());
  }
  return out;
}

class ExtremumMergeTest
    : public ::testing::TestWithParam<ExtremumKernel::Mode> {};

TEST_P(ExtremumMergeTest, ExactUnderHeavyEviction) {
  auto kernel = std::make_shared<ExtremumKernel>(FieldId::kQsize, GetParam());
  ASSERT_EQ(kernel->linearity(), Linearity::kNotLinear);
  ASSERT_TRUE(kernel->has_associative_merge());

  KeyValueStore split(CacheGeometry{1, 1}, kernel);  // single slot: maximum churn
  ReferenceStore reference(kernel);
  for (const auto& rec : workload(5000, 64, 5)) {
    split.process(key_for(rec), rec);
    reference.process(key_for(rec), rec);
  }
  split.flush(Nanos{1});
  EXPECT_GT(split.cache().stats().evictions, 4000u);

  std::size_t checked = 0;
  reference.for_each([&](const Key& key, const StateVector& want) {
    const StateVector* got = split.read(key);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ((*got)[0], want[0]);
    ++checked;
  });
  EXPECT_EQ(checked, 64u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ExtremumMergeTest,
    ::testing::Values(ExtremumKernel::Mode::kMax, ExtremumKernel::Mode::kMin),
    [](const ::testing::TestParamInfo<ExtremumKernel::Mode>& p) {
      return p.param == ExtremumKernel::Mode::kMax ? "max" : "min";
    });

TEST(AssociativeMerge, AllKeysStayValid) {
  // Unlike segment-tracked non-linear folds, associative folds never go
  // invalid: every key has one exact value.
  auto kernel =
      std::make_shared<ExtremumKernel>(FieldId::kTcpSeq, ExtremumKernel::Mode::kMax);
  KeyValueStore split(CacheGeometry{1, 1}, kernel);
  for (const auto& rec : workload(500, 16, 9)) split.process(key_for(rec), rec);
  split.flush(Nanos{1});
  EXPECT_DOUBLE_EQ(split.backing().accuracy().accuracy(), 1.0);
  for (std::uint32_t f = 0; f < 16; ++f) {
    const auto rec = trace::RecordBuilder{}.flow_index(f).build();
    EXPECT_TRUE(split.backing().valid(key_for(rec)));
  }
}

TEST(AssociativeMerge, IdentityElementIsInitialState) {
  // The merge contract requires initial_state() to be the identity: merging
  // a fresh epoch's value into it must be a no-op on the other operand.
  const ExtremumKernel max_kernel(FieldId::kQsize, ExtremumKernel::Mode::kMax);
  StateVector identity = max_kernel.initial_state();
  StateVector value(1);
  value[0] = 42.0;
  max_kernel.merge_values(identity, value);
  EXPECT_DOUBLE_EQ(identity[0], 42.0);
}

TEST(AssociativeMerge, KernelsWithoutMergeStillThrow) {
  const NonMonotonicKernel nonmt;
  StateVector a(2);
  StateVector b(2);
  EXPECT_FALSE(nonmt.has_associative_merge());
  EXPECT_THROW(nonmt.merge_values(a, b), InternalError);
}

TEST(AssociativeMerge, MinLatencyAcrossQueues) {
  // Realistic use: min per-packet latency a flow ever saw (the "best case"
  // a path can deliver), exact despite eviction.
  auto kernel =
      std::make_shared<ExtremumKernel>(FieldId::kTout, ExtremumKernel::Mode::kMin);
  KeyValueStore split(CacheGeometry::set_associative(8, 2), kernel);
  ReferenceStore reference(kernel);
  for (const auto& rec : workload(2000, 40, 13)) {
    split.process(key_for(rec), rec);
    reference.process(key_for(rec), rec);
  }
  split.flush(Nanos{1});
  reference.for_each([&](const Key& key, const StateVector& want) {
    const StateVector* got = split.read(key);
    ASSERT_NE(got, nullptr);
    EXPECT_DOUBLE_EQ((*got)[0], want[0]);
  });
}

}  // namespace
}  // namespace perfq::kv
