// StateVector / SmallMatrix algebra and kv::Key packing: foundations the
// merge correctness rests on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "kvstore/key.hpp"
#include "kvstore/state.hpp"

namespace perfq::kv {
namespace {

SmallMatrix random_matrix(Rng& rng, std::size_t dims) {
  SmallMatrix m(dims);
  for (std::size_t r = 0; r < dims; ++r) {
    for (std::size_t c = 0; c < dims; ++c) {
      m.at(r, c) = (rng.uniform() - 0.5) * 2.0;
    }
  }
  return m;
}

StateVector random_vector(Rng& rng, std::size_t dims) {
  StateVector v(dims);
  for (std::size_t d = 0; d < dims; ++d) v[d] = (rng.uniform() - 0.5) * 100.0;
  return v;
}

TEST(SmallMatrix, IdentityActsTrivially) {
  Rng rng(1);
  for (std::size_t dims = 1; dims <= kMaxStateDims; ++dims) {
    const SmallMatrix id = SmallMatrix::identity(dims);
    const StateVector v = random_vector(rng, dims);
    EXPECT_EQ(id.apply(v), v);
  }
}

TEST(SmallMatrix, LeftMultiplyComposesWithApply) {
  // (B·A)(v) == B(A(v)) — the property the running product P relies on.
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t dims = 1 + rng.below(kMaxStateDims);
    const SmallMatrix a = random_matrix(rng, dims);
    const SmallMatrix b = random_matrix(rng, dims);
    const StateVector v = random_vector(rng, dims);

    SmallMatrix ba = a;       // P := A
    ba.left_multiply(b);      // P := B·A
    const StateVector via_product = ba.apply(v);
    const StateVector via_sequence = b.apply(a.apply(v));
    for (std::size_t d = 0; d < dims; ++d) {
      EXPECT_NEAR(via_product[d], via_sequence[d],
                  1e-9 * std::max(1.0, std::abs(via_sequence[d])));
    }
  }
}

TEST(SmallMatrix, PowerMatchesRepeatedMultiplication) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t dims = 1 + rng.below(3);
    SmallMatrix a = random_matrix(rng, dims);
    // Scale toward contraction so powers stay finite.
    for (std::size_t r = 0; r < dims; ++r) {
      for (std::size_t c = 0; c < dims; ++c) a.at(r, c) *= 0.5;
    }
    const std::uint64_t n = rng.below(20);
    SmallMatrix slow = SmallMatrix::identity(dims);
    for (std::uint64_t i = 0; i < n; ++i) slow.left_multiply(a);
    const SmallMatrix fast = a.power(n);
    const StateVector v = random_vector(rng, dims);
    const StateVector sv = slow.apply(v);
    const StateVector fv = fast.apply(v);
    for (std::size_t d = 0; d < dims; ++d) {
      EXPECT_NEAR(fv[d], sv[d], 1e-9 * std::max(1.0, std::abs(sv[d]))) << n;
    }
  }
}

TEST(SmallMatrix, PowerZeroIsIdentity) {
  Rng rng(4);
  const SmallMatrix a = random_matrix(rng, 3);
  EXPECT_EQ(a.power(0), SmallMatrix::identity(3));
}

TEST(StateVector, ArithmeticAndBounds) {
  StateVector a(3, 1.0);
  StateVector b(3, 2.0);
  const StateVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 3.0);
  const StateVector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[2], 1.0);
  EXPECT_THROW(StateVector(kMaxStateDims + 1), ConfigError);
  StateVector c(2);
  EXPECT_THROW(c += a, Error);  // dims mismatch
}

TEST(Key, PackingIsInjectiveAcrossWidths) {
  // Distinct (value, width) tuples must produce distinct keys; equal inputs
  // equal keys.
  const std::array<std::uint64_t, 3> values{0xAABB, 0x01, 0xFFEEDDCC};
  const std::array<std::uint8_t, 3> widths{2, 1, 4};
  const Key k1 = Key::pack({values.data(), 3}, {widths.data(), 3});
  const Key k2 = Key::pack({values.data(), 3}, {widths.data(), 3});
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 7u);

  auto modified = values;
  modified[1] = 0x02;
  const Key k3 = Key::pack({modified.data(), 3}, {widths.data(), 3});
  EXPECT_FALSE(k1 == k3);
  EXPECT_NE(k1.hash(), k3.hash());
}

TEST(Key, CapacityEnforced) {
  const std::vector<std::uint64_t> values(5, 1);
  const std::vector<std::uint8_t> widths(5, 8);  // 40 bytes > capacity
  EXPECT_THROW((void)Key::pack({values.data(), 5}, {widths.data(), 5}),
               ConfigError);
}

TEST(Key, HexRendering) {
  const std::array<std::uint64_t, 1> values{0xDEAD};
  const std::array<std::uint8_t, 1> widths{2};
  const Key k = Key::pack({values.data(), 1}, {widths.data(), 1});
  EXPECT_EQ(k.to_hex(), "dead");
}

TEST(Key, SeededHashesDiffer) {
  const std::array<std::uint64_t, 1> values{42};
  const std::array<std::uint8_t, 1> widths{4};
  const Key k = Key::pack({values.data(), 1}, {widths.data(), 1});
  EXPECT_NE(k.hash(1), k.hash(2));
}

}  // namespace
}  // namespace perfq::kv
