// Baseline data structures (exact table, sampled NetFlow, Count-Min sketch)
// and the §3.3/§4 hardware arithmetic.
#include <gtest/gtest.h>

#include "analysis/area_model.hpp"
#include "baselines/cms.hpp"
#include "baselines/netflow.hpp"
#include "trace/simple.hpp"

namespace perfq {
namespace {

TEST(ExactFlowTable, CountsExactly) {
  baselines::ExactFlowTable table;
  const auto records = trace::round_robin_records(100, 10);
  for (const auto& rec : records) table.process(rec);
  EXPECT_EQ(table.flows(), 10u);
  const auto* c = table.lookup(records[0].pkt.flow);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->packets, 10u);
}

TEST(ExactFlowTable, MemoryGrowsWithFlows) {
  baselines::ExactFlowTable table;
  for (const auto& rec : trace::round_robin_records(8192, 8192)) {
    table.process(rec);
  }
  EXPECT_NEAR(table.required_mbits(128), 1.0, 1e-9);  // 8192*128b = 1 Mbit
}

TEST(SampledFlowTable, EstimatesScaleBySamplingRate) {
  baselines::SampledFlowTable table(10, /*seed=*/3);
  const auto records = trace::round_robin_records(100000, 4);
  for (const auto& rec : records) table.process(rec);
  // Each flow has 25000 packets; the 1-in-10 estimate should be close.
  for (std::uint32_t f = 0; f < 4; ++f) {
    const double est = table.estimate_packets(records[f].pkt.flow);
    EXPECT_NEAR(est, 25000.0, 2500.0);
  }
}

TEST(SampledFlowTable, MissesMiceFlows) {
  baselines::SampledFlowTable table(1000, /*seed=*/4);
  // 500 flows x 1 packet: at 1-in-1000 most flows are never sampled.
  for (const auto& rec : trace::round_robin_records(500, 500)) {
    table.process(rec);
  }
  EXPECT_LT(table.flows_observed(), 10u);
}

TEST(CountMinSketch, NeverUnderestimates) {
  baselines::CountMinSketch sketch(4, 256, 7);
  const auto records = trace::zipf_records(20000, 500, 1.1, 5);
  std::unordered_map<FiveTuple, std::uint64_t> truth;
  for (const auto& rec : records) {
    sketch.add(rec.pkt.flow);
    ++truth[rec.pkt.flow];
  }
  for (const auto& [flow, count] : truth) {
    EXPECT_GE(sketch.estimate(flow), count);
  }
}

TEST(CountMinSketch, ConservativeUpdateTightens) {
  baselines::CountMinSketch plain(4, 128, 7, false);
  baselines::CountMinSketch conservative(4, 128, 7, true);
  const auto records = trace::zipf_records(20000, 2000, 1.0, 6);
  std::unordered_map<FiveTuple, std::uint64_t> truth;
  for (const auto& rec : records) {
    plain.add(rec.pkt.flow);
    conservative.add(rec.pkt.flow);
    ++truth[rec.pkt.flow];
  }
  double err_plain = 0.0;
  double err_cons = 0.0;
  for (const auto& [flow, count] : truth) {
    err_plain += static_cast<double>(plain.estimate(flow) - count);
    err_cons += static_cast<double>(conservative.estimate(flow) - count);
    EXPECT_GE(conservative.estimate(flow), count);
  }
  EXPECT_LE(err_cons, err_plain);
}

TEST(CountMinSketch, ErrorShrinksWithWidth) {
  const auto records = trace::zipf_records(50000, 5000, 1.0, 8);
  double prev_err = 1e18;
  for (const std::size_t width : {64u, 512u, 4096u}) {
    baselines::CountMinSketch sketch(3, width, 9);
    std::unordered_map<FiveTuple, std::uint64_t> truth;
    for (const auto& rec : records) {
      sketch.add(rec.pkt.flow);
      ++truth[rec.pkt.flow];
    }
    double err = 0.0;
    for (const auto& [flow, count] : truth) {
      err += static_cast<double>(sketch.estimate(flow) - count);
    }
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
}

// ------------------------------------------------------------- analysis ----

TEST(AreaModel, PaperClaimsReproduced) {
  const analysis::AreaModel model;
  // "a 32-Mbit SRAM cache occupies < 2.5% of the die area"
  EXPECT_LT(model.area_fraction(32.0), 0.025);
  EXPECT_GT(model.area_fraction(32.0), 0.02);
  // "3.8M unique 5-tuples; ... a 486-Mbit cache for a prohibitive 38%"
  const double mbits = analysis::AreaModel::required_mbits(3'800'000, 128);
  EXPECT_NEAR(mbits, 464.0, 25.0);  // paper rounds to 486 Mbit
  EXPECT_NEAR(model.area_fraction(486.0), 0.38, 0.04);
}

TEST(WorkloadModel, TwentyTwoMillionPacketsPerSecond) {
  const analysis::DatacenterWorkloadModel model;
  // "a switch processing a billion 64-byte packets per second (1 GHz) will
  // process 22.6M average-sized packets per second"
  EXPECT_NEAR(model.avg_pkts_per_sec(), 22.6e6, 0.3e6);
  // "the eviction rate of the 8-way associative cache at ... 32 Mbits is
  // 3.55% ... the absolute eviction rate is 802K writes per second"
  EXPECT_NEAR(model.evictions_per_sec(0.0355), 802e3, 15e3);
}

TEST(BackingStoreCapacity, EvictionRateFitsFewCores) {
  const analysis::BackingStoreCapacity capacity;
  EXPECT_LT(capacity.cores_needed(802e3), 8.0);
}

}  // namespace
}  // namespace perfq
