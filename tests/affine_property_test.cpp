// Property tests of the linearity analyzer + fold compiler over *generated*
// fold programs.
//
// Soundness is the property that matters: whenever the analyzer claims a
// fold is linear-in-state, the compiled (A, B) transform must reproduce the
// interpreted update on arbitrary states and packets, and the split store's
// merged results must equal an unbounded reference executor. (Completeness —
// flagging every truly-linear fold — is best-effort; claiming "not linear"
// is always safe.)
#include <gtest/gtest.h>

#include <memory>

#include "compiler/fold_compiler.hpp"
#include "kvstore/kvstore.hpp"
#include "lang/sema.hpp"
#include "trace/simple.hpp"

namespace perfq {
namespace {

/// Deterministic generator of random fold bodies from a little grammar:
/// assignments of affine-ish expressions over {state vars, packet args,
/// literals}, optionally wrapped in if/else on packet or state predicates.
class FoldGenerator {
 public:
  explicit FoldGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    state_vars_ = {"s0", "s1"};
    const std::vector<std::string> args{"pkt_len", "qsize", "tcpseq"};
    std::string body;
    const int stmts = 1 + static_cast<int>(rng_.below(3));
    for (int i = 0; i < stmts; ++i) body += gen_stmt(args);
    std::string source = "def gen ((s0, s1), (pkt_len, qsize, tcpseq)):\n";
    source += body;
    source += "\nSELECT 5tuple, gen GROUPBY 5tuple\n";
    return source;
  }

 private:
  std::string gen_stmt(const std::vector<std::string>& args) {
    if (rng_.chance(0.4)) {
      // Conditional; predicate on packet (usually) or state (sometimes).
      const std::string pred =
          rng_.chance(0.75)
              ? args[rng_.below(args.size())] + " > " +
                    std::to_string(rng_.below(1000))
              : state_vars_[rng_.below(2)] + " > " +
                    std::to_string(rng_.below(1000));
      std::string out = "    if " + pred + ":\n";
      out += "    " + gen_assign(args);
      if (rng_.chance(0.5)) {
        out += "    else:\n";
        out += "    " + gen_assign(args);
      }
      return out;
    }
    return gen_assign(args);
  }

  std::string gen_assign(const std::vector<std::string>& args) {
    const std::string target = state_vars_[rng_.below(2)];
    return "    " + target + " = " + gen_expr(args, 0) + "\n";
  }

  std::string gen_expr(const std::vector<std::string>& args, int depth) {
    const double roll = rng_.uniform();
    if (depth >= 2 || roll < 0.25) {
      switch (rng_.below(3)) {
        case 0: return std::to_string(1 + rng_.below(9));
        case 1: return args[rng_.below(args.size())];
        default: return state_vars_[rng_.below(2)];
      }
    }
    const std::string a = gen_expr(args, depth + 1);
    const std::string b = gen_expr(args, depth + 1);
    switch (rng_.below(4)) {
      case 0: return "(" + a + " + " + b + ")";
      case 1: return "(" + a + " - " + b + ")";
      case 2: return "(" + a + " * " + b + ")";
      default: return "max(" + a + ", " + b + ")";
    }
  }

  Rng rng_;
  std::vector<std::string> state_vars_;
};

class GeneratedFoldTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratedFoldTest, LinearClaimsAreSound) {
  FoldGenerator gen(GetParam());
  const std::string source = gen.generate();
  SCOPED_TRACE(source);

  lang::AnalyzedProgram analysis;
  try {
    analysis = lang::analyze_source(source);
  } catch (const QueryError&) {
    GTEST_SKIP() << "generated fold rejected by sema (fine)";
  }
  const auto& fold = analysis.folds.at(0);
  const auto kernel = std::make_shared<compiler::CompiledFoldKernel>(
      fold, std::map<std::string, const lang::Expr*>{});

  // Build a deterministic workload for this seed.
  const auto records = trace::zipf_records(4000, 60, 1.0, GetParam() ^ 0xAB);

  if (fold.linearity.linear()) {
    // Claim 1: transform == update on random states & in-sequence windows.
    Rng rng(GetParam() + 1);
    const std::size_t h = kernel->history_window();
    for (std::size_t i = h; i < std::min<std::size_t>(records.size(), 200 + h);
         ++i) {
      kv::StateVector s(kernel->state_dims());
      for (std::size_t d = 0; d < s.dims(); ++d) {
        s[d] = static_cast<double>(rng.below(2000)) - 1000.0;
      }
      ASSERT_TRUE(kv::transform_matches_update(
          *kernel, s, {&records[i - h], h + 1}))
          << "transform/update divergence at record " << i;
    }

    // Claim 2: split-store results equal the reference under eviction.
    kv::KeyValueStore split(kv::CacheGeometry::set_associative(16, 4), kernel);
    kv::ReferenceStore reference(kernel);
    for (const auto& rec : records) {
      const auto bytes = rec.pkt.flow.to_bytes();
      const kv::Key key{std::span<const std::byte>{bytes.data(), bytes.size()}};
      split.process(key, rec);
      reference.process(key, rec);
    }
    split.flush(Nanos{1});
    reference.for_each([&](const kv::Key& key, const kv::StateVector& want) {
      const kv::StateVector* got = split.read(key);
      ASSERT_NE(got, nullptr);
      for (std::size_t d = 0; d < want.dims(); ++d) {
        const double scale = std::max(1.0, std::abs(want[d]));
        EXPECT_LT(std::abs((*got)[d] - want[d]) / scale, 1e-6)
            << kernel->linearity_reason();
      }
    });
  } else {
    // Not-linear claims are always safe; just check the fold still executes.
    kv::StateVector s = kernel->initial_state();
    for (std::size_t i = 0; i < 50; ++i) kernel->update(s, records[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFolds, GeneratedFoldTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(GeneratedFolds, MixOfClassificationsObserved) {
  // The generator must actually exercise both sides of the dichotomy.
  int linear = 0;
  int nonlinear = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    FoldGenerator gen(seed);
    try {
      const auto analysis = lang::analyze_source(gen.generate());
      (analysis.folds.at(0).linearity.linear() ? linear : nonlinear) += 1;
    } catch (const QueryError&) {
    }
  }
  EXPECT_GT(linear, 5);
  EXPECT_GT(nonlinear, 5);
}

}  // namespace
}  // namespace perfq
