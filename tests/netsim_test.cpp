// Network simulator tests: event ordering, queue/drop semantics, telemetry
// record correctness, window-flow reliability, and incast dynamics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "netsim/network.hpp"

namespace perfq::net {
namespace {

TEST(EventQueue, RunsInTimeOrderWithStableTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Nanos{10}, [&] { order.push_back(2); });
  q.schedule(Nanos{5}, [&] { order.push_back(1); });
  q.schedule(Nanos{10}, [&] { order.push_back(3); });  // tie: insertion order
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Nanos{10});
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(Nanos{5}, [&] { ++fired; });
  q.schedule(Nanos{15}, [&] { ++fired; });
  q.run_until(Nanos{10});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), Nanos{10});
}

struct TwoHosts {
  Network net{42};
  NodeId a, b, sw;
  std::vector<PacketRecord> records;

  explicit TwoHosts(std::uint32_t queue_cap = 16) {
    a = net.add_host(ipv4_from_string("10.0.0.1"));
    b = net.add_host(ipv4_from_string("10.0.0.2"));
    sw = net.add_switch("s1");
    LinkConfig link;
    link.gbps = 10.0;
    link.propagation = 1000_ns;
    link.queue_capacity_pkts = queue_cap;
    net.connect(a, sw, link);
    net.connect(b, sw, link);
    net.finalize_routes();
    net.set_telemetry_sink(
        [this](const PacketRecord& rec) { records.push_back(rec); });
  }

  [[nodiscard]] FiveTuple tuple(IpProto proto) const {
    return FiveTuple{ipv4_from_string("10.0.0.1"), ipv4_from_string("10.0.0.2"),
                     4000, 80, static_cast<std::uint8_t>(proto)};
  }
};

TEST(Network, UdpPacketsTraverseTwoQueues) {
  TwoHosts t;
  t.net.add_udp_flow(t.tuple(IpProto::kUdp), 0_ns, 10, 500, 1e6, false);
  t.net.run_until(1_s);
  // Each delivered packet crosses host->sw and sw->host queues.
  EXPECT_EQ(t.records.size(), 20u);
  for (const auto& rec : t.records) {
    EXPECT_FALSE(rec.dropped());
    EXPECT_GE((rec.tout - rec.tin).count(), 0);
  }
}

TEST(Network, TimestampsReflectQueueing) {
  // Two packets back-to-back at 10 Gb/s: the second waits for the first's
  // 500 B transmission (~400 ns).
  TwoHosts t;
  t.net.add_udp_flow(t.tuple(IpProto::kUdp), 0_ns, 2, 500, 1e9, false);
  t.net.run_until(1_s);
  ASSERT_GE(t.records.size(), 2u);
  // Records from the host->sw queue: first two entries by time.
  const auto& first = t.records[0];
  const auto& second = t.records[1];
  EXPECT_EQ(first.qsize, 0u);
  EXPECT_EQ(second.qsize, 1u) << "second packet saw one packet ahead";
  EXPECT_GT((second.tout - second.tin).count(), 300);
}

TEST(Network, DropTailEmitsInfiniteTout) {
  // 1 Gb/s bottleneck, tiny queue, overdriven source.
  Network net(1);
  const NodeId a = net.add_host(ipv4_from_string("10.0.0.1"));
  const NodeId b = net.add_host(ipv4_from_string("10.0.0.2"));
  const NodeId sw = net.add_switch("s1");
  LinkConfig fast{10.0, 100_ns, 256};
  LinkConfig slow{1.0, 100_ns, 4};
  net.connect(a, sw, fast);
  net.connect(b, sw, slow);
  net.finalize_routes();
  std::uint64_t drops = 0;
  std::uint64_t delivered = 0;
  net.set_telemetry_sink([&](const PacketRecord& rec) {
    if (rec.dropped()) {
      ++drops;
      EXPECT_TRUE(rec.tout.is_infinite());
    } else {
      ++delivered;
    }
  });
  FiveTuple flow{ipv4_from_string("10.0.0.1"), ipv4_from_string("10.0.0.2"),
                 4000, 80, static_cast<std::uint8_t>(IpProto::kUdp)};
  net.add_udp_flow(flow, 0_ns, 2000, 1500, 5e5, false);  // 6 Gb/s into 1 Gb/s
  net.run_until(10_ms);
  EXPECT_GT(drops, 100u);
  const std::uint32_t qid = net.queue_id(sw, b);
  EXPECT_EQ(net.queue_stats(qid).dropped, drops)
      << "all loss concentrates at the 1 Gb/s bottleneck";
  EXPECT_GT(delivered, 0u);
}

TEST(Network, WindowFlowDeliversEverythingDespiteDrops) {
  Network net(7);
  const NodeId a = net.add_host(ipv4_from_string("10.0.0.1"));
  const NodeId b = net.add_host(ipv4_from_string("10.0.0.2"));
  const NodeId sw = net.add_switch("s1");
  LinkConfig edge{10.0, 1000_ns, 8};  // small queue to force drops
  net.connect(a, sw, edge);
  net.connect(b, sw, edge);
  net.finalize_routes();
  FiveTuple flow{ipv4_from_string("10.0.0.1"), ipv4_from_string("10.0.0.2"),
                 5000, 80, static_cast<std::uint8_t>(IpProto::kTcp)};
  net.add_window_flow(flow, 0_ns, 500, 1000, /*window=*/32, /*rto=*/1_ms);
  net.run_until(2_s);
  const FlowStats& stats = net.flow_stats(flow);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.delivered, 500u);
  EXPECT_EQ(stats.sent, 500u);
}

TEST(Network, IncastFillsTheFanInQueue) {
  // Classic incast: many synchronized senders to one receiver. The
  // receiver-facing queue must dominate drops and depth.
  Network net(3);
  LinkConfig edge{10.0, 1000_ns, 64};
  LinkConfig fabric{40.0, 1000_ns, 64};
  const LeafSpine fabric_net = build_leaf_spine(net, 2, 2, 8, edge, fabric);

  std::uint64_t drops = 0;
  net.set_telemetry_sink([&](const PacketRecord& rec) {
    if (rec.dropped()) ++drops;
  });

  // Hosts 1..7 of leaf 0 plus all of leaf 1 send to host 0 of leaf 0.
  const std::uint32_t sink_ip = leaf_spine_ip(0, 0);
  int senders = 0;
  for (std::uint32_t l = 0; l < 2; ++l) {
    for (std::uint32_t h = 0; h < 8; ++h) {
      if (l == 0 && h == 0) continue;
      FiveTuple flow{leaf_spine_ip(l, h), sink_ip,
                     static_cast<std::uint16_t>(3000 + senders), 443,
                     static_cast<std::uint8_t>(IpProto::kTcp)};
      net.add_window_flow(flow, 0_ns, 200, 1500, 16, 2_ms);
      ++senders;
    }
  }
  net.run_until(100_ms);

  const NodeId receiver = fabric_net.hosts[0];
  const NodeId leaf0 = fabric_net.leaves[0];
  const std::uint32_t fan_in_q = net.queue_id(leaf0, receiver);
  EXPECT_GT(net.queue_stats(fan_in_q).max_depth, 32u)
      << "incast must build a deep queue at the fan-in port";
  EXPECT_GT(net.queue_stats(fan_in_q).dropped, 0u);
  // The fan-in queue is where the loss concentrates.
  for (std::uint32_t q = 0; q < net.queue_count(); ++q) {
    if (q == fan_in_q) continue;
    EXPECT_LE(net.queue_stats(q).dropped, net.queue_stats(fan_in_q).dropped);
  }
  EXPECT_GT(drops, 0u);
}

TEST(Network, RoutesAreShortestPaths) {
  Network net(1);
  LinkConfig link{10.0, 100_ns, 32};
  const LeafSpine ls = build_leaf_spine(net, 3, 2, 2, link, link);
  std::vector<std::uint32_t> path_qids;
  net.set_telemetry_sink([&](const PacketRecord& rec) {
    if (!rec.dropped()) path_qids.push_back(rec.qid);
  });
  // Host on leaf 0 -> host on leaf 2: host->leaf0->spine->leaf2->host = 4
  // queues.
  FiveTuple flow{leaf_spine_ip(0, 0), leaf_spine_ip(2, 1), 1234, 80,
                 static_cast<std::uint8_t>(IpProto::kUdp)};
  net.add_udp_flow(flow, 0_ns, 1, 500, 1e6, false);
  net.run_until(10_ms);
  EXPECT_EQ(path_qids.size(), 4u);
}

TEST(Network, StatsForUnknownFlowThrows) {
  Network net(1);
  EXPECT_THROW((void)net.flow_stats(FiveTuple{}), perfq::Error);
}

}  // namespace
}  // namespace perfq::net
